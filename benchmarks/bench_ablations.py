"""Ablation benches for the design choices DESIGN.md calls out.

1. *Cost-opportunity localization* (5.2): disable the heuristic (local error
   only) and measure the lost speedup on a reciprocal-heavy benchmark.
2. *Typed extraction* (5.1): compare against naive single-type extraction —
   count the candidate programs lost on a mixed-precision target.
3. *Auto-tuned cost model* (4.2): compare auto-tuned costs against the
   simulator's true latencies (relative error distribution).
"""

import math

from conftest import BENCH_POINTS, write_result

from repro.accuracy import SampleConfig
from repro.benchsuite import core_named
from repro.core import CompileConfig, compile_fpcore
from repro.core.isel import instruction_select
from repro.ir import F32, parse_expr
from repro.perf import PerfSimulator
from repro.targets import autotune_costs, get_target

SAMPLES = SampleConfig(n_train=BENCH_POINTS, n_test=BENCH_POINTS)


def test_ablation_cost_opportunity(benchmark):
    """Without cost opportunity, localization sees only local error and
    misses pure-speed rewrites: every division here is perfectly accurate,
    so local error never nominates anything.  The program is large enough
    that the whole-program fallback cannot compensate."""
    from repro.ir import parse_fpcore

    core = parse_fpcore(
        """
        (FPCore big-normalize (x y z)
          :pre (and (< 0.01 x 100) (< 0.01 y 100) (< 0.01 z 100))
          (+ (+ (/ x (sqrt (+ (+ (* x x) (* y y)) (* z z))))
                (/ y (sqrt (+ (+ (* x x) (* y y)) (* z z)))))
             (/ z (sqrt (+ (+ (* x x) (* y y)) (* z z))))))
        """
    )
    avx = get_target("avx")

    with_opp = CompileConfig(iterations=1, localize_points=8, min_opportunity=0.5)
    without_opp = CompileConfig(
        iterations=1, localize_points=8, min_opportunity=math.inf
    )

    result_with = benchmark.pedantic(
        compile_fpcore, args=(core, avx, with_opp, SAMPLES), rounds=1, iterations=1
    )
    result_without = compile_fpcore(core, avx, without_opp, SAMPLES)

    cheapest_with = result_with.frontier.best_cost().cost
    cheapest_without = result_without.frontier.best_cost().cost

    # The heuristic's direct signal: cost opportunity must rank a division
    # (the rcp rewrite site) at the top, something local error cannot see
    # by design (the divisions are correctly rounded).
    from repro.core.transcribe import transcribe
    from repro.cost import cost_opportunities

    program = transcribe(core.body, avx, core.precision)
    opportunities = cost_opportunities(program, avx, core.precision)
    top_path = max(opportunities, key=opportunities.get)
    top_op = program.at(top_path).op

    text = (
        "Ablation — cost-opportunity localization (3-d normalize on AVX)\n"
        f"  input program cost:                       "
        f"{result_with.input_candidate.cost:8.1f}\n"
        f"  cheapest output with cost-opportunity:    {cheapest_with:8.1f}\n"
        f"  cheapest output local-error only:         {cheapest_without:8.1f}\n"
        f"  top cost-opportunity node:                {top_op} "
        f"(opportunity {opportunities[top_path]:.1f})\n"
        "  note: local error also nominates divisions here via rounding\n"
        "  noise (~1 ulp); cost opportunity identifies them *because they\n"
        "  are expensive*, which is robust when rounding noise vanishes.\n"
    )
    write_result("ablation_cost_opportunity", text)
    assert cheapest_with <= cheapest_without
    assert top_op in ("div.f64", "sqrt.f64")


def test_ablation_typed_extraction(benchmark):
    """Naive (untyped) extraction cannot produce any well-typed program from
    a mixed real/float e-graph; typed extraction produces dozens."""
    avx = get_target("avx")
    prog = parse_expr("(/ x y)")

    variants = benchmark.pedantic(
        instruction_select,
        args=(prog, avx),
        kwargs={"ty": F32},
        rounds=1,
        iterations=1,
    )
    from repro.cost import TargetCostModel

    model = TargetCostModel(avx)
    well_typed = [v for v in variants if model.supports_program(v)]
    text = (
        "Ablation — typed extraction (x/y on AVX at binary32)\n"
        f"  well-typed variants from typed extraction: {len(well_typed)}\n"
        "  naive extraction over the same mixed e-graph would pick the\n"
        "  smallest term: the *real* (/ x y), which no target can execute.\n"
    )
    write_result("ablation_typed_extraction", text)
    assert len(well_typed) == len(variants) >= 3


def test_ablation_autotuned_costs(benchmark):
    """Auto-tuned costs are noisy but rank operators correctly (paper 4.2)."""
    c99 = get_target("c99")
    costs = benchmark.pedantic(autotune_costs, args=(c99,), rounds=1, iterations=1)

    rel_errors = []
    inversions = 0
    names = sorted(costs)
    for name in names:
        truth = c99.operator(name).true_latency
        rel_errors.append(abs(costs[name] - truth) / truth)
    for a in names:
        for b in names:
            ta, tb = c99.operator(a).true_latency, c99.operator(b).true_latency
            if ta < 0.5 * tb and costs[a] >= costs[b]:
                inversions += 1
    text = (
        "Ablation — auto-tuned cost model vs true latencies (C99)\n"
        f"  operators measured:       {len(costs)}\n"
        f"  mean relative error:      {sum(rel_errors) / len(rel_errors):6.3f}\n"
        f"  2x-ordering inversions:   {inversions}\n"
    )
    write_result("ablation_autotune", text)
    assert sum(rel_errors) / len(rel_errors) < 0.5
    assert inversions == 0
