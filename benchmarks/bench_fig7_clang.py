"""Figure 7: Chassis vs Clang on the C 99 target.

Regenerates the joint Pareto comparison against 12 Clang configurations
(-O0/-O1/-O2/-O3/-Os/-Oz, each with and without -ffast-math) through the
provenance DataProvider.  Expected shape (paper 6.2): Chassis' curve
dominates; fast-math beats precise Clang on speed with an accuracy drop;
Chassis' advantage at matched accuracy is severalfold (the paper reports
8.9x at equal accuracy, >= 3.5x overall).

``REPRO_BENCH_EMPIRICAL=1`` (read in conftest) switches the figure to
**empirical** mode: run times come from executing emitted code
(system-compiler-built shared libraries, wall-clock timed over the test
points) instead of from the performance simulator — the real-hardware
variant of the figure.  Shape assertions only apply to the deterministic
simulated mode; empirical numbers carry real measurement noise.
"""

from conftest import write_result

from repro.experiments import clang_report, joint_pareto


def test_fig7_chassis_vs_clang(benchmark, data_provider):
    results = benchmark.pedantic(
        data_provider.clang_comparison, rounds=1, iterations=1
    )
    # The bench artifact keeps the wall-clock footer (unlike the
    # determinism-checked `repro report` rendering of the same data).
    report = clang_report(results)
    if data_provider.clang_empirical:
        measured = sum(r.empirical for r in results)
        report = (
            f"(empirical: wall-clock timings of executed code for "
            f"{measured}/{len(results)} benchmarks; the rest fell back to "
            f"the simulator)\n" + report
        )
    write_result("fig7_clang", report)

    assert results, "no benchmark compiled"
    if data_provider.clang_empirical:
        return  # wall-clock noise: the deterministic shape check is moot
    # Shape check: Chassis' best speedup exceeds every precise Clang config.
    chassis_best = max(
        point.speedup for point in joint_pareto([r.chassis for r in results])
    )
    from repro.experiments import geomean

    precise_best = max(
        geomean([r.clang[cfg][0] for r in results if cfg in r.clang])
        for cfg in ("-O1", "-O2", "-O3", "-Os", "-Oz")
    )
    assert chassis_best > precise_best
