"""Figure 7: Chassis vs Clang on the C 99 target.

Regenerates the joint Pareto comparison against 12 Clang configurations
(-O0/-O1/-O2/-O3/-Os/-Oz, each with and without -ffast-math).  Expected
shape (paper 6.2): Chassis' curve dominates; fast-math beats precise Clang
on speed with an accuracy drop; Chassis' advantage at matched accuracy is
severalfold (the paper reports 8.9x at equal accuracy, >= 3.5x overall).
"""

from conftest import write_result

from repro.experiments import clang_report, joint_pareto, run_clang_comparison
from repro.targets import get_target


def test_fig7_chassis_vs_clang(benchmark, bench_cores, experiment_config):
    c99 = get_target("c99")
    results = benchmark.pedantic(
        run_clang_comparison,
        args=(bench_cores, c99, experiment_config),
        rounds=1,
        iterations=1,
    )
    report = clang_report(results)
    write_result("fig7_clang", report)

    assert results, "no benchmark compiled"
    # Shape check: Chassis' best speedup exceeds every precise Clang config.
    chassis_best = max(
        point.speedup for point in joint_pareto([r.chassis for r in results])
    )
    from repro.experiments import geomean

    precise_best = max(
        geomean([r.clang[cfg][0] for r in results if cfg in r.clang])
        for cfg in ("-O1", "-O2", "-O3", "-Os", "-Oz")
    )
    assert chassis_best > precise_best
