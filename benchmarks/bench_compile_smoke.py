"""Compile-latency smoke benchmark feeding the committed perf trajectory.

Like ``bench_egraph.py`` this is a plain script CI runs directly::

    PYTHONPATH=src python benchmarks/bench_compile_smoke.py [--append PATH]

It times a handful of warm-session end-to-end compiles with tracing armed
and reports, per benchmark:

* wall-clock seconds of the root ``compile`` span,
* the per-phase breakdown (parse/sample/transcribe/improve/regimes/score)
  from the same trace,
* **phase coverage** — the fraction of the compile span accounted for by
  phase spans.  The script exits non-zero when coverage drops below 0.9
  for any benchmark: untracked time inside a compile means some new
  subsystem is missing instrumentation.

With ``--append`` (the default points at the repo-root
``BENCH_egraph.json``) the run is recorded in the committed trajectory
file: one entry per commit, keyed by ``git rev-parse HEAD``, carrying the
compile-latency numbers plus the engine-throughput summary from
``results/egraph_bench.json``, the oracle-backend throughput summary
from ``results/oracle_bench.json``, and the narrow-format compile-quality
summary from ``results/format_bench.json`` when ``bench_egraph.py`` /
``bench_oracle.py`` / ``bench_formats.py`` ran first (as they do in CI).  Re-running on the
same commit replaces that commit's entry, so the file stays
one-row-per-commit under amended pushes.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.accuracy.sampler import SampleConfig  # noqa: E402
from repro.benchsuite import core_named  # noqa: E402
from repro.core.loop import CompileConfig  # noqa: E402
from repro.obs.trace import Trace, tracing  # noqa: E402
from repro.session import ChassisSession  # noqa: E402
from repro.targets import get_target  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent

#: Small, fast benchmarks spanning the interesting compile shapes: a
#: cancellation rewrite, a regime split, and a libm-call replacement.
SAMPLE = ("sqrt-sub", "logistic", "logsumexp2")

#: Minimum fraction of the root compile span the phase spans must cover.
MIN_COVERAGE = 0.9


def git_head() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"], capture_output=True, text=True,
            cwd=ROOT, timeout=10,
        ).stdout.strip() or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def git_commit_date() -> str:
    try:
        return subprocess.run(
            ["git", "show", "-s", "--format=%cI", "HEAD"],
            capture_output=True, text=True, cwd=ROOT, timeout=10,
        ).stdout.strip() or ""
    except (OSError, subprocess.SubprocessError):
        return ""


def measure(target_name: str) -> list[dict]:
    """One traced warm-session compile per sample benchmark."""
    target = get_target(target_name)
    rows = []
    with ChassisSession(
        config=CompileConfig(iterations=1, localize_points=8),
        sample_config=SampleConfig(n_train=8, n_test=8),
    ) as session:
        for name in SAMPLE:
            core = core_named(name)
            trace = Trace(name=f"{name}:{target.name}")
            start = time.monotonic()
            with tracing(trace):
                result = session.compile(core, target)
            elapsed = time.monotonic() - start
            roots = trace.find("compile")
            compile_span = roots[0]["dur"] if roots else elapsed
            phases = trace.phase_seconds()
            coverage = (
                sum(phases.values()) / compile_span if compile_span else 0.0
            )
            rows.append({
                "benchmark": name,
                "seconds": round(elapsed, 3),
                "compile_span_seconds": round(compile_span, 3),
                "frontier": len(result.frontier),
                "phases": {k: round(v, 4) for k, v in sorted(phases.items())},
                "phase_coverage": round(coverage, 3),
            })
            slowest = max(phases, key=phases.get) if phases else "?"
            print(
                f"{name}: {elapsed:.2f}s "
                f"(coverage {coverage:.0%}, slowest phase: {slowest})"
            )
    return rows


def validate_trajectory_record(record: dict, require_summaries: bool = True) -> list[str]:
    """Schema-check one trajectory entry; returns the list of problems.

    The trajectory is only useful if every entry is complete: a silently
    appended partial record (an empty engine summary because
    ``bench_egraph.py`` didn't run, a compile row missing its phase
    breakdown) poisons every later comparison against it.  CI therefore
    refuses to append entries with problems.  ``require_summaries=False``
    (the ``--allow-partial`` flag) relaxes only the sub-bench summaries —
    for running the smoke outside CI without the other benches — never
    the compile rows themselves.
    """
    problems: list[str] = []

    def check(condition: bool, message: str) -> None:
        if not condition:
            problems.append(message)

    check(bool(record.get("commit")), "missing commit hash")
    check(bool(record.get("target")), "missing target name")
    compile_block = record.get("compile")
    if not isinstance(compile_block, dict):
        problems.append("missing compile block")
    else:
        rows = compile_block.get("benchmarks")
        check(
            isinstance(rows, list) and bool(rows),
            "compile.benchmarks must be a non-empty list",
        )
        for row in rows if isinstance(rows, list) else []:
            label = row.get("benchmark", "?") if isinstance(row, dict) else "?"
            check(isinstance(row, dict) and bool(row.get("benchmark")),
                  f"compile row {label!r}: missing benchmark name")
            if not isinstance(row, dict):
                continue
            check(isinstance(row.get("seconds"), (int, float)),
                  f"compile row {label!r}: missing seconds")
            check(isinstance(row.get("phases"), dict) and bool(row["phases"]),
                  f"compile row {label!r}: missing/empty phase breakdown")
            check(isinstance(row.get("phase_coverage"), (int, float)),
                  f"compile row {label!r}: missing phase_coverage")
        check(isinstance(compile_block.get("total_seconds"), (int, float)),
              "compile.total_seconds missing")
        check(isinstance(compile_block.get("min_phase_coverage"), (int, float)),
              "compile.min_phase_coverage missing")
    if require_summaries:
        engine = record.get("engine")
        check(isinstance(engine, dict) and bool(engine.get("summary")),
              "missing/empty engine summary (did bench_egraph.py --smoke run?)")
        oracle = record.get("oracle")
        check(isinstance(oracle, dict) and bool(oracle),
              "missing/empty oracle summary (did bench_oracle.py --smoke run?)")
        if isinstance(oracle, dict) and oracle:
            # Per-rung fractions arrived with the dd middle rung; a
            # summary without them predates the cascade and would make
            # rung-mix regressions invisible in the trajectory.
            for key in (
                "fastpath_fraction",
                "longdouble_fraction",
                "dd_fraction",
                "ladder_fraction",
            ):
                check(isinstance(oracle.get(key), (int, float)),
                      f"oracle summary missing per-rung fraction {key!r}")
        formats = record.get("formats")
        check(isinstance(formats, dict) and bool(formats),
              "missing/empty formats summary (did bench_formats.py run?)")
    return problems


def append_trajectory(path: Path, record: dict) -> None:
    """Insert/replace this commit's entry in the trajectory file."""
    if path.exists():
        trajectory = json.loads(path.read_text())
        if not isinstance(trajectory, dict) or not isinstance(
            trajectory.get("runs"), list
        ):
            raise ValueError(
                f"{path} is not a trajectory file (expected an object with "
                "a 'runs' list); refusing to overwrite it"
            )
    else:
        trajectory = {
            "description": (
                "Per-commit performance trajectory: compile-latency smoke "
                "(benchmarks/bench_compile_smoke.py) plus the e-graph "
                "engine-throughput summary (benchmarks/bench_egraph.py "
                "--smoke), the oracle-backend throughput summary "
                "(benchmarks/bench_oracle.py --smoke), and the "
                "narrow-format fp16/bf16 compile-quality summary "
                "(benchmarks/bench_formats.py).  Appended by CI; "
                "one entry per commit."
            ),
            "runs": [],
        }
    runs = [r for r in trajectory.get("runs", []) if r.get("commit") != record["commit"]]
    runs.append(record)
    trajectory["runs"] = runs
    path.write_text(json.dumps(trajectory, indent=2) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--target", default="c99")
    parser.add_argument(
        "--append",
        default=str(ROOT / "BENCH_egraph.json"),
        help="trajectory file to record this commit's numbers in "
        "('' disables appending)",
    )
    parser.add_argument(
        "--engine-results",
        default=str(ROOT / "results" / "egraph_bench.json"),
        help="bench_egraph.py output to fold into the trajectory entry",
    )
    parser.add_argument(
        "--oracle-results",
        default=str(ROOT / "results" / "oracle_bench.json"),
        help="bench_oracle.py output to fold into the trajectory entry",
    )
    parser.add_argument(
        "--format-results",
        default=str(ROOT / "results" / "format_bench.json"),
        help="bench_formats.py output to fold into the trajectory entry",
    )
    parser.add_argument(
        "--allow-partial",
        action="store_true",
        help="append even when sub-bench summaries (engine/oracle/formats) "
        "are absent — for local runs without the other benches; the "
        "compile rows themselves are always validated",
    )
    args = parser.parse_args(argv)

    rows = measure(args.target)
    total = sum(row["seconds"] for row in rows)
    worst = min(row["phase_coverage"] for row in rows)
    print(f"\ntotal {total:.2f}s over {len(rows)} compiles, "
          f"min phase coverage {worst:.0%}")

    engine_summary = None
    engine_path = Path(args.engine_results)
    if engine_path.exists():
        engine_payload = json.loads(engine_path.read_text())
        engine_summary = {
            "summary": engine_payload.get("summary"),
            "full_vs_incremental_identical": engine_payload.get(
                "full_vs_incremental_identical"
            ),
        }

    oracle_summary = None
    oracle_path = Path(args.oracle_results)
    if oracle_path.exists():
        oracle_payload = json.loads(oracle_path.read_text())
        oracle_summary = oracle_payload.get("summary")

    # Per-format compile quality (bench_formats.py): keep only the compact
    # per-format summaries, not the per-benchmark rows.
    format_summary = None
    format_path = Path(args.format_results)
    if format_path.exists():
        format_payload = json.loads(format_path.read_text())
        format_summary = {
            name: {
                "mean_best_error_bits": data.get("mean_best_error_bits"),
                "all_validated": data.get("all_validated"),
            }
            for name, data in format_payload.get("formats", {}).items()
        }

    if args.append:
        record = {
            "commit": git_head(),
            "date": git_commit_date(),
            "target": args.target,
            "compile": {
                "benchmarks": rows,
                "total_seconds": round(total, 3),
                "min_phase_coverage": worst,
            },
            "engine": engine_summary,
            "oracle": oracle_summary,
            "formats": format_summary,
        }
        # Validate BEFORE appending: a partial entry must never reach the
        # committed trajectory, where it would silently poison every later
        # per-commit comparison.
        problems = validate_trajectory_record(
            record, require_summaries=not args.allow_partial
        )
        if problems:
            for problem in problems:
                print(f"TRAJECTORY SCHEMA: {problem}", file=sys.stderr)
            print(
                "FAIL: refusing to append a partial trajectory entry "
                "(--allow-partial skips only the sub-bench summary checks)",
                file=sys.stderr,
            )
            return 1
        path = Path(args.append)
        append_trajectory(path, record)
        print(f"recorded commit {record['commit'][:12]} in {path}")

    if worst < MIN_COVERAGE:
        print(
            f"FAIL: phase spans cover only {worst:.0%} of the compile span "
            f"(minimum {MIN_COVERAGE:.0%}) — a compile stage is missing "
            "span instrumentation",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
