"""Empirical calibration: predicted vs measured run time of emitted code.

Compiles a slice of the suite for the C 99 and Python targets, *executes*
every frontier program through the empirical backend (system-compiler
shared libraries when a C compiler exists, the sandboxed Python backend
otherwise), wall-clock times each one, and regresses the measurements
against the performance simulator's predictions
(:func:`repro.exec.calibrate.collect_calibration`).

Outputs:

* ``results/exec_calibration.json`` — the machine-readable calibration
  report per target: affine fit (scale/offset), log-log correlation,
  per-operator residuals, and every (predicted, measured) point;
* ``results/exec_calibration.txt`` — the human-readable summary.

Expected shape: correlation is strongly positive (the simulator ranks
programs correctly even where its absolute scale is off), and the fitted
offset is dominated by the call-boundary overhead of reaching emitted
code (a ctypes or Python call per point).
"""

import json

from conftest import RESULTS_DIR, write_result

from repro.exec import c_backend_available, collect_calibration
from repro.targets import get_target


def test_exec_calibration(benchmark, bench_cores, experiment_config):
    session = experiment_config.get_session()
    targets = ["c99", "python"]

    def run():
        return {
            name: collect_calibration(
                session, bench_cores, get_target(name),
                repeats=3, programs_per_core=2,
            )
            for name in targets
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    payload = {name: report.as_dict() for name, report in reports.items()}
    json_path = RESULTS_DIR / "exec_calibration.json"
    RESULTS_DIR.mkdir(exist_ok=True)
    json_path.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        "Empirical calibration — predicted (simulator) vs measured "
        "(executed emitted code)",
        f"C backend available: {c_backend_available()}",
        "",
        f"{'target':<10}{'backend':<10}{'programs':>9}{'scale':>10}"
        f"{'offset ns':>11}{'log-corr':>10}",
        "-" * 60,
    ]
    for name, report in reports.items():
        lines.append(
            f"{name:<10}{report.backend:<10}{report.n_programs:>9}"
            f"{report.scale:>10.3f}{report.offset:>11.1f}"
            f"{report.correlation:>10.3f}"
        )
    for name, report in reports.items():
        worst = sorted(
            report.operator_residuals.items(), key=lambda kv: -abs(kv[1])
        )[:5]
        if worst:
            lines.append("")
            lines.append(f"{name}: largest per-operator residuals (relative)")
            for op, residual in worst:
                lines.append(f"  {op:<16}{residual:>+8.2f}")
    lines.append("")
    lines.append(f"JSON report: {json_path}")
    write_result("exec_calibration", "\n".join(lines) + "\n")

    for name, report in reports.items():
        assert report.n_programs > 0, f"no programs measured for {name}"
        assert all(p.measured_ns > 0 for p in report.points)
    # The JSON artifact round-trips.
    assert json.loads(json_path.read_text())["c99"]["n_programs"] > 0
