"""Shared configuration for the figure-regeneration benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables or figures at
a laptop-tractable scale and writes the rendered rows/series to
``results/<figure>.txt`` (also echoed to stdout under ``pytest -s``).

Scale knobs (environment variables):

* ``REPRO_BENCH_N``       — benchmarks per figure (default 4)
* ``REPRO_BENCH_POINTS``  — train/test points per benchmark (default 24)
* ``REPRO_BENCH_ITERS``   — improvement-loop iterations (default 1)

Raising them approaches the paper's settings (547 benchmarks, 10 000
points); the shapes reported in EXPERIMENTS.md already appear at the
defaults.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.accuracy import SampleConfig
from repro.core import CompileConfig
from repro.experiments import ExperimentConfig

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "6"))
BENCH_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", "24"))
BENCH_ITERS = int(os.environ.get("REPRO_BENCH_ITERS", "1"))


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    return ExperimentConfig(
        CompileConfig(iterations=BENCH_ITERS, localize_points=8, max_variants=20),
        SampleConfig(n_train=BENCH_POINTS, n_test=BENCH_POINTS),
    )


@pytest.fixture(scope="session")
def bench_cores():
    """The benchmark subset used by the figure harnesses."""
    from repro.benchsuite import core_named

    # Interleave multivariate transcendental kernels (where library targets'
    # approximate operators matter — series expansion cannot shortcut them)
    # with arithmetic-only kernels the hardware targets can express.
    preferred = [
        "slerp-weight", "quadratic-mod", "logsumexp2", "sqrt-sub",
        "gauss-kernel", "acoth", "ellipse-angle", "logistic",
        "deg-dist", "rcp-norm", "cos-frac", "hypot-naive",
    ]
    return [core_named(name) for name in preferred[:BENCH_N]]


def write_result(name: str, text: str) -> None:
    """Persist one figure's rendered output and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{'=' * 72}\n{text}")
