"""Shared configuration for the figure-regeneration benchmark harness.

Every ``bench_*`` module regenerates one of the paper's tables or figures at
a laptop-tractable scale and writes the rendered rows/series to
``results/<figure>.txt`` (also echoed to stdout under ``pytest -s``).

Scale knobs (environment variables):

* ``REPRO_BENCH_N``       — benchmarks per figure (default 4)
* ``REPRO_BENCH_POINTS``  — train/test points per benchmark (default 24)
* ``REPRO_BENCH_ITERS``   — improvement-loop iterations (default 1)

Raising them approaches the paper's settings (547 benchmarks, 10 000
points); the shapes reported in EXPERIMENTS.md already appear at the
defaults.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.accuracy import SampleConfig
from repro.core import CompileConfig
from repro.experiments import ExperimentConfig
from repro.provenance.provider import PREFERRED_BENCHMARKS, SessionDataProvider

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "6"))
BENCH_POINTS = int(os.environ.get("REPRO_BENCH_POINTS", "24"))
BENCH_ITERS = int(os.environ.get("REPRO_BENCH_ITERS", "1"))
#: Figure 7 empirical mode: wall-clock timings of executed code instead of
#: the (deterministic) performance simulator.
BENCH_EMPIRICAL = os.environ.get("REPRO_BENCH_EMPIRICAL", "") not in ("", "0")


@pytest.fixture(scope="session")
def experiment_config() -> ExperimentConfig:
    return ExperimentConfig(
        CompileConfig(iterations=BENCH_ITERS, localize_points=8, max_variants=20),
        SampleConfig(n_train=BENCH_POINTS, n_test=BENCH_POINTS),
    )


@pytest.fixture(scope="session")
def bench_cores():
    """The benchmark subset used by the figure harnesses — the same
    preference-ordered corpus ``repro report`` slices, so the harness and
    the report command regenerate figures from identical inputs."""
    from repro.benchsuite import core_named

    return [core_named(name) for name in PREFERRED_BENCHMARKS[:BENCH_N]]


@pytest.fixture(scope="session")
def data_provider(experiment_config, bench_cores) -> SessionDataProvider:
    """The figure-regeneration seam every ``bench_fig*`` module drives.

    Session-scoped on purpose: the provider memoizes each experiment run,
    so figures sharing data (8 and 9 are two views of one Chassis-vs-
    Herbie comparison) compute it once per pytest session, exactly like
    ``repro report`` does."""
    return SessionDataProvider(
        experiment_config, bench_cores, clang_empirical=BENCH_EMPIRICAL
    )


def write_result(name: str, text: str) -> None:
    """Persist one figure's rendered output and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{'=' * 72}\n{text}")
