"""Batch compilation service: cold vs warm-cache vs parallel throughput.

Measures what the service subsystem buys the experiment harness: a cold
batch pays full compilation for every (benchmark, target) job, a warm batch
is served entirely from the persistent cache, and a parallel cold batch
overlaps compilations across worker processes.  Expected shape: warm-cache
time is orders of magnitude below cold time with hits == jobs, and the
parallel run beats serial on multi-core machines while producing an
identical report.
"""

import json
import tempfile
import time

from conftest import write_result

from repro.service import CompileCache, compile_many
from repro.service.batch import report_line


def _run(specs, config, cache=None, jobs=1):
    start = time.monotonic()
    outcomes = compile_many(
        specs,
        config=config.compile_config,
        sample_config=config.sample_config,
        jobs=jobs,
        cache=cache,
    )
    return outcomes, time.monotonic() - start


def test_batch_service_throughput(bench_cores, experiment_config):
    targets = ["c99", "arith", "fdlibm"]
    specs = [(core, name) for name in targets for core in bench_cores]

    with tempfile.TemporaryDirectory() as cache_dir:
        cache = CompileCache(cache_dir)
        cold, cold_s = _run(specs, experiment_config, cache=cache, jobs=1)
        warm, warm_s = _run(specs, experiment_config, cache=cache, jobs=1)
        parallel, parallel_s = _run(specs, experiment_config, jobs=4)
        stats = cache.stats

    ok = sum(1 for o in cold if o.ok)
    report = (
        f"Batch service — {len(specs)} jobs "
        f"({len(bench_cores)} benchmarks x {len(targets)} targets), {ok} ok\n\n"
        f"{'phase':<22}{'wall time':>12}{'jobs/s':>10}\n"
        f"{'-' * 44}\n"
        f"{'cold (serial)':<22}{cold_s:>10.2f}s{len(specs) / cold_s:>10.2f}\n"
        f"{'warm (all cache hits)':<22}{warm_s:>10.2f}s{len(specs) / max(warm_s, 1e-9):>10.2f}\n"
        f"{'cold (4 workers)':<22}{parallel_s:>10.2f}s{len(specs) / parallel_s:>10.2f}\n\n"
        f"cache: {stats}\n"
        f"warm speedup over cold: {cold_s / max(warm_s, 1e-9):.1f}x\n"
        f"parallel speedup over cold: {cold_s / max(parallel_s, 1e-9):.2f}x\n"
    )
    write_result("batch_service", report)

    # Warm run recompiled nothing that succeeded cold (failures are not
    # cached, so only ok jobs can hit).
    assert stats.hits == ok
    assert warm_s < cold_s
    # Serial, warm, and parallel runs agree on the (deterministic) report.
    cold_report = [json.dumps(report_line(o)) for o in cold]
    assert cold_report == [json.dumps(report_line(o)) for o in warm]
    assert cold_report == [json.dumps(report_line(o)) for o in parallel]
