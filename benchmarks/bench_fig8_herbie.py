"""Figure 8: Chassis vs Herbie across all nine targets.

Speedups are measured relative to the directly-transcribed input program.
Expected shape (paper 6.3): small gaps on the hardware targets
(Arith/Arith+FMA/AVX), moderate gaps on the language targets (C/Julia/
Python — flat cost models), dramatic gaps on the library targets
(NumPy/vdt/fdlibm — approximate and helper operators), with vdt up to ~1.9x.

The comparison runs through the session-scoped DataProvider, which
memoizes it — figure 9 (the relative view of the same data) reuses this
run instead of recompiling everything.
"""

from conftest import write_result

from repro.experiments import joint_pareto


def test_fig8_chassis_vs_herbie(benchmark, data_provider):
    results = benchmark.pedantic(
        data_provider.herbie_comparison, rounds=1, iterations=1
    )
    fig = data_provider.figure("fig8")
    write_result(fig.name, fig.table)

    assert results, "no benchmark*target pair survived"
    # Shape check: on every covered target Chassis' best joint speedup is at
    # least Herbie's (target-specific information can only help).
    for target_name in sorted({r.target for r in results}):
        rows = [r for r in results if r.target == target_name]
        chassis = joint_pareto([r.chassis for r in rows])
        herbie = joint_pareto([r.herbie for r in rows])
        if not chassis or not herbie:
            continue
        best_chassis = max(p.speedup for p in chassis)
        best_herbie = max(p.speedup for p in herbie)
        assert best_chassis >= best_herbie * 0.85, target_name
