"""Figure 10: estimated cost vs (simulated) run time.

Collects every Chassis output across targets and correlates its cost-model
estimate with its simulated run time.  Expected shape (paper 7): a
moderate-to-strong positive correlation with visible outliers caused by
input-dependent costs (denormals, division-by-zero exceptions) — effects
the cost model cannot see but the performance simulator reproduces.
"""

from conftest import write_result

from repro.experiments import correlation, cost_model_report, run_cost_model_study
from repro.targets import get_target


def test_fig10_cost_vs_runtime(benchmark, bench_cores, experiment_config):
    targets = [get_target(n) for n in ("c99", "python", "julia", "vdt", "avx", "numpy")]
    points = benchmark.pedantic(
        run_cost_model_study,
        args=(bench_cores, targets, experiment_config),
        rounds=1,
        iterations=1,
    )
    report = cost_model_report(points)
    # Append the raw scatter so the figure can be re-plotted.
    scatter = "\n".join(
        f"  {p.target:<8} {p.benchmark:<16} cost={p.estimated_cost:10.1f} "
        f"time={p.run_time:10.1f}"
        for p in points
    )
    write_result("fig10_costmodel", report + "\nScatter points:\n" + scatter)

    assert len(points) >= 5
    assert correlation(points) > 0.4  # moderate-to-strong, as in the paper
