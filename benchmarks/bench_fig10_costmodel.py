"""Figure 10: estimated cost vs (simulated) run time.

Collects every Chassis output across targets and correlates its cost-model
estimate with its simulated run time.  Expected shape (paper 7): a
moderate-to-strong positive correlation with visible outliers caused by
input-dependent costs (denormals, division-by-zero exceptions) — effects
the cost model cannot see but the performance simulator reproduces.
"""

from conftest import write_result

from repro.experiments import correlation


def test_fig10_cost_vs_runtime(benchmark, data_provider):
    points = benchmark.pedantic(
        data_provider.cost_model_points, rounds=1, iterations=1
    )
    fig = data_provider.figure("fig10")
    # The table already appends the raw scatter so the figure can be
    # re-plotted.
    write_result(fig.name, fig.table)

    assert len(points) >= 5
    assert correlation(points) > 0.4  # moderate-to-strong, as in the paper
