"""Narrow-format (fp16/bf16) end-to-end regression leg.

CI runs this directly::

    PYTHONPATH=src python benchmarks/bench_formats.py

For each registered ML format target (``fp16``, ``bf16``) it takes a small
benchsuite sample, retunes each core's ``:precision`` to the format, and
runs the whole pipeline: compile (sample -> oracle -> score) -> emit
Python -> execute under the sandboxed backend -> cross-check the executed
outputs against the oracle (``session.validate``).  Three gates:

* every compile must produce a non-empty frontier,
* every validation must agree (executed-vs-machine within the half-bit
  acceptance threshold),
* the best frontier **score** (bits of error) per (format, benchmark) must
  not regress beyond ``TOLERANCE_BITS`` against the committed baseline in
  ``benchmarks/data/format_baseline.json``.

The run summary is written to ``results/format_bench.json``;
``bench_compile_smoke.py`` folds it into the committed ``BENCH_egraph.json``
trajectory.  Regenerate the baseline after an *intentional* accuracy
change with ``--update-baseline``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.accuracy.sampler import SampleConfig  # noqa: E402
from repro.benchsuite import core_named  # noqa: E402
from repro.core.loop import CompileConfig  # noqa: E402
from repro.session import ChassisSession  # noqa: E402
from repro.targets import get_target  # noqa: E402

ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = ROOT / "benchmarks" / "data" / "format_baseline.json"
RESULTS_PATH = ROOT / "results" / "format_bench.json"

#: The narrow-format targets under regression watch.
FORMATS = ("fp16", "bf16")

#: Small benchsuite sample whose operators all exist on the ML targets
#: (arithmetic, sqrt, exp/log — the accelerator SFU menu).
SAMPLE = ("sqrt-sub", "logistic", "logsumexp2")

#: Allowed worsening of best-frontier bits-of-error vs the baseline.
TOLERANCE_BITS = 0.25

CONFIG = CompileConfig(iterations=1, localize_points=8)
SAMPLES = SampleConfig(n_train=32, n_test=32)


def run_formats() -> dict:
    """Compile + validate the sample at every narrow format."""
    per_format: dict[str, dict] = {}
    with ChassisSession(config=CONFIG, sample_config=SAMPLES) as session:
        for fmt_name in FORMATS:
            target = get_target(fmt_name)
            rows = []
            for bench in SAMPLE:
                core = dataclasses.replace(
                    core_named(bench), precision=fmt_name
                )
                result = session.compile(core, target)
                best = result.frontier.best_error()
                report = session.validate(core, target, backend="python")
                rows.append({
                    "benchmark": bench,
                    "frontier": len(result.frontier),
                    "best_error_bits": round(best.error, 4),
                    "executed_bits": round(report.executed_bits, 4),
                    "agreement_bits": round(report.agreement_bits, 4),
                    "validated": report.ok,
                })
                status = "ok" if report.ok else "DISAGREE"
                print(
                    f"{fmt_name}/{bench}: {best.error:.3f} bits of error, "
                    f"executed {report.executed_bits:.3f}, "
                    f"validation {status}"
                )
            per_format[fmt_name] = {
                "benchmarks": rows,
                "mean_best_error_bits": round(
                    sum(r["best_error_bits"] for r in rows) / len(rows), 4
                ),
                "all_validated": all(r["validated"] for r in rows),
            }
    return per_format


def check_against_baseline(per_format: dict) -> list[str]:
    """Score-regression failures vs the committed baseline (empty = green)."""
    if not BASELINE_PATH.exists():
        return [f"missing committed baseline {BASELINE_PATH}"]
    baseline = json.loads(BASELINE_PATH.read_text())["formats"]
    failures = []
    for fmt_name, summary in per_format.items():
        base_rows = {
            r["benchmark"]: r for r in baseline.get(fmt_name, {}).get("benchmarks", [])
        }
        for row in summary["benchmarks"]:
            base = base_rows.get(row["benchmark"])
            if base is None:
                failures.append(
                    f"{fmt_name}/{row['benchmark']}: no baseline entry "
                    f"(run --update-baseline)"
                )
                continue
            drift = row["best_error_bits"] - base["best_error_bits"]
            if drift > TOLERANCE_BITS:
                failures.append(
                    f"{fmt_name}/{row['benchmark']}: score regressed "
                    f"{base['best_error_bits']:.3f} -> "
                    f"{row['best_error_bits']:.3f} bits "
                    f"(+{drift:.3f} > {TOLERANCE_BITS})"
                )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the committed baseline from this run's scores",
    )
    parser.add_argument(
        "--results",
        default=str(RESULTS_PATH),
        help="where to write the run summary ('' disables)",
    )
    args = parser.parse_args(argv)

    per_format = run_formats()
    payload = {
        "description": "Narrow-format (fp16/bf16) end-to-end regression run.",
        "sample": list(SAMPLE),
        "tolerance_bits": TOLERANCE_BITS,
        "formats": per_format,
    }

    if args.results:
        results = Path(args.results)
        results.parent.mkdir(parents=True, exist_ok=True)
        results.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {results}")

    if args.update_baseline:
        BASELINE_PATH.parent.mkdir(parents=True, exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"updated baseline {BASELINE_PATH}")
        return 0

    not_validated = [
        f"{fmt}/{r['benchmark']}: executed code disagrees with the machine "
        f"score by {r['agreement_bits']} bits"
        for fmt, summary in per_format.items()
        for r in summary["benchmarks"]
        if not r["validated"]
    ]
    failures = not_validated + check_against_baseline(per_format)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("format regression leg green")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
