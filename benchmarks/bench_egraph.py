"""Saturation-throughput benchmark for the e-graph engine (standalone).

Unlike the figure-regeneration harnesses (which are pytest modules), this
is a plain script so CI can run it directly::

    PYTHONPATH=src python benchmarks/bench_egraph.py [--smoke] [--out PATH]

It measures three engines over the benchsuite sample:

* ``legacy``      — an in-file emulation of the pre-refactor (seed) engine:
  pattern roots found by scanning *every* e-class, every rule re-matched
  against the whole graph every iteration, all raw matches (mostly no-op
  re-applications) instantiated and unioned.  The emulation runs against
  today's :class:`EGraph`, which now has an O(1) node counter the seed
  engine lacked, so the legacy numbers here are *flattering* — the real
  seed engine was slower still.
* ``v2-full``     — the indexed engine with incremental re-matching
  disabled (the ``REPRO_EGRAPH_INCREMENTAL=0`` escape-hatch behavior).
* ``v2-incremental`` — the default engine: iteration 0 matches fully,
  later iterations re-match only the dirty closure.

Reported throughput is e-nodes added per second of saturation
(``num_nodes`` delta / wall clock) at one fixed :class:`RunnerLimits`
(the engine default, or a reduced budget under ``--smoke``).  The script
also verifies that v2-full and v2-incremental extract *byte-identical*
variant lists for every benchmark, and times an end-to-end
``session.compile`` per benchmark (with the improvement loop's saturation
cache hit counts) so the BENCH trajectory has an engine datapoint.

Results land in ``results/egraph_bench.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.accuracy.sampler import SampleConfig  # noqa: E402
from repro.core.isel import _rules_for  # noqa: E402
from repro.core.loop import CompileConfig  # noqa: E402
from repro.cost.model import TargetCostModel  # noqa: E402
from repro.egraph import EGraph, RunnerLimits, run_rules  # noqa: E402
from repro.egraph.ematch import _match, instantiate  # noqa: E402
from repro.egraph.multi_extract import extract_variants  # noqa: E402
from repro.egraph.typed_extract import TypedExtractor  # noqa: E402
from repro.ir.printer import expr_to_sexpr  # noqa: E402
from repro.session import ChassisSession  # noqa: E402
from repro.targets import get_target  # noqa: E402

RESULTS = Path(__file__).resolve().parent.parent / "results"

#: Same interleaving as benchmarks/conftest.py's bench_cores fixture.
SAMPLE = [
    "slerp-weight", "quadratic-mod", "logsumexp2", "sqrt-sub",
    "gauss-kernel", "acoth", "ellipse-angle", "logistic",
]


# --- the pre-refactor engine, emulated --------------------------------------------

def _legacy_search(egraph, pattern, limit):
    """Seed-engine search: App roots by scanning every class's nodes."""
    from repro.ir.expr import App

    results = []
    if isinstance(pattern, App):
        seen = set()
        for eclass in egraph.classes():
            hit = any(node[0] == pattern.op for node in eclass.nodes)
            if not hit:
                continue
            canon = egraph.find(eclass.id)
            if canon in seen:
                continue
            seen.add(canon)
            for subst in _match(egraph, pattern, canon, {}):
                results.append((canon, subst))
                if limit is not None and len(results) >= limit:
                    return results
    else:
        seen = set()
        for eclass in egraph.classes():
            canon = egraph.find(eclass.id)
            if canon in seen:
                continue
            seen.add(canon)
            for subst in _match(egraph, pattern, canon, {}):
                results.append((canon, subst))
                if limit is not None and len(results) >= limit:
                    return results
    return results


def legacy_run_rules(egraph, rules, limits):
    """The seed saturation loop: full re-match + raw (no-op-included) apply."""
    start = time.monotonic()
    for iteration in range(limits.max_iterations):
        version_before = egraph.version
        nodes_before = egraph.num_nodes
        batches = []
        for rule in rules:
            matches = _legacy_search(
                egraph, rule.lhs, limits.max_matches_per_rule
            )
            if matches:
                batches.append((rule, matches))
            if time.monotonic() - start > limits.time_limit:
                egraph.rebuild()
                return "time-limit"
        for rule, matches in batches:
            for class_id, subst in matches:
                if egraph.num_nodes >= limits.max_nodes:
                    break
                if rule.condition is not None and not rule.condition(egraph, subst):
                    continue
                new_id = instantiate(egraph, rule.rhs, subst)
                egraph.union(egraph.find(class_id), new_id)
        egraph.rebuild()
        if egraph.num_nodes >= limits.max_nodes:
            return "node-limit"
        if egraph.version == version_before and egraph.num_nodes == nodes_before:
            return "saturated"
        if time.monotonic() - start > limits.time_limit:
            return "time-limit"
    return "iteration-limit"


# --- measurement ------------------------------------------------------------------

def saturate(engine, expr, rules, limits):
    """One saturation run; returns (nodes added, elapsed, stop reason)."""
    egraph = EGraph()
    root = egraph.add_expr(expr)
    base = egraph.num_nodes
    start = time.monotonic()
    if engine == "legacy":
        stop = legacy_run_rules(egraph, rules, limits)
    else:
        report = run_rules(
            egraph, rules, limits, incremental=(engine == "v2-incremental")
        )
        stop = report.stop_reason
    elapsed = time.monotonic() - start
    return egraph, root, egraph.num_nodes - base, elapsed, stop


def variants_of(egraph, root, target, expr, ty):
    model = TargetCostModel(target)
    var_types = {name: ty for name in expr.free_vars()}
    extractor = TypedExtractor(egraph, model, var_types)
    return [
        expr_to_sexpr(v)
        for v in extract_variants(egraph, extractor, root, ty, limit=40)
    ]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny budget for CI (2 benchmarks, small limits)")
    parser.add_argument("--target", default="c99")
    parser.add_argument("--out", default=str(RESULTS / "egraph_bench.json"))
    args = parser.parse_args(argv)

    target = get_target(args.target)
    rules = _rules_for(target)
    if args.smoke:
        names = SAMPLE[:2]
        limits = RunnerLimits(
            max_iterations=4, max_nodes=800, max_matches_per_rule=150,
            time_limit=5.0,
        )
        points, iterations = 8, 1
    else:
        names = SAMPLE
        limits = RunnerLimits()  # the engine default: the acceptance budget
        points, iterations = 16, 1

    from repro.benchsuite import core_named

    cores = [core_named(name) for name in names]
    engines = ("legacy", "v2-full", "v2-incremental")
    rows = []
    totals = {engine: [0, 0.0] for engine in engines}  # nodes, seconds
    equivalent = True

    for core in cores:
        expr = core.body
        row = {"benchmark": core.name, "engines": {}}
        variant_sets = {}
        for engine in engines:
            egraph, root, nodes, elapsed, stop = saturate(
                engine, expr, rules, limits
            )
            totals[engine][0] += nodes
            totals[engine][1] += elapsed
            row["engines"][engine] = {
                "nodes": nodes,
                "seconds": round(elapsed, 4),
                "nodes_per_sec": round(nodes / elapsed, 1) if elapsed else None,
                "stop": stop,
            }
            if engine != "legacy":
                variant_sets[engine] = variants_of(
                    egraph, root, target, expr, core.precision
                )
        same = variant_sets["v2-full"] == variant_sets["v2-incremental"]
        equivalent = equivalent and same
        row["full_vs_incremental_identical"] = same
        rows.append(row)
        print(f"{core.name}: " + "  ".join(
            f"{engine}={row['engines'][engine]['nodes_per_sec']:.0f}n/s"
            for engine in engines
        ) + ("" if same else "  [MISMATCH]"))

    summary = {}
    legacy_rate = totals["legacy"][0] / totals["legacy"][1]
    for engine in engines:
        nodes, seconds = totals[engine]
        rate = nodes / seconds if seconds else 0.0
        summary[engine] = {
            "nodes": nodes,
            "seconds": round(seconds, 3),
            "nodes_per_sec": round(rate, 1),
            "speedup_vs_legacy": round(rate / legacy_rate, 2),
        }

    # End-to-end: one warm-session compile per benchmark (v2 engine),
    # recording the loop's saturation-cache effectiveness.
    e2e = []
    with ChassisSession(
        config=CompileConfig(iterations=iterations, localize_points=8),
        sample_config=SampleConfig(n_train=points, n_test=points),
    ) as session:
        for core in cores:
            before = session.stats.engine.as_dict()
            start = time.monotonic()
            try:
                result = session.compile(core, target)
                status = "ok"
                frontier = len(result.frontier)
            except Exception as error:  # keep the bench running per-core
                status, frontier = f"failed: {type(error).__name__}", 0
            after = session.stats.engine.as_dict()
            e2e.append({
                "benchmark": core.name,
                "status": status,
                "seconds": round(time.monotonic() - start, 3),
                "frontier": frontier,
                "saturation_hits": (
                    after["saturation_hits"] - before["saturation_hits"]
                ),
                "saturation_misses": (
                    after["saturation_misses"] - before["saturation_misses"]
                ),
            })

    payload = {
        "mode": "smoke" if args.smoke else "full",
        "target": target.name,
        "limits": {
            "max_iterations": limits.max_iterations,
            "max_nodes": limits.max_nodes,
            "max_matches_per_rule": limits.max_matches_per_rule,
            "time_limit": limits.time_limit,
        },
        "benchmarks": rows,
        "summary": summary,
        "full_vs_incremental_identical": equivalent,
        "compile_e2e": e2e,
    }
    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")

    v2 = summary["v2-incremental"]
    print(
        f"\nsummary: legacy {summary['legacy']['nodes_per_sec']:.0f} n/s, "
        f"v2-full {summary['v2-full']['nodes_per_sec']:.0f} n/s "
        f"({summary['v2-full']['speedup_vs_legacy']}x), "
        f"v2-incremental {v2['nodes_per_sec']:.0f} n/s "
        f"({v2['speedup_vs_legacy']}x)"
    )
    print(f"full-vs-incremental byte-identical: {equivalent}")
    print(f"wrote {out}")
    if not equivalent:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
