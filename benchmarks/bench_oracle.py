"""Oracle-backend throughput benchmark (standalone).

Like ``bench_egraph.py`` this is a plain script CI runs directly::

    PYTHONPATH=src python benchmarks/bench_oracle.py [--smoke] [--out PATH]

It measures batched ground-truth evaluation over benchsuite sample sets —
the oracle-bound inner loop of sampling — for two backends:

* ``mpmath`` — the pre-PR path: every point climbs the escalation ladder
  alone, serialized on process-global precision state.
* ``numpy``  — the vectorized fast path: one outward-rounded interval
  sweep over the whole point set, with only the unsettled residue
  escalating to the same ladder.

For every benchmark the script first verifies the *bit-identity*
contract: ``sample_core`` under each backend must produce byte-identical
points, exact values and acceptance ratios (fast paths are acceptance
filters, never approximations).  Any divergence is a correctness bug and
the script exits non-zero.

Reported throughput is oracle points per second of ``eval_batch`` over
the benchmark's own sampled (precondition-respecting) points, plus the
fraction of points the fast path settled without touching the ladder.
Results land in ``results/oracle_bench.json``;
``bench_compile_smoke.py`` folds the summary into the committed
``BENCH_egraph.json`` trajectory.
"""

from __future__ import annotations

import argparse
import json
import math
import struct
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.accuracy.sampler import SampleConfig, sample_core  # noqa: E402
from repro.benchsuite import core_named  # noqa: E402
from repro.rival.backends import make_backend  # noqa: E402
from repro.rival.eval import RivalEvaluator  # noqa: E402

RESULTS = Path(__file__).resolve().parent.parent / "results"

#: Benchmarks spanning the oracle-relevant shapes: pure cancellation
#: (settles on the fast path), transcendental-heavy bodies, fabs-bounded
#: domains, and multi-variable quadratics with real domain errors.
SAMPLE = (
    "sqrt-sub", "cos-frac", "sin-frac", "acoth", "quadratic-mod",
    "logsumexp2", "logistic", "gauss-kernel", "slerp-weight",
    "ellipse-angle",
)


def _fresh(name: str):
    return make_backend(name, evaluator=RivalEvaluator())


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


def _sample_key(samples) -> tuple:
    """Bit-exact identity of one SampleSet."""
    points = tuple(
        tuple(sorted((k, _bits(v)) for k, v in point.items()))
        for point in samples.train + samples.test
    )
    exacts = tuple(_bits(v) for v in samples.train_exact + samples.test_exact)
    return (points, exacts, samples.acceptance, len(samples.train))


def bench_benchmark(name: str, n_points: int, repeats: int) -> dict:
    """Identity check + throughput for one benchmark."""
    core = core_named(name)
    config = SampleConfig(n_train=n_points, n_test=n_points)

    reference = sample_core(core, config, oracle=_fresh("mpmath"))
    fast = sample_core(core, config, oracle=_fresh("numpy"))
    identical = _sample_key(fast) == _sample_key(reference)

    points = reference.train + reference.test
    throughput: dict[str, float] = {}
    rungs = {"longdouble": 0.0, "dd": 0.0, "ladder": 0.0}
    fastpath_fraction = 0.0
    for backend_name in ("mpmath", "numpy"):
        backend = _fresh(backend_name)
        backend.eval_batch(core.body, points, core.precision)  # warm-up
        start = time.perf_counter()
        for _ in range(repeats):
            backend.eval_batch(core.body, points, core.precision)
        elapsed = time.perf_counter() - start
        throughput[backend_name] = len(points) * repeats / max(elapsed, 1e-9)
        if backend_name == "numpy":
            counters = backend.counters()
            total = max(1, counters.batch_points)
            fastpath_fraction = counters.fastpath_hits / total
            rungs["dd"] = counters.dd_hits / total
            rungs["longdouble"] = (
                counters.fastpath_hits - counters.dd_hits
            ) / total
            rungs["ladder"] = counters.escalated_points / total

    speedup = throughput["numpy"] / max(throughput["mpmath"], 1e-9)
    return {
        "benchmark": name,
        "points": len(points),
        "identical": identical,
        "mpmath_points_per_s": round(throughput["mpmath"], 1),
        "numpy_points_per_s": round(throughput["numpy"], 1),
        "speedup": round(speedup, 2),
        "fastpath_fraction": round(fastpath_fraction, 4),
        "longdouble_fraction": round(rungs["longdouble"], 4),
        "dd_fraction": round(rungs["dd"], 4),
        "ladder_fraction": round(rungs["ladder"], 4),
    }


#: Benchmarks re-sampled through a live jobs=2 worker pool; the pooled
#: sampler iterations must reproduce the ladder's SampleSets bit-exactly.
POOL_CHECK = ("sqrt-sub", "cos-frac")


def check_pool_identity(names, n_points: int) -> dict[str, bool]:
    """Bit-identity of pooled sampler iterations against the ladder."""
    from repro.api import ChassisSession

    config = SampleConfig(n_train=n_points, n_test=n_points)
    results: dict[str, bool] = {}
    with ChassisSession(jobs=2, oracle_backend="pool") as session:
        for name in names:
            core = core_named(name)
            reference = sample_core(core, config, oracle=_fresh("mpmath"))
            pooled = sample_core(core, config, oracle=session.oracle)
            results[name] = _sample_key(pooled) == _sample_key(reference)
    return results


#: Regression gates: the cascade must keep at least this fraction of all
#: points off the ladder, and the dd rung must keep settling the
#: cancellation-heavy cos-frac core (the round-2 motivating case).
FASTPATH_GATE = 0.95
COS_FRAC_GATE = 0.5


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="smaller point sets and fewer repeats (CI budget)",
    )
    parser.add_argument("--out", default=str(RESULTS / "oracle_bench.json"))
    args = parser.parse_args(argv)

    n_points = 64 if args.smoke else 256
    repeats = 3 if args.smoke else 10

    rows = []
    for name in SAMPLE:
        row = bench_benchmark(name, n_points, repeats)
        rows.append(row)
        marker = "" if row["identical"] else "  ** MISMATCH **"
        print(
            f"{name}: {row['speedup']:.1f}x "
            f"({row['mpmath_points_per_s']:.0f} -> "
            f"{row['numpy_points_per_s']:.0f} points/s, "
            f"fastpath {row['fastpath_fraction']:.0%}, "
            f"dd {row['dd_fraction']:.0%}){marker}"
        )

    pool_identity = check_pool_identity(POOL_CHECK, n_points)
    for name, same in pool_identity.items():
        marker = "identical" if same else "** MISMATCH **"
        print(f"pool sampling {name}: {marker}")

    speedups = [row["speedup"] for row in rows]
    geomean = math.exp(sum(math.log(s) for s in speedups) / len(speedups))
    all_identical = all(row["identical"] for row in rows)
    pool_identical = all(pool_identity.values())

    def _mean(key: str) -> float:
        return round(sum(row[key] for row in rows) / len(rows), 4)

    summary = {
        "geomean_speedup": round(geomean, 2),
        "min_speedup": min(speedups),
        "max_speedup": max(speedups),
        "fastpath_fraction": _mean("fastpath_fraction"),
        "longdouble_fraction": _mean("longdouble_fraction"),
        "dd_fraction": _mean("dd_fraction"),
        "ladder_fraction": _mean("ladder_fraction"),
        "identical": all_identical,
        "pool_identical": pool_identical,
    }
    print(
        f"\ngeomean speedup {geomean:.1f}x over "
        f"{len(rows)} benchmarks "
        f"(min {summary['min_speedup']:.1f}x, "
        f"max {summary['max_speedup']:.1f}x); "
        f"fastpath {summary['fastpath_fraction']:.1%} "
        f"(longdouble {summary['longdouble_fraction']:.1%} "
        f"+ dd {summary['dd_fraction']:.1%})"
    )

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps({
        "mode": "smoke" if args.smoke else "full",
        "benchmarks": rows,
        "summary": summary,
    }, indent=2) + "\n")
    print(f"wrote {out}")

    failures = []
    if not all_identical:
        bad = [row["benchmark"] for row in rows if not row["identical"]]
        failures.append(
            f"backends disagree on {', '.join(bad)} — fast paths must be "
            "bit-identical acceptance filters"
        )
    if not pool_identical:
        bad = [name for name, same in pool_identity.items() if not same]
        failures.append(
            f"pooled sampler iterations diverge on {', '.join(bad)}"
        )
    if summary["fastpath_fraction"] <= FASTPATH_GATE:
        failures.append(
            f"fastpath fraction {summary['fastpath_fraction']:.4f} "
            f"regressed below the {FASTPATH_GATE} gate"
        )
    cos_frac = next(r for r in rows if r["benchmark"] == "cos-frac")
    if cos_frac["fastpath_fraction"] <= COS_FRAC_GATE:
        failures.append(
            f"cos-frac fastpath {cos_frac['fastpath_fraction']:.4f} "
            f"regressed below the {COS_FRAC_GATE} gate (dd cancellation "
            "kernels are not settling)"
        )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
