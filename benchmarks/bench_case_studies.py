"""Section 6.4 case studies: quadratic on AVX, ellipse on Julia, acoth on fdlibm.

For each case study this regenerates Chassis' target-specific programs and
checks the paper's qualitative claim: the target-specific operator (fma
family / degree-trig helpers / log1pmd) appears in the output frontier.
"""

from conftest import BENCH_POINTS, write_result

from repro.accuracy import SampleConfig
from repro.benchsuite import core_named
from repro.core import CompileConfig, compile_fpcore
from repro.ir import expr_to_sexpr
from repro.targets import get_target

CONFIG = CompileConfig(iterations=2, localize_points=8, max_variants=25)
SAMPLES = SampleConfig(n_train=BENCH_POINTS, n_test=BENCH_POINTS)


def _render(result) -> str:
    lines = [
        f"  input: cost={result.input_candidate.cost:8.1f} "
        f"err={result.input_candidate.error:6.2f}  "
        f"{expr_to_sexpr(result.input_candidate.program)}"
    ]
    for c in result.frontier:
        lines.append(
            f"  out:   cost={c.cost:8.1f} err={c.error:6.2f}  "
            f"{expr_to_sexpr(c.program)}"
        )
    return "\n".join(lines)


def test_case_quadratic_avx(benchmark):
    core = core_named("quadratic-mod")
    avx = get_target("avx")
    result = benchmark.pedantic(
        compile_fpcore, args=(core, avx, CONFIG, SAMPLES), rounds=1, iterations=1
    )
    text = "Case study 1 — modified quadratic on AVX\n" + _render(result)
    write_result("case_quadratic_avx", text)
    programs = " ".join(str(c.program) for c in result.frontier)
    assert any(op in programs for op in ("fma", "fms", "fnma", "fnms"))


def test_case_ellipse_julia(benchmark):
    core = core_named("ellipse-angle")
    julia = get_target("julia")
    result = benchmark.pedantic(
        compile_fpcore, args=(core, julia, CONFIG, SAMPLES), rounds=1, iterations=1
    )
    text = "Case study 2 — ellipse angle on Julia\n" + _render(result)
    write_result("case_ellipse_julia", text)
    programs = " ".join(str(c.program) for c in result.frontier)
    assert any(h in programs for h in ("sind", "cosd", "deg2rad", "abs2"))


def test_case_acoth_fdlibm(benchmark):
    core = core_named("acoth")
    fdlibm = get_target("fdlibm")
    result = benchmark.pedantic(
        compile_fpcore, args=(core, fdlibm, CONFIG, SAMPLES), rounds=1, iterations=1
    )
    text = "Case study 3 — inverse hyperbolic cotangent on fdlibm\n" + _render(result)
    write_result("case_acoth_fdlibm", text)
    assert result.frontier.best_error().error <= result.input_candidate.error
