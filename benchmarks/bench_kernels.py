"""Micro-benchmarks of the compiler's substrates.

These time the hot kernels the paper's run-time numbers depend on: equality
saturation, typed extraction, the correctly-rounded oracle, sampling, and
whole-program compilation.  Useful for tracking performance regressions of
the reproduction itself.
"""

from repro.accuracy import SampleConfig, sample_core
from repro.benchsuite import core_named
from repro.core import CompileConfig, compile_fpcore
from repro.core.isel import instruction_select
from repro.egraph import EGraph, RunnerLimits, TypedExtractor, run_rules
from repro.cost import TargetCostModel
from repro.ir import F64, parse_expr
from repro.rival import RivalEvaluator
from repro.rules import all_rules
from repro.targets import get_target


def test_kernel_saturation(benchmark):
    """Full rule database over a classic cancellation expression."""
    expr = parse_expr("(- (sqrt (+ x 1)) (sqrt x))")
    limits = RunnerLimits(max_iterations=3, max_nodes=1500)

    def run():
        g = EGraph()
        g.add_expr(expr)
        run_rules(g, list(all_rules()), limits)
        return g.num_nodes

    nodes = benchmark(run)
    assert nodes > 100


def test_kernel_typed_extraction(benchmark):
    """Typed extraction over a saturated mixed real/float e-graph."""
    c99 = get_target("c99")
    expr = parse_expr("(- (sqrt (+ x 1)) (sqrt x))")
    g = EGraph()
    root = g.add_expr(expr)
    from repro.core.isel import _rules_for

    run_rules(g, _rules_for(c99), RunnerLimits(max_iterations=3, max_nodes=1500))
    model = TargetCostModel(c99)

    def extract():
        return TypedExtractor(g, model, {"x": F64}).extract(root, F64)

    out = benchmark(extract)
    assert model.supports_program(out)


def test_kernel_rival_eval(benchmark):
    """Correctly-rounded oracle evaluation at one point."""
    ev = RivalEvaluator()
    expr = parse_expr("(- (sqrt (+ x 1)) (sqrt x))")
    value = benchmark(lambda: ev.eval(expr, {"x": 1e16}))
    assert value > 0


def test_kernel_sampling(benchmark):
    """Sampling valid points (precondition + oracle filtering)."""
    core = core_named("acoth")
    samples = benchmark(
        lambda: sample_core(core, SampleConfig(n_train=16, n_test=16))
    )
    assert len(samples.train) == 16


def test_kernel_full_compile(benchmark):
    """One full Chassis compilation (the paper reports ~1 min/benchmark on
    its Racket/Rust implementation; our scaled settings run in seconds)."""
    core = core_named("sqrt-sub")
    c99 = get_target("c99")
    config = CompileConfig(iterations=1, localize_points=6, max_variants=15)

    result = benchmark.pedantic(
        compile_fpcore,
        args=(core, c99, config, SampleConfig(n_train=16, n_test=16)),
        rounds=1,
        iterations=1,
    )
    assert len(result.frontier) >= 1


def test_kernel_instruction_selection(benchmark):
    """One instruction-selection-modulo-equivalence pass on fdlibm."""
    fdlibm = get_target("fdlibm")
    prog = parse_expr("(* 1/2 (log (/ (+ 1 x) (- 1 x))))")
    variants = benchmark(lambda: instruction_select(prog, fdlibm, ty=F64))
    assert any("log1pmd" in str(v) for v in variants)
