"""Figure 6: the table of nine target descriptions.

Regenerates the paper's target inventory — operators, linked/emulated,
scalar/vector conditional style, and cost-model source — and benchmarks how
long building + auto-tuning a target takes.
"""

from conftest import write_result

from repro.experiments import targets_table
from repro.targets import all_targets
from repro.targets.autotune import autotuned
from repro.targets.builtin.languages import make_c99


def test_fig6_targets_table(benchmark):
    targets = benchmark.pedantic(all_targets, rounds=1, iterations=1)
    table = targets_table(targets)
    write_result("fig6_targets", "Figure 6 — target descriptions\n\n" + table)
    assert len(targets) == 9


def test_target_autotune_speed(benchmark):
    """Auto-tuning a full C99 target (the paper: 'develop targets quickly')."""
    base = make_c99()
    tuned = benchmark(lambda: autotuned(base))
    assert tuned.operator("pow.f64").cost > tuned.operator("add.f64").cost
