"""Figure 6: the table of nine target descriptions.

Regenerates the paper's target inventory — operators, linked/emulated,
scalar/vector conditional style, and cost-model source — through the
provenance :class:`~repro.provenance.provider.DataProvider` seam, and
benchmarks how long building + auto-tuning a target takes.
"""

from conftest import write_result

from repro.targets.autotune import autotuned
from repro.targets.builtin.languages import make_c99


def test_fig6_targets_table(benchmark, data_provider):
    targets = benchmark.pedantic(data_provider.targets, rounds=1, iterations=1)
    fig = data_provider.figure("fig6")
    write_result(fig.name, fig.title + "\n\n" + fig.table)
    # The paper's nine targets plus the added ML number-format targets.
    assert len(targets) >= 9
    assert not fig.jobs  # the inventory compiles nothing


def test_target_autotune_speed(benchmark):
    """Auto-tuning a full C99 target (the paper: 'develop targets quickly')."""
    base = make_c99()
    tuned = benchmark(lambda: autotuned(base))
    assert tuned.operator("pow.f64").cost > tuned.operator("add.f64").cost
