"""Figure 9: Chassis speedup over *Herbie's* programs at matched accuracy.

The same data as figure 8 viewed relative to Herbie: for each accuracy
Herbie achieves, how much faster is Chassis' program at that accuracy?
Expected shape (paper 6.3): ratios >= 1 almost everywhere, with occasional
"tail" points < 1 where Chassis misses Herbie's most accurate program
(about 3.5% of benchmarks in the paper).
"""

from conftest import write_result

from repro.experiments import (
    geomean,
    herbie_relative_report,
    run_herbie_comparison,
    speedup_at_matched_accuracy,
)
from repro.targets import all_targets


def test_fig9_speedup_over_herbie(benchmark, bench_cores, experiment_config):
    targets = all_targets()
    results = benchmark.pedantic(
        run_herbie_comparison,
        args=(bench_cores, targets, experiment_config),
        rounds=1,
        iterations=1,
    )
    report = herbie_relative_report(results)
    write_result("fig9_herbie_relative", report)

    ratios = []
    for row in results:
        ratios.extend(r for _a, r in speedup_at_matched_accuracy(row.chassis, row.herbie))
    assert ratios
    # Shape: overall geomean ratio is at or above parity.
    assert geomean(ratios) >= 0.9
