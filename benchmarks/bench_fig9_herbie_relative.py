"""Figure 9: Chassis speedup over *Herbie's* programs at matched accuracy.

The same data as figure 8 viewed relative to Herbie: for each accuracy
Herbie achieves, how much faster is Chassis' program at that accuracy?
Expected shape (paper 6.3): ratios >= 1 almost everywhere, with occasional
"tail" points < 1 where Chassis misses Herbie's most accurate program
(about 3.5% of benchmarks in the paper).

The DataProvider memoizes the underlying Chassis-vs-Herbie run, so when
figure 8 ran first in this pytest session, this figure is pure rendering.
"""

from conftest import write_result

from repro.experiments import geomean, speedup_at_matched_accuracy


def test_fig9_speedup_over_herbie(benchmark, data_provider):
    results = benchmark.pedantic(
        data_provider.herbie_comparison, rounds=1, iterations=1
    )
    fig = data_provider.figure("fig9")
    write_result(fig.name, fig.table)

    ratios = []
    for row in results:
        ratios.extend(r for _a, r in speedup_at_matched_accuracy(row.chassis, row.herbie))
    assert ratios
    # Shape: overall geomean ratio is at or above parity.
    assert geomean(ratios) >= 0.9
