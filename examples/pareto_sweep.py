"""Sweeping one benchmark across all nine targets (paper figure 8 in miniature).

Run:  python examples/pareto_sweep.py

Compiles the logistic function for every built-in target and prints each
target's Pareto frontier plus its simulated speedup over the input program
— showing how the *same* real expression lowers differently everywhere:
fast_exp on vdt, flat costs on Python, masked branches on NumPy, series
polynomials on Arith (which has no exp at all).
"""

from repro import (
    CompileConfig,
    PerfSimulator,
    SampleConfig,
    compile_fpcore,
    parse_fpcore,
)
from repro.accuracy import sample_core
from repro.core import Untranscribable
from repro.ir import expr_to_sexpr
from repro.targets import all_targets

CORE = parse_fpcore(
    """
    (FPCore logistic (x)
      :name "logistic function"
      :pre (< -80 x 80)
      (/ 1 (+ 1 (exp (- x)))))
    """
)


def main() -> None:
    samples = sample_core(CORE, SampleConfig(n_train=32, n_test=32))
    config = CompileConfig(iterations=2)

    for target in all_targets():
        try:
            result = compile_fpcore(CORE, target, config, samples=samples)
        except Untranscribable:
            # Arith targets have no exp: Chassis needs series candidates for
            # the *whole* program, which start from a transcribable input.
            print(f"{target.name:10s}  input not expressible (no exp); skipped")
            continue
        simulator = PerfSimulator(target)
        input_time = simulator.run_time(
            result.input_candidate.program, samples.test, CORE.precision
        )
        print(f"{target.name:10s}  ({len(result.frontier)} outputs)")
        for candidate in result.frontier:
            time = simulator.run_time(candidate.program, samples.test, CORE.precision)
            print(
                f"   {input_time / time:5.2f}x err={candidate.error:6.2f}  "
                f"{expr_to_sexpr(candidate.program)[:72]}"
            )


if __name__ == "__main__":
    main()
