"""Quickstart: compile one expression for one target and inspect the frontier.

Run:  python examples/quickstart.py

Chassis takes a real-number expression (FPCore) and a *target description*
and produces a Pareto frontier of floating-point programs trading speed for
accuracy.  Here we compile the classic catastrophic-cancellation example
``sqrt(x+1) - sqrt(x)`` for the C 99 target.
"""

from repro import CompileConfig, SampleConfig, compile_fpcore, get_target, parse_fpcore
from repro.core import render
from repro.ir import expr_to_infix

CORE = parse_fpcore(
    """
    (FPCore sqrt-sub (x)
      :name "sqrt(x+1) - sqrt(x)"
      :pre (and (<= 1e6 x) (<= x 1e18))
      (- (sqrt (+ x 1)) (sqrt x)))
    """
)


def main() -> None:
    target = get_target("c99")
    result = compile_fpcore(
        CORE,
        target,
        CompileConfig(iterations=2),
        SampleConfig(n_train=48, n_test=48),
    )

    print(f"Benchmark: {CORE.properties.get('name', CORE.name)}")
    print(f"Target:    {target.name} ({target.description})")
    print()
    inp = result.input_candidate
    print(f"input  cost={inp.cost:8.1f}  bits-of-error={inp.error:6.2f}")
    print(f"       {expr_to_infix(inp.program)}")
    print()
    print(f"Pareto frontier ({len(result.frontier)} programs, cheap -> accurate):")
    for candidate in result.frontier:
        print(f"  cost={candidate.cost:8.1f}  bits-of-error={candidate.error:6.2f}")
        print(f"       {expr_to_infix(candidate.program)}")
    print()
    print("Most accurate output, rendered as C:")
    print(render(result.frontier.best_error().program, CORE, target))


if __name__ == "__main__":
    main()
