"""Case study 1 (paper section 6.4): the modified quadratic formula on AVX.

Run:  python examples/avx_quadratic.py

AVX has fused multiply-add variants (fma/fms/fnma/fnms), *no* negation
instruction, a fast approximate reciprocal at binary32, and masked (vector)
conditionals.  Chassis folds the quadratic's multiply-subtract chains into
fma variants, exactly as the paper shows.
"""

from repro import CompileConfig, SampleConfig, compile_fpcore, get_target, parse_fpcore
from repro.core.isel import instruction_select
from repro.ir import F32, expr_to_sexpr, parse_expr

CORE = parse_fpcore(
    """
    (FPCore quadratic-mod (a b2 c)
      :name "modified quadratic formula"
      :pre (and (< 1e-3 a 1e3) (< -1e3 b2 1e3) (< -1e3 c 1e3))
      (/ (+ (- b2) (sqrt (- (* b2 b2) (* a c)))) a))
    """
)


def main() -> None:
    avx = get_target("avx")
    print("AVX facts Chassis knows from the target description:")
    print(f"  negation instruction: {'neg.f64' in avx.operators}")
    print(f"  rcp.f32 cost {avx.operator('rcp.f32').cost} vs "
          f"div.f32 cost {avx.operator('div.f32').cost}")
    print(f"  conditional style: {avx.if_style} (masked execution)")
    print()

    result = compile_fpcore(
        CORE, avx, CompileConfig(iterations=2), SampleConfig(n_train=32, n_test=32)
    )
    print("Pareto frontier on AVX (note the fma/fnma fusions):")
    for candidate in result.frontier:
        print(f"  cost={candidate.cost:7.1f} err={candidate.error:6.2f}  "
              f"{expr_to_sexpr(candidate.program)}")
    print()

    # The paper's single-precision observation: with rcpss available,
    # divisions become multiply-by-reciprocal.
    print("Single-precision division on AVX — instruction-selection variants:")
    for variant in instruction_select(parse_expr("(/ x y)"), avx, ty=F32)[:5]:
        print(f"  {expr_to_sexpr(variant)}")


if __name__ == "__main__":
    main()
