"""Defining your own target with the S-expression DSL (paper figure 3).

Run:  python examples/custom_target.py

Target descriptions list operators — each with a type signature, a
*desugaring* (the real expression it approximates), optional linking to an
implementation, and a cost.  This example builds a tiny DSP-style target
with a fast approximate reciprocal and compiles a normalization kernel for
it, then auto-tunes the cost model as the paper describes for targets with
no cost information.
"""

from repro import CompileConfig, SampleConfig, compile_fpcore, parse_fpcore
from repro.fpeval import approx, impls
from repro.ir import expr_to_sexpr
from repro.targets import autotuned, parse_target_description

TARGET_SOURCE = """
(define-operator (add.f32 [a binary32] [b binary32]) binary32
  #:approx (+ a b) #:link add32 #:cost 2.0)
(define-operator (sub.f32 [a binary32] [b binary32]) binary32
  #:approx (- a b) #:link sub32 #:cost 2.0)
(define-operator (mul.f32 [a binary32] [b binary32]) binary32
  #:approx (* a b) #:link mul32 #:cost 2.0)
(define-operator (div.f32 [a binary32] [b binary32]) binary32
  #:approx (/ a b) #:link div32 #:cost 14.0)
(define-operator (sqrt.f32 [a binary32]) binary32
  #:approx (sqrt a) #:link sqrt32 #:cost 14.0)
(define-operator (rcp.f32 [a binary32]) binary32
  #:approx (/ 1 a) #:link rcp32 #:cost 3.0)
(define-operator (rsqrt.f32 [a binary32]) binary32
  #:approx (/ 1 (sqrt a)) #:link rsqrt32 #:cost 3.0)

(define-target tiny-dsp
  #:description "a small fixed-function DSP with approximate reciprocals"
  #:if-style vector
  #:if-cost (max 4)
  #:literals ([binary32 1])
  #:operators (add.f32 sub.f32 mul.f32 div.f32 sqrt.f32 rcp.f32 rsqrt.f32))
"""

LINKS = {
    "add32": impls.add32,
    "sub32": impls.sub32,
    "mul32": impls.mul32,
    "div32": impls.div32,
    "sqrt32": impls.sqrt32,
    "rcp32": approx.rcp32,
    "rsqrt32": approx.rsqrt32,
}

CORE = parse_fpcore(
    """
    (FPCore normalize (x y)
      :name "x / sqrt(x^2 + y^2)"
      :precision binary32
      :pre (and (< 0.001 (fabs x) 1000) (< 0.001 (fabs y) 1000))
      (/ x (sqrt (+ (* x x) (* y y)))))
    """
)


def main() -> None:
    target = parse_target_description(TARGET_SOURCE, link_registry=LINKS)
    print(f"Defined target {target.name!r} with {len(target.operators)} operators")

    # The paper: with no cost information, Chassis auto-tunes by measuring
    # single-operator hot loops.
    tuned = autotuned(target)
    print("Auto-tuned costs:", {n: op.cost for n, op in sorted(tuned.operators.items())})
    print()

    result = compile_fpcore(
        CORE, tuned, CompileConfig(iterations=2), SampleConfig(n_train=32, n_test=32)
    )
    print("Pareto frontier (rsqrt should replace the div+sqrt chain):")
    for candidate in result.frontier:
        print(f"  cost={candidate.cost:7.1f} err={candidate.error:6.2f}  "
              f"{expr_to_sexpr(candidate.program)}")


if __name__ == "__main__":
    main()
