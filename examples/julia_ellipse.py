"""Case study 2 (paper section 6.4): the ellipse-angle kernel on Julia.

Run:  python examples/julia_ellipse.py

The input computes a^2 sin^2(pi/180 * theta) + b^2 cos^2(pi/180 * theta) —
an ellipse's implicit-equation coefficient with the angle in *degrees*.
Herbie can only fight the degree-to-radian conversion with series
expansions; Chassis, told about Julia's helper library, reaches for
``sind``/``cosd`` (degree-based trigonometry computed in higher internal
precision) and friends like ``deg2rad`` and ``abs2``.
"""

from repro import CompileConfig, SampleConfig, compile_fpcore, get_target, parse_fpcore
from repro.core import render
from repro.ir import expr_to_sexpr

CORE = parse_fpcore(
    """
    (FPCore ellipse-angle (a b theta)
      :name "ellipse implicit-equation coefficient"
      :pre (and (< 0.001 a 1000) (< 0.001 b 1000) (< -360 theta 360))
      (+ (* (* a a) (* (sin (* (/ PI 180) theta)) (sin (* (/ PI 180) theta))))
         (* (* b b) (* (cos (* (/ PI 180) theta)) (cos (* (/ PI 180) theta))))))
    """
)


def main() -> None:
    julia = get_target("julia")
    helpers = [name for name in julia.operators
               if name.split(".")[0] in ("sind", "cosd", "deg2rad", "abs2", "sinpi")]
    print(f"Julia helper operators available: {', '.join(sorted(helpers))}")
    print()

    result = compile_fpcore(
        CORE, julia, CompileConfig(iterations=2), SampleConfig(n_train=32, n_test=32)
    )
    print("Pareto frontier on Julia:")
    for candidate in result.frontier:
        print(f"  cost={candidate.cost:7.1f} err={candidate.error:6.2f}  "
              f"{expr_to_sexpr(candidate.program)}")
    print()
    print("Most accurate output as Julia source:")
    print(render(result.frontier.best_error().program, CORE, julia))


if __name__ == "__main__":
    main()
