"""Case study 3 (paper sections 2, 6.4): inverse hyperbolic cotangent on fdlibm.

Run:  python examples/fdlibm_acoth.py

fdlibm implements log via range reduction to ``log(1+s) - log(1-s)``; the
target description exposes that internal subroutine as the ``log1pmd``
operator.  Chassis rewrites ``0.5 * log((1+x)/(1-x))`` into
``log1pmd(x) * 0.5`` — one cheap library-internal call where Herbie's best
needs two log1p calls.
"""

from repro import CompileConfig, SampleConfig, compile_fpcore, get_target, parse_fpcore
from repro.accuracy import sample_core
from repro.baselines import herbie_frontier_on_target
from repro.cost import TargetCostModel
from repro.ir import expr_to_sexpr

CORE = parse_fpcore(
    """
    (FPCore acoth (x)
      :name "inverse hyperbolic cotangent"
      :pre (and (< 0.001 (fabs x)) (< (fabs x) 0.999))
      (* 1/2 (log (/ (+ 1 x) (- 1 x)))))
    """
)


def main() -> None:
    fdlibm = get_target("fdlibm")
    op = fdlibm.operator("log1pmd.f64")
    print(f"fdlibm exposes {op.name}: desugars to {expr_to_sexpr(op.approx)}")
    print(f"  cost {op.cost} vs log.f64 cost {fdlibm.operator('log.f64').cost}")
    print()

    config = CompileConfig(iterations=2)
    samples = sample_core(CORE, SampleConfig(n_train=32, n_test=32))
    result = compile_fpcore(CORE, fdlibm, config, samples=samples)
    print("Chassis frontier on fdlibm:")
    for candidate in result.frontier:
        print(f"  cost={candidate.cost:7.1f} err={candidate.error:6.2f}  "
              f"{expr_to_sexpr(candidate.program)}")

    herbie, stats = herbie_frontier_on_target(CORE, fdlibm, samples, config)
    print()
    print(f"Herbie (target-agnostic), lowered to fdlibm ({stats}):")
    for candidate in herbie:
        print(f"  cost={candidate.cost:7.1f} err={candidate.error:6.2f}  "
              f"{expr_to_sexpr(candidate.program)}")

    model = TargetCostModel(fdlibm)
    best_chassis = result.frontier.best_error()
    best_herbie = herbie.best_error()
    print()
    print(f"At best accuracy: Chassis cost {best_chassis.cost:.1f} vs "
          f"Herbie cost {best_herbie.cost:.1f} "
          f"(x{best_herbie.cost / best_chassis.cost:.2f} advantage)")


if __name__ == "__main__":
    main()
