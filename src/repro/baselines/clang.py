"""The Clang baseline: a mini traditional compiler (paper section 6.2).

The paper compares Chassis' C target against Clang 14 at six optimization
levels, each with and without ``-ffast-math`` (12 configurations).  We
reproduce the *behavioral* distinction that matters:

* precise configurations apply only semantics-preserving optimizations —
  constant folding of exact arithmetic, common-subexpression elimination
  (modeled by costing the program as a DAG), and dead-code trimming — so
  they can never repair the input's numerical error ("semantics
  preservation merely means bug preservation");
* ``-ffast-math`` treats float arithmetic as real arithmetic: it runs a
  cost-only e-graph minimization over the full identity database with *no
  accuracy feedback*, exactly the unrestricted-rewriting regime the paper
  (and [7]) warns about.

Optimization levels scale a backend-quality factor (register allocation,
scheduling) applied to simulated run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from ..egraph.egraph import EGraph
from ..egraph.extract import ExtractionError
from ..egraph.runner import RunnerLimits, run_rules
from ..egraph.typed_extract import TypedExtractor
from ..cost.model import TargetCostModel
from ..ir.expr import App, Const, Expr, Num, Var
from ..ir.fpcore import FPCore
from ..targets.target import Target
from ..core.transcribe import transcribe

#: Backend-quality multiplier per optimization level, relative to -O2.
LEVEL_FACTORS = {
    "-O0": 1.65,  # no register allocation: loads/stores everywhere
    "-O1": 1.12,
    "-O2": 1.0,
    "-O3": 0.97,
    "-Os": 1.04,
    "-Oz": 1.10,
}

#: The twelve configurations of the paper's figure 7.
CONFIGS = tuple(
    (level, fast_math) for level in LEVEL_FACTORS for fast_math in (False, True)
)


@dataclass(frozen=True)
class ClangOutput:
    """One compiled configuration of one benchmark."""

    level: str
    fast_math: bool
    program: Expr
    #: Level factor to apply to simulated run time.
    time_factor: float

    @property
    def config_name(self) -> str:
        return self.level + (" -ffast-math" if self.fast_math else "")


_FOLDABLE = {"+", "-", "*", "/", "neg"}
_BASE_FOLDABLE = {"add", "sub", "mul", "div", "neg"}


def _fold_constants(expr: Expr) -> Expr:
    """Exact constant folding on the foldable arithmetic subset."""
    if not isinstance(expr, App):
        return expr
    args = tuple(_fold_constants(a) for a in expr.args)
    base = expr.op.split(".")[0]
    if base in _BASE_FOLDABLE and all(isinstance(a, Num) for a in args):
        values = [a.value for a in args]
        try:
            if base == "add":
                return Num(values[0] + values[1])
            if base == "sub":
                return Num(values[0] - values[1])
            if base == "mul":
                # Folding a product is exact over rationals; the rounded
                # result matches because the inputs were representable.
                return Num(values[0] * values[1])
            if base == "div" and values[1] != 0:
                folded = values[0] / values[1]
                if float(folded) == float(values[0]) / float(values[1]):
                    return Num(folded)  # only fold when rounding agrees
            if base == "neg":
                return Num(-values[0])
        except (ZeroDivisionError, OverflowError):
            pass
    return App(expr.op, args)


def _identity_clean(expr: Expr) -> Expr:
    """IEEE-safe identity simplifications (x*1, x/1): allowed precisely."""
    if not isinstance(expr, App):
        return expr
    args = tuple(_identity_clean(a) for a in expr.args)
    base = expr.op.split(".")[0]
    one = Fraction(1)
    if base == "mul":
        if isinstance(args[0], Num) and args[0].value == one:
            return args[1]
        if isinstance(args[1], Num) and args[1].value == one:
            return args[0]
    if base == "div" and isinstance(args[1], Num) and args[1].value == one:
        return args[0]
    return App(expr.op, args)


def _dag_cost(expr: Expr, model: TargetCostModel) -> float:
    """Program cost with common subexpressions counted once (models CSE)."""
    seen: set[Expr] = set()

    def walk(node: Expr) -> float:
        if node in seen:
            return 0.0
        seen.add(node)
        if isinstance(node, Var):
            return model.target.variable_cost
        if isinstance(node, (Num, Const)):
            return min(model.target.literal_costs.values())
        assert isinstance(node, App)
        own = 0.0
        if node.op == "if":
            return (
                walk(node.args[0]) + walk(node.args[1]) + walk(node.args[2])
                + model.target.if_cost
            )
        opdef = model.target.operators.get(node.op)
        own = opdef.cost if opdef is not None else model.target.if_cost
        return own + sum(walk(a) for a in node.args)

    return walk(expr)


_FASTMATH_LIMITS = RunnerLimits(
    max_iterations=4, max_nodes=2000, max_matches_per_rule=200, time_limit=6.0
)


def _fast_math_minimize(program: Expr, target: Target, ty: str, var_types) -> Expr:
    """Unrestricted real-identity minimization: fast-math's essence.

    Cost-only extraction with no accuracy feedback — the result is fast and
    possibly very wrong, which is the paper's point about fast-math.
    """
    from ..core.isel import _rules_for

    egraph = EGraph()
    root = egraph.add_expr(program)
    run_rules(egraph, _rules_for(target), _FASTMATH_LIMITS)
    extractor = TypedExtractor(egraph, TargetCostModel(target), var_types)
    try:
        return extractor.extract(root, ty)
    except ExtractionError:
        return program


def compile_clang(
    core: FPCore, target: Target, level: str = "-O2", fast_math: bool = False
) -> ClangOutput:
    """Compile the input program under one Clang configuration."""
    if level not in LEVEL_FACTORS:
        raise ValueError(f"unknown optimization level {level!r}")
    ty = core.precision
    program = transcribe(core.body, target, ty)
    var_types = dict(core.arg_types)

    if level != "-O0":
        program = _fold_constants(program)
        program = _identity_clean(program)
    if fast_math and level != "-O0":
        program = _fast_math_minimize(program, target, ty, var_types)

    return ClangOutput(
        level=level,
        fast_math=fast_math,
        program=program,
        time_factor=LEVEL_FACTORS[level],
    )


def compile_all_configs(core: FPCore, target: Target) -> list[ClangOutput]:
    """All 12 Clang configurations of the paper's figure 7.

    The fast-math minimization result is level-independent, so it is
    computed once and shared across -O1..-Oz (as a real compiler's
    canonicalized IR would be).
    """
    outputs: list[ClangOutput] = []
    fast_math_program = None
    for level, fast_math in CONFIGS:
        if not fast_math or level == "-O0":
            outputs.append(compile_clang(core, target, level, fast_math))
            continue
        if fast_math_program is None:
            template = compile_clang(core, target, level, fast_math=True)
            fast_math_program = template.program
        outputs.append(
            ClangOutput(
                level=level,
                fast_math=True,
                program=fast_math_program,
                time_factor=LEVEL_FACTORS[level],
            )
        )
    return outputs
