"""The Herbie baseline: target-agnostic numerical compilation (paper 6.3).

Herbie shares Chassis' architecture (sampling, localization, rewriting,
regimes) but knows nothing about targets: it works over the full
math-library operator set at uniform binary64 precision and ranks candidates
with the naive cost model (arithmetic = 1, function calls = 100).

We reproduce it by running the *same* improvement loop over a pseudo-target
("herbie-ir") built from every real operator with those naive costs — the
paper itself describes Herbie's model as "approximating a wide range of
hardware and software targets".  Herbie outputs are then lowered onto each
real target the way the paper's evaluation does: *transcribe* directly when
every operator exists, otherwise *desugar* unsupported operators through
mathematical definitions, otherwise *discard* the output.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..accuracy.sampler import SampleSet
from ..accuracy.scoring import pointwise_errors
from ..cost.model import NaiveCostModel, TargetCostModel
from ..ir.expr import Expr
from ..ir.fpcore import FPCore
from ..ir.ops import ARITHMETIC_OPS, VALUE_OPS
from ..ir.types import F64
from ..targets.builtin.common import _BASE_APPROX, direct64
from ..targets.target import SCALAR, Target
from ..core.candidates import Candidate, ParetoFrontier
from ..core.loop import CompileConfig, ImprovementLoop
from ..core.transcribe import Untranscribable, transcribe


@lru_cache(maxsize=1)
def herbie_ir_target() -> Target:
    """The pseudo-target Herbie effectively compiles for.

    Every real operator at binary64 with Herbie's naive costs: arithmetic
    and sign operations cost 1, library calls cost 100.
    """
    operators = []
    for name in sorted(_BASE_APPROX):
        if name not in VALUE_OPS:
            continue
        cost = (
            NaiveCostModel.ARITH_COST
            if name in ARITHMETIC_OPS
            else NaiveCostModel.CALL_COST
        )
        op = direct64(name, latency=cost)
        operators.append(op.with_cost(cost))
    return Target(
        name="herbie-ir",
        operators={op.name: op for op in operators},
        literal_costs={F64: 1.0},
        variable_cost=1.0,
        if_style=SCALAR,
        if_cost=1.0,
        description="Herbie's target-agnostic operator set and naive costs",
        cost_source="naive (arith=1, call=100)",
    )


@dataclass
class HerbieOutput:
    """One Herbie program lowered onto a real target."""

    target_program: Expr
    #: "transcribe" (all ops existed) or "desugar" (fallbacks were needed).
    mode: str
    candidate: Candidate


def run_herbie(
    core: FPCore,
    samples: SampleSet,
    config: CompileConfig | None = None,
    session=None,
) -> ParetoFrontier:
    """Run the target-agnostic loop; returns Herbie's (IR-level) frontier.

    With a :class:`~repro.session.ChassisSession`, this is the phase
    pipeline with the *score* phase skipped (Herbie's frontier is
    train-scored; test scoring happens after lowering onto real targets),
    sharing the session's evaluator.
    """
    if core.precision != F64:
        core = FPCore(
            arguments=core.arguments, body=core.body,
            name=core.name, precision=F64, pre=core.pre,
        )
    if session is not None:
        return session.improve(core, herbie_ir_target(), samples=samples, config=config)
    loop = ImprovementLoop(core, herbie_ir_target(), samples, config)
    return loop.run()


def lower_to_target(
    program: Expr,
    core: FPCore,
    target: Target,
    samples: SampleSet,
) -> HerbieOutput | None:
    """Lower one Herbie output onto ``target``, per the paper's protocol.

    Returns None when the program remains unsupported even after
    desugaring (the paper then discards it).
    """
    ir = herbie_ir_target()
    real_program = ir.desugar_expr(program)
    mode = "transcribe"
    try:
        lowered = transcribe(real_program, target, core.precision, allow_fallbacks=False)
    except Untranscribable:
        mode = "desugar"
        try:
            lowered = transcribe(real_program, target, core.precision, allow_fallbacks=True)
        except Untranscribable:
            return None

    model = TargetCostModel(target)
    errors = pointwise_errors(
        lowered, target, samples.test, samples.test_exact, core.precision
    )
    candidate = Candidate(
        program=lowered,
        cost=model.program_cost(lowered),
        error=sum(errors) / max(1, len(errors)),
        origin=f"herbie-{mode}",
    )
    return HerbieOutput(target_program=lowered, mode=mode, candidate=candidate)


def herbie_frontier_on_target(
    core: FPCore,
    target: Target,
    samples: SampleSet,
    config: CompileConfig | None = None,
    ir_frontier: ParetoFrontier | None = None,
    session=None,
) -> tuple[ParetoFrontier, dict[str, int]]:
    """Herbie's outputs lowered to ``target`` and test-scored.

    Returns the frontier plus counts of how each output was handled
    ({"transcribe": n, "desugar": n, "discard": n}).  ``ir_frontier``
    lets callers lowering one benchmark onto many targets reuse a single
    :func:`run_herbie` result (the IR frontier is target-independent).
    """
    if ir_frontier is None:
        ir_frontier = run_herbie(core, samples, config, session=session)
    stats = {"transcribe": 0, "desugar": 0, "discard": 0}
    frontier = ParetoFrontier()
    for candidate in ir_frontier:
        output = lower_to_target(candidate.program, core, target, samples)
        if output is None:
            stats["discard"] += 1
            continue
        stats[output.mode] += 1
        frontier.add(output.candidate)
    return frontier, stats
