"""Baselines the paper compares against: Herbie and Clang."""

from .clang import CONFIGS, ClangOutput, compile_all_configs, compile_clang
from .herbie import (
    HerbieOutput,
    herbie_frontier_on_target,
    herbie_ir_target,
    lower_to_target,
    run_herbie,
)

__all__ = [
    "herbie_ir_target",
    "run_herbie",
    "lower_to_target",
    "herbie_frontier_on_target",
    "HerbieOutput",
    "compile_clang",
    "compile_all_configs",
    "ClangOutput",
    "CONFIGS",
]
