"""Thread-safe cooperative deadlines for bounding compilations.

The original per-job timeout was SIGALRM-only, which arms exclusively in a
process's *main* thread: every compile running off the main thread — serve
handler threads, :meth:`~repro.session.ChassisSession.submit` workers —
silently ran unbounded.  This module is the thread-safe replacement: a
per-thread absolute deadline (monotonic clock) armed with the
:func:`deadline` context manager and polled with :func:`check_deadline` at
natural cancellation points — pipeline phase boundaries, improvement-loop
iterations, sampler batches.  Worker processes keep SIGALRM as a hard
backstop (they run jobs in their main thread), so the two mechanisms
compose: cooperative checks bound well-behaved code everywhere, the alarm
catches code that never reaches a checkpoint.

Deadlines nest: an inner :func:`deadline` can only tighten the bound, never
extend it, so a caller's budget is honored by everything beneath it.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager


class DeadlineExceeded(BaseException):
    """A compilation ran past its deadline.

    Derives from BaseException on purpose (same rationale as the
    scheduler's ``JobTimeout``, which subclasses this): the sampler and
    e-graph code use broad ``except Exception`` guards around per-point
    evaluation, which would otherwise swallow the cancellation and let a
    timed-out job run to completion.
    """


_STATE = threading.local()


def current_deadline() -> float | None:
    """This thread's absolute deadline (monotonic seconds), or None."""
    return getattr(_STATE, "deadline", None)


def remaining() -> float | None:
    """Seconds left before this thread's deadline (None = unbounded)."""
    dl = current_deadline()
    return None if dl is None else dl - time.monotonic()


@contextmanager
def deadline(seconds: float | None):
    """Bound the enclosed work to ``seconds`` (None = leave unbounded).

    Per-thread and re-entrant: nesting keeps the *tighter* of the inner
    and outer deadlines, and the previous deadline is restored on exit.
    The bound is cooperative — it fires at the next
    :func:`check_deadline` — so it measures compute inside the region,
    not time spent queueing for locks before entering it.
    """
    if seconds is None:
        yield
        return
    if seconds <= 0:
        raise ValueError(f"deadline must be positive, got {seconds}")
    previous = current_deadline()
    mine = time.monotonic() + seconds
    _STATE.deadline = mine if previous is None else min(mine, previous)
    try:
        yield
    finally:
        _STATE.deadline = previous


@contextmanager
def deadline_suspended():
    """Exclude the enclosed wait from this thread's deadline.

    Oracle-lock acquisitions now happen *inside* armed deadline regions
    (backends take the mpmath-rung lock mid-sample), but the PR-3
    contract stands: a deadline measures compute, not time spent queueing
    behind other threads.  On exit, the current deadline (if any) is
    shifted forward by the elapsed time, so the wait is budget-neutral.
    """
    start = time.monotonic()
    try:
        yield
    finally:
        dl = getattr(_STATE, "deadline", None)
        if dl is not None:
            _STATE.deadline = dl + (time.monotonic() - start)


def check_deadline() -> None:
    """Raise :class:`DeadlineExceeded` if this thread's deadline passed.

    Cheap enough for per-iteration use (one monotonic read); a no-op when
    no deadline is armed.
    """
    dl = getattr(_STATE, "deadline", None)
    if dl is not None and time.monotonic() > dl:
        raise DeadlineExceeded(f"deadline exceeded by {time.monotonic() - dl:.3f}s")
