"""The session API: one warm object that owns every per-process resource.

A :class:`ChassisSession` holds, for its whole lifetime,

* one :class:`~repro.rival.eval.RivalEvaluator` (the oracle),
* an in-memory LRU of seeded sample sets (keyed by benchmark content),
* an optional persistent :class:`~repro.service.cache.CompileCache`,
* per-target cost-model and performance-simulator instances,
* a **persistent** :class:`~repro.service.pool.WorkerPool` (``jobs >= 2``):
  warm worker processes shared by every batch call until :meth:`close`,
* the per-job timeout, enforced everywhere — pool workers *and* inline
  compiles on any thread — via :mod:`repro.deadline`,
* a thread pool backing the async-style :meth:`submit`/:class:`JobHandle`,
* the empirical execution layer (:mod:`repro.exec`): a content-addressed C
  build cache next to the persistent compile cache, loaded-executable and
  validation-report LRUs behind :meth:`execute`/:meth:`validate`.

Every consumer — the CLI, ``repro serve``, the experiment runners, the
baselines — goes through a session, so repeated requests hit warm state
instead of paying process start-up each time.  The old module-level
``compile_fpcore`` / ``compile_many`` entry points survive as deprecated
shims that build this state from scratch per call.

Synopsis::

    from repro.api import ChassisSession

    with ChassisSession(cache=".repro-cache", jobs=4) as session:
        result = session.compile("(FPCore (x) (- (sqrt (+ x 1)) (sqrt x)))",
                                 "c99")
        outcomes = session.compile_many([(core, "c99"), (core, "avx")])
        handle = session.submit(core, "fdlibm")
        ...                      # do other work
        result = handle.result() # block for the compilation

Pipeline hooks ride along: ``session.compile(core, t, skip=("regimes",))``
compiles without branch inference, ``replace={"sample": MyPhase()}`` swaps
a phase, and :meth:`improve` is the score-free variant the Herbie baseline
uses.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
import weakref
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field

from .accuracy.sampler import SampleConfig, SampleSet, SamplingError, sample_core
from .accuracy.scoring import score_program
from .core.candidates import ParetoFrontier
from .core.loop import CompileConfig
from .core.pipeline import (
    CompilePipeline,
    CompileResult,
    Phase,
    PhaseHook,
    PipelineContext,
    PipelineError,
)
from .core.transcribe import Untranscribable
from .cost.model import TargetCostModel
from .deadline import (
    DeadlineExceeded,
    check_deadline,
    deadline,
    deadline_suspended,
)
from .egraph.stats import EngineStats, engine_stats_sink
from .exec.builder import BuildCache
from .exec.executable import (
    ExecutableProgram,
    ExecutionRun,
    backend_availability,
    executable_for,
)
from .exec.validate import ValidationReport, validate_executable
from .ir.expr import Expr
from .ir.fpcore import FPCore, parse_fpcore
from .ir.parser import parse_expr
from .ir.printer import expr_to_sexpr
from .obs.metrics import METRICS
from .obs.trace import span
from .perf.simulator import PerfSimulator
from .provenance.ledger import ProvenanceLedger
from .rival.backends import OracleCounters, make_backend, resolve_backend_name
from .rival.eval import RivalEvaluator
from .service.api import JobSpec, _poolable, run_compile_jobs
from .service.cache import (
    CompileCache,
    core_fingerprint,
    job_fingerprint,
    sample_fingerprint,
    target_fingerprint,
)
from .service.pool import WorkerPool
from .service.results import result_from_dict, result_to_dict
from .service.scheduler import JobOutcome, JobTimeout
from .targets import all_targets, get_target
from .targets.target import Target


@dataclass
class OracleStats:
    """Contention counters for the session oracle lock (the one RLock
    serializing all mpmath work).  ``wait_seconds`` is time spent queueing
    behind other threads; ``hold_seconds`` is time spent doing oracle
    work — a high wait/hold ratio means concurrent requests are starving
    on the process-global precision state and more worker processes
    (``jobs``) would help."""

    acquisitions: int = 0
    wait_seconds: float = 0.0
    hold_seconds: float = 0.0
    max_wait_seconds: float = 0.0


@dataclass
class SessionStats:
    """Counters over one session's lifetime (surfaced by ``/health``)."""

    compiles: int = 0
    cache_hits: int = 0
    failures: int = 0
    timeouts: int = 0
    sample_hits: int = 0
    sample_misses: int = 0
    batches: int = 0
    submitted: int = 0
    #: Empirical-execution counters (the exec subsystem).
    executions: int = 0
    validations: int = 0
    validation_hits: int = 0
    #: E-graph engine counters (e-nodes built, matches found/applied,
    #: incremental re-match savings, saturation-cache hits), accumulated
    #: from every in-process pipeline run *and* — shipped back through
    #: ``JobOutcome.engine`` — from every pooled worker-process compile,
    #: so ``/health`` covers the whole session regardless of where jobs
    #: ran.
    engine: EngineStats = field(default_factory=EngineStats)
    #: Oracle-lock wait vs hold time (see :class:`OracleStats`).
    oracle: OracleStats = field(default_factory=OracleStats)
    #: Oracle-backend work folded back from pooled compiles (worker
    #: evaluators' ``evals``/``escalations`` plus backend batch counters
    #: shipped home on ``JobOutcome.oracle``) — the rival twin of
    #: ``engine``, so ``/health`` oracle totals cover every process.
    rival: OracleCounters = field(default_factory=OracleCounters)

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclass
class JobHandle:
    """An async-style handle on one in-flight compilation."""

    benchmark: str
    target: str
    _future: Future = field(repr=False)

    def done(self) -> bool:
        return self._future.done()

    def poll(self) -> str:
        """Non-blocking status: ``"pending"``, ``"ok"`` or ``"failed"``."""
        if not self._future.done():
            return "pending"
        return "failed" if self._future.exception() is not None else "ok"

    def result(self, timeout: float | None = None) -> CompileResult:
        """Block until done; re-raises the compilation's exception if any."""
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None) -> BaseException | None:
        return self._future.exception(timeout)


def targets_info() -> list[dict]:
    """JSON-able description of every registered target (``/targets``,
    ``repro targets --json``) — reads only the registry, no session needed.

    ``capabilities`` carries execution metadata per target: which
    languages its programs are emitted in and which empirical backends
    (C build / sandboxed Python) can run them on this machine, so clients
    can tell which targets support empirical validation before posting a
    ``/validate`` job.
    """
    return [
        {
            "name": target.name,
            "operators": len(target.operators),
            "linkage": target.linkage,
            "if_style": target.if_style,
            "cost_source": target.cost_source,
            "description": target.description,
            "capabilities": backend_availability(target),
        }
        for target in all_targets()
    ]


class ChassisSession:
    """A long-lived compilation session; see the module docstring.

    ``config``/``sample_config`` are the session defaults (overridable per
    call); ``cache`` is a :class:`CompileCache`, a directory path, or None;
    ``jobs``/``timeout`` parameterize batch calls and the :meth:`submit`
    pool.  Sessions may be shared across threads (the serve front-end and
    :meth:`submit` do): mutable session state sits behind one lock, and
    mpmath-backed work is serialized behind another, because mpmath's
    working precision is process-global state (``mp.workprec``);
    concurrent in-process compilations would race on it.  Sampling now
    batches through the session's oracle backend (``oracle_backend=`` /
    ``REPRO_ORACLE_BACKEND``) and takes that lock only around mpmath
    escalation-ladder runs; the pipeline itself still holds it (the
    improvement loop drives the evaluator directly).  True parallelism is process-level: :meth:`compile_many` and
    registry-target :meth:`submit` jobs run on the session's persistent
    :class:`~repro.service.pool.WorkerPool`, whose workers stay warm
    across calls.  ``timeout`` bounds each compilation wherever it runs
    (cooperative deadline on any thread, SIGALRM backstop in workers).
    """

    def __init__(
        self,
        *,
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
        cache: CompileCache | str | None = None,
        jobs: int = 1,
        timeout: float | None = None,
        max_sample_entries: int = 256,
        oracle_backend: str | None = None,
        ledger: ProvenanceLedger | str | None = None,
    ):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.config = config or CompileConfig()
        self.sample_config = sample_config or SampleConfig()
        self.cache = CompileCache(cache) if isinstance(cache, str) else cache
        self.jobs = jobs
        self.timeout = timeout
        self.evaluator = RivalEvaluator()
        #: Resolved oracle-backend name: the ``oracle_backend=`` argument,
        #: else ``REPRO_ORACLE_BACKEND``, else ``auto`` (the numpy fast
        #: path).  Raises ValueError for unknown names.
        self.oracle_backend = resolve_backend_name(oracle_backend)
        #: Provenance journal: explicit ``ledger=`` (path or instance)
        #: wins; otherwise one is created next to the persistent cache —
        #: lineage comes with caching by default — unless disabled via
        #: ``REPRO_PROVENANCE=0``.  Sessions without a persistent cache
        #: keep no ledger (nothing outlives them to trace back to).
        if isinstance(ledger, (str, os.PathLike)):
            ledger = ProvenanceLedger(ledger)
        if (
            ledger is None
            and self.cache is not None
            and os.environ.get("REPRO_PROVENANCE", "1") != "0"
        ):
            ledger = ProvenanceLedger(self.cache.root / "provenance.jsonl")
        self.ledger = ledger
        self.stats = SessionStats()
        self._lock = threading.RLock()
        # Serializes every mpmath-backed computation (see class docstring).
        # Batched sampling no longer holds it wholesale: backends take it
        # only around their mpmath escalation rung, via the "ladder"
        # section below.
        self._oracle_lock = threading.RLock()
        #: Per-thread re-entrancy depth of :meth:`_oracle_section` — the
        #: lock is an RLock and sections nest (the pipeline runs inside
        #: the compile entry's section); only the outermost acquisition
        #: records wait/hold, so nesting never double-counts.
        self._oracle_local = threading.local()
        #: Per-thread phase timings of the last fresh compile (None after
        #: a warm cache hit — no phases ran); see :meth:`last_phase_timings`.
        self._timings_local = threading.local()
        #: Per-thread marker of the last compile entry's provenance (its
        #: fingerprint + the ledger record written), resolved lazily by
        #: :meth:`last_provenance` — serve handlers attach it only when a
        #: client opts in, so warm hits never pay a ledger scan.
        self._prov_local = threading.local()
        self._samples: OrderedDict[str, SampleSet] = OrderedDict()
        self._max_sample_entries = max_sample_entries
        #: Per-fingerprint gates serializing duplicate *sampling* requests
        #: (the global-lock dedup this replaces serialized all sampling).
        self._sample_gates: dict[str, threading.Lock] = {}
        #: The session's batched oracle backend.  It shares ``evaluator``
        #: (whose counters stay authoritative for in-process work), takes
        #: the oracle lock only around mpmath ladder runs, and — for the
        #: ``pool`` backend — shards batches over the persistent worker
        #: pool (degrading to in-process when ``jobs == 1``).
        self.oracle = make_backend(
            self.oracle_backend,
            evaluator=self.evaluator,
            lock=lambda: self._oracle_section("ladder"),
            pool_provider=self.worker_pool,
            config_provider=lambda: (self.config, self.sample_config),
        )
        # Keyed by id() (targets are unhashable frozen objects); entries
        # are evicted by a weakref.finalize when their target dies, so a
        # long-lived session does not retain every Target it ever saw —
        # same idiom as the target-fingerprint cache.
        self._simulators: dict[int, PerfSimulator] = {}
        #: Loaded executables (content-keyed LRU): repeated execute /
        #: validate calls on the same program reuse the loaded library or
        #: compiled Python function instead of re-emitting and re-linking.
        self._executables: OrderedDict[tuple, ExecutableProgram] = OrderedDict()
        #: Validation reports, cached like compile results are.
        self._validations: OrderedDict[tuple, ValidationReport] = OrderedDict()
        #: Content-addressed C build cache; lives next to the persistent
        #: compile cache when one is configured, else an ephemeral dir.
        self._build_cache: BuildCache | None = None
        self._executor: ThreadPoolExecutor | None = None
        #: Persistent worker pool (jobs >= 2), created on first batch use
        #: so sessions that never fan out never spawn processes.
        self._pool: WorkerPool | None = None
        self._closed = False

    # --- resource resolution --------------------------------------------------------

    def resolve_target(self, target: Target | str) -> Target:
        """Registry names become Targets; Targets pass through."""
        return get_target(target) if isinstance(target, str) else target

    def parse(self, core: FPCore | str, target: Target | None = None) -> FPCore:
        """Parse FPCore source (the pipeline's parse phase, session-side)."""
        if isinstance(core, FPCore):
            return core
        known_ops = set(target.operators) if target is not None else None
        return parse_fpcore(core, known_ops=known_ops)

    def cost_model(self, target: Target | str) -> TargetCostModel:
        """A cost model for ``target`` (construction is trivial; this
        exists so consumers resolve names through one place)."""
        return TargetCostModel(self.resolve_target(target))

    def simulator(self, target: Target | str) -> PerfSimulator:
        """This session's (cached) performance simulator for ``target``.

        The cache entry lives exactly as long as the target: a
        ``weakref.finalize`` evicts it when the target is collected (the
        simulator holds its target weakly, so the cache itself never pins
        a target a caller has dropped).
        """
        target = self.resolve_target(target)
        with self._lock:
            simulator = self._simulators.get(id(target))
            if simulator is None:
                simulator = self._simulators[id(target)] = PerfSimulator(target)
                weakref.finalize(target, self._simulators.pop, id(target), None)
            return simulator

    def _sample_cache_get(self, key: str) -> SampleSet | None:
        with self._lock:
            cached = self._samples.get(key)
            if cached is not None:
                self._samples.move_to_end(key)
                self.stats.sample_hits += 1
            return cached

    @contextmanager
    def _oracle_section(self, label: str):
        """Hold the oracle lock around one section, recording queueing
        time and hold time separately (``stats.oracle``, the
        ``repro_oracle_*_seconds`` histograms, and ``oracle.wait`` /
        ``oracle.hold`` spans when a tracer is armed).

        Wait-vs-hold must be split because the cooperative deadline
        deliberately excludes queueing (the PR-3 contract): a request that
        spent 30s waiting and 2s computing looks identical to a 2s compile
        from the deadline's view, and this is where that difference shows.
        """
        depth = getattr(self._oracle_local, "depth", 0)
        if depth:
            # Nested section on the same thread: the RLock is already
            # ours, so there is nothing to wait for and the outer section
            # owns the accounting.
            self._oracle_local.depth = depth + 1
            try:
                with self._oracle_lock:
                    yield
            finally:
                self._oracle_local.depth = depth
            return
        wait_start = time.perf_counter()
        # Ladder sections are taken *inside* armed deadline regions (a
        # backend escalating mid-sample); queueing behind another thread
        # must stay budget-neutral, per the wait-vs-hold contract.
        with span("oracle.wait", section=label), deadline_suspended():
            self._oracle_lock.acquire()
        waited = time.perf_counter() - wait_start
        self._oracle_local.depth = 1
        hold_start = time.perf_counter()
        try:
            with span("oracle.hold", section=label):
                yield
        finally:
            held = time.perf_counter() - hold_start
            self._oracle_local.depth = 0
            self._oracle_lock.release()
            METRICS.histogram(
                "repro_oracle_wait_seconds",
                "Seconds spent queueing for the session oracle lock.",
                section=label,
            ).observe(waited)
            METRICS.histogram(
                "repro_oracle_hold_seconds",
                "Seconds the session oracle lock was held, by section.",
                section=label,
            ).observe(held)
            with self._lock:
                oracle = self.stats.oracle
                oracle.acquisitions += 1
                oracle.wait_seconds += waited
                oracle.hold_seconds += held
                if waited > oracle.max_wait_seconds:
                    oracle.max_wait_seconds = waited

    def is_cached(
        self,
        core: FPCore | str,
        target: Target | str,
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
    ) -> bool:
        """True when this job's full result is already in the persistent
        cache (stat-free probe; batch front-ends use it to skip
        pre-sampling benchmarks that will never compile)."""
        if self.cache is None:
            return False
        target = self.resolve_target(target)
        core = self.parse(core, target)
        return self.cache.contains(job_fingerprint(
            core, target, config or self.config, sample_config or self.sample_config
        ))

    def samples_for(
        self,
        core: FPCore,
        sample_config: SampleConfig | None = None,
        *,
        timeout: float | None = None,
    ) -> SampleSet:
        """Seeded samples for one benchmark, cached across the session.

        Raises :class:`~repro.accuracy.sampler.SamplingError` when too few
        valid points exist (never cached: the retry might be configured
        differently).  ``timeout`` overrides the session default for this
        call; sampling past its deadline raises
        :class:`~repro.deadline.DeadlineExceeded`.
        """
        sample_config = sample_config or self.sample_config
        key = sample_fingerprint(core, sample_config)
        cached = self._sample_cache_get(key)
        if cached is not None:
            return cached
        with self._lock:
            self.stats.sample_misses += 1
            gate = self._sample_gates.setdefault(key, threading.Lock())
        # Sampling no longer holds the session oracle lock wholesale — the
        # backend takes it only around mpmath ladder runs — so duplicate
        # requests are deduplicated by a per-fingerprint gate instead: a
        # concurrent identical request samples once, and the one that
        # waited re-checks the cache.  (A contended duplicate therefore
        # records one miss and one hit, as before.)
        with gate:
            cached = self._sample_cache_get(key)
            if cached is not None:
                return cached
            with deadline(self.timeout if timeout is None else timeout):
                with span("phase.sample", benchmark=core.name or "<anonymous>"):
                    samples = sample_core(
                        core, sample_config, self.evaluator,
                        oracle=self.oracle,
                    )
        with self._lock:
            self._samples[key] = samples
            while len(self._samples) > self._max_sample_entries:
                self._samples.popitem(last=False)
            self._sample_gates.pop(key, None)
        return samples

    # --- single compilations --------------------------------------------------------

    def run_pipeline(
        self,
        core: FPCore | str,
        target: Target | str,
        *,
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
        samples: SampleSet | None = None,
        skip: tuple[str, ...] | list[str] = (),
        replace: dict[str, Phase] | None = None,
        before: PhaseHook | None = None,
        after: PhaseHook | None = None,
        timeout: float | None = None,
    ) -> PipelineContext:
        """Run the phase pipeline with session-owned resources; returns the
        full context (for partial runs — e.g. ``skip=("score",)`` leaves
        ``ctx.train_frontier`` as the product).

        ``timeout`` (default: the session's) arms a thread-safe
        cooperative deadline around each oracle-locked section — sampling,
        then the pipeline itself — so inline compiles are bounded on *any*
        thread, raising :class:`~repro.deadline.DeadlineExceeded`.  The
        deadline measures compute, not time spent queueing for the oracle
        lock, so a burst of concurrent requests does not time each other
        out.
        """
        effective_timeout = self.timeout if timeout is None else timeout
        target = self.resolve_target(target)
        sample_config = sample_config or self.sample_config
        core = self.parse(core, target)
        sample_elapsed = 0.0
        with span(
            "compile",
            benchmark=core.name or "<anonymous>", target=target.name,
        ):
            if samples is None and "sample" not in set(skip) and (
                replace is None or "sample" not in replace
            ):
                sample_start = time.perf_counter()
                samples = self.samples_for(
                    core, sample_config, timeout=effective_timeout
                )
                sample_elapsed = time.perf_counter() - sample_start
            ctx = PipelineContext(
                target=target,
                config=config or self.config,
                sample_config=sample_config,
                evaluator=self.evaluator,
                oracle=self.oracle,
                core=core,
                samples=samples,
            )
            pipeline = CompilePipeline(
                skip=skip, replace=replace, before=before, after=after
            )
            # Engine counters accumulate into a local sink and fold into the
            # session totals even when the run times out or fails partway.
            engine_local = EngineStats()
            with self._oracle_section("pipeline"):
                try:
                    with deadline(effective_timeout), engine_stats_sink(engine_local):
                        return pipeline.run(ctx)
                finally:
                    if engine_local.any():
                        with self._lock:
                            self.stats.engine.merge(engine_local)
                    # Session pre-sampling makes the pipeline's own sample
                    # phase a no-op; attribute the real draw to it so the
                    # per-phase breakdown sums to the compile's wall clock.
                    timings = dict(ctx.phase_seconds)
                    if sample_elapsed:
                        timings["sample"] = (
                            timings.get("sample", 0.0) + sample_elapsed
                        )
                    self._timings_local.phases = timings
                    # This run's exact engine deltas, for the provenance
                    # record the compile entry writes (the session totals
                    # above are cumulative — useless for one job).
                    self._timings_local.engine = (
                        engine_local.as_dict() if engine_local.any() else None
                    )

    def last_phase_timings(self) -> dict[str, float] | None:
        """Per-phase wall-clock seconds of this thread's most recent fresh
        compile — parse/sample/transcribe/improve/regimes/score — or
        ``None`` when the last compile entry was a warm cache hit (no
        phases ran).  Thread-local, so concurrent serve handlers each see
        their own compile's breakdown."""
        return getattr(self._timings_local, "phases", None)

    def last_provenance(self) -> dict | None:
        """Provenance of this thread's most recent compile entry, or None
        when no ledger is configured (or the thread never compiled).

        Returns the ledger record written for the entry plus — for warm
        cache hits — the resolved *origin* record of the fresh
        compilation that produced the cached bytes (so warm responses are
        auditable; the serve ``/compile`` route attaches this on the
        opt-in ``provenance`` knob, outside the byte-identical payload).
        The origin resolve scans the journal, which is why it happens
        here, lazily, and not on every hit."""
        entry = getattr(self._prov_local, "entry", None)
        if entry is None or self.ledger is None:
            return None
        record = entry["record"]
        origin = (
            record if record.get("cache") != "hit"
            else self.ledger.resolve(entry["fingerprint"])
        )
        return {
            "fingerprint": entry["fingerprint"],
            "cached": record.get("cache") == "hit",
            "record": record,
            "origin": origin,
        }

    def provenance_for(self, fingerprint: str) -> list[dict]:
        """Every ledger record of one job fingerprint (8+-char prefixes
        match), oldest first; empty without a ledger."""
        if self.ledger is None:
            return []
        return self.ledger.records_for(fingerprint)

    def compile(
        self,
        core: FPCore | str,
        target: Target | str,
        *,
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
        samples: SampleSet | None = None,
        skip: tuple[str, ...] | list[str] = (),
        replace: dict[str, Phase] | None = None,
        before: PhaseHook | None = None,
        after: PhaseHook | None = None,
        use_cache: bool = True,
        timeout: float | None = None,
    ) -> CompileResult:
        """Compile one benchmark for one target through the warm session.

        Checks the persistent cache first, then runs the phase pipeline
        and stores the fresh result.  Customized calls never touch the
        cache: a ``skip``/``replace`` pipeline's product is not a full
        compilation, caller-supplied ``samples`` are not provably the
        seeded ones the fingerprint describes (unlike ``compile_many``,
        which documents that contract, this method stays safe by
        bypassing instead), and ``before``/``after`` hooks must actually
        observe phases running (a cache hit runs none) and may mutate the
        context.

        ``timeout`` overrides the session default for this call; running
        past it raises :class:`~repro.deadline.DeadlineExceeded` (works
        from any thread — serve handlers, ``submit`` workers).
        """
        payload, cached, _fingerprint, result = self._compile_entry(
            core, target,
            config=config, sample_config=sample_config, samples=samples,
            skip=tuple(skip), replace=replace, before=before, after=after,
            use_cache=use_cache, timeout=timeout,
        )
        if result is None:
            result = result_from_dict(payload, self.resolve_target(target))
        return result

    def compile_payload(
        self,
        core: FPCore | str,
        target: Target | str,
        *,
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
        timeout: float | None = None,
    ) -> tuple[dict, bool]:
        """Like :meth:`compile` but returns ``(payload, cached)``.

        The payload is the serialized-result dict (the cache layout); on a
        warm hit it is returned exactly as stored, so two identical
        requests serialize to byte-identical JSON — the contract the
        ``repro serve`` front-end exposes on the wire.
        """
        payload, cached, _fingerprint, _result = self._compile_entry(
            core, target, config=config, sample_config=sample_config,
            samples=None, skip=(), replace=None, before=None, after=None,
            use_cache=True, timeout=timeout,
        )
        return payload, cached

    def _compile_entry(
        self, core, target, *, config, sample_config, samples,
        skip, replace, before, after, use_cache, timeout=None,
    ) -> tuple[dict, bool, str, CompileResult | None]:
        target = self.resolve_target(target)
        core = self.parse(core, target)
        config = config or self.config
        sample_config = sample_config or self.sample_config
        customized = (
            bool(skip) or bool(replace) or samples is not None
            or before is not None or after is not None
        )
        fingerprint = job_fingerprint(core, target, config, sample_config)
        cacheable = self.cache is not None and use_cache and not customized
        # A cache hit runs no phases; stale timings from an earlier compile
        # on this thread must not be attributed to it.  Same for the
        # provenance marker: it must describe *this* entry or nothing.
        self._timings_local.phases = None
        self._timings_local.engine = None
        self._prov_local.entry = None

        def outcome_counter(outcome: str):
            return METRICS.counter(
                "repro_compiles_total",
                "Session compile entries by outcome.",
                outcome=outcome,
            )

        def record(cache_state: str, **kwargs):
            if self.ledger is None:
                return
            written = self.ledger.record_job(
                "compile", core, target, config, sample_config, fingerprint,
                cache=cache_state, oracle_backend=self.oracle_backend,
                **kwargs,
            )
            self._prov_local.entry = {
                "fingerprint": fingerprint, "record": written,
            }

        if cacheable:
            payload = self.cache.get(fingerprint)
            if payload is not None:
                with self._lock:
                    self.stats.cache_hits += 1
                outcome_counter("cache_hit").inc()
                record("hit")
                return payload, True, fingerprint, None

        with self._oracle_section("compile"):
            if cacheable:
                # A concurrent identical request may have compiled and
                # stored this job while we waited for the lock; a second
                # lookup beats redoing the whole pipeline.  (A cold
                # compile therefore records two cache misses.)
                payload = self.cache.get(fingerprint)
                if payload is not None:
                    with self._lock:
                        self.stats.cache_hits += 1
                    outcome_counter("cache_hit").inc()
                    record("hit")
                    return payload, True, fingerprint, None
            try:
                ctx = self.run_pipeline(
                    core, target,
                    config=config, sample_config=sample_config, samples=samples,
                    skip=skip, replace=replace, before=before, after=after,
                    timeout=timeout,
                )
            except DeadlineExceeded as error:
                with self._lock:
                    self.stats.timeouts += 1
                outcome_counter("timeout").inc()
                record(
                    "none", status="timeout",
                    error_type=type(error).__name__,
                    engine=getattr(self._timings_local, "engine", None),
                )
                raise
            except Exception as error:
                with self._lock:
                    self.stats.failures += 1
                outcome_counter("failure").inc()
                record(
                    "none", status="failed",
                    error_type=type(error).__name__,
                    engine=getattr(self._timings_local, "engine", None),
                )
                raise
            if ctx.result is None:
                raise PipelineError(
                    "customized pipeline produced no CompileResult; use "
                    "run_pipeline() for partial runs"
                )
            with self._lock:
                self.stats.compiles += 1
            outcome_counter("ok").inc()
            payload = result_to_dict(ctx.result)
            if cacheable:
                # Stored before the lock is released, so a waiting
                # duplicate's re-check above finds it.
                self.cache.put(fingerprint, payload)
            record(
                # "bypass": a fresh result deliberately kept out of a
                # configured cache (customized pipeline, use_cache=False).
                "store" if cacheable
                else ("bypass" if self.cache is not None else "none"),
                elapsed=ctx.result.elapsed,
                engine=getattr(self._timings_local, "engine", None),
            )
        return payload, False, fingerprint, ctx.result

    def improve(
        self,
        core: FPCore | str,
        target: Target | str,
        samples: SampleSet | None = None,
        config: CompileConfig | None = None,
    ) -> ParetoFrontier:
        """Train-scored frontier only: the pipeline with *score* skipped.

        What the Herbie baseline runs over the ``herbie-ir`` pseudo-target
        (test scoring happens later, after lowering onto real targets).
        The transcribe phase is skipped too: its product is only ever
        consumed by the score phase.
        """
        ctx = self.run_pipeline(
            core, target, config=config, samples=samples,
            skip=("transcribe", "score"),
        )
        return ctx.train_frontier

    def score(
        self,
        core: FPCore | str,
        target: Target | str,
        program=None,
        sample_config: SampleConfig | None = None,
    ) -> float:
        """Mean bits of error of ``program`` (default: the transcribed
        input) on ``core``'s test points, via the session's sample cache."""
        target = self.resolve_target(target)
        core = self.parse(core, target)
        samples = self.samples_for(core, sample_config)
        if isinstance(program, str):
            program = parse_expr(program, known_ops=set(target.operators))
        if program is None:
            from .core.transcribe import transcribe

            program = transcribe(core.body, target, core.precision)
        return score_program(
            program, target, samples.test, samples.test_exact, core.precision
        )

    # --- empirical execution --------------------------------------------------------

    def build_cache(self) -> BuildCache:
        """The session's content-addressed C build cache.

        Lives next to the persistent compile cache (``<cache>/builds``)
        when one is configured, so built shared libraries survive the
        process like compile results do; sessions without a persistent
        cache get an ephemeral directory cleaned in :meth:`close`.  (A
        closed session stays usable for synchronous calls — see
        :meth:`close` — so using one after close recreates an ephemeral
        cache; that one is cleaned by its own finalizer at collection.)
        """
        with self._lock:
            if self._build_cache is None:
                if self.cache is not None:
                    self._build_cache = BuildCache(self.cache.root / "builds")
                else:
                    self._build_cache = BuildCache.ephemeral()
            return self._build_cache

    def _compile_for_exec(
        self,
        core: FPCore,
        target: Target,
        config: CompileConfig | None,
        sample_config: SampleConfig | None,
        timeout: float | None,
    ) -> CompileResult:
        """The compilation feeding one execute/validate call.

        Plain registry-target requests with ``jobs >= 2`` are dispatched
        through the session's persistent worker pool (real process-level
        parallelism for concurrent ``/validate`` requests); everything
        else compiles inline under the oracle lock and the cooperative
        deadline.  Warm cache hits resolve instantly either way.
        """
        if (
            config is None and sample_config is None and timeout is None
            and self.jobs > 1 and _poolable(target)
        ):
            return self._pooled_compile(core, target)
        return self.compile(
            core, target,
            config=config, sample_config=sample_config, timeout=timeout,
        )

    @staticmethod
    def _program_from(result: CompileResult, program: Expr | None) -> Expr:
        """The program one execute/validate call targets: an explicit one,
        else the frontier's most accurate output, else the transcribed
        input (an empty frontier still has an input candidate)."""
        if program is not None:
            return program
        if len(result.frontier):
            return result.frontier.best_error().program
        return result.input_candidate.program

    def executable(
        self,
        core: FPCore | str,
        target: Target | str,
        *,
        program: Expr | str | None = None,
        backend: str = "auto",
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
        timeout: float | None = None,
    ) -> ExecutableProgram:
        """Emit + build/load one program as real executable code (cached).

        ``program`` defaults to the most accurate frontier output of a
        (cache-warm) compilation.  Loaded executables are kept in a
        content-keyed LRU, so repeated execute/validate calls on the same
        program reuse the loaded shared library or compiled function.
        """
        target = self.resolve_target(target)
        core = self.parse(core, target)
        if isinstance(program, str):
            program = parse_expr(program, known_ops=set(target.operators))
        if program is None:
            result = self._compile_for_exec(
                core, target, config, sample_config, timeout
            )
            program = self._program_from(result, None)
        key = (
            core_fingerprint(core),
            target_fingerprint(target),
            expr_to_sexpr(program),
            backend,
        )
        with self._lock:
            cached = self._executables.get(key)
            if cached is not None:
                self._executables.move_to_end(key)
                return cached
        # Emitting + building takes no oracle lock, so the deadline can
        # arm directly; the compiler subprocess inside is capped by the
        # remaining budget (it cannot poll cooperatively).
        with deadline(self.timeout if timeout is None else timeout):
            with span("exec.build", backend=backend, target=target.name):
                executable = executable_for(
                    program, core, target,
                    backend=backend, build_cache=self.build_cache(),
                )
        with self._lock:
            self._executables[key] = executable
            while len(self._executables) > 64:
                # Eviction drops the Python wrapper only; the underlying
                # shared library is deliberately NOT dlclosed — callers
                # may still hold the returned ExecutableProgram (unloading
                # under a live function pointer is undefined behavior),
                # and re-dlopening an already-loaded content-addressed
                # path just bumps its refcount rather than re-mapping it.
                self._executables.popitem(last=False)
        return executable

    def execute(
        self,
        core: FPCore | str,
        target: Target | str,
        *,
        program: Expr | str | None = None,
        backend: str = "auto",
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
        timeout: float | None = None,
    ) -> ExecutionRun:
        """Run emitted code over the session's sampled test points.

        The counterpart of :meth:`score` that *executes* instead of
        evaluating through the machine: outputs come from a compiled
        shared library (or the sandboxed Python backend), point by point,
        under the cooperative deadline.
        """
        target = self.resolve_target(target)
        core = self.parse(core, target)
        effective_timeout = self.timeout if timeout is None else timeout
        # Each phase gets the budget for its *compute*: compile and
        # sampling arm their own deadlines after taking the oracle lock
        # (queueing behind a concurrent compile must not count — the PR-3
        # contract), while the lock-free phases here — the C build (its
        # compiler subprocess is capped by the remaining budget) and the
        # execution loop — are bounded directly.
        executable = self.executable(
            core, target, program=program, backend=backend,
            config=config, sample_config=sample_config, timeout=timeout,
        )
        samples = self.samples_for(core, sample_config, timeout=effective_timeout)
        points = samples.test or samples.train
        with deadline(effective_timeout):
            with span(
                "exec.run", backend=executable.backend, points=len(points)
            ):
                outputs = []
                for point in points:
                    check_deadline()
                    outputs.append(executable.run_point(point))
        with self._lock:
            self.stats.executions += 1
        return ExecutionRun(
            benchmark=core.name or "<anonymous>",
            target=target.name,
            backend=executable.backend,
            language=executable.language,
            fn_name=executable.fn_name,
            outputs=outputs,
            note=executable.note,
        )

    def validate(
        self,
        core: FPCore | str,
        target: Target | str,
        *,
        program: Expr | str | None = None,
        backend: str = "auto",
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
        timeout: float | None = None,
    ) -> ValidationReport:
        """Empirically validate a compilation against oracle and machine.

        Compiles (warm-cache, pool-dispatched when the session has one),
        executes the chosen program — the most accurate frontier output by
        default — over the sampled points, and cross-checks the executed
        outputs against the Rival oracle's exact values and the fpeval
        machine's evaluation (see
        :class:`~repro.exec.validate.ValidationReport`).  Reports are
        cached in the session: repeating a validation is a lookup.
        """
        target = self.resolve_target(target)
        core = self.parse(core, target)
        if isinstance(program, str):
            program = parse_expr(program, known_ops=set(target.operators))
        effective_timeout = self.timeout if timeout is None else timeout
        # Phase-by-phase deadlines, like compile itself: oracle-locked
        # phases (the compile, sampling) arm theirs after taking the lock
        # so queueing behind concurrent requests does not count; the
        # lock-free phases (build, cross-check loop) are bounded here.
        resolved = program
        if resolved is None:
            result = self._compile_for_exec(
                core, target, config, sample_config, timeout
            )
            resolved = self._program_from(result, None)
        effective_samples = sample_config or self.sample_config
        key = (
            core_fingerprint(core),
            target_fingerprint(target),
            expr_to_sexpr(resolved),
            backend,
            sample_fingerprint(core, effective_samples),
        )
        with self._lock:
            cached = self._validations.get(key)
            if cached is not None:
                self._validations.move_to_end(key)
                self.stats.validation_hits += 1
                return cached
        validate_start = time.perf_counter()
        executable = self.executable(
            core, target, program=resolved, backend=backend, timeout=timeout,
        )
        samples = self.samples_for(core, effective_samples, timeout=effective_timeout)
        with deadline(effective_timeout):
            with span("exec.validate", backend=executable.backend):
                report = validate_executable(
                    executable, resolved, core, target, samples
                )
        with self._lock:
            self.stats.validations += 1
            self._validations[key] = report
            while len(self._validations) > 256:
                self._validations.popitem(last=False)
        if self.ledger is not None:
            self.ledger.record_job(
                "validate", core, target, config or self.config,
                effective_samples,
                job_fingerprint(
                    core, target, config or self.config, effective_samples
                ),
                cache="none",
                elapsed=time.perf_counter() - validate_start,
                oracle_backend=self.oracle_backend,
                extra={"exec_backend": executable.backend,
                       "agreement": report.ok},
            )
        return report

    def shared_samples_for(
        self,
        cores: list[FPCore],
        targets: list[Target | str],
        *,
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
        timeout: float | None = None,
    ) -> list[SampleSet | None]:
        """One shared sample set per benchmark for a ``cores x targets``
        batch (aligned with ``cores``; the common third spec element).

        Sampling is target-independent and seeded, so a multi-target batch
        can sample each benchmark once here — through the session cache —
        instead of every worker repeating it per target.  Entries stay
        ``None`` (sample in the worker) for single-target batches (no
        redundancy to remove, and workers sample in parallel), for
        benchmarks whose every job is already in the persistent cache
        (warm reruns must stay oracle-free), and for benchmarks that fail
        to sample (their jobs still report per-job SamplingErrors,
        preserving the removal protocol).  Both ``repro batch`` and the
        serve ``/batch`` endpoint build their specs from this.
        """
        shared: list[SampleSet | None] = [None] * len(cores)
        if len(targets) <= 1:
            return shared
        for index, core in enumerate(cores):
            if all(
                self.is_cached(core, target, config, sample_config)
                for target in targets
            ):
                continue
            try:
                shared[index] = self.samples_for(
                    core, sample_config, timeout=timeout
                )
            except (SamplingError, DeadlineExceeded):
                pass
        return shared

    # --- batch + async --------------------------------------------------------------

    def worker_pool(self) -> WorkerPool | None:
        """The session's persistent worker pool (None when ``jobs == 1``).

        Created lazily on first use and kept warm across every batch —
        ``compile_many``, the serve ``/batch`` endpoint, ``repro batch``,
        pooled :meth:`submit` jobs and the experiment runners all share
        it — until :meth:`close` drains it.
        """
        with self._lock:
            if self._pool is None and self.jobs > 1 and not self._closed:
                self._pool = WorkerPool(self.jobs)
            return self._pool

    def pool_info(self) -> dict | None:
        """JSON-able worker-pool state for ``/health`` (None = no pool yet)."""
        with self._lock:
            pool = self._pool
        return pool.info() if pool is not None else None

    def _fold_outcomes(self, outcomes: list[JobOutcome]) -> None:
        """Fold batch outcomes into the session counters (``/health``).

        ``compile`` bumps these inline; batch paths historically did not,
        so ``/health`` under-reported failures and never saw timeouts.
        Engine counters shipped back on ``JobOutcome.engine`` — from
        worker processes and inline batch jobs alike — merge into
        ``stats.engine``, closing the gap where pooled compiles did real
        e-graph work that ``/health`` never saw.  Oracle counters ride the
        same road: each job's backend/evaluator work ships back on
        ``JobOutcome.oracle`` and merges into ``stats.rival``.
        """
        known = {fld.name for fld in dataclasses.fields(EngineStats)}
        with self._lock:
            for outcome in outcomes:
                if outcome.cached:
                    self.stats.cache_hits += 1
                elif outcome.ok:
                    self.stats.compiles += 1
                elif outcome.status == "timeout":
                    self.stats.timeouts += 1
                else:
                    self.stats.failures += 1
                if outcome.engine:
                    self.stats.engine.merge(EngineStats(**{
                        key: value for key, value in outcome.engine.items()
                        if key in known
                    }))
                if outcome.oracle:
                    self.stats.rival.merge(outcome.oracle)

    def compile_many(
        self,
        specs: list[JobSpec],
        *,
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
        jobs: int | None = None,
        timeout: float | None = None,
        progress=None,
        trace: bool = False,
    ) -> list[JobOutcome]:
        """Batch compilation through the session's pool, cache and knobs.

        Same contract as the engine it drives
        (:func:`repro.service.api.run_compile_jobs`): outcomes in spec
        order, expected failures captured per job, warm cache hits flagged.
        Every outcome — ok, failed, timeout, cached — is folded into
        :attr:`stats`.

        With ``jobs >= 2``, registry-target cache misses are dispatched
        through the session's *persistent* :class:`WorkerPool` (workers
        warm across calls).  Remaining inline work (non-registry targets,
        ``jobs=1``) runs in this thread configured via module-global
        worker state; the session's oracle lock is passed down so exactly
        those inline sections are serialized against concurrent compiles,
        while pool-dispatched work (separate processes) runs unlocked.

        ``trace=True`` records a span trace per freshly-compiled job
        (returned on ``JobOutcome.trace``, merged across workers by
        ``repro compile --trace``); engine counters ship back and fold
        into ``stats.engine`` unconditionally.
        """
        with self._lock:
            self.stats.batches += 1
        effective_jobs = self.jobs if jobs is None else jobs
        # The persistent pool has the session's width; honor an explicit
        # different jobs= override with a one-off pool of the requested
        # width (legacy scheduler path) instead of silently capping it.
        pool = self.worker_pool() if effective_jobs == self.jobs else None
        outcomes = run_compile_jobs(
            specs,
            config=config or self.config,
            sample_config=sample_config or self.sample_config,
            jobs=effective_jobs,
            cache=self.cache,
            timeout=self.timeout if timeout is None else timeout,
            progress=progress,
            inline_lock=self._oracle_lock,
            pool=pool,
            trace=trace,
            ledger=self.ledger,
        )
        self._fold_outcomes(outcomes)
        return outcomes

    def _pooled_compile(self, core: FPCore, target: Target) -> CompileResult:
        """One registry-target job through the persistent worker pool.

        The process-level twin of :meth:`compile` that :meth:`submit`
        wraps: same cache behavior and stats accounting, but the
        compilation itself runs in a warm worker process, so concurrent
        handles get real parallelism instead of serializing on the
        in-process oracle lock.  Failures are re-raised to preserve
        :meth:`compile`'s contract.
        """
        [outcome] = run_compile_jobs(
            [(core, target)],
            config=self.config,
            sample_config=self.sample_config,
            jobs=self.jobs,
            cache=self.cache,
            timeout=self.timeout,
            inline_lock=self._oracle_lock,
            pool=self.worker_pool(),
            ledger=self.ledger,
        )
        self._fold_outcomes([outcome])
        if outcome.status == "timeout":
            raise JobTimeout(outcome.error)
        if not outcome.ok:
            rebuilt = {"Untranscribable": Untranscribable,
                       "SamplingError": SamplingError}.get(outcome.error_type)
            if rebuilt is not None:
                raise rebuilt(outcome.error)
            raise RuntimeError(f"{outcome.error_type}: {outcome.error}")
        return outcome.result

    def submit(
        self, core: FPCore | str, target: Target | str, **compile_kwargs
    ) -> JobHandle:
        """Start one compilation in the background; returns a handle.

        The handle's :meth:`JobHandle.result` yields the same
        :class:`CompileResult` a synchronous :meth:`compile` would; the
        persistent cache and sample cache are shared, so submitting a
        duplicate of a finished job completes instantly.

        With ``jobs >= 2``, plain registry-target jobs are dispatched
        through the session's persistent worker pool, so concurrent
        handles compile in parallel across processes.  Customized calls
        (``skip``/``replace``/hooks/``samples``) and non-registry targets
        cannot cross the process boundary; they run in-process, serialized
        by the oracle lock, and the per-job deadline bounds them there
        too.
        """
        target_resolved = self.resolve_target(target)
        core_parsed = self.parse(core, target_resolved)
        pooled = (
            not compile_kwargs and self.jobs > 1 and _poolable(target_resolved)
        )
        with self._lock:
            if self._closed:
                raise RuntimeError("session is closed")
            if self._executor is None:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.jobs, thread_name_prefix="chassis-session"
                )
            self.stats.submitted += 1
            if pooled:
                future = self._executor.submit(
                    self._pooled_compile, core_parsed, target_resolved
                )
            else:
                future = self._executor.submit(
                    self.compile, core_parsed, target_resolved, **compile_kwargs
                )
        return JobHandle(
            benchmark=core_parsed.name or "<anonymous>",
            target=target_resolved.name,
            _future=future,
        )

    # --- introspection / lifecycle --------------------------------------------------

    def targets_info(self) -> list[dict]:
        """JSON-able description of every registered target (``/targets``);
        see the module-level :func:`targets_info`."""
        return targets_info()

    def health(self) -> dict:
        """The liveness/statistics payload behind the serve ``/health``
        route and ``repro health``: session counters (including engine
        totals folded back from pooled workers), persistent-cache stats,
        worker-pool state, and oracle activity (correctly-rounded
        evaluations plus lock wait-vs-hold)."""
        backend = self.oracle.counters()
        with self._lock:
            stats = self.stats.as_dict()
            folded = OracleCounters()
            folded.merge(self.stats.rival)
        # In-process backends share ``self.evaluator`` (their own
        # ``evals`` stay zero); worker-side work arrives pre-folded in
        # ``stats.rival`` — summing all three never double-counts.
        return {
            "ok": True,
            "stats": stats,
            "cache": self.cache.stats.as_dict() if self.cache else None,
            "pool": self.pool_info(),
            "provenance": self.ledger.info() if self.ledger else None,
            "oracle": {
                "backend": self.oracle_backend,
                "evals": self.evaluator.evals + backend.evals + folded.evals,
                "escalations": (
                    self.evaluator.escalations + backend.escalations
                    + folded.escalations
                ),
                "batch_calls": backend.batch_calls + folded.batch_calls,
                "batch_points": backend.batch_points + folded.batch_points,
                "fastpath_hits": (
                    backend.fastpath_hits + folded.fastpath_hits
                ),
                "escalated_points": (
                    backend.escalated_points + folded.escalated_points
                ),
                "pool_chunks": backend.pool_chunks + folded.pool_chunks,
                # Per-rung cascade breakdown (in-process + pooled sources
                # alike: worker dd hits fold home through JobOutcome).
                "rungs": {
                    "longdouble_hits": (
                        backend.fastpath_hits + folded.fastpath_hits
                        - backend.dd_hits - folded.dd_hits
                    ),
                    "dd_hits": backend.dd_hits + folded.dd_hits,
                    "ladder_points": (
                        backend.escalated_points + folded.escalated_points
                    ),
                },
            },
        }

    def close(self) -> None:
        """Drain the submit pool and the worker pool; the session stays
        usable for synchronous in-process calls."""
        with self._lock:
            executor, self._executor = self._executor, None
            pool, self._pool = self._pool, None
            build_cache, self._build_cache = self._build_cache, None
            self._executables.clear()
            self._validations.clear()
            self._closed = True
        if build_cache is not None:
            # Removes the backing directory only for ephemeral caches; a
            # persistent one (next to the compile cache) is kept warm.
            build_cache.cleanup()
        if executor is not None:
            executor.shutdown(wait=True)
        if pool is not None:
            # After the executor has drained (its wrappers are the only
            # way this session dispatches to the pool outside compile_many
            # callers, which the caller must not race with close).
            # WorkerPool.shutdown itself waits on its in-flight-batch
            # counter, so outcomes being collected are never lost.
            pool.shutdown()
        if self.ledger is not None:
            # Closes the append descriptor only; the journal (and the
            # ledger object, which reopens lazily) stays usable.
            self.ledger.close()

    def __enter__(self) -> "ChassisSession":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
