"""The explicit compilation pipeline: parse → sample → transcribe →
improve → regimes → score.

One Chassis compilation is six phases over a shared :class:`PipelineContext`.
Each phase is a small object satisfying the :class:`Phase` protocol (a
``name`` plus ``run(ctx)``), and :class:`CompilePipeline` strings them
together with hook points, so callers can

* **skip** phases (``skip=("score",)`` for a train-only frontier,
  ``skip=("regimes",)`` to disable branch inference),
* **replace** a phase with their own (``replace={"sample": MyPhase()}``),
* **instrument** the run (``before``/``after`` callbacks per phase),

instead of threading ever more keyword arguments through one monolithic
``compile_fpcore``.  The phases deliberately mirror the architecture of
paper figure 1; :func:`compile_core` runs the default pipeline and is what
the scheduler workers, the session API and the deprecated
:func:`~repro.core.chassis.compile_fpcore` shim all call.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Protocol, runtime_checkable

from ..accuracy.sampler import SampleConfig, SampleSet, sample_core
from ..accuracy.scoring import score_program
from ..cost.model import TargetCostModel
from ..ir.expr import Expr
from ..ir.fpcore import FPCore, parse_fpcore
from ..obs.metrics import METRICS
from ..obs.trace import span
from ..rival.eval import RivalEvaluator
from ..targets.target import Target
from ..deadline import check_deadline
from .candidates import Candidate, ParetoFrontier
from .loop import CompileConfig, ImprovementLoop
from .transcribe import Untranscribable, transcribe, transcribe_with_poly


@dataclass
class CompileResult:
    """Everything produced by one Chassis compilation."""

    core: FPCore
    target: Target
    #: Pareto frontier scored on held-out *test* points.
    frontier: ParetoFrontier
    #: The directly-transcribed input program, test-scored (the baseline
    #: "black square" of paper figure 8).
    input_candidate: Candidate
    samples: SampleSet
    elapsed: float

    def best_for_error(self, error_bound: float) -> Candidate | None:
        """Fastest output meeting an accuracy bound (bits of error)."""
        return self.frontier.fastest_within(error_bound)


@dataclass
class PipelineContext:
    """Mutable state shared by the phases of one compilation.

    Fields are populated progressively: ``core`` after *parse*, ``samples``
    after *sample*, ``input_program`` after *transcribe*, ``loop`` and
    ``train_frontier`` after *improve* (and *regimes*), ``test_frontier`` /
    ``input_candidate`` / ``result`` after *score*.  Callers that skip a
    phase must pre-populate what it would have produced.
    """

    target: Target
    config: CompileConfig = field(default_factory=CompileConfig)
    sample_config: SampleConfig | None = None
    evaluator: RivalEvaluator = field(default_factory=RivalEvaluator)
    #: Batched oracle backend used by the sample phase; None builds one
    #: around ``evaluator`` per the ``REPRO_ORACLE_BACKEND`` knob.
    oracle: object | None = None
    #: FPCore source text, consumed by the parse phase when ``core`` is unset.
    source: str | None = None
    core: FPCore | None = None
    samples: SampleSet | None = None
    input_program: Expr | None = None
    loop: ImprovementLoop | None = None
    train_frontier: ParetoFrontier | None = None
    test_frontier: ParetoFrontier | None = None
    input_candidate: Candidate | None = None
    result: CompileResult | None = None
    started: float = field(default_factory=time.monotonic)
    #: Wall-clock seconds per executed phase, filled by
    #: :meth:`CompilePipeline.run` (always on — six clock reads per
    #: compile); the per-phase breakdown behind ``repro compile --json``
    #: timings and the serve ``/compile`` ``timings`` knob.
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def require(self, attr: str, needed_by: str):
        """Fetch a prior phase's product, failing with a phase-aware error."""
        value = getattr(self, attr)
        if value is None:
            raise PipelineError(
                f"phase {needed_by!r} needs ctx.{attr}, which no earlier "
                f"phase produced (skipped without pre-supplying it?)"
            )
        return value


class PipelineError(RuntimeError):
    """A phase ran before its inputs existed (bad skip/replace wiring)."""


@runtime_checkable
class Phase(Protocol):
    """One step of the compilation pipeline."""

    name: str

    def run(self, ctx: PipelineContext) -> None:  # pragma: no cover - protocol
        ...


class ParsePhase:
    """Turn FPCore source text into an :class:`FPCore` (no-op if pre-parsed)."""

    name = "parse"

    def run(self, ctx: PipelineContext) -> None:
        if ctx.core is not None:
            return
        source = ctx.require("source", self.name)
        ctx.core = parse_fpcore(source, known_ops=set(ctx.target.operators))


class SamplePhase:
    """Draw seeded training/test points (no-op when samples are supplied)."""

    name = "sample"

    def run(self, ctx: PipelineContext) -> None:
        if ctx.samples is not None:
            return
        core = ctx.require("core", self.name)
        ctx.samples = sample_core(
            core, ctx.sample_config, ctx.evaluator, oracle=ctx.oracle
        )


class TranscribePhase:
    """Lower the input program onto the target (polynomial fallback).

    Runs before sampling-dependent work so an inexpressible benchmark
    fails fast; targets lacking transcendentals fall back to polynomial
    approximation (paper section 2).
    """

    name = "transcribe"

    def run(self, ctx: PipelineContext) -> None:
        core = ctx.require("core", self.name)
        try:
            ctx.input_program = transcribe(core.body, ctx.target, core.precision)
        except Untranscribable:
            ctx.input_program = transcribe_with_poly(
                core.body, ctx.target, core.precision
            )


class ImprovePhase:
    """Run the iterative improvement loop to a train-scored frontier."""

    name = "improve"

    def run(self, ctx: PipelineContext) -> None:
        core = ctx.require("core", self.name)
        samples = ctx.require("samples", self.name)
        ctx.loop = ImprovementLoop(
            core, ctx.target, samples, ctx.config, ctx.evaluator
        )
        # Regime inference is its own phase; the loop must not double-apply.
        ctx.train_frontier = ctx.loop.run(with_regimes=False)


class RegimesPhase:
    """Fuse complementary candidates with branches (paper section 5.4)."""

    name = "regimes"

    def run(self, ctx: PipelineContext) -> None:
        if not ctx.config.enable_regimes:
            return
        loop = ctx.require("loop", self.name)
        frontier = ctx.require("train_frontier", self.name)
        loop.add_regimes(frontier)


class ScorePhase:
    """Re-score the frontier and input on held-out test points; build the result."""

    name = "score"

    def run(self, ctx: PipelineContext) -> None:
        core = ctx.require("core", self.name)
        samples = ctx.require("samples", self.name)
        train_frontier = ctx.require("train_frontier", self.name)
        input_program = ctx.require("input_program", self.name)

        ctx.test_frontier = ParetoFrontier()
        for candidate in train_frontier:
            check_deadline()
            error = score_program(
                candidate.program, ctx.target, samples.test,
                samples.test_exact, core.precision,
            )
            ctx.test_frontier.add(
                Candidate(
                    program=candidate.program,
                    cost=candidate.cost,
                    error=error,
                    point_errors=candidate.point_errors,
                    origin=candidate.origin,
                )
            )

        model = TargetCostModel(ctx.target)
        ctx.input_candidate = Candidate(
            program=input_program,
            cost=model.program_cost(input_program),
            error=score_program(
                input_program, ctx.target, samples.test,
                samples.test_exact, core.precision,
            ),
            origin="input",
        )
        ctx.result = CompileResult(
            core=core,
            target=ctx.target,
            frontier=ctx.test_frontier,
            input_candidate=ctx.input_candidate,
            samples=samples,
            elapsed=time.monotonic() - ctx.started,
        )


#: Canonical phase order; ``default_phases()`` returns fresh instances.
PHASE_NAMES = ("parse", "sample", "transcribe", "improve", "regimes", "score")


def default_phases() -> list[Phase]:
    """Fresh instances of the six standard phases, in canonical order."""
    return [
        ParsePhase(), SamplePhase(), TranscribePhase(),
        ImprovePhase(), RegimesPhase(), ScorePhase(),
    ]


#: Hook signature: ``hook(phase_name, ctx)``.
PhaseHook = Callable[[str, PipelineContext], None]


class CompilePipeline:
    """An ordered list of phases plus skip/replace/instrument hooks."""

    def __init__(
        self,
        phases: Iterable[Phase] | None = None,
        *,
        skip: Iterable[str] = (),
        replace: Mapping[str, Phase] | None = None,
        before: PhaseHook | None = None,
        after: PhaseHook | None = None,
    ):
        base = list(phases) if phases is not None else default_phases()
        known = {phase.name for phase in base}
        skip = set(skip)
        replacements = dict(replace or {})
        for name in (*skip, *replacements):
            if name not in known:
                raise ValueError(
                    f"unknown phase {name!r}; this pipeline has {sorted(known)}"
                )
        self.phases: list[Phase] = [
            replacements.get(phase.name, phase)
            for phase in base
            if phase.name not in skip
        ]
        self.before = before
        self.after = after

    def run(self, ctx: PipelineContext) -> PipelineContext:
        """Run every phase in order over ``ctx``; returns ``ctx``.

        Phase boundaries are cancellation points: when the calling thread
        armed a :func:`~repro.core.deadline.deadline`, an expired budget
        raises :class:`~repro.core.deadline.DeadlineExceeded` here (the
        long-running phases also poll internally).
        """
        for phase in self.phases:
            check_deadline()
            start = time.perf_counter()
            with span(f"phase.{phase.name}"):
                if self.before is not None:
                    self.before(phase.name, ctx)
                phase.run(ctx)
                if self.after is not None:
                    self.after(phase.name, ctx)
            elapsed = time.perf_counter() - start
            ctx.phase_seconds[phase.name] = (
                ctx.phase_seconds.get(phase.name, 0.0) + elapsed
            )
            METRICS.histogram(
                "repro_phase_seconds",
                "Wall-clock seconds spent in each compile pipeline phase.",
                phase=phase.name,
            ).observe(elapsed)
        return ctx


def compile_core(
    core: FPCore | str,
    target: Target,
    config: CompileConfig | None = None,
    sample_config: SampleConfig | None = None,
    samples: SampleSet | None = None,
    evaluator: RivalEvaluator | None = None,
    pipeline: CompilePipeline | None = None,
    oracle: object | None = None,
) -> CompileResult:
    """Compile one FPCore to a Pareto frontier of programs on ``target``.

    The non-deprecated engine behind ``compile_fpcore``: builds a
    :class:`PipelineContext` and runs ``pipeline`` (default: all six
    phases) over it.  ``core`` may be source text (the parse phase
    consumes it) or an already-parsed :class:`FPCore`.

    Raises :class:`~repro.core.transcribe.Untranscribable` when the
    benchmark cannot be expressed on the target at all (the paper removes
    such benchmark/target pairs from consideration) and
    :class:`~repro.accuracy.sampler.SamplingError` when too few valid
    inputs exist.
    """
    ctx = PipelineContext(
        target=target,
        config=config or CompileConfig(),
        sample_config=sample_config,
        evaluator=evaluator or RivalEvaluator(),
        oracle=oracle,
        source=core if isinstance(core, str) else None,
        core=core if isinstance(core, FPCore) else None,
        samples=samples,
    )
    (pipeline or CompilePipeline()).run(ctx)
    if ctx.result is None:
        raise PipelineError(
            "pipeline finished without building a CompileResult "
            "(score phase skipped? use CompilePipeline.run for partial runs)"
        )
    return ctx.result
