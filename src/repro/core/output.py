"""Code generation: render float programs as C, Python, Julia, or FPCore.

Chassis outputs programs "in either a target-specific format or in the
default FPCore format" (paper section 2).  The generated code is also what a
downstream compiler (e.g. Clang) would consume; Chassis leaves integer,
memory and calling-convention concerns to that compiler (paper section 4.2).
"""

from __future__ import annotations

from ..ir.expr import App, Const, Expr, Num, Var
from ..ir.fpcore import FPCore
from ..ir.printer import expr_to_sexpr, format_fraction
from ..ir.types import F32
from ..targets.target import Target

_C_INFIX = {"add": "+", "sub": "-", "mul": "*", "div": "/"}
_CMP = {"<", "<=", ">", ">=", "==", "!="}


def _base_and_suffix(op_name: str) -> tuple[str, str]:
    base, _, suffix = op_name.partition(".")
    return base, suffix


def to_c(program: Expr, core: FPCore, target: Target, fn_name: str = "") -> str:
    """Render a float program as a C function."""
    ty = "float" if core.precision == F32 else "double"
    fn_name = fn_name or (core.name.replace("-", "_") or "program")
    args = ", ".join(f"{ty} {a}" for a in core.arguments)
    body = _c_expr(program, core.precision)
    return (
        f"#include <math.h>\n\n"
        f"{ty} {fn_name}({args}) {{\n    return {body};\n}}\n"
    )


def _c_expr(expr: Expr, prec: str) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Num):
        literal = format_fraction(expr.value)
        if "/" in literal:
            num, den = literal.split("/")
            return f"({num}.0 / {den}.0)"
        suffix = "f" if prec == F32 else ""
        return literal + (".0" if "." not in literal and "e" not in literal else "") + suffix
    if isinstance(expr, Const):
        return {"PI": "M_PI", "E": "M_E", "INFINITY": "INFINITY", "NAN": "NAN"}[expr.name]
    assert isinstance(expr, App)
    if expr.op == "if":
        c, t, e = (_c_expr(a, prec) for a in expr.args)
        return f"({c} ? {t} : {e})"
    if expr.op in _CMP:
        left, right = (_c_expr(a, prec) for a in expr.args)
        return f"({left} {expr.op} {right})"
    if expr.op in ("and", "or", "not"):
        symbol = {"and": "&&", "or": "||", "not": "!"}[expr.op]
        parts = [_c_expr(a, prec) for a in expr.args]
        return f"(!{parts[0]})" if expr.op == "not" else f"({parts[0]} {symbol} {parts[1]})"
    base, suffix = _base_and_suffix(expr.op)
    args = [_c_expr(a, prec) for a in expr.args]
    if base in _C_INFIX:
        return f"({args[0]} {_C_INFIX[base]} {args[1]})"
    if base == "neg":
        return f"(-{args[0]})"
    if base == "cast":
        return f"(({'float' if suffix == 'f32' else 'double'}){args[0]})"
    fn = base + ("f" if suffix == "f32" else "")
    return f"{fn}({', '.join(args)})"


def to_python(program: Expr, core: FPCore, target: Target, fn_name: str = "") -> str:
    """Render a float program as a Python function over ``math``."""
    fn_name = fn_name or (core.name.replace("-", "_") or "program")
    args = ", ".join(core.arguments)
    body = _py_expr(program)
    return f"import math\n\ndef {fn_name}({args}):\n    return {body}\n"


_PY_FN = {
    "fabs": "abs", "fmin": "min", "fmax": "max",
    "round": "round", "floor": "math.floor", "ceil": "math.ceil",
    "trunc": "math.trunc",
}


def _py_expr(expr: Expr) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Num):
        literal = format_fraction(expr.value)
        return f"({literal})" if "/" in literal else literal
    if isinstance(expr, Const):
        return {"PI": "math.pi", "E": "math.e", "INFINITY": "math.inf", "NAN": "math.nan"}[expr.name]
    assert isinstance(expr, App)
    if expr.op == "if":
        c, t, e = (_py_expr(a) for a in expr.args)
        return f"({t} if {c} else {e})"
    if expr.op in _CMP:
        left, right = (_py_expr(a) for a in expr.args)
        return f"({left} {expr.op} {right})"
    if expr.op in ("and", "or", "not"):
        parts = [_py_expr(a) for a in expr.args]
        return f"(not {parts[0]})" if expr.op == "not" else f"({parts[0]} {expr.op} {parts[1]})"
    base, _suffix = _base_and_suffix(expr.op)
    args = [_py_expr(a) for a in expr.args]
    if base in _C_INFIX:
        return f"({args[0]} {_C_INFIX[base]} {args[1]})"
    if base == "neg":
        return f"(-{args[0]})"
    fn = _PY_FN.get(base, f"math.{base}")
    return f"{fn}({', '.join(args)})"


def to_julia(program: Expr, core: FPCore, target: Target, fn_name: str = "") -> str:
    """Render a float program as a Julia function (helpers used directly)."""
    fn_name = fn_name or (core.name.replace("-", "_") or "program")
    args = ", ".join(core.arguments)
    return f"function {fn_name}({args})\n    return {_jl_expr(program)}\nend\n"


def _jl_expr(expr: Expr) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Num):
        literal = format_fraction(expr.value)
        return f"({literal})" if "/" in literal else literal
    if isinstance(expr, Const):
        return {"PI": "pi", "E": "MathConstants.e", "INFINITY": "Inf", "NAN": "NaN"}[expr.name]
    assert isinstance(expr, App)
    if expr.op == "if":
        c, t, e = (_jl_expr(a) for a in expr.args)
        return f"({c} ? {t} : {e})"
    if expr.op in _CMP:
        left, right = (_jl_expr(a) for a in expr.args)
        return f"({left} {expr.op} {right})"
    base, _suffix = _base_and_suffix(expr.op)
    args = [_jl_expr(a) for a in expr.args]
    if base in _C_INFIX:
        return f"({args[0]} {_C_INFIX[base]} {args[1]})"
    if base == "neg":
        return f"(-{args[0]})"
    if base == "fabs":
        return f"abs({args[0]})"
    return f"{base}({', '.join(args)})"


def to_fpcore(program: Expr, core: FPCore) -> str:
    """Render a float program back as FPCore text (operator names kept)."""
    args = " ".join(core.arguments)
    name = f" {core.name}" if core.name and " " not in core.name else ""
    return (
        f"(FPCore{name} ({args}) :precision {core.precision} "
        f"{expr_to_sexpr(program)})"
    )


def render(program: Expr, core: FPCore, target: Target) -> str:
    """Render in the target's preferred output format."""
    fmt = target.output_format
    if fmt == "c":
        return to_c(program, core, target)
    if fmt == "python":
        return to_python(program, core, target)
    if fmt == "julia":
        return to_julia(program, core, target)
    return to_fpcore(program, core)
