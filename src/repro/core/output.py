"""Code generation: render float programs as C, Python, Julia, or FPCore.

Chassis outputs programs "in either a target-specific format or in the
default FPCore format" (paper section 2).  The generated code is also what a
downstream compiler (e.g. Clang) would consume; Chassis leaves integer,
memory and calling-convention concerns to that compiler (paper section 4.2).
"""

from __future__ import annotations

import keyword
import re

from ..formats import get_format
from ..ir.expr import App, Const, Expr, Num, Var
from ..ir.fpcore import FPCore
from ..ir.printer import expr_to_sexpr, format_fraction
from ..targets.target import Target

_C_INFIX = {"add": "+", "sub": "-", "mul": "*", "div": "/"}
_CMP = {"<", "<=", ">", ">=", "==", "!="}

_IDENTIFIER_JUNK = re.compile(r"[^A-Za-z0-9_]")

#: Names that are syntactically valid identifiers but cannot be used as
#: ones in emitted code: Python keywords (``lambda`` as a parameter is a
#: SyntaxError), C keywords (``double``, ``return``), and the ``math``
#: namespace binding emitted Python relies on (a parameter named ``math``
#: would shadow it and break every ``math.<op>`` reference).
_RESERVED_IDENTIFIERS = frozenset(keyword.kwlist) | frozenset((
    "math",
    "auto", "break", "case", "char", "const", "continue", "default", "do",
    "double", "else", "enum", "extern", "float", "for", "goto", "if",
    "inline", "int", "long", "register", "restrict", "return", "short",
    "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
    "unsigned", "void", "volatile", "while",
))


def sanitize_identifier(name: str, fallback: str = "program") -> str:
    """Turn an FPCore name into a valid C/Python/Julia identifier.

    FPCore names may contain spaces, dots, parens, quotes — anything (they
    are transport-safe via the ``:name`` string property) — but emitted
    function names must match ``[A-Za-z_][A-Za-z0-9_]*``.  Every other
    character becomes ``_``, a leading digit is prefixed, and language
    keywords (plus the ``math`` binding) get a trailing ``_``, so e.g.
    ``2nd try (fast)`` renders as ``_2nd_try__fast_`` and ``lambda`` as
    ``lambda_``.  Distinct names can sanitize to the same identifier;
    callers that need uniqueness pass an explicit ``fn_name`` (argument
    lists are uniquified by :func:`_argument_renames`).
    """
    cleaned = _IDENTIFIER_JUNK.sub("_", name)
    if not cleaned:
        return fallback
    if cleaned[0].isdigit():
        cleaned = "_" + cleaned
    if cleaned in _RESERVED_IDENTIFIERS:
        cleaned += "_"
    return cleaned


def _argument_renames(core: FPCore) -> dict[str, str]:
    """Unique valid identifiers for a core's argument names.

    FPCore argument names are as unconstrained as core names (``x-y`` is
    a fine parameter); emitted functions need real identifiers, uniquified
    because two distinct names may sanitize to the same one.
    """
    renames: dict[str, str] = {}
    used: set[str] = set()
    for name in core.arguments:
        cleaned = sanitize_identifier(name, "arg")
        candidate, counter = cleaned, 1
        while candidate in used:
            counter += 1
            candidate = f"{cleaned}_{counter}"
        used.add(candidate)
        renames[name] = candidate
    return renames


def _renamed_program(program: Expr, renames: dict[str, str]) -> Expr:
    """The program with every argument reference renamed (no-op when all
    names were already valid identifiers)."""
    if all(old == new for old, new in renames.items()):
        return program
    return program.substitute({old: Var(new) for old, new in renames.items()})


def _base_and_suffix(op_name: str) -> tuple[str, str]:
    base, _, suffix = op_name.partition(".")
    return base, suffix


def to_c(program: Expr, core: FPCore, target: Target, fn_name: str = "") -> str:
    """Render a float program as a C function."""
    fmt = get_format(core.precision)
    if fmt.c_type is None:
        raise ValueError(
            f"format {fmt.name} has no C scalar type; "
            f"use a Python-emitting target for it"
        )
    ty = fmt.c_type
    fn_name = fn_name or sanitize_identifier(core.name)
    renames = _argument_renames(core)
    args = ", ".join(f"{ty} {renames[a]}" for a in core.arguments)
    body = _c_expr(_renamed_program(program, renames), core.precision)
    return (
        f"#include <math.h>\n\n"
        f"{ty} {fn_name}({args}) {{\n    return {body};\n}}\n"
    )


def _c_expr(expr: Expr, prec: str) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Num):
        literal = format_fraction(expr.value)
        if "/" in literal:
            num, den = literal.split("/")
            return f"({num}.0 / {den}.0)"
        suffix = get_format(prec).c_literal_suffix
        return literal + (".0" if "." not in literal and "e" not in literal else "") + suffix
    if isinstance(expr, Const):
        return {"PI": "M_PI", "E": "M_E", "INFINITY": "INFINITY", "NAN": "NAN"}[expr.name]
    assert isinstance(expr, App)
    if expr.op == "if":
        c, t, e = (_c_expr(a, prec) for a in expr.args)
        return f"({c} ? {t} : {e})"
    if expr.op in _CMP:
        left, right = (_c_expr(a, prec) for a in expr.args)
        return f"({left} {expr.op} {right})"
    if expr.op in ("and", "or", "not"):
        symbol = {"and": "&&", "or": "||", "not": "!"}[expr.op]
        parts = [_c_expr(a, prec) for a in expr.args]
        return f"(!{parts[0]})" if expr.op == "not" else f"({parts[0]} {symbol} {parts[1]})"
    base, suffix = _base_and_suffix(expr.op)
    args = [_c_expr(a, prec) for a in expr.args]
    if base in _C_INFIX:
        return f"({args[0]} {_C_INFIX[base]} {args[1]})"
    if base == "neg":
        return f"(-{args[0]})"
    if base == "cast":
        return f"(({get_format(suffix).c_type or 'double'}){args[0]})"
    f = "f" if suffix == "f32" else ""
    # The fused-multiply variants have no libm entry points of their own,
    # but all are exactly C's (correctly rounded) fma with sign flips:
    # fms(a,b,c) = a*b - c = fma(a,b,-c), fnma = fma(-a,b,c), and so on.
    if base in ("fms", "fnma", "fnms"):
        a = f"(-{args[0]})" if base in ("fnma", "fnms") else args[0]
        c = f"(-{args[2]})" if base in ("fms", "fnms") else args[2]
        return f"fma{f}({a}, {args[1]}, {c})"
    return f"{base}{f}({', '.join(args)})"


def to_python(program: Expr, core: FPCore, target: Target, fn_name: str = "") -> str:
    """Render a float program as a Python function over ``math``."""
    fn_name = fn_name or sanitize_identifier(core.name)
    renames = _argument_renames(core)
    args = ", ".join(renames[a] for a in core.arguments)
    body = _py_expr(_renamed_program(program, renames))
    return f"import math\n\ndef {fn_name}({args}):\n    return {body}\n"


_PY_FN = {
    "fabs": "abs", "fmin": "min", "fmax": "max",
    "round": "round", "floor": "math.floor", "ceil": "math.ceil",
    "trunc": "math.trunc",
}


def _py_expr(expr: Expr) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Num):
        literal = format_fraction(expr.value)
        return f"({literal})" if "/" in literal else literal
    if isinstance(expr, Const):
        return {"PI": "math.pi", "E": "math.e", "INFINITY": "math.inf", "NAN": "math.nan"}[expr.name]
    assert isinstance(expr, App)
    if expr.op == "if":
        c, t, e = (_py_expr(a) for a in expr.args)
        return f"({t} if {c} else {e})"
    if expr.op in _CMP:
        left, right = (_py_expr(a) for a in expr.args)
        return f"({left} {expr.op} {right})"
    if expr.op in ("and", "or", "not"):
        parts = [_py_expr(a) for a in expr.args]
        return f"(not {parts[0]})" if expr.op == "not" else f"({parts[0]} {expr.op} {parts[1]})"
    base, suffix = _base_and_suffix(expr.op)
    args = [_py_expr(a) for a in expr.args]
    if suffix not in ("", "f32", "f64"):
        # Narrow formats have no native Python arithmetic: every operator
        # routes through its linked implementation (math.add_bf16, ...) so
        # each step rounds into the format.  The f32/f64 paths below keep
        # their historical infix/``math.<fn>`` emission.
        return f"math.{base}_{suffix}({', '.join(args)})"
    if base in _C_INFIX:
        return f"({args[0]} {_C_INFIX[base]} {args[1]})"
    if base == "neg":
        return f"(-{args[0]})"
    if base == "cast":
        # The suffix is semantic here — cast.f32 rounds, cast.f64 is the
        # identity — so it must survive into the emitted name (the
        # execution backend links math.cast_f32 to the target's impl;
        # dropping it would bind both casts to one implementation).
        return f"math.cast_{suffix or 'f64'}({args[0]})"
    fn = _PY_FN.get(base, f"math.{base}")
    return f"{fn}({', '.join(args)})"


def to_julia(program: Expr, core: FPCore, target: Target, fn_name: str = "") -> str:
    """Render a float program as a Julia function (helpers used directly)."""
    fn_name = fn_name or sanitize_identifier(core.name)
    renames = _argument_renames(core)
    args = ", ".join(renames[a] for a in core.arguments)
    body = _jl_expr(_renamed_program(program, renames))
    return f"function {fn_name}({args})\n    return {body}\nend\n"


def _jl_expr(expr: Expr) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Num):
        literal = format_fraction(expr.value)
        return f"({literal})" if "/" in literal else literal
    if isinstance(expr, Const):
        return {"PI": "pi", "E": "MathConstants.e", "INFINITY": "Inf", "NAN": "NaN"}[expr.name]
    assert isinstance(expr, App)
    if expr.op == "if":
        c, t, e = (_jl_expr(a) for a in expr.args)
        return f"({c} ? {t} : {e})"
    if expr.op in _CMP:
        left, right = (_jl_expr(a) for a in expr.args)
        return f"({left} {expr.op} {right})"
    base, _suffix = _base_and_suffix(expr.op)
    args = [_jl_expr(a) for a in expr.args]
    if base in _C_INFIX:
        return f"({args[0]} {_C_INFIX[base]} {args[1]})"
    if base == "neg":
        return f"(-{args[0]})"
    if base == "fabs":
        return f"abs({args[0]})"
    return f"{base}({', '.join(args)})"


def to_fpcore(program: Expr, core: FPCore) -> str:
    """Render a float program back as FPCore text (operator names kept)."""
    args = " ".join(core.arguments)
    name = f" {core.name}" if core.name and " " not in core.name else ""
    return (
        f"(FPCore{name} ({args}) :precision {core.precision} "
        f"{expr_to_sexpr(program)})"
    )


def render(program: Expr, core: FPCore, target: Target) -> str:
    """Render in the target's preferred output format."""
    fmt = target.output_format
    if fmt == "c":
        return to_c(program, core, target)
    if fmt == "python":
        return to_python(program, core, target)
    if fmt == "julia":
        return to_julia(program, core, target)
    return to_fpcore(program, core)
