"""Direct transcription of real expressions into target float programs.

This is the "FPCore translation" every target provides (paper section 6.3):
each real operator maps to the target operator that directly implements it
at the chosen format.  It is used for the *input* programs Chassis starts
from, for lowering Herbie's target-agnostic outputs onto a target, and for
lowering series-expansion candidates.

When an operator has no direct implementation the transcriber can fall back
to *desugaring* it through mathematical definitions (``fma(x,y,z)`` becomes
``x*y + z``); truly missing operations make the expression untranscribable,
mirroring the paper's discard rule.
"""

from __future__ import annotations

from ..ir.expr import App, Const, Expr
from ..ir.ops import COMPARISON_OPS
from ..ir.parser import parse_expr
from ..ir.types import F64
from ..targets.target import Target


class Untranscribable(ValueError):
    """The real expression uses operations the target cannot express."""


#: Desugarings used to eliminate helper operators that a target lacks, e.g.
#: replacing fma with multiply-add on Python (paper section 6.3).  Applied
#: repeatedly until only directly-supported operators remain.
_FALLBACKS: dict[str, str] = {
    "expm1": "(- (exp x) 1)",
    "log1p": "(log (+ 1 x))",
    "log2": "(/ (log x) (log 2))",
    "log10": "(/ (log x) (log 10))",
    "exp2": "(pow 2 x)",
    "hypot": "(sqrt (+ (* x x) (* y y)))",
    "cbrt": "(pow x 1/3)",
    "sinh": "(/ (- (exp x) (exp (neg x))) 2)",
    "cosh": "(/ (+ (exp x) (exp (neg x))) 2)",
    "tanh": "(/ (- (exp x) (exp (neg x))) (+ (exp x) (exp (neg x))))",
    "asinh": "(log (+ x (sqrt (+ (* x x) 1))))",
    "acosh": "(log (+ x (sqrt (- (* x x) 1))))",
    "atanh": "(* 1/2 (log (/ (+ 1 x) (- 1 x))))",
    "neg": "(- 0 x)",
    "fabs": "(fmax x (neg x))",
    "fmin": "(if (< x y) x y)",
    "fmax": "(if (< x y) y x)",
    "atan2": "(atan (/ x y))",
    "fmod": "(- x (* y (trunc (/ x y))))",
    "pow": "(exp (* y (log x)))",
    "tan": "(/ (sin x) (cos x))",
}

_PARAMS = ("x", "y", "z")


def transcribe(
    expr: Expr,
    target: Target,
    ty: str = F64,
    allow_fallbacks: bool = True,
) -> Expr:
    """Lower a real expression to a float program of format ``ty``.

    Raises :class:`Untranscribable` when some operation is fundamentally
    missing on the target (even after desugaring fallbacks).
    """
    index = target.direct_index()

    def lower(node: Expr, depth: int = 0) -> Expr:
        if depth > 40:
            raise Untranscribable("fallback expansion did not terminate")
        if not isinstance(node, App):
            return node
        if node.op == "if":
            return App("if", (
                lower_condition(node.args[0], depth),
                lower(node.args[1], depth),
                lower(node.args[2], depth),
            ))
        direct = index.get((node.op, ty))
        if direct is not None:
            return App(direct.name, tuple(lower(a, depth) for a in node.args))
        fallback = _FALLBACKS.get(node.op)
        if allow_fallbacks and fallback is not None:
            template = parse_expr(fallback)
            bindings = dict(zip(_PARAMS, node.args))
            return lower(template.substitute(bindings), depth + 1)
        raise Untranscribable(
            f"target {target.name} has no implementation of {node.op!r} at {ty}"
        )

    def lower_condition(node: Expr, depth: int) -> Expr:
        if isinstance(node, App):
            if node.op in COMPARISON_OPS:
                return App(node.op, tuple(lower(a, depth) for a in node.args))
            if node.op in ("and", "or", "not"):
                return App(
                    node.op, tuple(lower_condition(a, depth) for a in node.args)
                )
        if isinstance(node, Const):
            return node
        raise Untranscribable(f"cannot lower condition {node!r}")

    return lower(expr)


def transcribe_with_poly(
    expr: Expr, target: Target, ty: str = F64, degree: int = 6
) -> Expr:
    """Transcription with polynomial-approximation fallback (paper section 2).

    Targets like Arith and AVX lack transcendental functions entirely;
    "AVX code must use polynomial approximations instead".  When direct
    transcription fails because an operator is fundamentally missing, this
    replaces the offending (univariate) subexpression by a truncated series
    expansion and lowers that.  The result is a *starting point* — the
    improvement loop then measures and refines its accuracy honestly.
    """
    try:
        return transcribe(expr, target, ty)
    except Untranscribable:
        pass
    from .series import series_candidates

    index = target.direct_index()

    def lower(node: Expr) -> Expr:
        try:
            return transcribe(node, target, ty)
        except Untranscribable:
            pass
        if isinstance(node, App):
            direct = index.get((node.op, ty))
            if node.op == "if":
                return App("if", (
                    _lower_condition(node.args[0]),
                    lower(node.args[1]),
                    lower(node.args[2]),
                ))
            if direct is not None:
                # The operator itself is fine: the failure is in a child.
                return App(direct.name, tuple(lower(a) for a in node.args))
            for candidate in series_candidates(node, degree=degree):
                try:
                    return transcribe(candidate, target, ty)
                except Untranscribable:
                    continue
        raise Untranscribable(
            f"target {target.name}: no implementation or polynomial "
            f"approximation for {node!r}"
        )

    def _lower_condition(cond: Expr) -> Expr:
        from ..ir.ops import COMPARISON_OPS

        if isinstance(cond, App) and cond.op in COMPARISON_OPS:
            return App(cond.op, tuple(lower(a) for a in cond.args))
        if isinstance(cond, App) and cond.op in ("and", "or", "not"):
            return App(cond.op, tuple(_lower_condition(a) for a in cond.args))
        return cond

    return lower(expr)


def transcribable(expr: Expr, target: Target, ty: str = F64) -> bool:
    """True when :func:`transcribe` would succeed."""
    try:
        transcribe(expr, target, ty)
    except Untranscribable:
        return False
    return True
