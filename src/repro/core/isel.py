"""Instruction selection modulo equivalence (paper section 5.1).

The heavyweight rewrite pass: build an e-graph from a (float) subexpression,
saturate it with mathematical identities *plus* the target's desugar/lower
rules — producing mixed real/float e-classes whose equivalence relation is
"equal as real numbers" — then multi-extract well-typed float variants with
the typed extractor.

Saturation dominates the improvement loop's cost, and the loop asks for
variants of the *same* subexpression many times (candidates share subtrees,
and localization re-nominates hot paths across iterations).  A
:class:`SaturationCache` therefore memoizes saturated e-graphs per
(subexpression, ruleset, limits) within one loop run — extraction is cheap
against a cached graph, and re-extraction for a different requested format
reuses the cached typed extractor outright.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..egraph.egraph import EGraph
from ..egraph.multi_extract import extract_variants
from ..egraph.runner import RunnerLimits, RunnerReport, run_rules
from ..egraph.stats import current_sink
from ..egraph.typed_extract import TypedExtractor
from ..ir.expr import Expr
from ..ir.types import F64
from ..obs.metrics import METRICS
from ..rules.registry import rules_for_operators
from ..targets.target import Target
from ..cost.model import TargetCostModel


#: Default saturation budget for one instruction-selection run.  The paper
#: caps e-graphs at 8000 nodes; Python is slower, so the default is lower
#: and configurable via CompileConfig.
DEFAULT_ISEL_LIMITS = RunnerLimits(
    max_iterations=4, max_nodes=2500, max_matches_per_rule=250, time_limit=8.0
)


_RULES_CACHE: dict[str, list] = {}


def _rules_for(target: Target) -> list:
    """Math rules pruned to the target's reachable operator vocabulary,
    plus the target's desugaring rules (computed once per target)."""
    cached = _RULES_CACHE.get(target.name)
    if cached is not None:
        return cached
    reachable: set[str] = set()
    for op in target.operators.values():
        reachable |= op.approx.operators()
    math_rules = list(rules_for_operators(reachable))
    rules = math_rules + target.desugar_rules()
    _RULES_CACHE[target.name] = rules
    return rules


@dataclass
class _SaturatedEntry:
    """One memoized saturation: the graph, its root, and warm extractors."""

    egraph: EGraph
    root: int
    report: RunnerReport
    #: frozen var_types -> TypedExtractor (reused while the graph's
    #: generation is unchanged, which it always is — extraction never
    #: mutates the graph).
    extractors: dict[tuple, TypedExtractor] = field(default_factory=dict)


class SaturationCache:
    """Saturated e-graphs memoized per (subexpression, target, limits).

    Owned by one :class:`~repro.core.loop.ImprovementLoop` run (the ruleset
    is a function of the target there, so the target name keys the ruleset
    too).  Entries are LRU-bounded: each holds an e-graph of up to
    ``limits.max_nodes`` nodes.  Saturation results are deterministic in
    the inputs (modulo the wall-clock ``time_limit``, which pre-cache
    behavior was equally subject to), so a hit is equivalent to re-running
    the rules — minus the entire saturation cost.
    """

    def __init__(self, max_entries: int = 64):
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, _SaturatedEntry] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def saturated(
        self, subexpr: Expr, target: Target, limits: RunnerLimits
    ) -> _SaturatedEntry:
        """The saturated e-graph for ``subexpr`` (cached or fresh)."""
        key = (subexpr, target.name, limits.key())
        entry = self._entries.get(key)
        sink = current_sink()
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            if sink is not None:
                sink.saturation_hits += 1
            METRICS.counter(
                "repro_saturation_cache_total",
                "Improvement-loop saturation requests by cache outcome.",
                result="hit",
            ).inc()
            return entry
        self.misses += 1
        if sink is not None:
            sink.saturation_misses += 1
        METRICS.counter(
            "repro_saturation_cache_total",
            "Improvement-loop saturation requests by cache outcome.",
            result="miss",
        ).inc()
        egraph = EGraph()
        root = egraph.add_expr(subexpr)
        report = run_rules(egraph, _rules_for(target), limits)
        entry = _SaturatedEntry(egraph=egraph, root=root, report=report)
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return entry

    def extractor(
        self,
        entry: _SaturatedEntry,
        model: TargetCostModel,
        var_types: dict[str, str],
    ) -> TypedExtractor:
        """A typed extractor over a cached graph, itself cached."""
        key = tuple(sorted(var_types.items()))
        extractor = entry.extractors.get(key)
        if extractor is None:
            extractor = TypedExtractor(entry.egraph, model, var_types)
            entry.extractors[key] = extractor
        return extractor


def instruction_select(
    subexpr: Expr,
    target: Target,
    ty: str = F64,
    var_types: dict[str, str] | None = None,
    limits: RunnerLimits = DEFAULT_ISEL_LIMITS,
    max_variants: int = 40,
    cache: SaturationCache | None = None,
) -> list[Expr]:
    """Generate well-typed float variants of ``subexpr`` on ``target``.

    ``subexpr`` may be a float program, a real expression, or mixed; the
    desugaring rules connect all three views inside one e-graph.  Returns
    candidate programs of format ``ty``, cheapest-first, including at least
    the input itself when it is already well-typed.  ``cache`` (when given)
    memoizes the saturated e-graph and typed extractor across calls, so
    repeated selections of one subexpression only pay for extraction.
    """
    var_types = var_types or {name: ty for name in subexpr.free_vars()}
    model = TargetCostModel(target)
    if cache is not None:
        entry = cache.saturated(subexpr, target, limits)
        extractor = cache.extractor(entry, model, var_types)
        return extract_variants(
            entry.egraph, extractor, entry.root, ty, limit=max_variants
        )
    egraph = EGraph()
    root = egraph.add_expr(subexpr)
    run_rules(egraph, _rules_for(target), limits)
    extractor = TypedExtractor(egraph, model, var_types)
    return extract_variants(egraph, extractor, root, ty, limit=max_variants)
