"""Instruction selection modulo equivalence (paper section 5.1).

The heavyweight rewrite pass: build an e-graph from a (float) subexpression,
saturate it with mathematical identities *plus* the target's desugar/lower
rules — producing mixed real/float e-classes whose equivalence relation is
"equal as real numbers" — then multi-extract well-typed float variants with
the typed extractor.
"""

from __future__ import annotations

from ..egraph.egraph import EGraph
from ..egraph.multi_extract import extract_variants
from ..egraph.runner import RunnerLimits, run_rules
from ..egraph.typed_extract import TypedExtractor
from ..ir.expr import Expr
from ..ir.types import F64
from ..rules.registry import rules_for_operators
from ..targets.target import Target
from ..cost.model import TargetCostModel


#: Default saturation budget for one instruction-selection run.  The paper
#: caps e-graphs at 8000 nodes; Python is slower, so the default is lower
#: and configurable via CompileConfig.
DEFAULT_ISEL_LIMITS = RunnerLimits(
    max_iterations=4, max_nodes=2500, max_matches_per_rule=250, time_limit=8.0
)


_RULES_CACHE: dict[str, list] = {}


def _rules_for(target: Target) -> list:
    """Math rules pruned to the target's reachable operator vocabulary,
    plus the target's desugaring rules (computed once per target)."""
    cached = _RULES_CACHE.get(target.name)
    if cached is not None:
        return cached
    reachable: set[str] = set()
    for op in target.operators.values():
        reachable |= op.approx.operators()
    math_rules = list(rules_for_operators(reachable))
    rules = math_rules + target.desugar_rules()
    _RULES_CACHE[target.name] = rules
    return rules


def instruction_select(
    subexpr: Expr,
    target: Target,
    ty: str = F64,
    var_types: dict[str, str] | None = None,
    limits: RunnerLimits = DEFAULT_ISEL_LIMITS,
    max_variants: int = 40,
) -> list[Expr]:
    """Generate well-typed float variants of ``subexpr`` on ``target``.

    ``subexpr`` may be a float program, a real expression, or mixed; the
    desugaring rules connect all three views inside one e-graph.  Returns
    candidate programs of format ``ty``, cheapest-first, including at least
    the input itself when it is already well-typed.
    """
    var_types = var_types or {name: ty for name in subexpr.free_vars()}
    egraph = EGraph()
    root = egraph.add_expr(subexpr)
    run_rules(egraph, _rules_for(target), limits)

    model = TargetCostModel(target)
    extractor = TypedExtractor(egraph, model, var_types)
    return extract_variants(egraph, extractor, root, ty, limit=max_variants)
