"""Chassis' historical top-level entry point (deprecated shim).

The monolithic :func:`compile_fpcore` is superseded by the explicit phase
pipeline (:mod:`repro.core.pipeline`) and the session API
(:class:`repro.api.ChassisSession`), which own the evaluator and caches
across calls.  It remains importable for existing callers and delegates to
:func:`~repro.core.pipeline.compile_core`; :class:`CompileResult` also
lives in the pipeline module now and is re-exported here.
"""

from __future__ import annotations

import warnings

from ..accuracy.sampler import SampleConfig, SampleSet
from ..ir.fpcore import FPCore
from ..targets.target import Target
from .loop import CompileConfig
from .pipeline import CompileResult, compile_core

__all__ = ["CompileResult", "compile_fpcore"]


def compile_fpcore(
    core: FPCore,
    target: Target,
    config: CompileConfig | None = None,
    sample_config: SampleConfig | None = None,
    samples: SampleSet | None = None,
) -> CompileResult:
    """Deprecated: use :meth:`repro.api.ChassisSession.compile` (or
    :func:`repro.core.pipeline.compile_core` for a one-shot call).

    Behaves exactly as before — one full parse→…→score pipeline run with a
    fresh evaluator — but shares no state between calls, which is what the
    session API exists to fix.
    """
    warnings.warn(
        "compile_fpcore is deprecated; use repro.api.ChassisSession.compile "
        "(or repro.core.pipeline.compile_core)",
        DeprecationWarning,
        stacklevel=2,
    )
    return compile_core(core, target, config, sample_config, samples=samples)
