"""Chassis' top-level entry point: compile an FPCore for a target.

Ties together sampling, the iterative improvement loop, regime inference
and final test-set scoring (the architecture of paper figure 1), returning
a Pareto frontier of target-specific programs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..accuracy.sampler import SampleConfig, SampleSet, sample_core
from ..accuracy.scoring import score_program
from ..cost.model import TargetCostModel
from ..ir.fpcore import FPCore
from ..rival.eval import RivalEvaluator
from ..targets.target import Target
from .candidates import Candidate, ParetoFrontier
from .loop import CompileConfig, ImprovementLoop
from .transcribe import Untranscribable, transcribe, transcribe_with_poly


@dataclass
class CompileResult:
    """Everything produced by one Chassis compilation."""

    core: FPCore
    target: Target
    #: Pareto frontier scored on held-out *test* points.
    frontier: ParetoFrontier
    #: The directly-transcribed input program, test-scored (the baseline
    #: "black square" of paper figure 8).
    input_candidate: Candidate
    samples: SampleSet
    elapsed: float

    def best_for_error(self, error_bound: float) -> Candidate | None:
        """Fastest output meeting an accuracy bound (bits of error)."""
        return self.frontier.fastest_within(error_bound)


def compile_fpcore(
    core: FPCore,
    target: Target,
    config: CompileConfig | None = None,
    sample_config: SampleConfig | None = None,
    samples: SampleSet | None = None,
) -> CompileResult:
    """Compile one FPCore to a Pareto frontier of programs on ``target``.

    Raises :class:`~repro.core.transcribe.Untranscribable` when the
    benchmark cannot be expressed on the target at all (the paper removes
    such benchmark/target pairs from consideration) and
    :class:`~repro.accuracy.sampler.SamplingError` when too few valid
    inputs exist.
    """
    start = time.monotonic()
    config = config or CompileConfig()
    evaluator = RivalEvaluator()
    if samples is None:
        samples = sample_core(core, sample_config, evaluator)

    # Fail fast (before sampling-dependent work) if the target can't even
    # express the input program; targets lacking transcendentals fall back
    # to polynomial approximation (paper section 2).
    try:
        input_program = transcribe(core.body, target, core.precision)
    except Untranscribable:
        input_program = transcribe_with_poly(core.body, target, core.precision)

    loop = ImprovementLoop(core, target, samples, config, evaluator)
    train_frontier = loop.run()

    model = TargetCostModel(target)
    test_frontier = ParetoFrontier()
    for candidate in train_frontier:
        error = score_program(
            candidate.program, target, samples.test, samples.test_exact, core.precision
        )
        test_frontier.add(
            Candidate(
                program=candidate.program,
                cost=candidate.cost,
                error=error,
                point_errors=candidate.point_errors,
                origin=candidate.origin,
            )
        )

    input_candidate = Candidate(
        program=input_program,
        cost=model.program_cost(input_program),
        error=score_program(
            input_program, target, samples.test, samples.test_exact, core.precision
        ),
        origin="input",
    )

    return CompileResult(
        core=core,
        target=target,
        frontier=test_frontier,
        input_candidate=input_candidate,
        samples=samples,
        elapsed=time.monotonic() - start,
    )
