"""Chassis' iterative improvement loop (paper sections 2 and 5.2).

Each iteration: (1) pick the subexpressions most worth rewriting, blending
the *local error* and *cost opportunity* heuristics; (2) run instruction
selection modulo equivalence (plus series expansion) on each to produce
variants; (3) substitute the variants back, score every new program for
training accuracy and cost, and keep the Pareto frontier.  After the final
iteration, regime inference fuses complementary candidates with branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..accuracy.localerror import local_errors
from ..accuracy.sampler import SampleSet
from ..accuracy.scoring import pointwise_errors
from ..cost.model import TargetCostModel
from ..cost.opportunity import cost_opportunities
from ..egraph.runner import RunnerLimits
from ..ir.expr import Expr
from ..ir.fpcore import FPCore
from ..obs.trace import span
from ..rival.eval import RivalEvaluator
from ..targets.target import Target
from ..deadline import check_deadline
from .candidates import Candidate, ParetoFrontier
from .isel import DEFAULT_ISEL_LIMITS, SaturationCache, instruction_select
from .regimes import infer_regimes
from .series import series_candidates
from .transcribe import transcribe, transcribe_with_poly


@dataclass
class CompileConfig:
    """Resource/quality knobs for one compilation (see DESIGN.md scale knobs)."""

    iterations: int = 2
    #: How many frontier programs to expand per iteration.
    work_candidates: int = 2
    #: How many subexpressions each heuristic nominates per program.
    top_subexprs: int = 2
    #: Variants requested from multi-extraction per subexpression.
    max_variants: int = 25
    #: Training points used by the (expensive) local-error heuristic.
    localize_points: int = 16
    isel_limits: RunnerLimits = field(default_factory=lambda: DEFAULT_ISEL_LIMITS)
    enable_series: bool = True
    series_degree: int = 3
    enable_regimes: bool = True
    max_regimes: int = 3
    #: Bits of local error below which a node isn't worth localizing.
    min_local_error: float = 0.4
    #: Cost-opportunity below which a node isn't worth localizing.
    min_opportunity: float = 0.5
    #: Hard cap on new programs scored per iteration.
    max_new_programs: int = 160


class ImprovementLoop:
    """Stateful driver for iterative improvement of one benchmark."""

    def __init__(
        self,
        core: FPCore,
        target: Target,
        samples: SampleSet,
        config: CompileConfig | None = None,
        evaluator: RivalEvaluator | None = None,
    ):
        self.core = core
        self.target = target
        self.samples = samples
        self.config = config or CompileConfig()
        self.evaluator = evaluator or RivalEvaluator()
        self.model = TargetCostModel(target)
        self.ty = core.precision
        self.var_types = dict(core.arg_types)
        self._expanded: set[Expr] = set()
        # Saturated e-graphs shared across this run's candidates: the many
        # programs sharing subtrees (and re-nominated hot paths across
        # iterations) saturate each distinct subexpression once.
        self._saturations = SaturationCache()

    @property
    def saturation_hits(self) -> int:
        """Candidate expansions answered from the saturation cache."""
        return self._saturations.hits

    # --- scoring -------------------------------------------------------------------

    def score(self, program: Expr, origin: str) -> Candidate:
        """Score a program on the training set (cost + mean bits of error)."""
        try:
            errors = pointwise_errors(
                program, self.target, self.samples.train,
                self.samples.train_exact, self.ty,
            )
        except KeyError:
            errors = [64.0] * len(self.samples.train)
        mean_error = sum(errors) / max(1, len(errors))
        try:
            cost = self.model.program_cost(program)
        except KeyError:
            cost = float("inf")
        return Candidate(
            program=program,
            cost=cost,
            error=mean_error,
            point_errors=tuple(errors),
            origin=origin,
        )

    # --- localization -----------------------------------------------------------------

    def localize(self, program: Expr) -> list[tuple[int, ...]]:
        """Pick the subexpression paths most worth rewriting (paper 5.2)."""
        points = self.samples.train[: self.config.localize_points]
        errs = local_errors(program, self.target, points, self.ty, self.evaluator)
        opps = cost_opportunities(program, self.target, self.ty, self.var_types)

        by_error = sorted(
            (p for p, e in errs.items() if e >= self.config.min_local_error),
            key=lambda p: -errs[p],
        )[: self.config.top_subexprs]
        by_opportunity = sorted(
            (p for p, o in opps.items() if o >= self.config.min_opportunity),
            key=lambda p: -opps[p],
        )[: self.config.top_subexprs]

        paths: list[tuple[int, ...]] = []
        for path in by_error + by_opportunity:
            if path not in paths:
                paths.append(path)
        # Always consider the whole program when it is small enough: series
        # expansion and regrouping at the root find candidates (like a
        # whole-expression polynomial) that no subexpression rewrite can.
        if () not in paths and program.size() <= 30:
            paths.append(())
        return paths

    # --- candidate generation ----------------------------------------------------------

    def variants_for(self, program: Expr, path: tuple[int, ...]) -> list[Expr]:
        """Instruction-selection and series variants at one subexpression."""
        subexpr = program.at(path)
        variants = instruction_select(
            subexpr,
            self.target,
            ty=self._type_at(program, path),
            var_types=self.var_types,
            limits=self.config.isel_limits,
            max_variants=self.config.max_variants,
            cache=self._saturations,
        )
        if self.config.enable_series:
            real = self.target.desugar_expr(subexpr)
            for series_expr in series_candidates(real, self.config.series_degree):
                try:
                    lowered = transcribe(series_expr, self.target, self._type_at(program, path))
                except Exception:
                    continue
                variants.append(lowered)
        return variants

    def _type_at(self, program: Expr, path: tuple[int, ...]) -> str:
        from ..cost.opportunity import infer_types

        return infer_types(program, self.target, self.ty).get(path, self.ty)

    # --- the loop ------------------------------------------------------------------------

    def run(self, with_regimes: bool | None = None) -> ParetoFrontier:
        """Run the full loop; returns the training-scored Pareto frontier.

        ``with_regimes`` overrides ``config.enable_regimes`` (the pipeline's
        regimes phase passes ``False`` here and applies
        :meth:`add_regimes` itself, so inference never runs twice).
        """
        initial = transcribe_with_poly(self.core.body, self.target, self.ty)
        frontier = ParetoFrontier([self.score(initial, "initial")])

        for _iteration in range(self.config.iterations):
            check_deadline()
            work = self._select_work(frontier)
            if not work:
                break
            with span("improve.iteration", iteration=_iteration) as iter_span:
                new_candidates: list[Candidate] = []
                seen: set[Expr] = set()
                for candidate in work:
                    self._expanded.add(candidate.program)
                    for path in self.localize(candidate.program):
                        check_deadline()
                        for variant in self.variants_for(candidate.program, path):
                            new_program = candidate.program.replace_at(path, variant)
                            if new_program in seen or new_program == candidate.program:
                                continue
                            seen.add(new_program)
                            new_candidates.append(self.score(new_program, "isel"))
                            if len(new_candidates) >= self.config.max_new_programs:
                                break
                        if len(new_candidates) >= self.config.max_new_programs:
                            break
                if iter_span is not None:
                    iter_span["attrs"].update(
                        expanded=len(work),
                        scored=len(new_candidates),
                        saturation_hits=self._saturations.hits,
                    )
            frontier.update(new_candidates)

        if self.config.enable_regimes if with_regimes is None else with_regimes:
            self.add_regimes(frontier)
        return frontier

    def _select_work(self, frontier: ParetoFrontier) -> list[Candidate]:
        """Expand the most accurate, the cheapest, and knee candidates."""
        ranked = frontier.sorted_by_cost()
        picks: list[Candidate] = []
        for candidate in (frontier.best_error(), frontier.best_cost(), *ranked):
            if candidate.program not in self._expanded and candidate not in picks:
                picks.append(candidate)
            if len(picks) >= self.config.work_candidates:
                break
        return picks

    def add_regimes(self, frontier: ParetoFrontier) -> None:
        """Regime inference over ``frontier``, in place (paper section 5.4)."""
        candidates = frontier.sorted_by_cost()
        with span("improve.regimes", candidates=len(candidates)):
            branched = infer_regimes(
                candidates,
                self.samples.train,
                list(self.core.arguments),
                max_regimes=self.config.max_regimes,
            )
        if branched is not None:
            frontier.add(self.score(branched, "regimes"))


def improve(
    core: FPCore,
    target: Target,
    samples: SampleSet,
    config: CompileConfig | None = None,
) -> ParetoFrontier:
    """Convenience wrapper: run the improvement loop once."""
    return ImprovementLoop(core, target, samples, config).run()
