"""Candidate programs and Pareto frontiers.

Chassis' iterative loop scores every generated program for (cost, error)
and retains the Pareto-optimal subset — "the most accurate programs for any
given cost bound" (paper section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from ..ir.expr import Expr
from ..ir.printer import expr_to_sexpr


@dataclass(frozen=True)
class Candidate:
    """One scored program: estimated cost plus measured training error."""

    program: Expr
    cost: float
    error: float
    #: Per-training-point bits of error (kept for regime inference).
    point_errors: tuple[float, ...] = field(default=(), compare=False)
    #: Provenance note ("initial", "isel", "series", "regimes", ...).
    origin: str = ""

    def dominates(self, other: "Candidate") -> bool:
        """Weak Pareto dominance on (cost, error)."""
        return (
            self.cost <= other.cost
            and self.error <= other.error
            and (self.cost < other.cost or self.error < other.error)
        )

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[cost={self.cost:.1f} err={self.error:.2f}] {expr_to_sexpr(self.program)}"


class ParetoFrontier:
    """A mutable set of mutually non-dominated candidates."""

    def __init__(self, candidates: Iterable[Candidate] = ()):
        self._items: list[Candidate] = []
        for candidate in candidates:
            self.add(candidate)

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(self.sorted_by_cost())

    def add(self, candidate: Candidate) -> bool:
        """Insert if non-dominated; evict anything it dominates.

        Returns True when the candidate was kept.
        """
        for existing in self._items:
            if existing.dominates(candidate) or (
                existing.cost == candidate.cost and existing.error == candidate.error
            ):
                return False
        self._items = [c for c in self._items if not candidate.dominates(c)]
        self._items.append(candidate)
        return True

    def update(self, candidates: Iterable[Candidate]) -> int:
        """Add many candidates; returns how many were kept."""
        return sum(1 for c in candidates if self.add(c))

    def sorted_by_cost(self) -> list[Candidate]:
        """Candidates from cheapest (least accurate) to most expensive."""
        return sorted(self._items, key=lambda c: (c.cost, c.error))

    def best_error(self) -> Candidate:
        """The most accurate candidate (ties broken toward cheap)."""
        if not self._items:
            raise ValueError("empty frontier")
        return min(self._items, key=lambda c: (c.error, c.cost))

    def best_cost(self) -> Candidate:
        """The cheapest candidate (ties broken toward accurate)."""
        if not self._items:
            raise ValueError("empty frontier")
        return min(self._items, key=lambda c: (c.cost, c.error))

    def fastest_within(self, error_bound: float) -> Candidate | None:
        """The cheapest candidate whose error is <= ``error_bound``."""
        feasible = [c for c in self._items if c.error <= error_bound]
        if not feasible:
            return None
        return min(feasible, key=lambda c: c.cost)

    def rescored(self, scores: dict[int, tuple[float, float]]) -> "ParetoFrontier":
        """A new frontier with (cost, error) replaced per candidate index."""
        out = ParetoFrontier()
        for i, candidate in enumerate(self._items):
            cost, error = scores.get(i, (candidate.cost, candidate.error))
            out.add(replace(candidate, cost=cost, error=error))
        return out
