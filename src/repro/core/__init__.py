"""Chassis core: the target-aware numerical compiler."""

from .candidates import Candidate, ParetoFrontier
from .chassis import compile_fpcore
from .isel import instruction_select
from .loop import CompileConfig, ImprovementLoop, improve
from .pipeline import (
    CompilePipeline,
    CompileResult,
    Phase,
    PipelineContext,
    compile_core,
    default_phases,
)
from .output import render, to_c, to_fpcore, to_julia, to_python
from .regimes import infer_regimes
from .series import series_candidates, taylor_coeffs
from .transcribe import Untranscribable, transcribable, transcribe, transcribe_with_poly

__all__ = [
    "Candidate",
    "ParetoFrontier",
    "CompileConfig",
    "CompileResult",
    "CompilePipeline",
    "PipelineContext",
    "Phase",
    "compile_core",
    "compile_fpcore",
    "default_phases",
    "improve",
    "ImprovementLoop",
    "instruction_select",
    "infer_regimes",
    "series_candidates",
    "taylor_coeffs",
    "transcribe",
    "transcribable",
    "transcribe_with_poly",
    "Untranscribable",
    "render",
    "to_c",
    "to_python",
    "to_julia",
    "to_fpcore",
]
