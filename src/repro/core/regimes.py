"""Regime inference: combining candidates with branch conditions.

Herbie's regime-inference step (shared by Chassis, paper section 2) notices
that different candidates win on different parts of the input domain and
fuses them under ``if`` conditions on one input variable.  The branch
condition costs are priced by the target's conditional style, so
vector-style targets (AVX, NumPy) are charged for both branches — which is
why Chassis uses branches sparingly there (paper section 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

from ..ir.expr import App, Expr, Num, Var
from .candidates import Candidate

#: Error improvement (bits/point) a branch must buy to be worth adding.
_MIN_GAIN = 0.35
#: Candidate split thresholds per variable (quantiles of the sample).
_N_THRESHOLDS = 7


@dataclass(frozen=True)
class Regime:
    """One branch: use ``candidate`` when the split variable < threshold."""

    candidate_index: int
    upper: float | None  # None = open-ended final regime


def _total_error(errors: Sequence[float]) -> float:
    return sum(errors)


def infer_regimes(
    candidates: list[Candidate],
    points: Sequence[dict],
    variables: Sequence[str],
    max_regimes: int = 3,
    branch_penalty: float = 2.0,
) -> Expr | None:
    """Build a branched program improving on every single candidate.

    Uses each candidate's stored per-point errors.  Returns None when no
    split beats the best single candidate by at least the penalty margin.
    """
    usable = [c for c in candidates if len(c.point_errors) == len(points)]
    if len(usable) < 2 or len(points) < 8 or not variables:
        return None

    best_single = min(_total_error(c.point_errors) for c in usable)
    best_plan: tuple[float, str, list[Regime]] | None = None

    for var in variables:
        order = sorted(range(len(points)), key=lambda i: points[i][var])
        values = [points[i][var] for i in order]
        errors = [[c.point_errors[i] for i in order] for c in usable]
        thresholds = _candidate_thresholds(values)
        plan = _best_split_plan(errors, values, thresholds, max_regimes, branch_penalty)
        if plan is None:
            continue
        score, regimes = plan
        if best_plan is None or score < best_plan[0]:
            best_plan = (score, var, regimes)

    if best_plan is None:
        return None
    score, var, regimes = best_plan
    if score >= best_single - max(_MIN_GAIN * len(points), branch_penalty):
        return None
    if len({r.candidate_index for r in regimes}) < 2:
        return None
    return _build_branches(usable, var, regimes)


def _candidate_thresholds(sorted_values: list[float]) -> list[float]:
    """Quantile midpoints used as potential split points."""
    n = len(sorted_values)
    out = []
    for k in range(1, _N_THRESHOLDS + 1):
        i = k * n // (_N_THRESHOLDS + 1)
        if 0 < i < n and sorted_values[i - 1] < sorted_values[i]:
            out.append((sorted_values[i - 1] + sorted_values[i]) / 2.0)
    return sorted(set(out))


def _best_split_plan(
    errors: list[list[float]],
    values: list[float],
    thresholds: list[float],
    max_regimes: int,
    branch_penalty: float,
) -> tuple[float, list[Regime]] | None:
    """Search 1- and 2-split plans over the threshold grid."""
    n = len(values)
    if n == 0 or not thresholds:
        return None

    def seg_best(lo: int, hi: int) -> tuple[float, int]:
        """(error, candidate) for points[lo:hi]."""
        best_c, best_e = 0, float("inf")
        for ci, errs in enumerate(errors):
            e = sum(errs[lo:hi])
            if e < best_e:
                best_e, best_c = e, ci
        return best_e, best_c

    def cut_index(threshold: float) -> int:
        from bisect import bisect_right

        return bisect_right(values, threshold)

    plans: list[tuple[float, list[Regime]]] = []
    whole_e, whole_c = seg_best(0, n)
    plans.append((whole_e, [Regime(whole_c, None)]))

    for t1 in thresholds:
        i1 = cut_index(t1)
        if i1 in (0, n):
            continue
        e1, c1 = seg_best(0, i1)
        e2, c2 = seg_best(i1, n)
        plans.append((e1 + e2 + branch_penalty, [Regime(c1, t1), Regime(c2, None)]))
        if max_regimes >= 3:
            for t2 in thresholds:
                if t2 <= t1:
                    continue
                i2 = cut_index(t2)
                if i2 <= i1 or i2 >= n:
                    continue
                e2a, c2a = seg_best(i1, i2)
                e3, c3 = seg_best(i2, n)
                plans.append(
                    (
                        e1 + e2a + e3 + 2 * branch_penalty,
                        [Regime(c1, t1), Regime(c2a, t2), Regime(c3, None)],
                    )
                )

    return min(plans, key=lambda p: p[0]) if plans else None


def _build_branches(
    candidates: list[Candidate], var: str, regimes: list[Regime]
) -> Expr:
    """Nest regimes into ``(if (<= var t) ... )`` expressions."""
    program = candidates[regimes[-1].candidate_index].program
    for regime in reversed(regimes[:-1]):
        assert regime.upper is not None
        condition = App("<=", (Var(var), Num(Fraction(regime.upper))))
        program = App(
            "if", (condition, candidates[regime.candidate_index].program, program)
        )
    return program
