"""Series-expansion candidate generation (paper sections 2, 3.1).

Like Herbie, Chassis supplements rewriting with Taylor expansions: a
subexpression can be replaced by a truncated series around 0 or around
infinity.  This is also how Chassis implements transcendental functions on
targets that lack them (the paper's AVX discussion: "AVX code must use
polynomial approximations instead").

Expansions are computed numerically with mpmath on the subexpression's
*desugaring* and returned as real polynomial expressions in Horner form;
the caller lowers them through instruction selection or transcription.
"""

from __future__ import annotations

import math
from fractions import Fraction

import mpmath
from mpmath import mp, mpf

from ..ir.expr import Expr, Num, Var, add, div, mul
from ..targets.synth import mp_eval

#: Working precision for numerical differentiation.
_SERIES_PREC = 160
#: Coefficients smaller than this (relative to the largest) are dropped.
_COEFF_CUTOFF = mpf("1e-40")


def _to_number(coeff: mpf) -> Fraction | None:
    """Convert an mpf coefficient to an exact literal (via nearest double)."""
    if not mpmath.isfinite(coeff):
        return None
    try:
        value = float(coeff)
    except (OverflowError, ValueError):
        return None
    if not math.isfinite(value):
        return None  # overflowed the double range: degenerate series
    if value == 0.0 and abs(coeff) > 0:
        return None  # underflowed: the series is degenerate here
    return Fraction(value)


def _horner(var_expr: Expr, coeffs: list[Fraction]) -> Expr:
    """Build sum(c_k * v^k) in Horner form, skipping zero coefficients."""
    poly: Expr = Num(coeffs[-1])
    for coeff in reversed(coeffs[:-1]):
        poly = mul(var_expr, poly)
        if coeff != 0:
            poly = add(Num(coeff), poly)
    return poly


def taylor_coeffs(
    real_expr: Expr, var: str, around: float, degree: int, direction: int = 0
) -> list[Fraction] | None:
    """Taylor coefficients of the expression in ``var`` at ``around``.

    ``direction`` follows mpmath's convention: 0 is a two-sided (central)
    expansion, +1/-1 expand one-sidedly (used for expansions at +/-
    infinity, which often have a pole on the other side).  Returns None
    when the expression is singular there or differentiation fails.
    """
    with mp.workprec(_SERIES_PREC):
        def fn(t):
            try:
                return mp_eval(real_expr, {var: mpf(around) + t})
            except (ValueError, ZeroDivisionError, KeyError):
                if t == 0:
                    # Removable singularity at the expansion point (common
                    # for at-infinity expansions like (sqrt(1+u^2)-1)/u):
                    # take the limit from the valid side(s).
                    h = mpf(2) ** (-_SERIES_PREC // 3)
                    sides = {1: (h,), -1: (-h,), 0: (-h, h)}[direction]
                    try:
                        values = [
                            mp_eval(real_expr, {var: mpf(around) + s}) for s in sides
                        ]
                        gap = max(values) - min(values)
                        scale = 1 + max(abs(v) for v in values)
                        if gap < scale * mpf(2) ** (-_SERIES_PREC // 8):
                            return sum(values) / len(values)
                    except (ValueError, ZeroDivisionError, KeyError):
                        pass
                raise mpmath.libmp.NoConvergence("singular")

        try:
            raw = mpmath.taylor(fn, 0, degree, direction=direction)
        except Exception:
            return None
        biggest = max((abs(c) for c in raw), default=mpf(0))
        if biggest == 0 or not mpmath.isfinite(biggest):
            return None
        coeffs = []
        for c in raw:
            if abs(c) < biggest * _COEFF_CUTOFF:
                coeffs.append(Fraction(0))
                continue
            converted = _to_number(c)
            if converted is None:
                return None
            coeffs.append(converted)
        if all(c == 0 for c in coeffs):
            return None
        return coeffs


def series_candidates(
    real_expr: Expr, degree: int = 3, max_candidates: int = 4
) -> list[Expr]:
    """Series-expansion variants of a *univariate* real expression.

    Produces expansions around 0 (polynomial in v) and around infinity
    (polynomial in 1/v), at ``degree`` and one lower degree for a cheaper,
    less accurate option.
    """
    variables = sorted(real_expr.free_vars())
    if len(variables) != 1:
        return []
    var = variables[0]
    var_expr = Var(var)
    out: list[Expr] = []

    for deg in (degree, max(1, degree - 2)):
        coeffs = taylor_coeffs(real_expr, var, 0.0, deg)
        if coeffs:
            out.append(_horner(var_expr, coeffs))
        # Expansion at +/- infinity: f(1/u) around u=0 one-sidedly (the
        # other side frequently has a pole), then u := 1/v.
        at_infinity = real_expr.substitute({var: div(Num(1), Var("__u"))})
        for direction in (1, -1):
            u_coeffs = taylor_coeffs(at_infinity, "__u", 0.0, deg, direction)
            if u_coeffs:
                out.append(_horner(div(Num(1), var_expr), u_coeffs))
        if len(out) >= max_candidates:
            break

    # Deduplicate while preserving order.
    seen: set[Expr] = set()
    unique = []
    for expr in out:
        if expr not in seen:
            seen.add(expr)
            unique.append(expr)
    return unique[:max_candidates]
