"""Performance simulation (testbed substitute; see DESIGN.md)."""

from .simulator import PerfSimulator

__all__ = ["PerfSimulator"]
