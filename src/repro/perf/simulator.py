"""Deterministic performance simulator — our stand-in for the paper's testbed.

The paper measures wall-clock time of compiled programs on an AMD EPYC 7702
over 10 000 pre-sampled points.  We cannot measure hardware, so this module
*simulates* program run time from each operator's true latency plus the
input-dependent effects section 7 of the paper identifies as the reasons
cost models and run times diverge:

* denormal inputs slow hardware multiply/divide/sqrt dramatically,
* division by zero raises an exception on the Python target,
* instruction-level parallelism: hardware overlaps independent operations,
  so wide expression trees run closer to their *critical-path* latency
  while interpreters serialize every operation — a structural divergence
  from any sum-of-costs model,
* per-point and per-program multiplicative jitter (cache and code-layout
  effects, measurement noise), derived deterministically from hashes so
  every run is reproducible.

Chassis' cost models never see these true latencies — they see auto-tuned
estimates (:mod:`repro.targets.autotune`) or published instruction tables,
which is exactly the information regime of the paper (figure 10).
"""

from __future__ import annotations

import math
import weakref
import zlib
from typing import Mapping

from ..fpeval.machine import _COMPARISONS, round_literal
from ..ir.expr import App, Const, Expr, Num, Var
from ..ir.printer import expr_to_sexpr
from ..ir.types import F64
from ..targets.target import VECTOR, Target

#: Smallest normal magnitudes; inputs below these are denormal.
_MIN_NORMAL_F64 = 2.2250738585072014e-308
#: Latency multiplier hardware pays on denormal operands.
_DENORMAL_PENALTY = 8.0
#: Exception-handling cost (ns) for Python division by zero.
_EXCEPTION_COST = 400.0

_MULDIV_OPS = ("mul", "div", "sqrt", "fma", "rcp", "rsqrt")


def _is_denormal(value: float) -> bool:
    return value != 0.0 and abs(value) < _MIN_NORMAL_F64


def stable_key_hash(key: tuple) -> int:
    """32-bit digest of a key tuple, identical in every process and run.

    Builtin ``hash()`` must not be used here: string hashing is randomized
    per interpreter, so worker processes and repeated runs would disagree
    on "deterministic" timings — breaking both cache correctness and
    serial-vs-parallel report equality.
    """
    return zlib.crc32(repr(key).encode("utf-8")) & 0xFFFFFFFF


def _jitter(key: tuple, spread: float = 0.05) -> float:
    """Deterministic multiplicative noise in [1-spread, 1+spread]."""
    h = stable_key_hash(key)
    return 1.0 - spread + 2.0 * spread * (h / 0xFFFFFFFF)


class PerfSimulator:
    """Simulates the run time (ns) of float programs on a target.

    Holds its target *weakly*: simulators are cached per target by
    :meth:`repro.session.ChassisSession.simulator` under ``id(target)``
    with a ``weakref.finalize`` eviction, and a strong back-reference here
    would pin every custom target a long-lived session ever saw.  Callers
    always own the target they simulate on, so the reference is live for
    any legitimate use.
    """

    def __init__(self, target: Target):
        self._target_ref = weakref.ref(target)
        self._impls = target.impl_registry()

    @property
    def target(self) -> Target:
        target = self._target_ref()
        if target is None:  # pragma: no cover - requires caller misuse
            raise ReferenceError("PerfSimulator outlived its Target")
        return target

    # --- public API ---------------------------------------------------------------

    def run_time(
        self, expr: Expr, points: list[Mapping[str, float]], ty: str = F64
    ) -> float:
        """Mean simulated nanoseconds per evaluation over ``points``.

        Each point's time lies between the critical-path latency (perfect
        instruction-level parallelism) and the serial sum of latencies,
        weighted by how much ILP the target's execution model exposes.
        A per-program jitter models code-layout and cache effects.
        """
        if not points:
            raise ValueError("need at least one point to simulate run time")
        serial = self._serial_fraction()
        total = 0.0
        for index, point in enumerate(points):
            _value, cost_sum, cost_path = self._eval(expr, point, ty, index)
            total += cost_path + serial * (cost_sum - cost_path)
        mean = total / len(points)
        return mean * _jitter(("program", self.target.name, expr_to_sexpr(expr)), 0.08)

    def _serial_fraction(self) -> float:
        """How serialized execution is: ~0 = perfect ILP, 1 = interpreter."""
        overhead = self.target.perf_overhead
        if overhead < 5.0:
            return 0.35  # out-of-order hardware overlaps independent ops
        if overhead < 10.0:
            return 0.7
        return 0.95  # bytecode interpreters execute one op at a time

    def operator_run_time(self, op_name: str, points: list[tuple], index0: int = 0) -> float:
        """Mean simulated time of one bare operator call (for auto-tuning)."""
        op = self.target.operator(op_name)
        total = 0.0
        for index, args in enumerate(points):
            total += self._op_cost(op_name, args, index0 + index)
        return total / max(1, len(points))

    # --- simulation core -----------------------------------------------------------

    def _eval(
        self, expr: Expr, point: Mapping[str, float], ty: str, index: int
    ) -> tuple[float, float, float]:
        """Return (value, serial-sum ns, critical-path ns) for one point."""
        if isinstance(expr, Var):
            cost = self.target.variable_cost * 0.5
            return point[expr.name], cost, cost
        if isinstance(expr, Num):
            cost = self._literal_cost(ty)
            return round_literal(expr.value, ty), cost, cost
        if isinstance(expr, Const):
            value = {"PI": math.pi, "E": math.e, "INFINITY": math.inf}.get(
                expr.name, math.nan
            )
            cost = self._literal_cost(ty)
            return value, cost, cost
        assert isinstance(expr, App)
        if expr.op == "if":
            return self._eval_if(expr, point, ty, index)
        compare = _COMPARISONS.get(expr.op)
        if compare is not None:
            lv, ls, lp = self._eval(expr.args[0], point, ty, index)
            rv, rs, rp = self._eval(expr.args[1], point, ty, index)
            if_cost = self.target.if_cost
            return float(compare(lv, rv)), ls + rs + if_cost, max(lp, rp) + if_cost
        if expr.op in ("and", "or", "not"):
            cost_sum, cost_path = 0.0, 0.0
            values = []
            for arg in expr.args:
                v, s, p = self._eval(arg, point, ty, index)
                values.append(bool(v))
                cost_sum += s
                cost_path = max(cost_path, p)
            if expr.op == "and":
                result = all(values)
            elif expr.op == "or":
                result = any(values)
            else:
                result = not values[0]
            return float(result), cost_sum + 1.0, cost_path + 1.0
        spec = self._impls.get(expr.op)
        if spec is None:
            raise KeyError(f"target {self.target.name} lacks operator {expr.op!r}")
        args = []
        cost_sum, cost_path = 0.0, 0.0
        for arg, arg_ty in zip(expr.args, spec.arg_types):
            value, arg_sum, arg_path = self._eval(arg, point, arg_ty, index)
            args.append(value)
            cost_sum += arg_sum
            cost_path = max(cost_path, arg_path)
        op_cost = self._op_cost(expr.op, tuple(args), index)
        return spec.impl(*args), cost_sum + op_cost, cost_path + op_cost

    def _eval_if(self, expr, point, ty, index) -> tuple[float, float, float]:
        cond, then_branch, else_branch = expr.args
        cond_value, cond_sum, cond_path = self._eval(cond, point, ty, index)
        taken = bool(cond_value)
        if_cost = self.target.if_cost
        if self.target.if_style == VECTOR:
            # Masked execution: both branches run, plus a blend.
            tv, ts, tp = self._eval(then_branch, point, ty, index)
            ev, es, ep = self._eval(else_branch, point, ty, index)
            return (
                tv if taken else ev,
                cond_sum + ts + es + if_cost,
                max(cond_path, tp, ep) + if_cost,
            )
        branch = then_branch if taken else else_branch
        value, branch_sum, branch_path = self._eval(branch, point, ty, index)
        return (
            value,
            cond_sum + branch_sum + if_cost,
            cond_path + branch_path + if_cost,
        )

    def _literal_cost(self, ty: str) -> float:
        return self.target.literal_costs.get(ty, 1.0) * 0.5

    def _op_cost(self, op_name: str, args: tuple, index: int) -> float:
        op = self.target.operator(op_name)
        latency = op.true_latency + self.target.perf_overhead
        # Denormal operands stall hardware multiplier/divider pipelines.
        if self.target.perf_overhead < 5.0 and any(
            _is_denormal(a) for a in args if isinstance(a, float)
        ):
            if any(tag in op_name for tag in _MULDIV_OPS):
                latency *= _DENORMAL_PENALTY
        # CPython raises (and the interpreter catches) ZeroDivisionError.
        if (
            self.target.perf_overhead >= 30.0
            and op_name.startswith("div")
            and len(args) == 2
            and args[1] == 0.0
        ):
            latency += _EXCEPTION_COST
        return latency * _jitter((self.target.name, op_name, index))
