"""Multi-extraction: one candidate per appropriately-typed e-node (paper 5.2).

Extracting only the single cheapest program would over-optimize for speed at
the cost of accuracy.  Chassis instead extracts *every* appropriately-typed
e-node of the localized subexpression's e-class — each completed greedily
with the typed-extraction table — yielding a spread of candidates (the paper
reports about 40 per subexpression) whose accuracy is then measured.
"""

from __future__ import annotations

from ..ir.expr import Expr
from .egraph import EGraph
from .enode import is_op_head
from .extract import ExtractionError
from .typed_extract import TypedExtractor


def extract_variants(
    egraph: EGraph,
    extractor: TypedExtractor,
    class_id: int,
    ty: str,
    limit: int = 40,
) -> list[Expr]:
    """All well-typed variants of ``class_id`` at format ``ty``.

    One expression per costable e-node in the class, cheapest first, capped
    at ``limit``.  The overall-best expression is always first.
    """
    class_id = egraph.find(class_id)
    cost_model = extractor.cost_model
    options: list[tuple[float, Expr]] = []
    seen: set[Expr] = set()

    for node in egraph.nodes_of(class_id):
        head, args = node
        if is_op_head(head):
            signature = cost_model.operator_signature(head)
            if signature is None:
                continue
            arg_types, ret_type = signature
            if ret_type != ty or len(arg_types) != len(args):
                continue
            cost = cost_model.operator_cost(head)
            feasible = True
            for arg, arg_ty in zip(args, arg_types):
                child = extractor.cost_of(arg, arg_ty)
                if child is None:
                    feasible = False
                    break
                cost += child
            if not feasible:
                continue
            try:
                expr = extractor.node_to_expr(node, arg_types)
            except ExtractionError:
                # A child class became unextractable at the needed format
                # (e.g. every option priced infeasible): skip the
                # candidate rather than losing the whole variant set.
                continue
        else:
            entry = extractor.best.get(class_id, {}).get(ty)
            if entry is None or entry[1] != node:
                # Leaf nodes are only interesting if they are the best choice.
                continue
            cost, expr = entry[0], extractor.node_to_expr(node, ())
        if expr not in seen:
            seen.add(expr)
            options.append((cost, expr))

    options.sort(key=lambda pair: pair[0])
    return [expr for _cost, expr in options[:limit]]
