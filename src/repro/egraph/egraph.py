"""The e-graph data structure (paper section 3.2).

An e-graph maintains a congruence-closed equivalence relation over terms.
This implementation follows egg [Willsey et al. 2021]: a union-find over
e-class ids, a hashcons from canonical e-nodes to class ids, and deferred
*rebuilding* that restores congruence invariants in a batch after rewrites.

Two v2 additions serve the rewrite engine on top:

* a **head index** (head -> classes containing a node with that head),
  maintained on insertion and compacted lazily on query, so pattern roots
  resolve to candidate classes directly instead of scanning every class;
* **dirty tracking** (classes changed since the last
  :meth:`EGraph.take_dirty`), which the saturation runner closes upward
  through parent pointers to re-match only the region a rewrite iteration
  could have changed.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..ir.expr import App, Expr
from .enode import ENode, Head, head_of_expr, head_to_leaf_expr, is_op_head
from .unionfind import UnionFind


class EClass:
    """One equivalence class: its e-nodes plus parent back-references."""

    __slots__ = ("id", "nodes", "parents")

    def __init__(self, class_id: int):
        self.id = class_id
        # Insertion-ordered (dict keys, values unused): e-node iteration
        # order reaches extraction tie-breaks, and set order would vary
        # with per-process string-hash randomization.
        self.nodes: dict[ENode, None] = {}
        self.parents: list[tuple[ENode, int]] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EClass({self.id}, {len(self.nodes)} nodes)"


class EGraph:
    """A congruence-closed e-graph with egg-style deferred rebuilding."""

    def __init__(self):
        self._uf = UnionFind()
        self._classes: dict[int, EClass] = {}
        self._hashcons: dict[ENode, int] = {}
        self._pending: list[int] = []
        self.version = 0  # bumped on every union; used to detect saturation
        #: Distinct e-nodes ever created (monotonic; never decremented by
        #: rebuild dedup, so (version, nodes_built) stamps every mutation).
        self.nodes_built = 0
        # Live node count, maintained incrementally (merges and rebuild
        # dedup subtract) so the node-budget check in the apply loop is
        # O(1) instead of a sum over every class.
        self._nnodes = 0
        # head -> {class id: None}: every class that has ever held a node
        # with that head.  Ids may go stale after unions; queries
        # canonicalize and compact lazily.  No removal is ever needed: a
        # class only gains heads (nodes survive merges, heads survive
        # re-canonicalization), so the index only over-approximates by
        # staleness, never misses.
        self._index: dict[Head, dict[int, None]] = {}
        # Classes changed since the last take_dirty(): new classes, and
        # the surviving root of every union.
        self._dirty: dict[int, None] = {}
        self._snapshot: "GraphSnapshot | None" = None

    @property
    def generation(self) -> tuple[int, int]:
        """A stamp that changes whenever the graph's contents change.

        Extractors key their shared topology snapshots on this, so one
        snapshot serves every cost function until the next mutation.
        """
        return (self.version, self.nodes_built)

    # --- size and iteration ------------------------------------------------

    @property
    def num_classes(self) -> int:
        return len(self._classes)

    @property
    def num_nodes(self) -> int:
        return self._nnodes

    def classes(self) -> Iterator[EClass]:
        return iter(list(self._classes.values()))

    def eclass(self, class_id: int) -> EClass:
        return self._classes[self.find(class_id)]

    def nodes_of(self, class_id: int) -> tuple[ENode, ...]:
        return tuple(self.eclass(class_id).nodes)

    def find(self, class_id: int) -> int:
        """Canonical id of the class containing ``class_id``."""
        return self._uf.find(class_id)

    def same(self, a: int, b: int) -> bool:
        """True when ids ``a`` and ``b`` refer to the same e-class."""
        return self._uf.same(a, b)

    # --- insertion -----------------------------------------------------------

    def canonicalize(self, node: ENode) -> ENode:
        head, args = node
        return (head, tuple(self._uf.find(a) for a in args))

    def add_node(self, head, args: Iterable[int]) -> int:
        """Insert an e-node, returning its e-class id (deduplicated)."""
        node = (head, tuple(self._uf.find(a) for a in args))
        existing = self._hashcons.get(node)
        if existing is not None:
            return self._uf.find(existing)
        class_id = self._uf.make_set()
        eclass = EClass(class_id)
        eclass.nodes[node] = None
        self._classes[class_id] = eclass
        self._hashcons[node] = class_id
        for arg in node[1]:
            self._classes[arg].parents.append((node, class_id))
        self.nodes_built += 1
        self._nnodes += 1
        self._index.setdefault(node[0], {})[class_id] = None
        self._dirty[class_id] = None
        return class_id

    def add_expr(self, expr: Expr) -> int:
        """Insert a whole expression tree, returning the root's class id."""
        if isinstance(expr, App):
            args = tuple(self.add_expr(a) for a in expr.args)
            return self.add_node(expr.op, args)
        return self.add_node(head_of_expr(expr), ())

    def lookup_expr(self, expr: Expr) -> int | None:
        """Find the e-class of ``expr`` without inserting anything new."""
        if isinstance(expr, App):
            args = []
            for a in expr.args:
                cid = self.lookup_expr(a)
                if cid is None:
                    return None
                args.append(cid)
            node = (expr.op, tuple(args))
        else:
            node = (head_of_expr(expr), ())
        found = self._hashcons.get(self.canonicalize(node))
        return self._uf.find(found) if found is not None else None

    def lookup_node(self, head, args: Iterable[int]) -> int | None:
        """The e-class holding the (canonicalized) e-node, without inserting."""
        found = self._hashcons.get(self.canonicalize((head, tuple(args))))
        return self._uf.find(found) if found is not None else None

    # --- merging and rebuilding ------------------------------------------------

    def union(self, a: int, b: int) -> int:
        """Assert that classes ``a`` and ``b`` are equal; defer congruence."""
        ra, rb = self._uf.find(a), self._uf.find(b)
        if ra == rb:
            return ra
        self.version += 1
        root = self._uf.union(ra, rb)
        other = rb if root == ra else ra
        winner, loser = self._classes[root], self._classes.pop(other)
        before = len(winner.nodes) + len(loser.nodes)
        winner.nodes.update(loser.nodes)
        self._nnodes -= before - len(winner.nodes)
        winner.parents.extend(loser.parents)
        self._pending.append(root)
        self._dirty[root] = None
        return root

    def rebuild(self) -> None:
        """Restore hashcons/congruence invariants after a batch of unions."""
        while self._pending:
            todo = {self._uf.find(c) for c in self._pending}
            self._pending.clear()
            for class_id in todo:
                if class_id in self._classes:
                    self._repair(class_id)

    def _repair(self, class_id: int) -> None:
        class_id = self._uf.find(class_id)
        eclass = self._classes.get(class_id)
        if eclass is None:
            return
        # Re-canonicalize this class's own nodes; congruent duplicates found
        # in other classes trigger further (deferred) unions.
        for node in list(eclass.nodes):
            canon = self.canonicalize(node)
            if canon != node:
                self._hashcons.pop(node, None)
            owner = self._hashcons.get(canon)
            if owner is not None and not self._uf.same(owner, class_id):
                self.union(owner, class_id)
            self._hashcons[canon] = self._uf.find(class_id)
        class_id = self._uf.find(class_id)
        eclass = self._classes[class_id]
        before = len(eclass.nodes)
        eclass.nodes = {self.canonicalize(n): None for n in eclass.nodes}
        self._nnodes -= before - len(eclass.nodes)
        # Repair and deduplicate parent back-references; congruent parents
        # (same canonical node in two classes) are merged.
        seen: dict[ENode, int] = {}
        order: list[ENode] = []
        for parent_node, parent_class in eclass.parents:
            canon = self.canonicalize(parent_node)
            if canon != parent_node:
                self._hashcons.pop(parent_node, None)
            parent_class = self._uf.find(parent_class)
            prior = seen.get(canon)
            if prior is not None:
                if not self._uf.same(prior, parent_class):
                    self.union(prior, parent_class)
                seen[canon] = self._uf.find(parent_class)
            else:
                seen[canon] = parent_class
                order.append(canon)
            self._hashcons[canon] = self._uf.find(parent_class)
        eclass.parents = [(n, seen[n]) for n in order]

    # --- dirty tracking --------------------------------------------------------

    def take_dirty(self) -> list[int]:
        """Canonical ids of classes changed since the last call, and reset.

        A class is dirty when it was created or was the surviving root of a
        union since the previous ``take_dirty``.  Ids are canonicalized and
        restricted to live classes at collection time.
        """
        out: dict[int, None] = {}
        for class_id in self._dirty:
            canon = self._uf.find(class_id)
            if canon in self._classes:
                out[canon] = None
        self._dirty.clear()
        return list(out)

    def dirty_closure(self, dirty: Iterable[int]) -> set[int]:
        """``dirty`` closed upward through parent pointers (canonical ids).

        Every class whose represented terms could have changed when the
        given classes changed: the classes themselves plus all transitive
        ancestors.  This is the sound re-match region for incremental
        e-matching — a new pattern match must have a changed class
        somewhere in its support, and parent edges connect every support
        class to the match's root.
        """
        closure: set[int] = set()
        stack = list(dirty)
        while stack:
            class_id = self._uf.find(stack.pop())
            if class_id in closure:
                continue
            closure.add(class_id)
            eclass = self._classes.get(class_id)
            if eclass is None:
                continue
            for _node, parent in eclass.parents:
                parent = self._uf.find(parent)
                if parent not in closure:
                    stack.append(parent)
        return closure

    # --- queries -----------------------------------------------------------------

    def represents(self, class_id: int, expr: Expr) -> bool:
        """True when the e-class contains (represents) ``expr``."""
        found = self.lookup_expr(expr)
        return found is not None and self.same(found, class_id)

    def classes_with_head(self, head) -> list[int]:
        """Canonical ids of every class holding a node with ``head``.

        Backed by the head index: O(candidates), not O(classes).  Stale
        (merged-away) entries are compacted in place on the way through,
        and insertion order is preserved, so repeated queries are cheap
        and deterministic.
        """
        entry = self._index.get(head)
        if not entry:
            return []
        find = self._uf.find
        canon: dict[int, None] = {}
        for class_id in entry:
            canon[find(class_id)] = None
        if len(canon) != len(entry):
            self._index[head] = dict.fromkeys(canon)
        return list(canon)

    def op_nodes(self, op) -> Iterator[tuple[ENode, int]]:
        """Yield ``(enode, class_id)`` for every node whose head equals op."""
        for class_id in self.classes_with_head(op):
            eclass = self._classes[class_id]
            for node in list(eclass.nodes):
                if node[0] == op:
                    yield node, class_id

    def snapshot(self) -> "GraphSnapshot":
        """This graph's topology snapshot at the current generation.

        Cached: extractors for any number of cost functions share one
        snapshot until the graph mutates, which is what makes re-pricing a
        saturated e-graph under a second cost model nearly free.
        """
        snap = self._snapshot
        if snap is None or snap.generation != self.generation:
            snap = self._snapshot = GraphSnapshot(self)
            _record_snapshot(built=True)
        else:
            _record_snapshot(built=False)
        return snap

    def expr_of_node(self, node: ENode, choose) -> Expr:
        """Build an Expr from ``node``, choosing child exprs via ``choose``."""
        head, args = node
        if is_op_head(head):
            return App(head, tuple(choose(a) for a in args))
        return head_to_leaf_expr(head)


class GraphSnapshot:
    """A canonicalized view of one e-graph generation.

    Both halves of the engine run over this frozen view: **e-matching**
    resolves a class's nodes by head through :attr:`by_head` (canonical
    integer ids everywhere, so binding checks are int comparisons with no
    union-find calls), and **extraction** drives its parents worklist over
    :attr:`nodes`/:attr:`parents`.  Computing these per search or per
    extractor repeats thousands of ``find`` calls; snapshotting once per
    generation lets every rule search of an iteration and every extractor
    (untyped and typed, any cost function) share the traversal structure.
    The snapshot never mutates the graph and is invalidated by comparing
    :attr:`generation` against the live graph's.
    """

    __slots__ = ("generation", "nodes", "parents", "by_head")

    def __init__(self, egraph: EGraph):
        self.generation = egraph.generation
        #: class id -> [(head, canonical args, original node), ...]
        self.nodes: dict[int, list[tuple[Head, tuple[int, ...], ENode]]] = {}
        #: class id -> head -> [canonical args, ...] (the matcher's view)
        self.by_head: dict[int, dict[Head, list[tuple[int, ...]]]] = {}
        #: class id -> parent class ids (deduplicated, insertion-ordered)
        self.parents: dict[int, list[int]] = {}
        find = egraph.find
        parents: dict[int, dict[int, None]] = {}
        for eclass in egraph.classes():
            class_id = find(eclass.id)
            entries = self.nodes.setdefault(class_id, [])
            heads = self.by_head.setdefault(class_id, {})
            for node in eclass.nodes:
                canon_args = tuple(find(a) for a in node[1])
                entries.append((node[0], canon_args, node))
                heads.setdefault(node[0], []).append(canon_args)
            parents.setdefault(class_id, {})
        for class_id, entries in self.nodes.items():
            for _head, args, _node in entries:
                for arg in args:
                    parents.setdefault(arg, {})[class_id] = None
        self.parents = {cid: list(ps) for cid, ps in parents.items()}


def _record_snapshot(built: bool) -> None:
    """Record a snapshot build/reuse in the thread's engine-stats sink."""
    from .stats import current_sink

    sink = current_sink()
    if sink is not None:
        if built:
            sink.snapshots_built += 1
        else:
            sink.snapshot_reuses += 1
