"""The e-graph data structure (paper section 3.2).

An e-graph maintains a congruence-closed equivalence relation over terms.
This implementation follows egg [Willsey et al. 2021]: a union-find over
e-class ids, a hashcons from canonical e-nodes to class ids, and deferred
*rebuilding* that restores congruence invariants in a batch after rewrites.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..ir.expr import App, Expr
from .enode import ENode, head_of_expr, head_to_leaf_expr, is_op_head
from .unionfind import UnionFind


class EClass:
    """One equivalence class: its e-nodes plus parent back-references."""

    __slots__ = ("id", "nodes", "parents")

    def __init__(self, class_id: int):
        self.id = class_id
        # Insertion-ordered (dict keys, values unused): e-node iteration
        # order reaches extraction tie-breaks, and set order would vary
        # with per-process string-hash randomization.
        self.nodes: dict[ENode, None] = {}
        self.parents: list[tuple[ENode, int]] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EClass({self.id}, {len(self.nodes)} nodes)"


class EGraph:
    """A congruence-closed e-graph with egg-style deferred rebuilding."""

    def __init__(self):
        self._uf = UnionFind()
        self._classes: dict[int, EClass] = {}
        self._hashcons: dict[ENode, int] = {}
        self._pending: list[int] = []
        self.version = 0  # bumped on every union; used to detect saturation

    # --- size and iteration ------------------------------------------------

    @property
    def num_classes(self) -> int:
        return len(self._classes)

    @property
    def num_nodes(self) -> int:
        return sum(len(c.nodes) for c in self._classes.values())

    def classes(self) -> Iterator[EClass]:
        return iter(list(self._classes.values()))

    def eclass(self, class_id: int) -> EClass:
        return self._classes[self.find(class_id)]

    def nodes_of(self, class_id: int) -> tuple[ENode, ...]:
        return tuple(self.eclass(class_id).nodes)

    def find(self, class_id: int) -> int:
        """Canonical id of the class containing ``class_id``."""
        return self._uf.find(class_id)

    def same(self, a: int, b: int) -> bool:
        """True when ids ``a`` and ``b`` refer to the same e-class."""
        return self._uf.same(a, b)

    # --- insertion -----------------------------------------------------------

    def canonicalize(self, node: ENode) -> ENode:
        head, args = node
        return (head, tuple(self._uf.find(a) for a in args))

    def add_node(self, head, args: Iterable[int]) -> int:
        """Insert an e-node, returning its e-class id (deduplicated)."""
        node = (head, tuple(self._uf.find(a) for a in args))
        existing = self._hashcons.get(node)
        if existing is not None:
            return self._uf.find(existing)
        class_id = self._uf.make_set()
        eclass = EClass(class_id)
        eclass.nodes[node] = None
        self._classes[class_id] = eclass
        self._hashcons[node] = class_id
        for arg in node[1]:
            self._classes[arg].parents.append((node, class_id))
        return class_id

    def add_expr(self, expr: Expr) -> int:
        """Insert a whole expression tree, returning the root's class id."""
        if isinstance(expr, App):
            args = tuple(self.add_expr(a) for a in expr.args)
            return self.add_node(expr.op, args)
        return self.add_node(head_of_expr(expr), ())

    def lookup_expr(self, expr: Expr) -> int | None:
        """Find the e-class of ``expr`` without inserting anything new."""
        if isinstance(expr, App):
            args = []
            for a in expr.args:
                cid = self.lookup_expr(a)
                if cid is None:
                    return None
                args.append(cid)
            node = (expr.op, tuple(args))
        else:
            node = (head_of_expr(expr), ())
        found = self._hashcons.get(self.canonicalize(node))
        return self._uf.find(found) if found is not None else None

    # --- merging and rebuilding ------------------------------------------------

    def union(self, a: int, b: int) -> int:
        """Assert that classes ``a`` and ``b`` are equal; defer congruence."""
        ra, rb = self._uf.find(a), self._uf.find(b)
        if ra == rb:
            return ra
        self.version += 1
        root = self._uf.union(ra, rb)
        other = rb if root == ra else ra
        winner, loser = self._classes[root], self._classes.pop(other)
        winner.nodes.update(loser.nodes)
        winner.parents.extend(loser.parents)
        self._pending.append(root)
        return root

    def rebuild(self) -> None:
        """Restore hashcons/congruence invariants after a batch of unions."""
        while self._pending:
            todo = {self._uf.find(c) for c in self._pending}
            self._pending.clear()
            for class_id in todo:
                if class_id in self._classes:
                    self._repair(class_id)

    def _repair(self, class_id: int) -> None:
        class_id = self._uf.find(class_id)
        eclass = self._classes.get(class_id)
        if eclass is None:
            return
        # Re-canonicalize this class's own nodes; congruent duplicates found
        # in other classes trigger further (deferred) unions.
        for node in list(eclass.nodes):
            canon = self.canonicalize(node)
            if canon != node:
                self._hashcons.pop(node, None)
            owner = self._hashcons.get(canon)
            if owner is not None and not self._uf.same(owner, class_id):
                self.union(owner, class_id)
            self._hashcons[canon] = self._uf.find(class_id)
        class_id = self._uf.find(class_id)
        eclass = self._classes[class_id]
        eclass.nodes = {self.canonicalize(n): None for n in eclass.nodes}
        # Repair and deduplicate parent back-references; congruent parents
        # (same canonical node in two classes) are merged.
        seen: dict[ENode, int] = {}
        order: list[ENode] = []
        for parent_node, parent_class in eclass.parents:
            canon = self.canonicalize(parent_node)
            if canon != parent_node:
                self._hashcons.pop(parent_node, None)
            parent_class = self._uf.find(parent_class)
            prior = seen.get(canon)
            if prior is not None:
                if not self._uf.same(prior, parent_class):
                    self.union(prior, parent_class)
                seen[canon] = self._uf.find(parent_class)
            else:
                seen[canon] = parent_class
                order.append(canon)
            self._hashcons[canon] = self._uf.find(parent_class)
        eclass.parents = [(n, seen[n]) for n in order]

    # --- queries -----------------------------------------------------------------

    def represents(self, class_id: int, expr: Expr) -> bool:
        """True when the e-class contains (represents) ``expr``."""
        found = self.lookup_expr(expr)
        return found is not None and self.same(found, class_id)

    def op_nodes(self, op) -> Iterator[tuple[ENode, int]]:
        """Yield ``(enode, class_id)`` for every node whose head equals op."""
        for eclass in list(self._classes.values()):
            for node in list(eclass.nodes):
                if node[0] == op:
                    yield node, eclass.id

    def expr_of_node(self, node: ENode, choose) -> Expr:
        """Build an Expr from ``node``, choosing child exprs via ``choose``."""
        head, args = node
        if is_op_head(head):
            return App(head, tuple(choose(a) for a in args))
        return head_to_leaf_expr(head)
