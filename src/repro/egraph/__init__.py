"""E-graph engine: equality saturation, typed and multi extraction."""

from .egraph import EClass, EGraph, GraphSnapshot
from .ematch import (
    ematch_class,
    instantiate,
    lookup_template,
    match_is_applied,
    search_pattern,
)
from .extract import (
    ExtractionError,
    Extractor,
    ast_size_cost,
    extract_best,
    real_only_cost,
)
from .multi_extract import extract_variants
from .rewrite import Rewrite, birw, rw
from .runner import (
    INCREMENTAL_ENV,
    BackoffScheduler,
    RunnerLimits,
    RunnerReport,
    run_rules,
)
from .stats import EngineStats, current_sink, engine_stats_sink, stats_delta
from .typed_extract import TypedCostModel, TypedExtractor
from .unionfind import UnionFind

__all__ = [
    "EClass", "EGraph", "GraphSnapshot", "UnionFind",
    "ematch_class", "search_pattern", "instantiate",
    "lookup_template", "match_is_applied",
    "Rewrite", "rw", "birw",
    "RunnerLimits", "RunnerReport", "run_rules", "BackoffScheduler",
    "INCREMENTAL_ENV",
    "Extractor", "extract_best", "ast_size_cost", "real_only_cost",
    "ExtractionError",
    "TypedExtractor", "TypedCostModel", "extract_variants",
    "EngineStats", "engine_stats_sink", "current_sink", "stats_delta",
]
