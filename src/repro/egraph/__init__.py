"""E-graph engine: equality saturation, typed and multi extraction."""

from .egraph import EClass, EGraph
from .ematch import ematch_class, instantiate, search_pattern
from .extract import Extractor, ast_size_cost, extract_best, real_only_cost
from .multi_extract import extract_variants
from .rewrite import Rewrite, birw, rw
from .runner import BackoffScheduler, RunnerLimits, RunnerReport, run_rules
from .typed_extract import TypedCostModel, TypedExtractor
from .unionfind import UnionFind

__all__ = [
    "EClass", "EGraph", "UnionFind",
    "ematch_class", "search_pattern", "instantiate",
    "Rewrite", "rw", "birw",
    "RunnerLimits", "RunnerReport", "run_rules", "BackoffScheduler",
    "Extractor", "extract_best", "ast_size_cost", "real_only_cost",
    "TypedExtractor", "TypedCostModel", "extract_variants",
]
