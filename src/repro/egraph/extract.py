"""Greedy lowest-cost extraction from an e-graph.

This is the classic egg extractor, driven by a parents worklist instead of
whole-graph fixpoint sweeps: each class is re-priced only when one of its
children improves, so convergence costs O(improvements x parent edges)
rather than O(classes x sweeps).  Chassis uses this untyped form for
*real-number* simplification (e.g. inside the cost-opportunity analysis
baseline and the Herbie-style simplifier); target-aware extraction lives in
:mod:`repro.egraph.typed_extract`.

Extractors share the e-graph's per-generation
:class:`~repro.egraph.egraph.GraphSnapshot`, so re-pricing the same
saturated graph under a second cost function (:meth:`Extractor.reuse`)
skips all re-canonicalization work.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..ir.expr import Expr
from .egraph import EGraph
from .enode import ENode, is_op_head

#: Cost of one e-node given its head and its children's best costs.
NodeCost = Callable[[object, list[float]], float]


class ExtractionError(KeyError):
    """An e-class has no extractable expression under the active costs.

    Carries the class id and the cost function's name (plus the requested
    float format for typed extraction) so callers can skip the offending
    candidate instead of crashing on a bare ``KeyError``.
    """

    def __init__(self, class_id: int, cost_name: str, ty: str | None = None):
        self.class_id = class_id
        self.cost_name = cost_name
        self.ty = ty
        message = (
            f"e-class {class_id} has no extractable expression "
            f"under cost function {cost_name!r}"
        )
        if ty is not None:
            message += f" at type {ty!r}"
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


def ast_size_cost(head, child_costs: list[float]) -> float:
    """The default cost function: AST node count."""
    return 1.0 + sum(child_costs)


class Extractor:
    """Computes the lowest-cost expression represented by each e-class."""

    def __init__(self, egraph: EGraph, node_cost: NodeCost = ast_size_cost):
        self.egraph = egraph
        self.node_cost = node_cost
        self.cost_name = getattr(node_cost, "__name__", repr(node_cost))
        self.snapshot = egraph.snapshot()
        self._best: dict[int, tuple[float, ENode]] = {}
        self._run()

    def reuse(self, node_cost: NodeCost) -> "Extractor":
        """A fresh extractor for another cost function on the same graph.

        When the graph has not mutated since this extractor was built, the
        sibling shares the topology snapshot (the expensive part of
        re-pricing); otherwise a new snapshot is taken automatically.
        """
        return Extractor(self.egraph, node_cost)

    def _run(self) -> None:
        """Parents-driven worklist to the cost fixpoint.

        Every class is seeded once; a class whose best cost improves pushes
        its parents, so price information flows leaf-to-root and each class
        is revisited only when a child actually changed.
        """
        best = self._best
        nodes = self.snapshot.nodes
        parents = self.snapshot.parents
        pending = deque(nodes)
        queued = set(pending)
        infinity = float("inf")
        while pending:
            class_id = pending.popleft()
            queued.discard(class_id)
            entry = best.get(class_id)
            improved = False
            for head, args, node in nodes[class_id]:
                child_costs = []
                feasible = True
                for arg in args:
                    child = best.get(arg)
                    if child is None:
                        feasible = False
                        break
                    child_costs.append(child[0])
                if not feasible:
                    continue
                cost = self.node_cost(head, child_costs)
                if cost is None or cost == infinity:
                    continue
                if entry is None or cost < entry[0]:
                    entry = (cost, node)
                    improved = True
            if improved:
                best[class_id] = entry
                for parent in parents.get(class_id, ()):
                    if parent not in queued:
                        queued.add(parent)
                        pending.append(parent)

    def cost_of(self, class_id: int) -> float | None:
        """Best cost for the class, or None if nothing is extractable."""
        entry = self._best.get(self.egraph.find(class_id))
        return entry[0] if entry else None

    def extract(self, class_id: int) -> Expr:
        """The lowest-cost expression represented by ``class_id``."""
        return self._build(self.egraph.find(class_id), {})

    def _build(self, class_id: int, memo: dict[int, Expr]) -> Expr:
        cached = memo.get(class_id)
        if cached is not None:
            return cached
        entry = self._best.get(class_id)
        if entry is None:
            raise ExtractionError(class_id, self.cost_name)
        _cost, node = entry
        expr = self.egraph.expr_of_node(
            node, lambda cid: self._build(self.egraph.find(cid), memo)
        )
        memo[class_id] = expr
        return expr


def extract_best(
    egraph: EGraph, class_id: int, node_cost: NodeCost = ast_size_cost
) -> Expr:
    """One-shot convenience wrapper around :class:`Extractor`."""
    return Extractor(egraph, node_cost).extract(class_id)


def real_only_cost(is_real: Callable[[str], bool]) -> NodeCost:
    """A cost function that refuses non-real operator heads.

    Used when simplifying desugared (pure real) expressions so extraction
    never picks a float operator that happens to share the e-class.
    """

    def cost(head, child_costs):
        if is_op_head(head) and not is_real(head):
            return float("inf")
        total = 1.0 + sum(child_costs)
        return total if total != float("inf") else float("inf")

    return cost
