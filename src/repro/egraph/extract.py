"""Greedy lowest-cost extraction from an e-graph.

This is the classic egg extractor: iterate to a fixpoint of per-class best
costs, then read the chosen expression back out.  Chassis uses this untyped
form for *real-number* simplification (e.g. inside the cost-opportunity
analysis baseline and the Herbie-style simplifier); target-aware extraction
lives in :mod:`repro.egraph.typed_extract`.
"""

from __future__ import annotations

from typing import Callable

from ..ir.expr import Expr
from .egraph import EGraph
from .enode import ENode, is_op_head

#: Cost of one e-node given its head and its children's best costs.
NodeCost = Callable[[object, list[float]], float]


def ast_size_cost(head, child_costs: list[float]) -> float:
    """The default cost function: AST node count."""
    return 1.0 + sum(child_costs)


class Extractor:
    """Computes the lowest-cost expression represented by each e-class."""

    def __init__(self, egraph: EGraph, node_cost: NodeCost = ast_size_cost):
        self.egraph = egraph
        self.node_cost = node_cost
        self._best: dict[int, tuple[float, ENode]] = {}
        self._run()

    def _run(self) -> None:
        egraph, best = self.egraph, self._best
        changed = True
        while changed:
            changed = False
            for eclass in egraph.classes():
                cid = egraph.find(eclass.id)
                current = best.get(cid)
                for node in eclass.nodes:
                    cost = self._node_cost(node)
                    if cost is None or cost == float("inf"):
                        continue
                    if current is None or cost < current[0]:
                        current = (cost, node)
                        best[cid] = current
                        changed = True

    def _node_cost(self, node: ENode) -> float | None:
        head, args = node
        child_costs = []
        for arg in args:
            entry = self._best.get(self.egraph.find(arg))
            if entry is None:
                return None
            child_costs.append(entry[0])
        return self.node_cost(head, child_costs)

    def cost_of(self, class_id: int) -> float | None:
        """Best cost for the class, or None if nothing is extractable."""
        entry = self._best.get(self.egraph.find(class_id))
        return entry[0] if entry else None

    def extract(self, class_id: int) -> Expr:
        """The lowest-cost expression represented by ``class_id``."""
        return self._build(self.egraph.find(class_id), {})

    def _build(self, class_id: int, memo: dict[int, Expr]) -> Expr:
        cached = memo.get(class_id)
        if cached is not None:
            return cached
        entry = self._best.get(class_id)
        if entry is None:
            raise KeyError(f"e-class {class_id} has no extractable expression")
        _cost, node = entry
        expr = self.egraph.expr_of_node(
            node, lambda cid: self._build(self.egraph.find(cid), memo)
        )
        memo[class_id] = expr
        return expr


def extract_best(
    egraph: EGraph, class_id: int, node_cost: NodeCost = ast_size_cost
) -> Expr:
    """One-shot convenience wrapper around :class:`Extractor`."""
    return Extractor(egraph, node_cost).extract(class_id)


def real_only_cost(is_real: Callable[[str], bool]) -> NodeCost:
    """A cost function that refuses non-real operator heads.

    Used when simplifying desugared (pure real) expressions so extraction
    never picks a float operator that happens to share the e-class.
    """

    def cost(head, child_costs):
        if is_op_head(head) and not is_real(head):
            return float("inf")
        total = 1.0 + sum(child_costs)
        return total if total != float("inf") else float("inf")

    return cost
