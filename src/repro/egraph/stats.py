"""Engine counters: what the e-graph engine did, aggregated per consumer.

The v2 engine (indexed incremental e-matching, worklist extraction,
saturation reuse) is observable: every saturation run, snapshot build and
cache decision records into the *engine-stats sink* armed on the current
thread, when one is armed.  The session arms a sink around each pipeline
run and folds the result into :class:`~repro.session.SessionStats`, so
``/health`` and ``repro compile --json`` report real engine work — e-nodes
built, matches found/applied, the candidate classes incremental re-matching
skipped, and saturation-cache hits — without any engine API threading a
stats object through every call site.

The sink is thread-local (compilations are serialized per thread by the
session's oracle lock); worker processes aggregate their own engine work
but do not ship it across the process boundary.
"""

from __future__ import annotations

import dataclasses
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class EngineStats:
    """Counters over the e-graph engine's work.

    ``searches_full``/``searches_incremental`` count per-rule pattern
    searches by kind; ``candidates_skipped`` counts root-candidate classes
    an incremental search never examined (the asymptotic saving over the
    scan-everything engine).  ``saturation_hits`` counts improvement-loop
    candidates whose subexpression reused an already-saturated e-graph.
    """

    #: Distinct e-nodes created during saturation runs.
    enodes_built: int = 0
    #: Effective (graph-changing) matches found by rule searches.
    matches_found: int = 0
    #: Matches actually applied (post side-condition, within node budget).
    matches_applied: int = 0
    #: Per-rule full searches (iteration 0, truncated/banned/conditional rules).
    searches_full: int = 0
    #: Per-rule incremental searches restricted to the dirty closure.
    searches_incremental: int = 0
    #: Root-candidate classes skipped by incremental re-matching.
    candidates_skipped: int = 0
    #: Saturation runs (one per run_rules call).
    saturations: int = 0
    #: Improvement-loop saturations answered from the per-run cache.
    saturation_hits: int = 0
    #: Improvement-loop saturations that had to run the rules.
    saturation_misses: int = 0
    #: Graph topology snapshots built (one per generation that was
    #: searched or extracted from).
    snapshots_built: int = 0
    #: Searches/extractions that reused an existing same-generation
    #: snapshot (e.g. a second cost function pricing the same graph).
    snapshot_reuses: int = 0
    #: Rule name -> iterations whose search was truncated by the match budget.
    rules_truncated: dict[str, int] = field(default_factory=dict)

    def merge(self, other: "EngineStats") -> None:
        """Fold ``other``'s counters into this one."""
        for fld in dataclasses.fields(self):
            if fld.name == "rules_truncated":
                for name, count in other.rules_truncated.items():
                    self.rules_truncated[name] = (
                        self.rules_truncated.get(name, 0) + count
                    )
            else:
                setattr(
                    self, fld.name,
                    getattr(self, fld.name) + getattr(other, fld.name),
                )

    def any(self) -> bool:
        """True when at least one counter is non-zero."""
        return any(
            getattr(self, fld.name) for fld in dataclasses.fields(self)
        )

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)


def stats_delta(after: dict, before: dict) -> dict:
    """``after - before`` over two :meth:`EngineStats.as_dict` snapshots.

    Used by ``repro compile --json`` to attribute engine work to one job
    out of a session's running totals.
    """
    delta: dict = {}
    for key, value in after.items():
        if isinstance(value, dict):
            prior = before.get(key, {})
            sub = {
                name: count - prior.get(name, 0)
                for name, count in value.items()
                if count - prior.get(name, 0)
            }
            delta[key] = sub
        else:
            delta[key] = value - before.get(key, 0)
    return delta


_LOCAL = threading.local()


def current_sink() -> EngineStats | None:
    """The engine-stats sink armed on this thread, if any."""
    return getattr(_LOCAL, "sink", None)


@contextmanager
def engine_stats_sink(stats: EngineStats):
    """Arm ``stats`` as this thread's engine-stats sink for the region.

    Re-entrant: an inner sink shadows the outer one (the inner region's
    work is attributed to the inner sink only), and the previous sink is
    restored on exit.
    """
    previous = current_sink()
    _LOCAL.sink = stats
    try:
        yield stats
    finally:
        _LOCAL.sink = previous
