"""E-node representation.

An e-node is a pair ``(head, args)`` where ``args`` is a tuple of e-class
ids.  Heads are hashable tags:

* ``op`` (a plain string) for operator applications,
* ``("var", name)`` for variables,
* ``("num", Fraction)`` for exact literals,
* ``("const", name)`` for named constants.

Keeping e-nodes as plain tuples (instead of objects) keeps the hashcons and
e-matching hot paths fast in pure Python.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Union

from ..ir.expr import App, Const, Expr, Num, Var

Head = Union[str, tuple]
ENode = tuple  # (Head, tuple[int, ...])


def make_enode(head: Head, args: tuple[int, ...]) -> ENode:
    return (head, args)


def var_head(name: str) -> Head:
    return ("var", name)


def num_head(value: Fraction) -> Head:
    return ("num", value)


def const_head(name: str) -> Head:
    return ("const", name)


def head_of_expr(expr: Expr) -> Head:
    """The e-node head corresponding to a leaf or application node."""
    if isinstance(expr, Var):
        return ("var", expr.name)
    if isinstance(expr, Num):
        return ("num", expr.value)
    if isinstance(expr, Const):
        return ("const", expr.name)
    if isinstance(expr, App):
        return expr.op
    raise TypeError(f"not an Expr: {expr!r}")


def is_op_head(head: Head) -> bool:
    """True for operator heads (as opposed to leaf heads)."""
    return isinstance(head, str)


def head_to_leaf_expr(head: Head) -> Expr:
    """Convert a leaf head back into an expression node."""
    tag, payload = head
    if tag == "var":
        return Var(payload)
    if tag == "num":
        return Num(payload)
    if tag == "const":
        return Const(payload)
    raise ValueError(f"not a leaf head: {head!r}")
