"""Equality saturation runner with resource limits (paper sections 3.3, 5.1).

Runs a rule set to saturation or until a node/iteration/match budget is
exhausted — the paper notes Chassis caps e-graphs at 8000 nodes; the default
here is smaller because pure Python is slower, and is configurable.

The v2 engine makes the iteration loop *incremental*: iteration 0 matches
every rule against the whole graph, but later iterations re-match a rule
only against the **dirty closure** — the classes changed by the previous
iteration plus their transitive ancestors — because a new match must have a
changed class somewhere in its support.  Searches also filter out matches
that are already applied (the rhs already sits in the matched class), so
full and incremental re-matching enumerate identical *effective* match
sequences and the two modes build byte-identical e-graphs.  Rules fall back
to a full search whenever incremental soundness cannot be guaranteed: after
their search was truncated by the match budget, while banned by the
scheduler, or when they carry a side condition (conditions may consult
arbitrary graph state).  ``REPRO_EGRAPH_INCREMENTAL=0`` disables
incremental re-matching entirely (the equivalence escape hatch).

Both the search and apply phases poll the cooperative deadline
(:func:`repro.deadline.check_deadline`) and the runner's own ``time_limit``,
so a saturation run is interruptible from within, not just between loop
iterations.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from ..deadline import check_deadline
from ..obs.trace import span
from .egraph import EGraph
from .ematch import instantiate, match_is_applied, search_pattern
from .rewrite import Rewrite
from .stats import current_sink

#: Environment escape hatch: set to ``0`` to disable incremental
#: re-matching (every iteration searches the whole graph).
INCREMENTAL_ENV = "REPRO_EGRAPH_INCREMENTAL"

#: How many match applications between deadline/time-limit polls.
_APPLY_POLL_EVERY = 64


def _incremental_default() -> bool:
    return os.environ.get(INCREMENTAL_ENV, "1") != "0"


@dataclass
class RunnerLimits:
    """Resource budget for one saturation run."""

    max_iterations: int = 6
    max_nodes: int = 4000
    max_matches_per_rule: int = 400
    time_limit: float = 10.0

    def key(self) -> tuple:
        """Hashable identity (saturation-cache key component)."""
        return (
            self.max_iterations, self.max_nodes,
            self.max_matches_per_rule, self.time_limit,
        )


@dataclass
class BackoffScheduler:
    """egg-style rule scheduler: explosive rules are temporarily banned.

    A rule that produces more than ``match_limit * 2^bans`` matches in one
    iteration is banned for ``ban_length * 2^bans`` iterations.  This lets
    cheap structural rules (commutativity, associativity) keep firing while
    preventing any single rule from exhausting the node budget — the same
    idea egg uses to stretch saturation budgets.
    """

    match_limit: int = 300
    ban_length: int = 2

    def __post_init__(self):
        self._banned_until: dict[str, int] = {}
        self._times_banned: dict[str, int] = {}

    def can_fire(self, rule_name: str, iteration: int) -> bool:
        return self._banned_until.get(rule_name, -1) <= iteration

    def record_matches(self, rule_name: str, n_matches: int, iteration: int) -> bool:
        """Register a rule's match count; returns False if it gets banned."""
        bans = self._times_banned.get(rule_name, 0)
        threshold = self.match_limit * (2**bans)
        if n_matches > threshold:
            self._times_banned[rule_name] = bans + 1
            self._banned_until[rule_name] = iteration + self.ban_length * (2**bans)
            return False
        return True


@dataclass
class RunnerReport:
    """What happened during a saturation run."""

    iterations: int = 0
    stop_reason: str = "saturated"
    matches_applied: int = 0
    rule_matches: dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0
    #: Effective (graph-changing) matches found across all searches.
    matches_found: int = 0
    #: Rule name -> iterations whose search hit the per-rule match budget
    #: (``max_matches_per_rule``) and silently dropped matches.  Surfaced
    #: so node-budget tuning is observable in ``--json`` output.
    rules_truncated: dict[str, int] = field(default_factory=dict)
    #: Per-rule whole-graph searches (iteration 0 and fallbacks).
    searches_full: int = 0
    #: Per-rule searches restricted to the dirty closure.
    searches_incremental: int = 0
    #: Root-candidate classes skipped by incremental searches.
    candidates_skipped: int = 0
    #: E-nodes created during this run.
    enodes_built: int = 0


def _flush_to_sink(report: RunnerReport) -> None:
    sink = current_sink()
    if sink is None:
        return
    sink.saturations += 1
    sink.enodes_built += report.enodes_built
    sink.matches_found += report.matches_found
    sink.matches_applied += report.matches_applied
    sink.searches_full += report.searches_full
    sink.searches_incremental += report.searches_incremental
    sink.candidates_skipped += report.candidates_skipped
    for name, count in report.rules_truncated.items():
        sink.rules_truncated[name] = sink.rules_truncated.get(name, 0) + count


def run_rules(
    egraph: EGraph,
    rules: list[Rewrite],
    limits: RunnerLimits | None = None,
    scheduler: BackoffScheduler | None = None,
    incremental: bool | None = None,
) -> RunnerReport:
    """Apply ``rules`` to saturation within ``limits``.

    Each iteration collects matches for *all* rules against the current
    e-graph, then applies them in a batch and rebuilds — the standard egg
    schedule, which keeps rule application order-independent within an
    iteration.  An optional :class:`BackoffScheduler` temporarily bans rules
    whose match counts explode.  ``incremental`` overrides the
    ``REPRO_EGRAPH_INCREMENTAL`` environment default for this run.

    When a tracer is armed (:mod:`repro.obs`), the run records one
    ``egraph.run_rules`` span (report counters as attributes) with nested
    ``egraph.search`` / ``egraph.apply`` spans per iteration, so a slow
    saturation shows *which* half of which iteration the time went to.
    """
    with span("egraph.run_rules", rules=len(rules)) as run_span:
        report = _run_rules(egraph, rules, limits, scheduler, incremental)
        if run_span is not None:
            run_span["attrs"].update(
                iterations=report.iterations,
                stop_reason=report.stop_reason,
                matches_found=report.matches_found,
                matches_applied=report.matches_applied,
                enodes_built=report.enodes_built,
            )
        return report


def _run_rules(
    egraph: EGraph,
    rules: list[Rewrite],
    limits: RunnerLimits | None,
    scheduler: BackoffScheduler | None,
    incremental: bool | None,
) -> RunnerReport:
    limits = limits or RunnerLimits()
    report = RunnerReport()
    start = time.monotonic()
    if incremental is None:
        incremental = _incremental_default()
    nodes_at_start = egraph.nodes_built
    # Discard dirt accumulated before this run: iteration 0 is a full match.
    egraph.take_dirty()
    # Rules whose next search must be a full one: everything at first, then
    # any rule that was banned or truncated (its last search missed matches
    # that may sit outside the next dirty closure).
    full_next: set[str] = {rule.name for rule in rules}

    def finish(stop_reason: str) -> RunnerReport:
        report.stop_reason = stop_reason
        report.elapsed = time.monotonic() - start
        report.enodes_built = egraph.nodes_built - nodes_at_start
        _flush_to_sink(report)
        return report

    for iteration in range(limits.max_iterations):
        report.iterations = iteration + 1
        version_before = egraph.version
        nodes_before = egraph.num_nodes

        if iteration == 0 or not incremental:
            dirty_roots = None
        else:
            dirty_roots = egraph.dirty_closure(egraph.take_dirty())

        # Search phase: gather matches against a frozen view.  Collection
        # is bounded by the *remaining node budget* on top of the per-rule
        # match budget: the apply phase stops at ``max_nodes`` anyway, so
        # effective matches beyond the budget are wasted search time.  The
        # cap depends only on graph state and the (mode-independent)
        # effective-match sequence, so full and incremental re-matching
        # still truncate at identical points.
        batches = []
        throttled = False
        collected = 0
        node_budget = limits.max_nodes - egraph.num_nodes
        with span("egraph.search", iteration=iteration) as search_span:
            for rule in rules:
                check_deadline()
                if scheduler is not None and not scheduler.can_fire(rule.name, iteration):
                    throttled = True
                    full_next.add(rule.name)  # it missed this graph state
                    continue
                cap = limits.max_matches_per_rule
                budget_left = node_budget - collected
                if budget_left <= 0:
                    # Whatever this rule would find cannot be applied this
                    # iteration; search it fresh once the budget recovers.
                    full_next.add(rule.name)
                    continue
                if cap is None or budget_left < cap:
                    cap = budget_left
                use_roots = None
                if (
                    dirty_roots is not None
                    and rule.name not in full_next
                    and rule.condition is None
                ):
                    use_roots = dirty_roots
                    report.searches_incremental += 1
                else:
                    report.searches_full += 1
                full_next.discard(rule.name)

                def effective(class_id, subst, _rhs=rule.rhs):
                    return not match_is_applied(egraph, _rhs, class_id, subst)

                search_stats: dict = {}
                matches = search_pattern(
                    egraph, rule.lhs, limit=cap + 1, roots=use_roots,
                    accept=effective, search_stats=search_stats,
                )
                report.candidates_skipped += search_stats.get("skipped_roots", 0)
                if len(matches) > cap:
                    matches = matches[:cap]
                    report.rules_truncated[rule.name] = (
                        report.rules_truncated.get(rule.name, 0) + 1
                    )
                    full_next.add(rule.name)  # dropped matches may be anywhere
                collected += len(matches)
                report.matches_found += len(matches)
                if scheduler is not None and not scheduler.record_matches(
                    rule.name, len(matches), iteration
                ):
                    throttled = True
                    full_next.add(rule.name)  # found but never applied
                    continue
                if matches:
                    batches.append((rule, matches))
                if time.monotonic() - start > limits.time_limit:
                    egraph.rebuild()
                    return finish("time-limit")
            if search_span is not None:
                search_span["attrs"]["matches"] = collected

        # Apply phase (polls the deadline and time limit as it goes).
        timed_out = False
        with span("egraph.apply", iteration=iteration) as apply_span:
            applied_total = 0
            for rule, matches in batches:
                applied = 0
                for index, (class_id, subst) in enumerate(matches):
                    if egraph.num_nodes >= limits.max_nodes:
                        full_next.add(rule.name)  # unapplied matches remain
                        break
                    if index % _APPLY_POLL_EVERY == 0:
                        check_deadline()
                        if time.monotonic() - start > limits.time_limit:
                            timed_out = True
                            full_next.add(rule.name)
                            break
                    if rule.condition is not None and not rule.condition(egraph, subst):
                        continue
                    new_id = instantiate(egraph, rule.rhs, subst)
                    egraph.union(egraph.find(class_id), new_id)
                    applied += 1
                if applied:
                    report.rule_matches[rule.name] = (
                        report.rule_matches.get(rule.name, 0) + applied
                    )
                    report.matches_applied += applied
                    applied_total += applied
                if timed_out:
                    break
            if apply_span is not None:
                apply_span["attrs"]["applied"] = applied_total

        egraph.rebuild()

        if timed_out:
            return finish("time-limit")
        if egraph.num_nodes >= limits.max_nodes:
            return finish("node-limit")
        if (
            egraph.version == version_before
            and egraph.num_nodes == nodes_before
            and not throttled
        ):
            # A banned rule might still fire later, so a quiet iteration
            # under throttling is not saturation.
            return finish("saturated")
        if time.monotonic() - start > limits.time_limit:
            return finish("time-limit")

    return finish("iteration-limit")
