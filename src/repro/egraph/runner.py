"""Equality saturation runner with resource limits (paper sections 3.3, 5.1).

Runs a rule set to saturation or until a node/iteration/match budget is
exhausted — the paper notes Chassis caps e-graphs at 8000 nodes; the default
here is smaller because pure Python is slower, and is configurable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from .egraph import EGraph
from .ematch import instantiate, search_pattern
from .rewrite import Rewrite


@dataclass
class RunnerLimits:
    """Resource budget for one saturation run."""

    max_iterations: int = 6
    max_nodes: int = 4000
    max_matches_per_rule: int = 400
    time_limit: float = 10.0


@dataclass
class BackoffScheduler:
    """egg-style rule scheduler: explosive rules are temporarily banned.

    A rule that produces more than ``match_limit * 2^bans`` matches in one
    iteration is banned for ``ban_length * 2^bans`` iterations.  This lets
    cheap structural rules (commutativity, associativity) keep firing while
    preventing any single rule from exhausting the node budget — the same
    idea egg uses to stretch saturation budgets.
    """

    match_limit: int = 300
    ban_length: int = 2

    def __post_init__(self):
        self._banned_until: dict[str, int] = {}
        self._times_banned: dict[str, int] = {}

    def can_fire(self, rule_name: str, iteration: int) -> bool:
        return self._banned_until.get(rule_name, -1) <= iteration

    def record_matches(self, rule_name: str, n_matches: int, iteration: int) -> bool:
        """Register a rule's match count; returns False if it gets banned."""
        bans = self._times_banned.get(rule_name, 0)
        threshold = self.match_limit * (2**bans)
        if n_matches > threshold:
            self._times_banned[rule_name] = bans + 1
            self._banned_until[rule_name] = iteration + self.ban_length * (2**bans)
            return False
        return True


@dataclass
class RunnerReport:
    """What happened during a saturation run."""

    iterations: int = 0
    stop_reason: str = "saturated"
    matches_applied: int = 0
    rule_matches: dict[str, int] = field(default_factory=dict)
    elapsed: float = 0.0


def run_rules(
    egraph: EGraph,
    rules: list[Rewrite],
    limits: RunnerLimits | None = None,
    scheduler: BackoffScheduler | None = None,
) -> RunnerReport:
    """Apply ``rules`` to saturation within ``limits``.

    Each iteration collects matches for *all* rules against the current
    e-graph, then applies them in a batch and rebuilds — the standard egg
    schedule, which keeps rule application order-independent within an
    iteration.  An optional :class:`BackoffScheduler` temporarily bans rules
    whose match counts explode.
    """
    limits = limits or RunnerLimits()
    report = RunnerReport()
    start = time.monotonic()

    for iteration in range(limits.max_iterations):
        report.iterations = iteration + 1
        version_before = egraph.version
        nodes_before = egraph.num_nodes

        # Search phase: gather matches against a frozen view.
        batches = []
        throttled = False
        for rule in rules:
            if scheduler is not None and not scheduler.can_fire(rule.name, iteration):
                throttled = True
                continue
            matches = search_pattern(
                egraph, rule.lhs, limit=limits.max_matches_per_rule
            )
            if scheduler is not None and not scheduler.record_matches(
                rule.name, len(matches), iteration
            ):
                throttled = True
                continue
            if matches:
                batches.append((rule, matches))
            if time.monotonic() - start > limits.time_limit:
                report.stop_reason = "time-limit"
                report.elapsed = time.monotonic() - start
                egraph.rebuild()
                return report

        # Apply phase.
        for rule, matches in batches:
            applied = 0
            for class_id, subst in matches:
                if egraph.num_nodes >= limits.max_nodes:
                    break
                if rule.condition is not None and not rule.condition(egraph, subst):
                    continue
                new_id = instantiate(egraph, rule.rhs, subst)
                egraph.union(egraph.find(class_id), new_id)
                applied += 1
            if applied:
                report.rule_matches[rule.name] = (
                    report.rule_matches.get(rule.name, 0) + applied
                )
                report.matches_applied += applied

        egraph.rebuild()

        if egraph.num_nodes >= limits.max_nodes:
            report.stop_reason = "node-limit"
            break
        if (
            egraph.version == version_before
            and egraph.num_nodes == nodes_before
            and not throttled
        ):
            # A banned rule might still fire later, so a quiet iteration
            # under throttling is not saturation.
            report.stop_reason = "saturated"
            break
        if time.monotonic() - start > limits.time_limit:
            report.stop_reason = "time-limit"
            break
    else:
        report.stop_reason = "iteration-limit"

    report.elapsed = time.monotonic() - start
    return report
