"""Typed extraction over mixed real/float e-graphs (paper section 5.1).

After instruction selection modulo equivalence, an e-class mixes real-number
e-nodes, float e-nodes of several formats, and ill-typed combinations.  A
valid output program must be a *well-typed floating-point* expression, so
extraction must (a) skip real-operator e-nodes entirely and (b) respect each
float operator's argument formats.

Typed extraction generalizes greedy extraction by tracking, per e-class, one
lowest-cost expression *for every floating-point type*.  An e-node is
costable at type ``t`` when its operator returns ``t`` and each argument
class has a best expression at that argument's declared format.  Literals
are costable at every target-supported format (at the target's literal
cost); variables at their declared FPCore format.  ``cast`` operators in the
target move values between formats like any other operator.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Protocol

from ..ir.expr import App, Expr
from .egraph import EGraph
from .enode import ENode, head_to_leaf_expr, is_op_head
from .extract import ExtractionError


class TypedCostModel(Protocol):
    """What typed extraction needs to know about a target.

    Implemented by :class:`repro.cost.model.TargetCostModel`; defined as a
    protocol here so the e-graph layer has no dependency on targets.
    """

    def operator_signature(self, op: str) -> tuple[tuple[str, ...], str] | None:
        """(arg_types, ret_type) for a float operator, None for real ops."""
        ...

    def operator_cost(self, op: str) -> float:
        """Scalar cost of one float operator from the target description."""
        ...

    def literal_types(self) -> Iterable[str]:
        """Float formats at which literals/constants may be materialized."""
        ...

    def literal_cost(self, ty: str) -> float:
        """Cost of materializing a literal at format ``ty``."""
        ...

    def variable_cost(self, ty: str) -> float:
        """Cost of referencing a variable of format ``ty``."""
        ...


Best = dict[int, dict[str, tuple[float, ENode, tuple[str, ...]]]]


class TypedExtractor:
    """Per-type lowest-cost extraction (the paper's novel algorithm)."""

    def __init__(
        self,
        egraph: EGraph,
        cost_model: TypedCostModel,
        var_types: dict[str, str],
    ):
        self.egraph = egraph
        self.cost_model = cost_model
        self.cost_name = getattr(
            cost_model, "name", type(cost_model).__name__
        )
        self.var_types = dict(var_types)
        self.snapshot = egraph.snapshot()
        #: best[class][type] = (cost, enode, arg_types)
        self.best: Best = {}
        self._run()

    # --- worklist ---------------------------------------------------------------

    def _run(self) -> None:
        """Parents-driven worklist over the shared topology snapshot.

        The typed analogue of :meth:`repro.egraph.extract.Extractor._run`:
        a class whose per-type table gains or improves an entry pushes its
        parents, so each class is re-priced only when a child's table
        actually changed instead of on every whole-graph sweep.
        """
        best = self.best
        nodes = self.snapshot.nodes
        parents = self.snapshot.parents
        pending = deque(nodes)
        queued = set(pending)
        while pending:
            class_id = pending.popleft()
            queued.discard(class_id)
            table = best.setdefault(class_id, {})
            improved = False
            for head, args, node in nodes[class_id]:
                for ty, cost, arg_types in self._node_options(head, args):
                    current = table.get(ty)
                    if current is None or cost < current[0]:
                        table[ty] = (cost, node, arg_types)
                        improved = True
            if improved:
                for parent in parents.get(class_id, ()):
                    if parent not in queued:
                        queued.add(parent)
                        pending.append(parent)

    def _node_options(self, head, args: tuple[int, ...]):
        """Yield ``(ret_type, total_cost, arg_types)`` choices for a node.

        ``args`` are canonical class ids (snapshot form), so child lookups
        go straight into the best tables without union-find calls.
        """
        if is_op_head(head):
            signature = self.cost_model.operator_signature(head)
            if signature is None:
                return  # real operator: never extracted
            arg_types, ret_type = signature
            if len(arg_types) != len(args):
                return
            total = self.cost_model.operator_cost(head)
            for arg, arg_ty in zip(args, arg_types):
                entry = self.best.get(arg, {}).get(arg_ty)
                if entry is None:
                    return
                total += entry[0]
            yield ret_type, total, arg_types
            return
        tag = head[0]
        if tag == "var":
            ty = self.var_types.get(head[1])
            if ty is not None:
                yield ty, self.cost_model.variable_cost(ty), ()
        elif tag in ("num", "const"):
            if tag == "const" and head[1] in ("TRUE", "FALSE", "NAN"):
                return
            for ty in self.cost_model.literal_types():
                yield ty, self.cost_model.literal_cost(ty), ()

    # --- queries ------------------------------------------------------------------

    def cost_of(self, class_id: int, ty: str) -> float | None:
        """Best cost of an expression of type ``ty`` in the class, if any."""
        entry = self.best.get(self.egraph.find(class_id), {}).get(ty)
        return entry[0] if entry else None

    def available_types(self, class_id: int) -> list[str]:
        """Float formats at which this class has an extractable program."""
        return sorted(self.best.get(self.egraph.find(class_id), {}).keys())

    def extract(self, class_id: int, ty: str) -> Expr:
        """The lowest-cost well-typed expression of format ``ty``."""
        return self._build(self.egraph.find(class_id), ty, {})

    def _build(self, class_id: int, ty: str, memo: dict) -> Expr:
        key = (class_id, ty)
        cached = memo.get(key)
        if cached is not None:
            return cached
        entry = self.best.get(class_id, {}).get(ty)
        if entry is None:
            raise ExtractionError(class_id, self.cost_name, ty=ty)
        _cost, node, arg_types = entry
        expr = self.node_to_expr(node, arg_types, memo)
        memo[key] = expr
        return expr

    def node_to_expr(
        self, node: ENode, arg_types: tuple[str, ...], memo: dict | None = None
    ) -> Expr:
        """Build the expression for one e-node, children filled greedily."""
        memo = {} if memo is None else memo
        head, args = node
        if is_op_head(head):
            kids = tuple(
                self._build(self.egraph.find(arg), arg_ty, memo)
                for arg, arg_ty in zip(args, arg_types)
            )
            return App(head, kids)
        return head_to_leaf_expr(head)
