"""E-matching: finding instances of a pattern inside an e-graph.

Patterns are ordinary :class:`~repro.ir.expr.Expr` trees in which
:class:`~repro.ir.expr.Var` nodes act as pattern variables.  A match binds
each pattern variable to an e-class id.  This is the straightforward
backtracking matcher (sufficient at our e-graph sizes); egg's relational
virtual machine is an optimization of the same semantics.

Root candidates come from the e-graph's head index (O(candidates) instead
of O(classes)), can be restricted to a caller-supplied root set (how the
saturation runner re-matches only the dirty region), and can be filtered
by an ``accept`` predicate *inside* the enumeration so match limits count
only matches the caller will keep.
"""

from __future__ import annotations

from typing import Callable, Iterator

from ..ir.expr import App, Expr, Var
from .egraph import EGraph
from .enode import head_of_expr

Subst = dict[str, int]


def ematch_class(
    egraph: EGraph, pattern: Expr, class_id: int, subst: Subst | None = None
) -> Iterator[Subst]:
    """Yield every substitution making ``pattern`` match e-class ``class_id``."""
    yield from _match(egraph, pattern, egraph.find(class_id), subst or {})


def _match(egraph: EGraph, pattern: Expr, class_id: int, subst: Subst) -> Iterator[Subst]:
    if isinstance(pattern, Var):
        bound = subst.get(pattern.name)
        if bound is None:
            new = dict(subst)
            new[pattern.name] = class_id
            yield new
        elif egraph.same(bound, class_id):
            yield subst
        return
    if not isinstance(pattern, App):
        # Leaf literal/constant: matches iff this class contains that leaf.
        if egraph.represents(class_id, pattern):
            yield subst
        return
    arity = len(pattern.args)
    for node in egraph.nodes_of(class_id):
        head, args = node
        if head != pattern.op or len(args) != arity:
            continue
        yield from _match_args(egraph, pattern.args, args, 0, subst)


def _match_args(egraph, patterns, arg_classes, index, subst) -> Iterator[Subst]:
    if index == len(patterns):
        yield subst
        return
    for sub in _match(egraph, patterns[index], arg_classes[index], subst):
        yield from _match_args(egraph, patterns, arg_classes, index + 1, sub)


def root_candidates(egraph: EGraph, pattern: Expr) -> list[int]:
    """Canonical e-class ids that could host a match of ``pattern``.

    App and leaf patterns resolve through the head index; a bare variable
    pattern matches every class.
    """
    if isinstance(pattern, App):
        return egraph.classes_with_head(pattern.op)
    if isinstance(pattern, Var):
        seen: dict[int, None] = {}
        for eclass in egraph.classes():
            seen[egraph.find(eclass.id)] = None
        return list(seen)
    return egraph.classes_with_head(head_of_expr(pattern))


# Compiled pattern forms (tuples, matched against a GraphSnapshot):
#   ("var", name)            pattern variable
#   ("leaf", class_id|None)  literal/constant, resolved to its class once
#   ("app", op, subpatterns) operator application
def _compile(egraph: EGraph, pattern: Expr):
    if isinstance(pattern, Var):
        return ("var", pattern.name)
    if isinstance(pattern, App):
        return ("app", pattern.op,
                tuple(_compile(egraph, a) for a in pattern.args))
    # A leaf matches exactly the class that holds it; resolving it here
    # turns every leaf check during the search into an int comparison.
    return ("leaf", egraph.lookup_node(head_of_expr(pattern), ()))


def _match_snapshot(snap, prog, class_id: int, subst: Subst) -> Iterator[Subst]:
    """Match a compiled pattern against one snapshot class.

    All ids are canonical at the snapshot's generation, so variable
    consistency and leaf checks are integer comparisons and no union-find
    or node-head filtering happens inside the hot loop.
    """
    tag = prog[0]
    if tag == "var":
        name = prog[1]
        bound = subst.get(name)
        if bound is None:
            new = dict(subst)
            new[name] = class_id
            yield new
        elif bound == class_id:
            yield subst
        return
    if tag == "leaf":
        if prog[1] == class_id:
            yield subst
        return
    subpats = prog[2]
    arity = len(subpats)
    for args in snap.by_head.get(class_id, _EMPTY).get(prog[1], ()):
        if len(args) != arity:
            continue
        yield from _match_snapshot_args(snap, subpats, args, 0, subst)


_EMPTY: dict = {}


def _match_snapshot_args(snap, subpats, args, index, subst) -> Iterator[Subst]:
    """Match the remaining subpatterns against sibling arg classes.

    Variable and leaf subpatterns are consumed inline (they bind or fail
    without branching), so generator recursion — the expensive part of the
    backtracking search — happens only at nested App subpatterns.
    """
    n = len(subpats)
    binds = None
    while index < n:
        prog = subpats[index]
        tag = prog[0]
        if tag == "var":
            name = prog[1]
            class_id = args[index]
            bound = subst.get(name)
            if bound is None and binds is not None:
                bound = binds.get(name)
            if bound is None:
                if binds is None:
                    binds = {}
                binds[name] = class_id
            elif bound != class_id:
                return
        elif tag == "leaf":
            if prog[1] != args[index]:
                return
        else:
            break
        index += 1
    if binds:
        subst = {**subst, **binds}
    if index == n:
        yield subst
        return
    for sub in _match_snapshot(snap, subpats[index], args[index], subst):
        yield from _match_snapshot_args(snap, subpats, args, index + 1, sub)


def search_pattern(
    egraph: EGraph,
    pattern: Expr,
    limit: int | None = None,
    roots: "set[int] | None" = None,
    accept: Callable[[int, Subst], bool] | None = None,
    search_stats: dict | None = None,
) -> list[tuple[int, Subst]]:
    """Find matches of ``pattern`` anywhere in the e-graph.

    Returns ``(class_id, subst)`` pairs; ``class_id`` is the class the whole
    pattern matched in.  ``limit`` bounds the number of matches collected.
    ``roots`` restricts the searched root classes to the given canonical
    ids (candidates outside it are skipped without matching — incremental
    re-matching passes the dirty closure here).  ``accept`` filters matches
    during enumeration; rejected matches do not count against ``limit``, so
    a truncated search is truncated at the same *kept* match regardless of
    how many rejected ones the enumeration passed over.  ``search_stats``
    (when given) receives ``skipped_roots``: how many root candidates the
    ``roots`` filter pruned (candidates after a limit-triggered early
    return are not counted).

    The search runs against the graph's per-generation snapshot with the
    pattern compiled once, so repeated searches of one saturation iteration
    share all canonicalization work.
    """
    results: list[tuple[int, Subst]] = []
    snap = egraph.snapshot()
    prog = _compile(egraph, pattern)
    seen: set[int] = set()
    skipped = 0
    try:
        for class_id in root_candidates(egraph, pattern):
            canon = egraph.find(class_id)
            if canon in seen:
                continue
            seen.add(canon)
            if roots is not None and canon not in roots:
                skipped += 1
                continue
            for subst in _match_snapshot(snap, prog, canon, {}):
                if accept is not None and not accept(canon, subst):
                    continue
                results.append((canon, subst))
                if limit is not None and len(results) >= limit:
                    return results
        return results
    finally:
        if search_stats is not None:
            search_stats["skipped_roots"] = skipped


def lookup_template(
    egraph: EGraph, template: Expr, subst: Subst
) -> int | None:
    """The e-class ``template`` (under ``subst``) already occupies, if any.

    The read-only twin of :func:`instantiate`: returns None as soon as any
    node of the instantiated template is absent from the hashcons.
    """
    if isinstance(template, Var):
        return subst.get(template.name)
    if isinstance(template, App):
        args = []
        for arg in template.args:
            class_id = lookup_template(egraph, arg, subst)
            if class_id is None:
                return None
            args.append(class_id)
        return egraph.lookup_node(template.op, args)
    return egraph.lookup_node(head_of_expr(template), ())


def match_is_applied(
    egraph: EGraph, rhs: Expr, class_id: int, subst: Subst
) -> bool:
    """True when applying ``rhs`` at this match cannot change the e-graph.

    A rewrite application inserts the instantiated rhs and merges it with
    the matched class; when the rhs already exists *in that same class*,
    both steps are no-ops.  Matches stay applied forever (classes never
    un-merge), so the saturation runner filters them out of every search —
    which is what makes full and incremental re-matching apply identical
    effective match sequences.
    """
    found = lookup_template(egraph, rhs, subst)
    return found is not None and egraph.same(found, class_id)


def instantiate(egraph: EGraph, template: Expr, subst: Subst) -> int:
    """Insert ``template`` (with pattern vars bound by ``subst``) and return
    its e-class id."""
    if isinstance(template, Var):
        try:
            return subst[template.name]
        except KeyError:
            raise KeyError(
                f"unbound pattern variable {template.name!r} in rewrite rhs"
            ) from None
    if isinstance(template, App):
        args = tuple(instantiate(egraph, a, subst) for a in template.args)
        return egraph.add_node(template.op, args)
    return egraph.add_node(head_of_expr(template), ())
