"""E-matching: finding instances of a pattern inside an e-graph.

Patterns are ordinary :class:`~repro.ir.expr.Expr` trees in which
:class:`~repro.ir.expr.Var` nodes act as pattern variables.  A match binds
each pattern variable to an e-class id.  This is the straightforward
backtracking matcher (sufficient at our e-graph sizes); egg's relational
virtual machine is an optimization of the same semantics.
"""

from __future__ import annotations

from typing import Iterator

from ..ir.expr import App, Expr, Var
from .egraph import EGraph
from .enode import head_of_expr

Subst = dict[str, int]


def ematch_class(
    egraph: EGraph, pattern: Expr, class_id: int, subst: Subst | None = None
) -> Iterator[Subst]:
    """Yield every substitution making ``pattern`` match e-class ``class_id``."""
    yield from _match(egraph, pattern, egraph.find(class_id), subst or {})


def _match(egraph: EGraph, pattern: Expr, class_id: int, subst: Subst) -> Iterator[Subst]:
    if isinstance(pattern, Var):
        bound = subst.get(pattern.name)
        if bound is None:
            new = dict(subst)
            new[pattern.name] = class_id
            yield new
        elif egraph.same(bound, class_id):
            yield subst
        return
    if not isinstance(pattern, App):
        # Leaf literal/constant: matches iff this class contains that leaf.
        if egraph.represents(class_id, pattern):
            yield subst
        return
    arity = len(pattern.args)
    for node in egraph.nodes_of(class_id):
        head, args = node
        if head != pattern.op or len(args) != arity:
            continue
        yield from _match_args(egraph, pattern.args, args, 0, subst)


def _match_args(egraph, patterns, arg_classes, index, subst) -> Iterator[Subst]:
    if index == len(patterns):
        yield subst
        return
    for sub in _match(egraph, patterns[index], arg_classes[index], subst):
        yield from _match_args(egraph, patterns, arg_classes, index + 1, sub)


def search_pattern(
    egraph: EGraph, pattern: Expr, limit: int | None = None
) -> list[tuple[int, Subst]]:
    """Find matches of ``pattern`` anywhere in the e-graph.

    Returns ``(class_id, subst)`` pairs; ``class_id`` is the class the whole
    pattern matched in.  ``limit`` bounds the number of matches collected.
    """
    results: list[tuple[int, Subst]] = []
    if isinstance(pattern, App):
        roots = egraph.op_nodes(pattern.op)
        seen_classes: set[int] = set()
        for _node, class_id in roots:
            canon = egraph.find(class_id)
            if canon in seen_classes:
                continue
            seen_classes.add(canon)
            for subst in _match(egraph, pattern, canon, {}):
                results.append((canon, subst))
                if limit is not None and len(results) >= limit:
                    return results
    else:
        seen: set[int] = set()
        for eclass in egraph.classes():
            canon = egraph.find(eclass.id)
            if canon in seen:
                continue
            seen.add(canon)
            for subst in _match(egraph, pattern, canon, {}):
                results.append((canon, subst))
                if limit is not None and len(results) >= limit:
                    return results
    return results


def instantiate(egraph: EGraph, template: Expr, subst: Subst) -> int:
    """Insert ``template`` (with pattern vars bound by ``subst``) and return
    its e-class id."""
    if isinstance(template, Var):
        try:
            return subst[template.name]
        except KeyError:
            raise KeyError(
                f"unbound pattern variable {template.name!r} in rewrite rhs"
            ) from None
    if isinstance(template, App):
        args = tuple(instantiate(egraph, a, subst) for a in template.args)
        return egraph.add_node(template.op, args)
    return egraph.add_node(head_of_expr(template), ())
