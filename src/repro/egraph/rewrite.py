"""Rewrite rules over e-graphs (paper section 3.3).

A rewrite ``lhs -> rhs`` is applied *non-destructively*: every match of
``lhs`` inserts the instantiated ``rhs`` and merges the two e-classes, so the
e-graph explores compositions of rules in parallel and avoids the
phase-ordering problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..ir.expr import Expr
from ..ir.parser import parse_expr
from .egraph import EGraph
from .ematch import Subst, instantiate, search_pattern

#: Optional side condition; receives the substitution and the e-graph and
#: returns whether the rule may fire for that match.
Condition = Callable[[EGraph, Subst], bool]


@dataclass(frozen=True)
class Rewrite:
    """One directed rewrite rule ``name: lhs => rhs``."""

    name: str
    lhs: Expr
    rhs: Expr
    condition: Condition | None = field(default=None, compare=False)
    #: Tags such as "simplify" (AST-non-growing rules used by the cost
    #: opportunity analysis), "sound", "arithmetic", etc.
    tags: frozenset[str] = frozenset()

    def __post_init__(self):
        unbound = self.rhs.free_vars() - self.lhs.free_vars()
        if unbound:
            raise ValueError(
                f"rule {self.name}: rhs has unbound variables {sorted(unbound)}"
            )

    def apply(self, egraph: EGraph, limit: int | None = None) -> int:
        """Apply this rule everywhere it matches; returns number of matches."""
        matches = search_pattern(egraph, self.lhs, limit=limit)
        count = 0
        for class_id, subst in matches:
            if self.condition is not None and not self.condition(egraph, subst):
                continue
            new_id = instantiate(egraph, self.rhs, subst)
            egraph.union(class_id, new_id)
            count += 1
        return count

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.name}: {self.lhs!r} => {self.rhs!r}"


def rw(
    name: str,
    lhs: str | Expr,
    rhs: str | Expr,
    known_ops=None,
    condition: Condition | None = None,
    tags=(),
) -> Rewrite:
    """Build a rewrite from S-expression strings (test/rule-database helper)."""
    lhs_expr = parse_expr(lhs, known_ops) if isinstance(lhs, str) else lhs
    rhs_expr = parse_expr(rhs, known_ops) if isinstance(rhs, str) else rhs
    return Rewrite(name, lhs_expr, rhs_expr, condition, frozenset(tags))


def birw(name: str, lhs, rhs, known_ops=None, tags=()) -> list[Rewrite]:
    """Build a bidirectional pair of rewrites."""
    return [
        rw(name, lhs, rhs, known_ops, tags=tags),
        rw(name + "-rev", rhs, lhs, known_ops, tags=tags),
    ]
