"""Union-find (disjoint set) over dense integer ids, with path compression."""

from __future__ import annotations


class UnionFind:
    """Classic disjoint-set-union keyed by consecutive integer ids."""

    def __init__(self):
        self._parent: list[int] = []

    def __len__(self) -> int:
        return len(self._parent)

    def make_set(self) -> int:
        """Create a fresh singleton set and return its id."""
        new_id = len(self._parent)
        self._parent.append(new_id)
        return new_id

    def find(self, x: int) -> int:
        """Return the canonical representative of ``x``'s set."""
        root = x
        parent = self._parent
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    def union(self, a: int, b: int) -> int:
        """Merge the sets of ``a`` and ``b``; returns the surviving root.

        The smaller id wins, which keeps canonical ids stable over time (an
        e-graph convenience: the id of an early-added expression survives
        merges).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if rb < ra:
            ra, rb = rb, ra
        self._parent[rb] = ra
        return ra

    def same(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)
