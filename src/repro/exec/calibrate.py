"""Calibrate the performance simulator against real measured timings.

Simulated cost models drift from hardware unless anchored to real
executions (the gap the paper's section 7 attributes to denormals, ILP and
interpreter overhead — and the gap ASIP/real-time simulation work closes
by calibrating against measurements).  This module closes the loop for the
reproduction: it pairs :class:`~repro.perf.simulator.PerfSimulator`
predictions with wall-clock measurements of the same programs
(:mod:`repro.exec.timing`) and fits an affine correction

    ``measured ≈ scale * predicted + offset``

by least squares.  The offset absorbs the near-constant call-boundary cost
of reaching emitted code (ctypes / Python call overhead); the scale is the
systematic prediction bias.  The report carries the log-log Pearson
correlation (the figure-10 metric), per-operator mean relative residuals —
which operators the model consistently mis-prices after correction — and
the raw (predicted, measured) points, all JSON-serializable for the
benchmark harness.

:meth:`CalibrationReport.rescale` applies the fitted correction, turning a
cost-model prediction into a calibrated wall-clock estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from .executable import json_float


@dataclass
class CalibrationPoint:
    """One program's predicted and measured per-evaluation cost (ns)."""

    benchmark: str
    program: str
    predicted_ns: float
    measured_ns: float
    operators: tuple[str, ...] = ()

    def as_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "program": self.program,
            "predicted_ns": self.predicted_ns,
            "measured_ns": self.measured_ns,
            "operators": list(self.operators),
        }


@dataclass
class CalibrationReport:
    """The fitted correction and its diagnostics for one target/backend."""

    target: str
    backend: str
    n_programs: int
    #: Affine fit: measured ≈ scale * predicted + offset.
    scale: float
    offset: float
    #: Pearson correlation of log(predicted) vs log(measured).
    correlation: float
    #: Mean relative residual (measured - rescaled) / measured per
    #: operator, over the programs containing that operator.  Positive:
    #: the model *under*-prices programs using the operator.
    operator_residuals: dict[str, float] = field(default_factory=dict)
    points: list[CalibrationPoint] = field(default_factory=list)

    def rescale(self, predicted_ns: float) -> float:
        """A calibrated wall-clock estimate from a cost-model prediction."""
        return self.scale * predicted_ns + self.offset

    def as_dict(self) -> dict:
        return {
            "target": self.target,
            "backend": self.backend,
            "n_programs": self.n_programs,
            "scale": self.scale,
            "offset": self.offset,
            # NaN with < 3 points or degenerate variance; keep the JSON
            # artifact strict-RFC8259 (bare NaN tokens break jq et al.).
            "correlation": json_float(self.correlation),
            "operator_residuals": self.operator_residuals,
            "points": [p.as_dict() for p in self.points],
        }


def affine_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares ``y ≈ scale * x + offset`` (degenerate-safe)."""
    n = len(xs)
    if n == 0:
        return 1.0, 0.0
    if n == 1:
        return (ys[0] / xs[0] if xs[0] else 1.0), 0.0
    mx, my = sum(xs) / n, sum(ys) / n
    vx = sum((x - mx) ** 2 for x in xs)
    if vx <= 0.0:
        return 1.0, my - mx
    scale = sum((x - mx) * (y - my) for x, y in zip(xs, ys)) / vx
    return scale, my - scale * mx


def log_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation of log-x vs log-y (the figure-10 trend metric)."""
    if len(xs) < 3:
        return float("nan")
    lx = [math.log(max(x, 1e-9)) for x in xs]
    ly = [math.log(max(y, 1e-9)) for y in ys]
    n = len(lx)
    mx, my = sum(lx) / n, sum(ly) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(lx, ly))
    vx = sum((x - mx) ** 2 for x in lx)
    vy = sum((y - my) ** 2 for y in ly)
    if vx <= 0 or vy <= 0:
        return float("nan")
    return cov / math.sqrt(vx * vy)


def calibrate(
    points: Sequence[CalibrationPoint], target_name: str, backend: str
) -> CalibrationReport:
    """Fit the affine correction and diagnostics over measured points."""
    xs = [p.predicted_ns for p in points]
    ys = [p.measured_ns for p in points]
    scale, offset = affine_fit(xs, ys)

    residual_sums: dict[str, float] = {}
    residual_counts: dict[str, int] = {}
    for point in points:
        if point.measured_ns <= 0:
            continue
        rescaled = scale * point.predicted_ns + offset
        relative = (point.measured_ns - rescaled) / point.measured_ns
        for op in point.operators:
            residual_sums[op] = residual_sums.get(op, 0.0) + relative
            residual_counts[op] = residual_counts.get(op, 0) + 1

    return CalibrationReport(
        target=target_name,
        backend=backend,
        n_programs=len(points),
        scale=scale,
        offset=offset,
        correlation=log_correlation(xs, ys),
        operator_residuals={
            op: residual_sums[op] / residual_counts[op]
            for op in sorted(residual_sums)
        },
        points=list(points),
    )


def collect_calibration(
    session,
    cores,
    target,
    *,
    backend: str = "auto",
    repeats: int = 3,
    programs_per_core: int = 3,
    timing_points: int | None = 24,
) -> CalibrationReport:
    """Compile, execute, time, and calibrate over a benchmark list.

    For each benchmark that compiles, up to ``programs_per_core`` frontier
    programs (cheapest first, plus the transcribed input) are paired:
    predicted ns from the session's :class:`PerfSimulator`, measured ns
    from :func:`~repro.exec.timing.measure_executable` over (a slice of)
    the test points.  Benchmarks that fail to compile or build are skipped
    — the removal protocol, as everywhere else in the evaluation.

    The backend is resolved *once* for the whole collection
    (``"auto"`` becomes C or Python up front) and forced per program, so
    every measurement in one fit comes from the same execution regime:
    C and Python timings differ by orders of magnitude, and a fit over a
    silent mixture would be meaningless.  Programs the resolved backend
    cannot run are skipped, not degraded.

    ``session`` is a :class:`~repro.session.ChassisSession`; it is typed
    loosely to keep this module importable without the session layer.
    """
    from ..ir.printer import expr_to_sexpr
    from .executable import c_backend_available
    from .timing import measure_executable

    target = session.resolve_target(target)
    simulator = session.simulator(target)
    points: list[CalibrationPoint] = []
    if backend == "auto":
        backend = (
            "c"
            if target.output_format == "c" and c_backend_available()
            else "python"
        )
    for core in cores:
        try:
            result = session.compile(core, target)
        except Exception:
            continue  # infeasible pair: removed, as in every experiment
        samples = result.samples
        test_points = samples.test[:timing_points] if timing_points else samples.test
        if not test_points:
            continue
        programs = [result.input_candidate] + result.frontier.sorted_by_cost()
        seen: set[str] = set()
        for candidate in programs[: programs_per_core + 1]:
            sexpr = expr_to_sexpr(candidate.program)
            if sexpr in seen:
                continue
            seen.add(sexpr)
            try:
                executable = session.executable(
                    core, target, program=candidate.program, backend=backend
                )
                timing = measure_executable(
                    executable, test_points, repeats=repeats
                )
            except Exception:
                continue  # unbuildable under the resolved backend: skipped
            predicted = simulator.run_time(
                candidate.program, test_points, core.precision
            )
            points.append(
                CalibrationPoint(
                    benchmark=core.name or "<anonymous>",
                    program=sexpr,
                    predicted_ns=predicted,
                    measured_ns=timing.median_ns,
                    operators=tuple(sorted(candidate.program.operators())),
                )
            )
    return calibrate(points, target.name, backend)
