"""Compile emitted C into shared libraries and load them through ctypes.

The paper's evaluation runs real Clang-compiled binaries over the sampled
points; this module is the reproduction's equivalent: emitted C source
(:func:`repro.core.output.to_c`) is compiled by the *system* compiler into a
shared library and loaded with :mod:`ctypes`, so validation and timing run
machine code, not a simulation.

Three pieces:

* **discovery** — :func:`find_compiler` probes ``$REPRO_CC``, then ``cc``,
  ``clang``, ``gcc`` once per environment setting.  Setting ``REPRO_CC=none``
  disables the C backend entirely (how CI exercises the no-compiler leg).
* **build cache** — :class:`BuildCache` is a content-addressed store of
  built ``.so`` files keyed by a SHA-256 of (compiler identity, flags,
  source), the same sharded-directory layout as the persistent
  :class:`~repro.service.cache.CompileCache` it lives next to.  Rebuilding
  an already-built program is a stat, not a compile.
* **loading** — :func:`load_function` resolves the emitted function from
  the shared library and types it for the benchmark's float format.

Builds are strict about IEEE semantics: ``-ffp-contract=off`` (GCC
contracts ``a*b+c`` into fma by default at ``-O2``, which would change
results the validator then mis-attributes) and ``-Wl,--no-undefined`` so a
target whose operators do not exist in libm (``fast_exp`` from the VDT
target, say) fails at *build* time with a :class:`BuildError` the caller
can catch and downgrade to the Python backend, instead of at call time.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from ..deadline import check_deadline, remaining
from ..formats import get_format
from ..obs.metrics import METRICS
from ..obs.trace import span

#: Compiler candidates probed in order when ``$REPRO_CC`` is unset.
COMPILER_CANDIDATES = ("cc", "clang", "gcc")

#: ``$REPRO_CC`` values that mean "no C backend, even if one is installed".
_DISABLED_VALUES = ("none", "off", "0", "disabled")

#: "Fail on unresolved symbols at link time" is spelled differently per
#: linker: --no-undefined is GNU ld, Apple's ld64 wants -undefined error.
_STRICT_LINK = (
    "-Wl,-undefined,error" if sys.platform == "darwin" else "-Wl,--no-undefined"
)

#: Flags for every build: optimized, position-independent, shared, strict
#: IEEE contraction semantics, and no unresolved symbols at link time.
CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off", _STRICT_LINK)

#: Hard cap (seconds) on one compiler invocation; tightened further by an
#: armed cooperative deadline's remaining budget.
BUILD_TIMEOUT = 60.0


class BuildError(RuntimeError):
    """A C build or symbol load failed (missing compiler, bad source,
    operator with no libm symbol).  Callers running with ``backend="auto"``
    catch this and fall back to the Python backend."""


# One probe per distinct $REPRO_CC setting (tests flip it; production
# resolves it exactly once).
_COMPILER_CACHE: dict[str | None, str | None] = {}


def find_compiler() -> str | None:
    """Absolute path of the system C compiler, or None when unavailable.

    Resolution: ``$REPRO_CC`` names a compiler (or disables the backend
    with ``none``/``off``/``0``/``disabled``); otherwise the first of
    ``cc``/``clang``/``gcc`` on PATH wins.  The probe runs once per
    environment value and is cached for the life of the process.
    """
    env = os.environ.get("REPRO_CC") or None
    if env in _COMPILER_CACHE:
        return _COMPILER_CACHE[env]
    if env is not None and env.lower() in _DISABLED_VALUES:
        resolved = None
    elif env is not None:
        resolved = shutil.which(env) or (env if os.path.exists(env) else None)
    else:
        resolved = next(
            (path for name in COMPILER_CANDIDATES if (path := shutil.which(name))),
            None,
        )
    _COMPILER_CACHE[env] = resolved
    return resolved


_VERSION_CACHE: dict[str, str] = {}


def compiler_identity(compiler: str) -> str:
    """A stable identity string for one compiler (path plus ``--version``
    first line), part of every build fingerprint so upgrading the system
    compiler invalidates cached binaries."""
    cached = _VERSION_CACHE.get(compiler)
    if cached is not None:
        return cached
    try:
        out = subprocess.run(
            [compiler, "--version"], capture_output=True, text=True, timeout=10
        ).stdout.splitlines()
        version = out[0].strip() if out else ""
    except (OSError, subprocess.SubprocessError):
        version = ""
    identity = f"{compiler}:{version}"
    _VERSION_CACHE[compiler] = identity
    return identity


def build_fingerprint(source: str, compiler: str) -> str:
    """Content address of one build: compiler identity + flags + source."""
    h = hashlib.sha256()
    for part in (compiler_identity(compiler), " ".join(CFLAGS), source):
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


class BuildCache:
    """Content-addressed store of built shared libraries.

    Same layout as the persistent compile cache (entries sharded two hex
    chars deep) and meant to live next to it — a
    :class:`~repro.session.ChassisSession` with ``cache=".repro-cache"``
    puts builds under ``.repro-cache/builds``.  Sessions without a
    persistent cache use :meth:`ephemeral`, whose backing directory is
    removed when the cache is garbage-collected or explicitly cleaned.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.builds = 0
        self._tmpdir: tempfile.TemporaryDirectory | None = None

    @classmethod
    def ephemeral(cls) -> "BuildCache":
        """A cache on a private temporary directory (no persistent cache
        configured); cleaned up at :meth:`cleanup` or interpreter exit."""
        tmpdir = tempfile.TemporaryDirectory(prefix="repro-builds-")
        cache = cls(tmpdir.name)
        cache._tmpdir = tmpdir
        return cache

    def cleanup(self) -> None:
        """Remove an ephemeral cache's backing directory (no-op for a
        persistent one: built libraries are the point of keeping it)."""
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.so"

    def get(self, key: str) -> Path | None:
        path = self.path_for(key)
        if path.exists():
            self.hits += 1
            return path
        return None

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.so"))


# Process-wide fallback cache for callers that pass none: bounds disk use
# (content-addressing dedups repeat builds) and its backing tempdir is
# removed at interpreter exit, where per-call mkdtemp would leak forever.
_SHARED_CACHE_LOCK = threading.Lock()
_SHARED_CACHE: BuildCache | None = None


def shared_build_cache() -> BuildCache:
    """The process-wide ephemeral build cache (created on first use)."""
    global _SHARED_CACHE
    with _SHARED_CACHE_LOCK:
        if _SHARED_CACHE is None:
            _SHARED_CACHE = BuildCache.ephemeral()
        return _SHARED_CACHE


def build_shared(
    source: str,
    compiler: str | None = None,
    cache: BuildCache | None = None,
) -> Path:
    """Compile C source into a shared library; returns the ``.so`` path.

    Builds are content-addressed in ``cache`` (default: the process-wide
    ephemeral cache): an already built identical (compiler, flags, source)
    triple is returned without invoking the compiler.  Fresh builds are
    atomic — each invocation compiles to its own unique temp files, then
    ``os.replace``s into the final path — so concurrent threads or
    processes building the same source race benignly (last writer wins
    with identical content) and never observe a torn library.
    """
    compiler = compiler or find_compiler()
    if compiler is None:
        raise BuildError(
            "no C compiler found (searched $REPRO_CC, cc, clang, gcc)"
        )
    if cache is None:  # not `or`: an *empty* BuildCache is falsy via __len__
        cache = shared_build_cache()
    key = build_fingerprint(source, compiler)
    cached = cache.get(key)
    if cached is not None:
        return cached
    # Respect an armed cooperative deadline: fail fast when the budget is
    # already gone, and cap the compiler subprocess by what remains (the
    # subprocess cannot poll check_deadline itself).
    check_deadline()
    budget = remaining()
    build_timeout = (
        BUILD_TIMEOUT if budget is None else max(0.1, min(BUILD_TIMEOUT, budget))
    )
    final = cache.path_for(key)
    final.parent.mkdir(parents=True, exist_ok=True)

    src_fd, src_name = tempfile.mkstemp(dir=final.parent, suffix=".c")
    tmp_so = src_name + ".so"
    try:
        with os.fdopen(src_fd, "w") as handle:
            handle.write(source)
        try:
            cc_start = time.perf_counter()
            with span("exec.cc", compiler=compiler):
                proc = subprocess.run(
                    [compiler, *CFLAGS, "-o", tmp_so, src_name, "-lm"],
                    capture_output=True,
                    text=True,
                    timeout=build_timeout,
                )
            METRICS.histogram(
                "repro_cc_seconds",
                "Wall-clock seconds per C compiler invocation.",
            ).observe(time.perf_counter() - cc_start)
        except (subprocess.SubprocessError, OSError) as error:
            # A hung or vanished compiler is still a build failure the
            # auto backend must be able to degrade from, not a crash.
            raise BuildError(f"{compiler} did not complete: {error}") from None
        if proc.returncode != 0:
            raise BuildError(
                f"{compiler} failed ({proc.returncode}): "
                f"{proc.stderr.strip().splitlines()[-1] if proc.stderr.strip() else 'no diagnostics'}"
            )
        os.replace(tmp_so, final)
    finally:
        for leftover in (src_name, tmp_so):
            try:
                os.unlink(leftover)
            except OSError:
                pass
    cache.builds += 1
    return final


def load_function(
    lib_path: str | os.PathLike,
    fn_name: str,
    arg_types: tuple[str, ...],
    ret_type: str,
):
    """Load one emitted function from a built shared library.

    ``arg_types``/``ret_type`` are registered float format names; the
    ctypes signature is derived from each format's C scalar type so
    binary32 programs round-trip through real C ``float``.  Formats with
    no C type never reach here (``to_c`` refuses to emit them).
    """
    try:
        lib = ctypes.CDLL(os.fspath(lib_path))
    except OSError as error:
        raise BuildError(f"cannot load {lib_path}: {error}") from None
    try:
        fn = getattr(lib, fn_name)
    except AttributeError:
        raise BuildError(
            f"built library exports no symbol {fn_name!r}"
        ) from None
    ctype = {"float": ctypes.c_float, "double": ctypes.c_double}

    def resolve(ty: str):
        return ctype.get(get_format(ty).c_type or "double", ctypes.c_double)

    fn.argtypes = [resolve(ty) for ty in arg_types]
    fn.restype = resolve(ret_type)
    return fn
