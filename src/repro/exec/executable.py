"""Turn a compiled float program into something that actually runs.

:func:`executable_for` is the front door of the execution subsystem: given
a program (an :class:`~repro.ir.expr.Expr` over target operators), its
benchmark and its target, it picks a backend, emits real source text, and
returns an :class:`ExecutableProgram` whose calls run *emitted code* — a
Clang/GCC-compiled shared library for C-emitting targets, or the emitted
Python text executed in a sandboxed namespace.

Backend selection (``backend="auto"``):

* targets that emit C (``c99``, ``arith``, ``avx``, ``vdt``, ``fdlibm``,
  ...) use the **C backend** when a system compiler exists *and* the
  program links — operators with no libm symbol (``fast_exp``) fail the
  strict ``-Wl,--no-undefined`` build and degrade to Python;
* everything else — and every machine without a C compiler — uses the
  **Python backend**.  The degradation is recorded in
  :attr:`ExecutableProgram.note` so reports can say what actually ran.

Forcing ``backend="c"`` raises :class:`~repro.exec.builder.BuildError`
instead of degrading; forcing ``backend="python"`` never builds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..core.output import sanitize_identifier, to_c, to_python
from ..ir.expr import Expr
from ..ir.fpcore import FPCore
from ..targets.target import Target
from .builder import BuildCache, BuildError, build_shared, find_compiler, load_function
from .python_backend import compile_python_function

#: Exceptions emitted code may raise at a point; mapped to NaN, matching
#: the operators-are-total semantics the machine and scorer use.
_POINT_ERRORS = (
    ArithmeticError,  # ZeroDivisionError, OverflowError, FloatingPointError
    ValueError,
    TypeError,
)

BACKENDS = ("auto", "c", "python")


def json_float(value: float) -> float | str:
    """A float as strict-JSON-safe data.

    Executed outputs are routinely non-finite (the run guard maps emitted
    code's exceptions to NaN), but ``json.dumps`` would emit the bare
    ``NaN``/``Infinity`` tokens RFC 8259 parsers reject — so non-finite
    values serialize as their ``repr`` strings (``"nan"``, ``"inf"``,
    ``"-inf"``) instead.
    """
    return value if math.isfinite(value) else repr(value)


@dataclass
class ExecutableProgram:
    """One program loaded and ready to run over concrete points."""

    #: Which backend actually ran: ``"c"`` or ``"python"``.
    backend: str
    #: Language of the source text that was executed.
    language: str
    fn_name: str
    #: The emitted source text (what was compiled/executed).
    source: str
    #: Argument order for positional calls (the benchmark's).
    arg_names: tuple[str, ...]
    _fn: Callable[..., float] = field(repr=False)
    #: Built shared-library path (C backend only).
    lib_path: str | None = None
    #: Degradation note ("no C compiler on PATH; ..."), empty when the
    #: requested backend ran.
    note: str = ""

    def run(self, *args: float) -> float:
        """Raw positional call (exceptions propagate)."""
        return float(self._fn(*args))

    def run_args(self, args: tuple) -> float:
        """One guarded call: emitted-code exceptions become NaN, the same
        totalization the scoring machinery applies."""
        try:
            return float(self._fn(*args))
        except _POINT_ERRORS:
            return math.nan

    def run_point(self, point: Mapping[str, float]) -> float:
        """Guarded call on one named sample point."""
        return self.run_args(tuple(point[name] for name in self.arg_names))


def c_backend_available() -> bool:
    """True when a system C compiler was discovered (``$REPRO_CC`` aware)."""
    return find_compiler() is not None


def backend_availability(target: Target) -> dict:
    """Per-target execution capability metadata (``repro targets --json``
    and the ``/targets`` endpoint).

    ``languages`` are the formats this target's programs are emitted in
    (its native format first; Python is always emittable because it is the
    fallback execution vehicle, FPCore is the universal interchange).
    ``backends`` says which empirical execution backends can run them on
    *this* machine right now: the C backend needs the target to emit C and
    a compiler to exist; the Python backend is always available.
    ``formats`` are the registered number formats the target declares
    operators for (its ``literal_costs`` keys) — the formats its programs
    can be compiled, emitted, and executed in.
    """
    languages = []
    for language in (target.output_format, "python", "fpcore"):
        if language not in languages:
            languages.append(language)
    return {
        "languages": languages,
        "formats": list(target.float_types()),
        "backends": {
            "c": bool(target.output_format == "c" and c_backend_available()),
            "python": True,
        },
    }


def executable_for(
    program: Expr,
    core: FPCore,
    target: Target,
    *,
    backend: str = "auto",
    build_cache: BuildCache | None = None,
    compiler: str | None = None,
    fn_name: str | None = None,
) -> ExecutableProgram:
    """Emit, build/load, and wrap one program; see the module docstring."""
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; one of {BACKENDS}")
    fn_name = fn_name or sanitize_identifier(core.name)
    note = ""

    wants_c = backend == "c" or (backend == "auto" and target.output_format == "c")
    if wants_c:
        resolved = compiler or find_compiler()
        if resolved is None:
            if backend == "c":
                raise BuildError(
                    "no C compiler found (searched $REPRO_CC, cc, clang, gcc)"
                )
            note = "no C compiler on PATH; executed via the Python backend"
        else:
            source = to_c(program, core, target, fn_name)
            try:
                lib_path = build_shared(source, compiler=resolved, cache=build_cache)
                arg_types = tuple(
                    core.arg_types.get(name, core.precision)
                    for name in core.arguments
                )
                fn = load_function(lib_path, fn_name, arg_types, core.precision)
            except BuildError as error:
                if backend == "c":
                    raise
                note = f"C build failed ({error}); executed via the Python backend"
            else:
                return ExecutableProgram(
                    backend="c",
                    language="c",
                    fn_name=fn_name,
                    source=source,
                    arg_names=tuple(core.arguments),
                    _fn=fn,
                    lib_path=str(lib_path),
                )

    source = to_python(program, core, target, fn_name)
    fn = compile_python_function(source, fn_name, target=target)
    return ExecutableProgram(
        backend="python",
        language="python",
        fn_name=fn_name,
        source=source,
        arg_names=tuple(core.arguments),
        _fn=fn,
        note=note,
    )


@dataclass
class ExecutionRun:
    """The outputs of running one program over a set of sample points
    (what :meth:`repro.session.ChassisSession.execute` returns)."""

    benchmark: str
    target: str
    backend: str
    language: str
    fn_name: str
    outputs: list[float]
    note: str = ""

    def as_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "target": self.target,
            "backend": self.backend,
            "language": self.language,
            "fn_name": self.fn_name,
            "n_points": len(self.outputs),
            "outputs": [json_float(value) for value in self.outputs],
            "note": self.note,
        }
