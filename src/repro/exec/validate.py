"""Cross-check executed emitted code against the oracle and the machine.

A compiled program exists three times in this system: as an expression the
:mod:`repro.fpeval` machine evaluates (what every accuracy score is based
on), as emitted source text, and — with this subsystem — as an actually
*running* artifact.  :func:`validate_program` runs the third form over the
session's sampled points and reports two comparisons per point:

* **against the Rival oracle** — bits of error of the executed output
  versus the correctly-rounded exact value (the same metric as scoring),
  giving an *empirical* accuracy score;
* **against the machine** — ULP distance between the executed output and
  the machine's evaluation of the same program, localizing exactly which
  points (and how far) real execution diverges from the model.

Agreement is summarized as ``agreement_bits`` (|empirical − machine| mean
bits-of-error); mismatching points are reported individually (capped) so a
divergence can be traced to its inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..accuracy.sampler import SampleSet
from ..accuracy.ulp import bits_of_error, ulps_between
from ..deadline import check_deadline
from ..fpeval.machine import compile_expr
from ..ir.expr import Expr
from ..ir.fpcore import FPCore
from ..targets.target import Target
from .builder import BuildCache
from .executable import ExecutableProgram, executable_for, json_float

#: ULP distance (executed vs machine) above which a point is a mismatch.
DEFAULT_MISMATCH_ULPS = 1

#: How many individual mismatching points a report carries.
DEFAULT_MAX_MISMATCHES = 8


@dataclass
class PointMismatch:
    """One sample point where executed code and the machine disagree."""

    index: int
    point: dict
    exact: float
    executed: float
    machine: float
    ulps: int
    executed_bits: float
    machine_bits: float

    def as_dict(self) -> dict:
        # Executed/machine values are exactly where NaN/inf show up;
        # json_float keeps the report strict-JSON (sample inputs and
        # exact values are finite by the sampler's construction).
        return {
            "index": self.index,
            "point": self.point,
            "exact": self.exact,
            "executed": json_float(self.executed),
            "machine": json_float(self.machine),
            "ulps": self.ulps,
            "executed_bits": self.executed_bits,
            "machine_bits": self.machine_bits,
        }


@dataclass
class ValidationReport:
    """Empirical-vs-oracle and empirical-vs-machine agreement summary."""

    benchmark: str
    target: str
    backend: str
    language: str
    fn_name: str
    n_points: int
    #: Mean bits of error of *executed* outputs against the oracle.
    executed_bits: float
    #: Mean bits of error of the machine's evaluation against the oracle
    #: (the score the compiler reported for this program).
    machine_bits: float
    #: |executed_bits - machine_bits|: how far the empirical score sits
    #: from the machine-evaluated one.
    agreement_bits: float
    #: Largest per-point ULP distance between executed and machine values.
    max_ulps: int
    #: Total number of points past the mismatch threshold (the carried
    #: list is capped; this is the real count).
    mismatch_count: int
    mismatches: list[PointMismatch] = field(default_factory=list)
    #: Degradation note from the backend ("no C compiler on PATH; ...").
    note: str = ""

    @property
    def ok(self) -> bool:
        """Whether the empirical score confirms the machine-evaluated one
        (within the half-bit the acceptance protocol allows)."""
        return self.agreement_bits <= 0.5

    def as_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "target": self.target,
            "backend": self.backend,
            "language": self.language,
            "fn_name": self.fn_name,
            "n_points": self.n_points,
            "executed_bits": self.executed_bits,
            "machine_bits": self.machine_bits,
            "agreement_bits": self.agreement_bits,
            "max_ulps": self.max_ulps,
            "mismatch_count": self.mismatch_count,
            "mismatches": [m.as_dict() for m in self.mismatches],
            "ok": self.ok,
            "note": self.note,
        }


def validate_executable(
    executable: ExecutableProgram,
    program: Expr,
    core: FPCore,
    target: Target,
    samples: SampleSet,
    *,
    max_mismatches: int = DEFAULT_MAX_MISMATCHES,
    mismatch_ulps: int = DEFAULT_MISMATCH_ULPS,
) -> ValidationReport:
    """Validate an already-built executable (see :func:`validate_program`)."""
    precision = core.precision
    machine = compile_expr(program, target.impl_registry(), precision)
    points, exacts = samples.test, samples.test_exact
    if not points:
        points, exacts = samples.train, samples.train_exact

    executed_total = machine_total = 0.0
    max_ulps = 0
    mismatch_count = 0
    mismatches: list[PointMismatch] = []
    for index, (point, exact) in enumerate(zip(points, exacts)):
        check_deadline()  # cooperative deadline: bounded on any thread
        executed = executable.run_point(point)
        try:
            modeled = machine(point)
        except (ArithmeticError, ValueError, KeyError):
            modeled = math.nan
        executed_bits = bits_of_error(executed, exact, precision)
        machine_bits = bits_of_error(modeled, exact, precision)
        executed_total += executed_bits
        machine_total += machine_bits
        ulps = ulps_between(executed, modeled, precision)
        max_ulps = max(max_ulps, ulps)
        if ulps > mismatch_ulps:
            mismatch_count += 1
            if len(mismatches) < max_mismatches:
                mismatches.append(
                    PointMismatch(
                        index=index,
                        point=dict(point),
                        exact=exact,
                        executed=executed,
                        machine=modeled,
                        ulps=ulps,
                        executed_bits=executed_bits,
                        machine_bits=machine_bits,
                    )
                )

    n = max(1, len(points))
    executed_mean = executed_total / n
    machine_mean = machine_total / n
    return ValidationReport(
        benchmark=core.name or "<anonymous>",
        target=target.name,
        backend=executable.backend,
        language=executable.language,
        fn_name=executable.fn_name,
        n_points=len(points),
        executed_bits=executed_mean,
        machine_bits=machine_mean,
        agreement_bits=abs(executed_mean - machine_mean),
        max_ulps=max_ulps,
        mismatch_count=mismatch_count,
        mismatches=mismatches,
        note=executable.note,
    )


def validate_program(
    program: Expr,
    core: FPCore,
    target: Target,
    samples: SampleSet,
    *,
    backend: str = "auto",
    build_cache: BuildCache | None = None,
    compiler: str | None = None,
    max_mismatches: int = DEFAULT_MAX_MISMATCHES,
    mismatch_ulps: int = DEFAULT_MISMATCH_ULPS,
) -> ValidationReport:
    """Emit, build, run, and cross-check one program over sampled points.

    The empirical score (``executed_bits``) and the machine score
    (``machine_bits``) are both measured against the oracle's exact values
    carried in ``samples``; their difference plus per-point ULP
    localization make up the report.  ``backend="auto"`` degrades to the
    Python backend (and says so in ``note``) when C is unavailable.
    """
    executable = executable_for(
        program, core, target,
        backend=backend, build_cache=build_cache, compiler=compiler,
    )
    return validate_executable(
        executable, program, core, target, samples,
        max_mismatches=max_mismatches, mismatch_ulps=mismatch_ulps,
    )
