"""Execute emitted Python source in a sandboxed namespace.

The Python twin of :mod:`repro.exec.builder`: where the C backend compiles
emitted C and loads it with ctypes, this backend ``exec``-utes the emitted
Python text (:func:`repro.core.output.to_python`) and hands back the
defined function.  It is the universal fallback — always available, used
whenever no C compiler exists or a target's operators have no libm symbols
— and for the ``python`` target it *is* the real empirical backend, since
emitted Python over :mod:`math` is exactly what that target ships.

The namespace is sandboxed: no ``__import__``, no file or attribute
escape hatches — just the handful of builtins emitted code actually uses
(``abs``/``min``/``max``/``round``) and a ``math`` binding.  For targets
whose operators all live in the real :mod:`math` module that binding is
the module itself; targets with approximate or helper operators
(``fast_exp`` from VDT, ``sind`` from Julia) get a :class:`MathLink` that
resolves real ``math`` attributes first and falls back to the target's own
linked/synthesized implementations — the same ``#:link`` notion the paper
uses for operators that exist outside the language's standard library.
"""

from __future__ import annotations

import math
from typing import Callable

from ..targets.target import Target

#: The only builtins emitted Python code may touch.
_SAFE_BUILTINS = {"abs": abs, "min": min, "max": max, "round": round}


class PythonExecError(RuntimeError):
    """Emitted Python source failed to execute or define its function."""


class MathLink:
    """A ``math``-shaped object backed by the real module plus one target.

    Attribute lookup tries :mod:`math` first (so ``math.sin`` is the real
    libm-backed function), then the target's implementation registry by
    base name (``sind`` resolves to the Julia target's synthesized
    correctly-rounded ``sind.f64``), preferring the binary64 variant when
    an operator exists at several precisions.  Suffix-qualified names are
    also linked (``cast_f32`` → ``cast.f32``) for operators whose
    precision variants differ semantically — ``cast.f32`` rounds while
    ``cast.f64`` is the identity, so collapsing them to one base-name
    binding would silently drop binary32 rounding.
    """

    def __init__(self, target: Target):
        self._linked: dict[str, Callable[..., float]] = {}
        by_base: dict[str, list[tuple[str, Callable[..., float]]]] = {}
        for name, spec in target.impl_registry().items():
            base, _dot, suffix = name.partition(".")
            by_base.setdefault(base, []).append((name, spec.impl))
            if suffix:
                self._linked[f"{base}_{suffix}"] = spec.impl
        for base, impls in by_base.items():
            # Prefer the .f64 variant; ties broken by name for determinism.
            impls.sort(key=lambda pair: (not pair[0].endswith(".f64"), pair[0]))
            self._linked.setdefault(base, impls[0][1])

    def __getattr__(self, name: str):
        value = getattr(math, name, None)
        if value is not None:
            return value
        linked = self._linked.get(name)
        if linked is not None:
            return linked
        raise AttributeError(
            f"operator {name!r} exists neither in math nor in the target's "
            f"implementation registry"
        )


def exec_namespace(target: Target | None = None) -> dict:
    """The sandboxed globals emitted Python source runs under."""
    return {
        "__builtins__": dict(_SAFE_BUILTINS),
        "math": MathLink(target) if target is not None else math,
    }


def compile_python_function(
    source: str, fn_name: str, target: Target | None = None
) -> Callable[..., float]:
    """Execute emitted Python source; return the function it defines.

    The source's ``import math`` line is honored by pre-binding ``math``
    in the namespace (the sandbox has no ``__import__``), so the emitted
    text runs unmodified.
    """
    namespace = exec_namespace(target)
    # The emitted module starts with "import math"; the sandbox has no
    # __import__, so satisfy it by pre-binding and dropping the line.
    lines = [
        line
        for line in source.splitlines()
        if line.strip() not in ("import math",)
    ]
    try:
        exec(compile("\n".join(lines), f"<emitted {fn_name}>", "exec"), namespace)
    except Exception as error:
        raise PythonExecError(f"emitted Python failed to execute: {error}") from error
    fn = namespace.get(fn_name)
    if not callable(fn):
        raise PythonExecError(
            f"emitted Python defines no function {fn_name!r}"
        )
    return fn
