"""Empirical execution backend: compile, run, and validate emitted code.

Everything else in the reproduction stops at text and models — code
generation renders C/Python/Julia, the performance simulator *predicts*
run time.  This package executes: emitted C is compiled by the system
compiler into shared libraries and loaded with ctypes
(:mod:`~repro.exec.builder`), emitted Python runs in a sandboxed namespace
(:mod:`~repro.exec.python_backend`), executed outputs are cross-checked
against the Rival oracle and the fpeval machine
(:mod:`~repro.exec.validate`), wall-clock cost is measured
(:mod:`~repro.exec.timing`), and measurements calibrate the simulator's
predictions (:mod:`~repro.exec.calibrate`).

Entry points: :meth:`repro.session.ChassisSession.execute` /
:meth:`~repro.session.ChassisSession.validate`, the ``repro run`` and
``repro validate`` CLI commands, and the serve ``/validate`` endpoint.
Everything degrades gracefully to the Python backend when no C compiler
exists (``REPRO_CC=none`` forces that leg).
"""

from .builder import (
    BuildCache,
    BuildError,
    build_shared,
    find_compiler,
    load_function,
    shared_build_cache,
)
from .calibrate import (
    CalibrationPoint,
    CalibrationReport,
    affine_fit,
    calibrate,
    collect_calibration,
)
from .executable import (
    BACKENDS,
    ExecutableProgram,
    ExecutionRun,
    backend_availability,
    c_backend_available,
    executable_for,
)
from .python_backend import MathLink, PythonExecError, compile_python_function
from .timing import TimingReport, measure_executable
from .validate import (
    PointMismatch,
    ValidationReport,
    validate_executable,
    validate_program,
)

__all__ = [
    # builder
    "BuildCache",
    "BuildError",
    "build_shared",
    "find_compiler",
    "load_function",
    "shared_build_cache",
    # python backend
    "MathLink",
    "PythonExecError",
    "compile_python_function",
    # executable
    "BACKENDS",
    "ExecutableProgram",
    "ExecutionRun",
    "backend_availability",
    "c_backend_available",
    "executable_for",
    # validation
    "PointMismatch",
    "ValidationReport",
    "validate_executable",
    "validate_program",
    # timing
    "TimingReport",
    "measure_executable",
    # calibration
    "CalibrationPoint",
    "CalibrationReport",
    "affine_fit",
    "calibrate",
    "collect_calibration",
]
