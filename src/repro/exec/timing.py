"""Measure real per-point wall-clock cost of executed emitted code.

The performance *simulator* (:mod:`repro.perf.simulator`) predicts run
time from operator latency tables; this module measures it.  The protocol
mirrors how the paper times compiled binaries over pre-sampled points,
adapted to a shared machine:

* the whole point set is evaluated in an inner loop sized so one sample
  takes a measurable amount of wall clock (default ≥ 2 ms — far above
  timer granularity);
* ``warmup`` full samples run first (cache warming, JIT-free but branch
  predictors and the allocator still settle);
* ``repeats`` samples are then taken and summarized by their **median**
  (robust to scheduler noise), reported as nanoseconds per evaluation.

Measured numbers include the call-boundary overhead of reaching the
emitted code (a ctypes call for the C backend, a Python call for the
Python backend).  That overhead is near-constant per call, which is why
the calibration layer (:mod:`repro.exec.calibrate`) fits an *affine*
model — scale **and** offset — rather than a bare scale factor.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..deadline import check_deadline
from .executable import ExecutableProgram

#: Minimum wall clock (ns) one timing sample should cover.
DEFAULT_TARGET_SAMPLE_NS = 2_000_000


@dataclass
class TimingReport:
    """Wall-clock cost of one program over one point set."""

    backend: str
    n_points: int
    repeats: int
    warmup: int
    #: Inner-loop multiplier chosen so a sample is measurable.
    inner: int
    #: Mean ns/evaluation for each repeat (in measurement order).
    per_repeat_ns: list[float]

    @property
    def median_ns(self) -> float:
        """Median-of-repeats ns per evaluation (the headline number)."""
        return statistics.median(self.per_repeat_ns)

    @property
    def mean_ns(self) -> float:
        return sum(self.per_repeat_ns) / max(1, len(self.per_repeat_ns))

    @property
    def min_ns(self) -> float:
        return min(self.per_repeat_ns)

    def as_dict(self) -> dict:
        return {
            "backend": self.backend,
            "n_points": self.n_points,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "inner": self.inner,
            "per_repeat_ns": self.per_repeat_ns,
            "median_ns": self.median_ns,
            "mean_ns": self.mean_ns,
            "min_ns": self.min_ns,
        }


def measure_executable(
    executable: ExecutableProgram,
    points: Sequence[Mapping[str, float]],
    *,
    repeats: int = 5,
    warmup: int = 1,
    target_sample_ns: int = DEFAULT_TARGET_SAMPLE_NS,
) -> TimingReport:
    """Measure one executable's per-evaluation wall-clock cost.

    Every evaluation goes through the guarded call path (exceptions → NaN)
    so Python-backend programs that raise at some points time the code
    that actually runs in production, not an idealized happy path.
    """
    if not points:
        raise ValueError("need at least one point to measure run time")
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    argsets = [
        tuple(point[name] for name in executable.arg_names) for point in points
    ]
    run = executable.run_args

    def one_pass() -> int:
        start = time.perf_counter_ns()
        for args in argsets:
            run(args)
        return time.perf_counter_ns() - start

    # Size the inner loop so one sample covers target_sample_ns.
    first = max(1, one_pass())
    inner = max(1, int(target_sample_ns // first))

    for _ in range(warmup):
        check_deadline()
        for _ in range(inner):
            one_pass()

    per_repeat: list[float] = []
    evaluations = inner * len(argsets)
    for _ in range(repeats):
        check_deadline()
        total = 0
        for _ in range(inner):
            total += one_pass()
        per_repeat.append(total / evaluations)

    return TimingReport(
        backend=executable.backend,
        n_points=len(argsets),
        repeats=repeats,
        warmup=warmup,
        inner=inner,
        per_repeat_ns=per_repeat,
    )
