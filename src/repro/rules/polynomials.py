"""Polynomial identities: squares, cubes, difference-of-squares tricks.

The flip rules (``a - b => (a^2 - b^2)/(a + b)``) are the classic
catastrophic-cancellation repairs from Herbie's motivating examples, e.g.
``sqrt(x+1) - sqrt(x) => 1/(sqrt(x+1) + sqrt(x))``.
"""

from __future__ import annotations

from ..egraph.rewrite import Rewrite, birw, rw

RULES: list[Rewrite] = [
    # Square of sum/difference
    *birw(
        "square-sum",
        "(* (+ a b) (+ a b))",
        "(+ (+ (* a a) (* 2 (* a b))) (* b b))",
        tags=["sound"],
    ),
    *birw(
        "square-diff",
        "(* (- a b) (- a b))",
        "(+ (- (* a a) (* 2 (* a b))) (* b b))",
        tags=["sound"],
    ),
    # Difference of squares and the cancellation "flips"
    *birw(
        "difference-of-squares",
        "(- (* a a) (* b b))",
        "(* (+ a b) (- a b))",
        tags=["sound"],
    ),
    rw(
        "flip-+",
        "(+ a b)",
        "(/ (- (* a a) (* b b)) (- a b))",
        tags=["sound-away-from-singularity"],
    ),
    rw(
        "flip--",
        "(- a b)",
        "(/ (- (* a a) (* b b)) (+ a b))",
        tags=["sound-away-from-singularity"],
    ),
    # Cubes
    *birw(
        "difference-of-cubes",
        "(- (* (* a a) a) (* (* b b) b))",
        "(* (+ (+ (* a a) (* b b)) (* a b)) (- a b))",
        tags=["sound"],
    ),
    rw(
        "flip3--",
        "(- a b)",
        "(/ (- (* (* a a) a) (* (* b b) b)) (+ (+ (* a a) (* b b)) (* a b)))",
        tags=["sound-away-from-singularity"],
    ),
    # Binomial expansion helpers
    *birw(
        "pow2-of-sum",
        "(pow (+ a b) 2)",
        "(+ (+ (pow a 2) (* 2 (* a b))) (pow b 2))",
        tags=["sound"],
    ),
    rw("pow-1", "(pow a 1)", "a", tags=["simplify", "sound"]),
    rw("pow-0", "(pow a 0)", "1", tags=["simplify"]),
    rw("unpow2", "(pow a 2)", "(* a a)", tags=["simplify", "sound"]),
    rw("unpow3", "(pow a 3)", "(* (* a a) a)", tags=["sound"]),
    rw("pow-neg1", "(pow a -1)", "(/ 1 a)", tags=["simplify", "sound"]),
]
