"""Exponential and power identities."""

from __future__ import annotations

from ..egraph.rewrite import Rewrite, birw, rw

RULES: list[Rewrite] = [
    rw("exp-of-0", "(exp 0)", "1", tags=["simplify", "sound"]),
    rw("exp-of-1", "(exp 1)", "E", tags=["simplify", "sound"]),
    rw("1-as-exp0", "1", "(exp 0)", tags=["sound"]),
    *birw("exp-sum", "(exp (+ a b))", "(* (exp a) (exp b))", tags=["sound"]),
    *birw("exp-diff", "(exp (- a b))", "(/ (exp a) (exp b))", tags=["sound"]),
    *birw("exp-neg", "(exp (neg a))", "(/ 1 (exp a))", tags=["sound"]),
    *birw("exp-prod", "(exp (* a b))", "(pow (exp a) b)", tags=["sound"]),
    rw("exp-of-log", "(exp (log a))", "a", tags=["simplify"]),
    *birw("exp-2x", "(exp (* 2 a))", "(* (exp a) (exp a))", tags=["sound"]),
    # expm1 relations (the accuracy-critical helper)
    *birw("expm1-def", "(expm1 a)", "(- (exp a) 1)", tags=["sound"]),
    *birw(
        "expm1-udef",
        "(- (exp a) (exp b))",
        "(* (exp b) (expm1 (- a b)))",
        tags=["sound"],
    ),
    # Log-sum-exp and sigmoid regroupings
    *birw(
        "logsumexp-shift",
        "(log (+ (exp a) (exp b)))",
        "(+ a (log1p (exp (- b a))))",
        tags=["sound"],
    ),
    *birw(
        "softplus-shift",
        "(log (+ 1 (exp a)))",
        "(+ a (log1p (exp (neg a))))",
        tags=["sound"],
    ),
    *birw(
        "sigmoid-flip",
        "(/ 1 (+ 1 (exp (neg a))))",
        "(/ (exp a) (+ 1 (exp a)))",
        tags=["sound"],
    ),
    # exp2
    *birw("exp2-def", "(exp2 a)", "(pow 2 a)", tags=["sound"]),
    # pow laws (principal branch: sound for positive bases)
    *birw(
        "pow-prod-down",
        "(* (pow a b) (pow a c))",
        "(pow a (+ b c))",
        tags=["sound-pos"],
    ),
    *birw(
        "pow-prod-up",
        "(* (pow a c) (pow b c))",
        "(pow (* a b) c)",
        tags=["sound-pos"],
    ),
    *birw("pow-flip", "(/ 1 (pow a b))", "(pow a (neg b))", tags=["sound-pos"]),
    *birw("pow-pow", "(pow (pow a b) c)", "(pow a (* b c))", tags=["sound-pos"]),
    *birw("pow-exp-log", "(pow a b)", "(exp (* b (log a)))", tags=["sound-pos"]),
    rw("pow-base-1", "(pow 1 a)", "1", tags=["simplify", "sound"]),
]
