"""Hyperbolic-function identities, including inverse-hyperbolic expansions."""

from __future__ import annotations

from ..egraph.rewrite import Rewrite, birw, rw

RULES: list[Rewrite] = [
    *birw(
        "sinh-def",
        "(sinh a)",
        "(/ (- (exp a) (exp (neg a))) 2)",
        tags=["sound"],
    ),
    *birw(
        "cosh-def",
        "(cosh a)",
        "(/ (+ (exp a) (exp (neg a))) 2)",
        tags=["sound"],
    ),
    *birw("tanh-def", "(tanh a)", "(/ (sinh a) (cosh a))", tags=["sound"]),
    rw("sinh-neg", "(sinh (neg a))", "(neg (sinh a))", tags=["sound"]),
    rw("cosh-neg", "(cosh (neg a))", "(cosh a)", tags=["simplify", "sound"]),
    rw(
        "cosh2-sinh2",
        "(- (* (cosh a) (cosh a)) (* (sinh a) (sinh a)))",
        "1",
        tags=["sound"],
    ),
    *birw(
        "sinh-expm1",
        "(sinh a)",
        "(/ (* (expm1 a) (+ (expm1 a) 2)) (* 2 (+ (expm1 a) 1)))",
        tags=["sound"],
    ),
    # Inverse hyperbolics in terms of logs
    *birw(
        "asinh-def",
        "(asinh a)",
        "(log (+ a (sqrt (+ (* a a) 1))))",
        tags=["sound"],
    ),
    *birw(
        "acosh-def",
        "(acosh a)",
        "(log (+ a (sqrt (- (* a a) 1))))",
        tags=["sound-domain"],
    ),
    *birw(
        "atanh-def",
        "(atanh a)",
        "(* 1/2 (log (/ (+ 1 a) (- 1 a))))",
        tags=["sound-domain"],
    ),
    *birw(
        "atanh-log1p",
        "(atanh a)",
        "(* 1/2 (- (log1p a) (log1p (neg a))))",
        tags=["sound-domain"],
    ),
    *birw(
        "tanh-expm1",
        "(tanh a)",
        "(/ (expm1 (* 2 a)) (+ (expm1 (* 2 a)) 2))",
        tags=["sound"],
    ),
    *birw(
        "sinh-2a",
        "(sinh (* 2 a))",
        "(* 2 (* (sinh a) (cosh a)))",
        tags=["sound"],
    ),
    *birw(
        "cosh-2a",
        "(cosh (* 2 a))",
        "(- (* 2 (* (cosh a) (cosh a))) 1)",
        tags=["sound"],
    ),
    # Sum formulas
    *birw(
        "sinh-sum",
        "(sinh (+ a b))",
        "(+ (* (sinh a) (cosh b)) (* (cosh a) (sinh b)))",
        tags=["sound"],
    ),
    *birw(
        "cosh-sum",
        "(cosh (+ a b))",
        "(+ (* (cosh a) (cosh b)) (* (sinh a) (sinh b)))",
        tags=["sound"],
    ),
]
