"""Logarithm identities, including the log1p helper relations.

The ``log1p`` rules are central to the paper's inverse-hyperbolic-cotangent
case study (section 6.4): ``0.5*log((1+x)/(1-x))`` rewrites through
``log(1+x) - log(1-x)`` to ``log1p(x) - log1p(-x)``, and from there the
fdlibm target's ``log1pmd`` operator desugaring can fire.
"""

from __future__ import annotations

from ..egraph.rewrite import Rewrite, birw, rw

RULES: list[Rewrite] = [
    rw("log-of-1", "(log 1)", "0", tags=["simplify", "sound"]),
    rw("log-of-E", "(log E)", "1", tags=["simplify", "sound"]),
    rw("log-of-exp", "(log (exp a))", "a", tags=["simplify", "sound"]),
    *birw("log-prod", "(log (* a b))", "(+ (log a) (log b))", tags=["sound-pos"]),
    *birw("log-div", "(log (/ a b))", "(- (log a) (log b))", tags=["sound-pos"]),
    *birw("log-rcp", "(log (/ 1 a))", "(neg (log a))", tags=["sound-pos"]),
    *birw("log-pow", "(log (pow a b))", "(* b (log a))", tags=["sound-pos"]),
    *birw("log-sqrt", "(log (sqrt a))", "(* 1/2 (log a))", tags=["sound-pos"]),
    # log1p relations
    *birw("log1p-def", "(log1p a)", "(log (+ 1 a))", tags=["sound"]),
    *birw("log1p-neg", "(log1p (neg a))", "(log (- 1 a))", tags=["sound"]),
    *birw(
        "log1p-expm1",
        "(log1p (expm1 a))",
        "a",
        tags=["sound"],
    ),
    *birw(
        "expm1-log1p",
        "(expm1 (log1p a))",
        "a",
        tags=["sound"],
    ),
    # log base changes
    *birw("log2-def", "(log2 a)", "(/ (log a) (log 2))", tags=["sound-pos"]),
    *birw("log10-def", "(log10 a)", "(/ (log a) (log 10))", tags=["sound-pos"]),
    # Sum/difference of logs of shifted arguments — the acoth shape.
    *birw(
        "log-shift-diff",
        "(- (log (+ 1 a)) (log (- 1 a)))",
        "(- (log1p a) (log1p (neg a)))",
        tags=["sound"],
    ),
]
