"""Core arithmetic identities: commutativity, associativity, distribution.

These mirror the heart of Herbie's rule database (paper section 3.3).  Rules
tagged ``simplify`` never grow the AST and form the rule subset used by the
cost-opportunity analysis (paper figure 5).
"""

from __future__ import annotations

from ..egraph.rewrite import Rewrite, birw, rw

RULES: list[Rewrite] = [
    # Commutativity
    rw("+-commutative", "(+ a b)", "(+ b a)", tags=["simplify", "sound"]),
    rw("*-commutative", "(* a b)", "(* b a)", tags=["simplify", "sound"]),
    # Associativity (both directions; same size, so both simplify-safe)
    *birw("associate-+", "(+ (+ a b) c)", "(+ a (+ b c))", tags=["simplify", "sound"]),
    *birw("associate-*", "(* (* a b) c)", "(* a (* b c))", tags=["simplify", "sound"]),
    *birw("associate-+-", "(+ (- a b) c)", "(- a (- b c))", tags=["sound"]),
    *birw("associate--+", "(- (+ a b) c)", "(+ a (- b c))", tags=["sound"]),
    *birw("associate--", "(- (- a b) c)", "(- a (+ b c))", tags=["sound"]),
    *birw("associate-*/", "(/ (* a b) c)", "(* a (/ b c))", tags=["sound"]),
    *birw("associate-/*", "(* (/ a b) c)", "(/ (* a c) b)", tags=["sound"]),
    *birw("associate-//", "(/ (/ a b) c)", "(/ a (* b c))", tags=["sound"]),
    # Identity and annihilation
    rw("+-lft-identity", "(+ 0 a)", "a", tags=["simplify", "sound"]),
    rw("+-rgt-identity", "(+ a 0)", "a", tags=["simplify", "sound"]),
    rw("--rgt-identity", "(- a 0)", "a", tags=["simplify", "sound"]),
    rw("*-lft-identity", "(* 1 a)", "a", tags=["simplify", "sound"]),
    rw("*-rgt-identity", "(* a 1)", "a", tags=["simplify", "sound"]),
    rw("/-rgt-identity", "(/ a 1)", "a", tags=["simplify", "sound"]),
    rw("mul0-lft", "(* 0 a)", "0", tags=["simplify", "sound"]),
    rw("mul0-rgt", "(* a 0)", "0", tags=["simplify", "sound"]),
    rw("div0", "(/ 0 a)", "0", tags=["simplify"]),
    # Cancellation (sound over the reals; /-cancel only away from 0)
    rw("+-inverses", "(- a a)", "0", tags=["simplify", "sound"]),
    rw("/-inverses", "(/ a a)", "1", tags=["simplify"]),
    rw("sub-neg", "(- a b)", "(+ a (neg b))", tags=["sound"]),
    rw("unsub-neg", "(+ a (neg b))", "(- a b)", tags=["simplify", "sound"]),
    rw("sub-add-cancel-rgt", "(- (+ a b) b)", "a", tags=["simplify", "sound"]),
    rw("sub-add-cancel-lft", "(- (+ a b) a)", "b", tags=["simplify", "sound"]),
    rw("add-sub-cancel", "(+ (- a b) b)", "a", tags=["simplify", "sound"]),
    rw("mul-div-cancel", "(* (/ a b) b)", "a", tags=["simplify"]),
    # Negation
    rw("neg-of-sub", "(neg (- a b))", "(- b a)", tags=["simplify", "sound"]),
    rw("sub-of-neg", "(- b a)", "(neg (- a b))", tags=["sound"]),
    rw("double-neg", "(neg (neg a))", "a", tags=["simplify", "sound"]),
    *birw("neg-as-mul", "(neg a)", "(* -1 a)", tags=["sound"]),
    rw("neg-as-sub", "(neg a)", "(- 0 a)", tags=["sound", "expose"]),
    rw("sub0-as-neg", "(- 0 a)", "(neg a)", tags=["sound", "simplify"]),
    rw("neg-mul-lft", "(neg (* a b))", "(* (neg a) b)", tags=["sound"]),
    rw("mul-neg-lft", "(* (neg a) b)", "(neg (* a b))", tags=["simplify", "sound"]),
    rw("neg-sum", "(neg (+ a b))", "(+ (neg a) (neg b))", tags=["sound"]),
    rw("sum-neg", "(+ (neg a) (neg b))", "(neg (+ a b))", tags=["simplify", "sound"]),
    # Distribution and factoring
    *birw(
        "distribute-lft", "(* a (+ b c))", "(+ (* a b) (* a c))", tags=["sound"]
    ),
    *birw(
        "distribute-rgt", "(* (+ b c) a)", "(+ (* b a) (* c a))", tags=["sound"]
    ),
    *birw(
        "distribute-lft-sub",
        "(* a (- b c))",
        "(- (* a b) (* a c))",
        tags=["sound"],
    ),
    rw("factor-sub", "(- (* a b) (* a c))", "(* a (- b c))", tags=["simplify", "sound"]),
    rw("factor-add", "(+ (* a b) (* a c))", "(* a (+ b c))", tags=["simplify", "sound"]),
    # Doubling
    *birw("count-2", "(+ a a)", "(* 2 a)", tags=["sound"]),
    rw("double-half", "(* 2 (* a (/ 1 2)))", "a", tags=["simplify", "sound"]),
    # Multiplication by self
    *birw("mul-same", "(* a a)", "(pow a 2)", tags=["sound"]),
]
