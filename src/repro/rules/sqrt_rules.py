"""Square-root and cube-root identities."""

from __future__ import annotations

from ..egraph.rewrite import Rewrite, birw, rw

RULES: list[Rewrite] = [
    rw("rem-square-sqrt", "(* (sqrt a) (sqrt a))", "a", tags=["simplify", "sound"]),
    rw("sqrt-of-square", "(sqrt (* a a))", "(fabs a)", tags=["simplify", "sound"]),
    rw("sqrt-of-pow2", "(sqrt (pow a 2))", "(fabs a)", tags=["simplify", "sound"]),
    *birw("sqrt-prod", "(sqrt (* a b))", "(* (sqrt a) (sqrt b))", tags=["sound-nonneg"]),
    *birw("sqrt-div", "(sqrt (/ a b))", "(/ (sqrt a) (sqrt b))", tags=["sound-nonneg"]),
    rw("sqrt-of-1", "(sqrt 1)", "1", tags=["simplify", "sound"]),
    rw("sqrt-of-0", "(sqrt 0)", "0", tags=["simplify", "sound"]),
    *birw("sqrt-as-pow", "(sqrt a)", "(pow a 1/2)", tags=["sound-nonneg"]),
    # Reciprocal square root (exposes rsqrt accelerators)
    *birw(
        "rsqrt-of-rcp",
        "(sqrt (/ 1 a))",
        "(/ 1 (sqrt a))",
        tags=["sound-nonneg", "expose"],
    ),
    rw(
        "rsqrt-of-div",
        "(/ a (sqrt b))",
        "(* a (/ 1 (sqrt b)))",
        tags=["sound-nonneg", "expose"],
    ),
    rw(
        "sqrt-rcp-mul",
        "(* (sqrt a) (/ 1 (sqrt a)))",
        "1",
        tags=["sound-nonneg"],
    ),
    # sqrt "flip": a - b with sqrt terms
    rw(
        "flip-sqrt--",
        "(- (sqrt a) (sqrt b))",
        "(/ (- a b) (+ (sqrt a) (sqrt b)))",
        tags=["sound-away-from-singularity"],
    ),
    rw(
        "flip-sqrt-+",
        "(+ (sqrt a) (sqrt b))",
        "(/ (- a b) (- (sqrt a) (sqrt b)))",
        tags=["sound-away-from-singularity"],
    ),
    *birw("sqrt-sqrt", "(sqrt (sqrt a))", "(pow a 1/4)", tags=["sound-nonneg"]),
    # Cube roots
    rw("rem-cube-cbrt", "(* (* (cbrt a) (cbrt a)) (cbrt a))", "a", tags=["sound"]),
    rw("cbrt-of-cube", "(cbrt (* (* a a) a))", "a", tags=["sound"]),
    *birw("cbrt-prod", "(cbrt (* a b))", "(* (cbrt a) (cbrt b))", tags=["sound"]),
    # hypot
    *birw(
        "hypot-def",
        "(hypot a b)",
        "(sqrt (+ (* a a) (* b b)))",
        tags=["sound"],
    ),
    rw(
        "hypot-1-x",
        "(sqrt (+ 1 (* a a)))",
        "(hypot 1 a)",
        tags=["sound"],
    ),
]
