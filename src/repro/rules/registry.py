"""Rule registry: the full database and named subsets.

Chassis runs two kinds of saturation (paper section 5.2): the heavyweight
instruction-selection pass uses the *full* database (plus target desugaring
rules), while the lightweight cost-opportunity analysis uses only the
``simplify``-tagged subset (rules that never grow the AST), making it cheap
enough to run over every subexpression.
"""

from __future__ import annotations

from functools import lru_cache

from ..egraph.rewrite import Rewrite
from . import (
    arithmetic,
    exponents,
    fractions,
    hyperbolic,
    logs,
    polynomials,
    special,
    sqrt_rules,
    trig,
)

_MODULES = (
    arithmetic,
    fractions,
    polynomials,
    sqrt_rules,
    exponents,
    logs,
    trig,
    hyperbolic,
    special,
)


@lru_cache(maxsize=None)
def all_rules() -> tuple[Rewrite, ...]:
    """The complete mathematical rewrite database."""
    rules: list[Rewrite] = []
    seen: set[str] = set()
    for module in _MODULES:
        for rule in module.RULES:
            if rule.name in seen:
                raise ValueError(f"duplicate rule name: {rule.name}")
            seen.add(rule.name)
            rules.append(rule)
    return tuple(rules)


@lru_cache(maxsize=None)
def simplify_rules() -> tuple[Rewrite, ...]:
    """AST-non-growing rules for the cost-opportunity analysis (fig. 5)."""
    return tuple(r for r in all_rules() if "simplify" in r.tags)


@lru_cache(maxsize=None)
def opportunity_rules() -> tuple[Rewrite, ...]:
    """Rule set for the lightweight cost-opportunity saturation.

    The simplify subset plus "expose" rules (like ``a/b => a*(1/b)``) that
    keep the *lowered* size flat while revealing cheaper target operators
    such as rcp/rsqrt (the paper's section 5.2 worked example).
    """
    return tuple(r for r in all_rules() if r.tags & {"simplify", "expose"})


@lru_cache(maxsize=None)
def rules_by_tag(tag: str) -> tuple[Rewrite, ...]:
    """Every rule carrying ``tag``."""
    return tuple(r for r in all_rules() if tag in r.tags)


def rule_named(name: str) -> Rewrite:
    """Look up one rule by name (raises KeyError if missing)."""
    for rule in all_rules():
        if rule.name == name:
            return rule
    raise KeyError(name)


def rules_for_operators(available_ops: set[str]) -> tuple[Rewrite, ...]:
    """Rules whose operators all appear in ``available_ops``.

    Used to prune the database when a benchmark exercises only a small
    operator vocabulary — smaller rule sets keep saturation affordable.
    Arithmetic is always retained.
    """
    core = {"+", "-", "*", "/", "neg", "pow", "fabs"}
    keep: list[Rewrite] = []
    for rule in all_rules():
        ops = rule.lhs.operators() | rule.rhs.operators()
        if ops <= (available_ops | core):
            keep.append(rule)
    return tuple(keep)
