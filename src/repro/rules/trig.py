"""Trigonometric identities (a practical subset of Herbie's trig rules)."""

from __future__ import annotations

from ..egraph.rewrite import Rewrite, birw, rw

RULES: list[Rewrite] = [
    rw("sin-0", "(sin 0)", "0", tags=["simplify", "sound"]),
    rw("cos-0", "(cos 0)", "1", tags=["simplify", "sound"]),
    rw("tan-0", "(tan 0)", "0", tags=["simplify", "sound"]),
    rw("sin-neg", "(sin (neg a))", "(neg (sin a))", tags=["sound"]),
    rw("neg-sin", "(neg (sin a))", "(sin (neg a))", tags=["simplify", "sound"]),
    rw("cos-neg", "(cos (neg a))", "(cos a)", tags=["simplify", "sound"]),
    rw("tan-neg", "(tan (neg a))", "(neg (tan a))", tags=["sound"]),
    # Pythagorean identity
    rw(
        "sin-cos-pyth",
        "(+ (* (sin a) (sin a)) (* (cos a) (cos a)))",
        "1",
        tags=["sound"],
    ),
    rw(
        "1-sub-sin2",
        "(- 1 (* (sin a) (sin a)))",
        "(* (cos a) (cos a))",
        tags=["sound"],
    ),
    rw(
        "1-sub-cos2",
        "(- 1 (* (cos a) (cos a)))",
        "(* (sin a) (sin a))",
        tags=["sound"],
    ),
    # Quotient identities
    *birw("tan-quot", "(tan a)", "(/ (sin a) (cos a))", tags=["sound"]),
    # Angle addition
    *birw(
        "sin-sum",
        "(sin (+ a b))",
        "(+ (* (sin a) (cos b)) (* (cos a) (sin b)))",
        tags=["sound"],
    ),
    *birw(
        "cos-sum",
        "(cos (+ a b))",
        "(- (* (cos a) (cos b)) (* (sin a) (sin b)))",
        tags=["sound"],
    ),
    *birw(
        "sin-diff",
        "(sin (- a b))",
        "(- (* (sin a) (cos b)) (* (cos a) (sin b)))",
        tags=["sound"],
    ),
    *birw(
        "cos-diff",
        "(cos (- a b))",
        "(+ (* (cos a) (cos b)) (* (sin a) (sin b)))",
        tags=["sound"],
    ),
    # Double angle
    *birw("sin-2a", "(sin (* 2 a))", "(* 2 (* (sin a) (cos a)))", tags=["sound"]),
    *birw(
        "cos-2a",
        "(cos (* 2 a))",
        "(- (* (cos a) (cos a)) (* (sin a) (sin a)))",
        tags=["sound"],
    ),
    # Inverse relations
    # Sum-to-product and product-to-sum
    *birw(
        "sin-sum-to-product",
        "(+ (sin a) (sin b))",
        "(* 2 (* (sin (/ (+ a b) 2)) (cos (/ (- a b) 2))))",
        tags=["sound"],
    ),
    *birw(
        "sin-diff-to-product",
        "(- (sin a) (sin b))",
        "(* 2 (* (cos (/ (+ a b) 2)) (sin (/ (- a b) 2))))",
        tags=["sound"],
    ),
    *birw(
        "cos-sum-to-product",
        "(+ (cos a) (cos b))",
        "(* 2 (* (cos (/ (+ a b) 2)) (cos (/ (- a b) 2))))",
        tags=["sound"],
    ),
    *birw(
        "cos-diff-to-product",
        "(- (cos a) (cos b))",
        "(* -2 (* (sin (/ (+ a b) 2)) (sin (/ (- a b) 2))))",
        tags=["sound"],
    ),
    *birw(
        "sin-times-cos",
        "(* (sin a) (cos b))",
        "(* 1/2 (+ (sin (+ a b)) (sin (- a b))))",
        tags=["sound"],
    ),
    *birw(
        "sin-times-sin",
        "(* (sin a) (sin b))",
        "(* 1/2 (- (cos (- a b)) (cos (+ a b))))",
        tags=["sound"],
    ),
    *birw(
        "cos-times-cos",
        "(* (cos a) (cos b))",
        "(* 1/2 (+ (cos (- a b)) (cos (+ a b))))",
        tags=["sound"],
    ),
    # Squared-trig half-angle forms (the haversine/ellipse shapes)
    *birw(
        "sqr-sin-halfangle",
        "(* (sin a) (sin a))",
        "(/ (- 1 (cos (* 2 a))) 2)",
        tags=["sound"],
    ),
    *birw(
        "sqr-cos-halfangle",
        "(* (cos a) (cos a))",
        "(/ (+ 1 (cos (* 2 a))) 2)",
        tags=["sound"],
    ),
    *birw(
        "tan-sum",
        "(tan (+ a b))",
        "(/ (+ (tan a) (tan b)) (- 1 (* (tan a) (tan b))))",
        tags=["sound-domain"],
    ),
    *birw(
        "sin-3a",
        "(sin (* 3 a))",
        "(- (* 3 (sin a)) (* 4 (* (* (sin a) (sin a)) (sin a))))",
        tags=["sound"],
    ),
    rw("sin-asin", "(sin (asin a))", "a", tags=["simplify"]),
    rw("cos-acos", "(cos (acos a))", "a", tags=["simplify"]),
    rw("tan-atan", "(tan (atan a))", "a", tags=["simplify", "sound"]),
    *birw("atan2-def", "(atan2 a b)", "(atan (/ a b))", tags=["sound-pos"]),
]
