"""Mathematical rewrite-rule database (Herbie-style, paper section 3.3)."""

from .registry import (
    opportunity_rules,
    all_rules,
    rule_named,
    rules_by_tag,
    rules_for_operators,
    simplify_rules,
)

__all__ = [
    "all_rules",
    "opportunity_rules",
    "simplify_rules",
    "rules_by_tag",
    "rule_named",
    "rules_for_operators",
]
