"""Identities for fabs/min/max and the fused-multiply-add shape.

``fma-def`` style rules are *not* written here: fused multiply-add is a
target operator (``fma.f64`` etc.) whose desugaring ``a*b + c`` is supplied
by the target description; the e-graph connects it automatically.  What this
module provides are the real-side regroupings that expose ``a*b + c`` shapes
for those desugarings to bite on.
"""

from __future__ import annotations

from ..egraph.rewrite import Rewrite, birw, rw

RULES: list[Rewrite] = [
    rw("fabs-fabs", "(fabs (fabs a))", "(fabs a)", tags=["simplify", "sound"]),
    rw("fabs-neg", "(fabs (neg a))", "(fabs a)", tags=["simplify", "sound"]),
    rw("fabs-sqr", "(fabs (* a a))", "(* a a)", tags=["simplify", "sound"]),
    rw("fabs-mul", "(fabs (* a b))", "(* (fabs a) (fabs b))", tags=["sound"]),
    rw("fabs-div", "(fabs (/ a b))", "(/ (fabs a) (fabs b))", tags=["sound"]),
    *birw("sqr-as-fabs", "(* a a)", "(* (fabs a) (fabs a))", tags=["sound"]),
    rw("fmin-same", "(fmin a a)", "a", tags=["simplify", "sound"]),
    rw("fmax-same", "(fmax a a)", "a", tags=["simplify", "sound"]),
    *birw("fmin-fmax", "(fmin a b)", "(neg (fmax (neg a) (neg b)))", tags=["sound"]),
    # Multiply-add shape exposure: reassociate sums of products so that a
    # product ends up directly under the sum (where an fma can fire).
    rw(
        "fma-expose-1",
        "(+ (* a b) (+ c d))",
        "(+ (+ (* a b) c) d)",
        tags=["sound"],
    ),
    rw(
        "fma-expose-2",
        "(- (* a b) (* c d))",
        "(+ (* a b) (neg (* c d)))",
        tags=["sound"],
    ),
    rw(
        "fma-neg-shape",
        "(- c (* a b))",
        "(+ (neg (* a b)) c)",
        tags=["sound"],
    ),
    rw(
        "fms-shape",
        "(- (* a b) c)",
        "(+ (* a b) (neg c))",
        tags=["sound"],
    ),
    # copysign basics
    rw("copysign-pos", "(copysign (fabs a) 1)", "(fabs a)", tags=["sound"]),
]
