"""Identities on fractions and reciprocals.

The reciprocal rules are load-bearing for targets with fast reciprocal
instructions: ``(/ a b) => (* a (/ 1 b))`` exposes ``1/b``, which AVX's
``rcp.f32`` desugaring can then implement (paper sections 2, 4.1).
"""

from __future__ import annotations

from ..egraph.rewrite import Rewrite, birw, rw

RULES: list[Rewrite] = [
    rw("div-as-mul-rcp", "(/ a b)", "(* a (/ 1 b))", tags=["sound", "expose"]),
    rw("mul-rcp-as-div", "(* a (/ 1 b))", "(/ a b)", tags=["sound", "simplify"]),
    rw("rcp-of-rcp", "(/ 1 (/ 1 a))", "a", tags=["simplify", "sound"]),
    rw("rcp-of-div", "(/ 1 (/ a b))", "(/ b a)", tags=["simplify", "sound"]),
    *birw("div-of-rcps", "(/ (/ 1 a) (/ 1 b))", "(/ b a)", tags=["sound"]),
    # Fraction arithmetic
    *birw(
        "frac-add",
        "(+ (/ a b) (/ c d))",
        "(/ (+ (* a d) (* b c)) (* b d))",
        tags=["sound"],
    ),
    *birw(
        "frac-sub",
        "(- (/ a b) (/ c d))",
        "(/ (- (* a d) (* b c)) (* b d))",
        tags=["sound"],
    ),
    *birw("frac-times", "(* (/ a b) (/ c d))", "(/ (* a c) (* b d))", tags=["sound"]),
    *birw("frac-2neg", "(/ a b)", "(/ (neg a) (neg b))", tags=["sound"]),
    rw("div-flip-neg", "(neg (/ a b))", "(/ (neg a) b)", tags=["sound"]),
    # Common-denominator introductions
    *birw("frac-same-add", "(+ (/ a c) (/ b c))", "(/ (+ a b) c)", tags=["sound"]),
    *birw("frac-same-sub", "(- (/ a c) (/ b c))", "(/ (- a b) c)", tags=["sound"]),
    *birw("div-shift-sub", "(/ (- a b) b)", "(- (/ a b) 1)", tags=["sound"]),
    *birw("div-shift-add", "(/ (+ a b) b)", "(+ (/ a b) 1)", tags=["sound"]),
    # Compound fraction flattening
    rw("div-div-lft", "(/ (/ a b) c)", "(/ a (* b c))", tags=["simplify", "sound"]),
    rw("div-div-rgt", "(/ a (/ b c))", "(/ (* a c) b)", tags=["simplify", "sound"]),
    # Cancel a common factor (away from zero)
    rw("cancel-common-lft", "(/ (* a b) (* a c))", "(/ b c)", tags=["simplify"]),
    rw("cancel-common-rgt", "(/ (* b a) (* c a))", "(/ b c)", tags=["simplify"]),
    rw("div-by-mul-self", "(/ (* a b) b)", "a", tags=["simplify"]),
    # Harmonic-style regroupings
    *birw(
        "sum-of-rcps",
        "(+ (/ 1 a) (/ 1 b))",
        "(/ (+ a b) (* a b))",
        tags=["sound"],
    ),
    *birw(
        "diff-of-rcps",
        "(- (/ 1 a) (/ 1 b))",
        "(/ (- b a) (* a b))",
        tags=["sound"],
    ),
]
