"""``repro.api`` — the curated public API surface.

Everything a consumer needs, in one import::

    from repro.api import ChassisSession, CompileConfig, SampleConfig

    with ChassisSession(cache=".repro-cache", jobs=4) as session:
        result = session.compile(core, "c99")

Three layers, smallest first:

* **Session** — :class:`ChassisSession` owns the evaluator, sample cache,
  persistent result cache and worker pool; :class:`JobHandle` is its
  async-style submit/poll handle.
* **Pipeline** — :class:`CompilePipeline` and the :class:`Phase` protocol
  let callers skip, replace, or instrument the parse → sample →
  transcribe → improve → regimes → score phases of one compilation.
* **Service** — the batch engine types (:class:`JobOutcome`,
  :class:`CompileCache`, ``JobSpec``) and the ``repro serve`` front-end
  (:func:`serve`, :func:`create_server`).
* **Execution** — the empirical backend (:mod:`repro.exec`): build and run
  emitted code (:func:`executable_for`), cross-check it against the oracle
  (:func:`validate_program`), measure it (:func:`measure_executable`) and
  calibrate the cost model against the measurements
  (:func:`collect_calibration`).

The historical one-shot entry points ``repro.compile_fpcore`` and
``repro.service.compile_many`` remain importable as deprecated shims.
"""

from .accuracy.sampler import SampleConfig, SampleSet, SamplingError
from .core.loop import CompileConfig
from .deadline import DeadlineExceeded, check_deadline, deadline
from .core.pipeline import (
    PHASE_NAMES,
    CompilePipeline,
    CompileResult,
    Phase,
    PipelineContext,
    PipelineError,
    compile_core,
    default_phases,
)
from .core.transcribe import Untranscribable
from .exec import (
    BuildCache,
    BuildError,
    CalibrationReport,
    ExecutableProgram,
    ExecutionRun,
    TimingReport,
    ValidationReport,
    backend_availability,
    c_backend_available,
    calibrate,
    collect_calibration,
    executable_for,
    find_compiler,
    measure_executable,
    validate_program,
)
from .ir.fpcore import FPCore, parse_fpcore, parse_fpcores
from .provenance.ledger import ProvenanceLedger
from .service.api import JobSpec, run_compile_jobs
from .service.cache import CompileCache, job_fingerprint
from .service.pool import WorkerPool
from .service.scheduler import JobOutcome, JobTimeout
from .service.server import create_server, serve
from .session import ChassisSession, JobHandle, SessionStats
from .targets import Target, all_targets, get_target

__all__ = [
    # session
    "ChassisSession",
    "JobHandle",
    "SessionStats",
    # pipeline
    "CompilePipeline",
    "PipelineContext",
    "PipelineError",
    "Phase",
    "PHASE_NAMES",
    "default_phases",
    "compile_core",
    "CompileResult",
    "CompileConfig",
    # sampling
    "SampleConfig",
    "SampleSet",
    "SamplingError",
    "Untranscribable",
    # deadlines
    "DeadlineExceeded",
    "deadline",
    "check_deadline",
    # batch service
    "JobSpec",
    "JobOutcome",
    "JobTimeout",
    "WorkerPool",
    "CompileCache",
    "job_fingerprint",
    "run_compile_jobs",
    # provenance
    "ProvenanceLedger",
    # server front-end
    "serve",
    "create_server",
    # empirical execution
    "BuildCache",
    "BuildError",
    "CalibrationReport",
    "ExecutableProgram",
    "ExecutionRun",
    "TimingReport",
    "ValidationReport",
    "backend_availability",
    "c_backend_available",
    "calibrate",
    "collect_calibration",
    "executable_for",
    "find_compiler",
    "measure_executable",
    "validate_program",
    # IR / targets
    "FPCore",
    "parse_fpcore",
    "parse_fpcores",
    "Target",
    "get_target",
    "all_targets",
]
