"""``repro batch``: batched, parallel, cached compilation from the CLI.

Selects benchmarks (a file, named benchmarks, or a slice of the built-in
suite) and targets, fans the cross product through a
:class:`~repro.session.ChassisSession`'s ``compile_many``, prints a per-job
progress line plus cache statistics, and optionally writes a JSONL report.

Report lines deliberately exclude wall-clock times and cache flags so that
``--jobs 1`` and ``--jobs N`` runs — and cold and warm runs — produce
byte-identical reports (the determinism contract the tests pin down).
"""

from __future__ import annotations

import json
import sys

from ..accuracy.sampler import SampleConfig
from ..benchsuite import suite
from ..core.loop import CompileConfig
from ..ir.fpcore import FPCore
from ..targets import TARGET_NAMES
from .scheduler import JobOutcome


def select_cores(args) -> list[FPCore]:
    """Resolve the benchmark selection flags into a list of FPCores."""
    if args.input:
        from ..cli import _read_cores

        cores: list[FPCore] = []
        for name_or_path in args.input:
            cores.extend(_read_cores(name_or_path))
        return cores
    return suite(max_benchmarks=args.suite)


def select_targets(args) -> list[str]:
    """Resolve --targets into registry names (validated here, built later)."""
    names = [t.strip() for t in args.targets.split(",") if t.strip()]
    for name in names:
        if name not in TARGET_NAMES:
            raise SystemExit(
                f"unknown target {name!r}; available: {', '.join(TARGET_NAMES)}"
            )
    return names


def job_row(
    benchmark: str,
    target: str,
    status: str,
    *,
    fingerprint: str | None = None,
    error_type: str = "",
    error: str = "",
    payload: dict | None = None,
) -> dict:
    """The one ok/failed JSON row shape for machine-readable output.

    Shared by the batch report writer, ``repro compile --json`` and the
    serve front-end's batch endpoint, so their rows are joinable and can't
    drift apart.  Deliberately excludes wall-clock times and cache flags so
    cold and warm (and serial and parallel) runs emit identical rows.
    """
    row = {"benchmark": benchmark, "target": target}
    if fingerprint is not None:
        row["fingerprint"] = fingerprint
    row["status"] = status
    if status != "ok":
        row["error_type"] = error_type
        row["error"] = error
        return row
    payload = payload or {}
    row["input"] = _entry(payload.get("input", {}))
    row["frontier"] = [_entry(c) for c in payload.get("frontier", [])]
    return row


def report_line(outcome: JobOutcome) -> dict:
    """One deterministic JSONL report row (no timings, no cache flags)."""
    return job_row(
        outcome.benchmark,
        outcome.target,
        outcome.status,
        fingerprint=outcome.fingerprint,
        error_type=outcome.error_type,
        error=outcome.error,
        payload=outcome.payload,
    )


def _entry(candidate: dict) -> dict:
    return {
        "program": candidate.get("program", ""),
        "cost": candidate.get("cost", 0.0),
        "error": candidate.get("error", 0.0),
        "origin": candidate.get("origin", ""),
    }


def cmd_batch(args) -> int:
    """Entry point for the ``repro batch`` subcommand."""
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit("--timeout must be positive (seconds)")
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    cores = select_cores(args)
    target_names = select_targets(args)
    if not cores or not target_names:
        raise SystemExit("nothing to compile: empty benchmark or target selection")

    from ..session import ChassisSession

    session = ChassisSession(
        config=CompileConfig(iterations=args.iterations),
        sample_config=SampleConfig(
            n_train=args.points, n_test=args.points, seed=args.seed
        ),
        cache=args.cache_dir or None,
        jobs=args.jobs,
        timeout=args.timeout,
    )

    # Multi-target batches sample each benchmark once and share the
    # points across targets; see ChassisSession.shared_samples_for for
    # the warm-cache and failure-capture rules.
    shared_samples = session.shared_samples_for(cores, target_names)
    specs = [
        (core, name, samples)
        for name in target_names
        for core, samples in zip(cores, shared_samples)
    ]

    def progress(outcome: dict) -> None:
        if not args.quiet:
            status = outcome["status"]
            note = "" if status == "ok" else f" ({outcome['error_type']})"
            timing = "cached" if outcome.get("cached") else f"{outcome['elapsed']:.1f}s"
            print(
                f"  {outcome['benchmark']} on {outcome['target']}: "
                f"{status}{note} [{timing}]",
                file=sys.stderr,
            )

    print(
        f"batch: {len(specs)} jobs "
        f"({len(cores)} benchmarks x {len(target_names)} targets, "
        f"--jobs {args.jobs})",
        file=sys.stderr,
    )
    outcomes = session.compile_many(specs, progress=progress)
    session.close()  # drain the persistent worker pool (if one was built)

    counts = {"ok": 0, "failed": 0, "timeout": 0}
    compiled = cached = 0
    for outcome in outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
        if outcome.cached:
            cached += 1
        elif outcome.ok:
            compiled += 1

    if args.report:
        with open(args.report, "w") as handle:
            for outcome in outcomes:
                handle.write(json.dumps(report_line(outcome)) + "\n")
        print(f"report: {args.report} ({len(outcomes)} lines)", file=sys.stderr)

    summary = (
        f"ok={counts['ok']} failed={counts['failed']} "
        f"timeout={counts['timeout']} compiled={compiled} cached={cached}"
    )
    print(summary)
    if session.cache is not None:
        print(f"cache: {session.cache.stats}")
    # Per-job failures are data (the paper's removal protocol), but a batch
    # where *nothing* succeeded is an operational failure.
    return 0 if counts["ok"] else 1
