"""``repro batch``: batched, parallel, cached compilation from the CLI.

Selects benchmarks (a file, named benchmarks, or a slice of the built-in
suite) and targets, fans the cross product through
:func:`repro.service.api.compile_many`, prints a per-job progress line plus
cache statistics, and optionally writes a JSONL report.

Report lines deliberately exclude wall-clock times and cache flags so that
``--jobs 1`` and ``--jobs N`` runs — and cold and warm runs — produce
byte-identical reports (the determinism contract the tests pin down).
"""

from __future__ import annotations

import json
import sys

from ..accuracy.sampler import SampleConfig
from ..benchsuite import suite
from ..core.loop import CompileConfig
from ..ir.fpcore import FPCore
from ..targets import TARGET_NAMES
from .api import compile_many
from .cache import CompileCache
from .scheduler import JobOutcome


def select_cores(args) -> list[FPCore]:
    """Resolve the benchmark selection flags into a list of FPCores."""
    if args.input:
        from ..cli import _read_cores

        cores: list[FPCore] = []
        for name_or_path in args.input:
            cores.extend(_read_cores(name_or_path))
        return cores
    return suite(max_benchmarks=args.suite)


def select_targets(args) -> list[str]:
    """Resolve --targets into registry names (validated here, built later)."""
    names = [t.strip() for t in args.targets.split(",") if t.strip()]
    for name in names:
        if name not in TARGET_NAMES:
            raise SystemExit(
                f"unknown target {name!r}; available: {', '.join(TARGET_NAMES)}"
            )
    return names


def report_line(outcome: JobOutcome) -> dict:
    """One deterministic JSONL report row (no timings, no cache flags)."""
    row = {
        "benchmark": outcome.benchmark,
        "target": outcome.target,
        "fingerprint": outcome.fingerprint,
        "status": outcome.status,
    }
    if outcome.status != "ok":
        row["error_type"] = outcome.error_type
        row["error"] = outcome.error
        return row
    payload = outcome.payload or {}
    row["input"] = _entry(payload.get("input", {}))
    row["frontier"] = [_entry(c) for c in payload.get("frontier", [])]
    return row


def _entry(candidate: dict) -> dict:
    return {
        "program": candidate.get("program", ""),
        "cost": candidate.get("cost", 0.0),
        "error": candidate.get("error", 0.0),
        "origin": candidate.get("origin", ""),
    }


def cmd_batch(args) -> int:
    """Entry point for the ``repro batch`` subcommand."""
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit("--timeout must be positive (seconds)")
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    cores = select_cores(args)
    target_names = select_targets(args)
    specs = [(core, name) for name in target_names for core in cores]
    if not specs:
        raise SystemExit("nothing to compile: empty benchmark or target selection")

    config = CompileConfig(iterations=args.iterations)
    sample_config = SampleConfig(
        n_train=args.points, n_test=args.points, seed=args.seed
    )
    cache = CompileCache(args.cache_dir) if args.cache_dir else None

    def progress(outcome: dict) -> None:
        if not args.quiet:
            status = outcome["status"]
            note = "" if status == "ok" else f" ({outcome['error_type']})"
            timing = "cached" if outcome.get("cached") else f"{outcome['elapsed']:.1f}s"
            print(
                f"  {outcome['benchmark']} on {outcome['target']}: "
                f"{status}{note} [{timing}]",
                file=sys.stderr,
            )

    print(
        f"batch: {len(specs)} jobs "
        f"({len(cores)} benchmarks x {len(target_names)} targets, "
        f"--jobs {args.jobs})",
        file=sys.stderr,
    )
    outcomes = compile_many(
        specs,
        config=config,
        sample_config=sample_config,
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        progress=progress,
    )

    counts = {"ok": 0, "failed": 0, "timeout": 0}
    compiled = cached = 0
    for outcome in outcomes:
        counts[outcome.status] = counts.get(outcome.status, 0) + 1
        if outcome.cached:
            cached += 1
        elif outcome.ok:
            compiled += 1

    if args.report:
        with open(args.report, "w") as handle:
            for outcome in outcomes:
                handle.write(json.dumps(report_line(outcome)) + "\n")
        print(f"report: {args.report} ({len(outcomes)} lines)", file=sys.stderr)

    summary = (
        f"ok={counts['ok']} failed={counts['failed']} "
        f"timeout={counts['timeout']} compiled={compiled} cached={cached}"
    )
    print(summary)
    if cache is not None:
        print(f"cache: {cache.stats}")
    # Per-job failures are data (the paper's removal protocol), but a batch
    # where *nothing* succeeded is an operational failure.
    return 0 if counts["ok"] else 1
