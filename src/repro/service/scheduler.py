"""Parallel job scheduler: fan (benchmark, target) jobs over worker processes.

Jobs cross the process boundary as plain data — FPCore source text plus a
target *name* — because targets hold synthesized implementation closures
that cannot be pickled.  Workers re-resolve the target from the registry,
compile, and return the serialized result payload (the
:mod:`repro.service.results` layout), so the parent never has to unpickle
foreign objects and pool results are byte-identical to what the cache
stores.

Guarantees:

* **Deterministic ordering** — outcomes are returned sorted by job index
  regardless of completion order.
* **Failure capture** — :class:`~repro.core.transcribe.Untranscribable` and
  :class:`~repro.accuracy.sampler.SamplingError` are recorded per job (the
  paper's protocol removes such pairs; callers decide), never swallowed and
  never fatal to the batch.
* **Per-job timeouts** — enforced by a thread-safe cooperative deadline
  (:mod:`repro.deadline`, polled at phase/iteration/sampling boundaries)
  plus ``SIGALRM`` as a hard backstop wherever the job runs in a process's
  main thread (worker processes always do), so a hung compilation frees
  its pool slot instead of wedging the batch — and inline jobs running on
  *non-main* threads (serve handlers, ``submit`` workers) are bounded too.
* ``jobs=1`` runs inline in the calling process through the exact same
  job function, so serial and parallel runs produce identical reports.

Long-lived callers should prefer a session-owned persistent
:class:`~repro.service.pool.WorkerPool` (pass it to :meth:`BatchScheduler.run`)
over the ad-hoc per-batch pool this module otherwise builds.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
from contextlib import nullcontext
from dataclasses import dataclass, field

from ..accuracy.sampler import SampleConfig, SamplingError
from ..core.loop import CompileConfig
from ..core.pipeline import compile_core
from ..core.transcribe import Untranscribable
from ..deadline import DeadlineExceeded, deadline
from ..egraph.stats import EngineStats, engine_stats_sink
from ..ir.fpcore import parse_fpcore
from ..obs.trace import Trace, span, tracing
from ..rival.backends import make_backend, resolve_backend_name
from ..rival.eval import RivalEvaluator
from ..targets import get_target
from .results import result_to_dict

#: Exceptions that mean "this (benchmark, target) pair is infeasible", as
#: opposed to a bug; both are captured either way.
EXPECTED_FAILURES = (Untranscribable, SamplingError)


class JobTimeout(DeadlineExceeded):
    """A single compilation exceeded its time budget.

    Derives (via :class:`~repro.deadline.DeadlineExceeded`) from
    BaseException on purpose: the sampler and e-graph code use broad
    ``except Exception`` guards around per-point evaluation, which would
    otherwise swallow the alarm and let a timed-out job run to completion.
    """


def job_event(
    index: int,
    benchmark: str,
    target: str,
    status: str = "ok",
    *,
    cached: bool = False,
    error_type: str = "",
    error: str = "",
    elapsed: float = 0.0,
    payload: dict | None = None,
    engine: dict | None = None,
    oracle: dict | None = None,
    trace: dict | None = None,
) -> dict:
    """The one progress-event / worker-outcome shape.

    Every dict that crosses a progress callback or the process boundary —
    cache hits in the api facade, fresh jobs in :func:`run_job` — is built
    here, so the two can never drift apart in shape.  ``engine`` carries
    the job's :class:`~repro.egraph.stats.EngineStats` as a dict and
    ``trace`` a serialized :class:`~repro.obs.trace.Trace`, so worker
    processes ship their observability data home with the result.
    """
    return {
        "index": index,
        "benchmark": benchmark,
        "target": target,
        "status": status,
        "cached": cached,
        "error_type": error_type,
        "error": error,
        "elapsed": elapsed,
        "payload": payload,
        "engine": engine,
        "oracle": oracle,
        "trace": trace,
    }


@dataclass(frozen=True)
class BatchJob:
    """One unit of schedulable work, picklable by construction."""

    index: int
    core_source: str
    target_name: str
    #: Pre-computed samples (an optimization for batches where one
    #: benchmark appears under many targets).  MUST equal what
    #: ``sample_core(core, sample_config)`` would produce — the cache
    #: fingerprint assumes samples are a pure function of those two.
    samples: object | None = None
    #: Per-job timeout (seconds); overrides the worker-state default when
    #: set.  Riding on the job keeps persistent-pool workers reusable
    #: across batches with different timeout knobs.
    timeout: float | None = None
    #: Record a span trace of this compilation and ship it back in the
    #: outcome (``repro compile --trace`` with pooled jobs).  Engine
    #: counters ship unconditionally; spans only on request.
    trace: bool = False


@dataclass
class JobOutcome:
    """What happened to one job (rebuilt in the parent, ordered by index)."""

    index: int
    benchmark: str
    target: str
    status: str  # "ok" | "failed" | "timeout"
    fingerprint: str = ""
    cached: bool = False
    elapsed: float = 0.0
    error_type: str = ""
    error: str = ""
    #: Serialized CompileResult (see service.results) when status == "ok".
    payload: dict | None = None
    #: Deserialized result, attached by the api facade for ok outcomes.
    result: object | None = field(default=None, repr=False)
    #: Engine counters from wherever the job ran (worker process or
    #: inline), as an :meth:`EngineStats.as_dict` dict; None for cache
    #: hits and jobs that did no engine work.  Sessions fold these into
    #: ``SessionStats.engine`` so ``/health`` covers pooled compiles.
    engine: dict | None = None
    #: Oracle counters from wherever the job ran — the per-job
    #: evaluator's ``evals``/``escalations`` plus its backend's batch
    #: counters, as an :meth:`OracleCounters.as_dict` dict; None for
    #: cache hits.  Sessions fold these into ``SessionStats.rival``.
    oracle: dict | None = None
    #: Serialized :class:`~repro.obs.trace.Trace` when the job asked for
    #: one (``BatchJob.trace``); merged across workers by ``--trace``.
    trace: dict | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


# Worker-process state, set once per worker by the pool initializer.
_WORKER_STATE: dict = {}


def _worker_init(config: CompileConfig, sample_config: SampleConfig, timeout: float | None):
    _WORKER_STATE["config"] = config
    _WORKER_STATE["sample_config"] = sample_config
    _WORKER_STATE["timeout"] = timeout


def _alarm_handler(_signum, _frame):
    raise JobTimeout()


def run_job(job: BatchJob, target=None) -> dict:
    """Compile one job; returns a JSON-able outcome dict.

    Runs in a worker process (or inline for serial batches); must only
    touch picklable/JSON-able data at its boundary.  ``target`` may be
    passed pre-resolved for inline execution of non-registry targets.
    """
    import time

    config: CompileConfig = _WORKER_STATE["config"]
    sample_config: SampleConfig = _WORKER_STATE["sample_config"]
    timeout: float | None = (
        job.timeout if job.timeout is not None else _WORKER_STATE.get("timeout")
    )

    if target is None:
        target = get_target(job.target_name)
    core = parse_fpcore(job.core_source, known_ops=set(target.operators))
    outcome = job_event(job.index, core.name or "<anonymous>", target.name)

    # Per-job oracle: a private evaluator (its counters ship home on the
    # outcome — worker instances cannot touch the session's) behind the
    # backend the environment asks for.  "pool" degrades to the in-process
    # fast path: a job is already on a worker; it must not nest pools.
    evaluator = RivalEvaluator()
    oracle_name = resolve_backend_name()
    oracle = make_backend(
        "numpy" if oracle_name == "pool" else oracle_name,
        evaluator=evaluator,
    )

    # The cooperative deadline (armed below) bounds the compile on any
    # thread; SIGALRM rides along as a hard backstop, but it only arms in
    # the main thread — off-main-thread callers (serve handler threads,
    # submit workers) rely on the deadline alone rather than crashing in
    # signal.signal.
    use_alarm = (
        timeout is not None
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _alarm_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout)
    start = time.monotonic()
    result = None
    # Engine counters always ride home on the outcome (one small dict);
    # span traces only when the job asked (they grow with the compile).
    engine_local = EngineStats()
    trace = (
        Trace(name=f"{outcome['benchmark']}:{target.name}")
        if job.trace else None
    )
    trace_arm = tracing(trace) if trace is not None else nullcontext()
    try:
        try:
            with deadline(timeout), engine_stats_sink(engine_local), trace_arm:
                with span(
                    "compile",
                    benchmark=outcome["benchmark"], target=target.name,
                ):
                    result = compile_core(
                        core, target, config, sample_config,
                        samples=job.samples, evaluator=evaluator,
                        oracle=oracle,
                    )
        except EXPECTED_FAILURES as error:
            outcome["status"] = "failed"
            outcome["error_type"] = type(error).__name__
            outcome["error"] = str(error)
        except Exception as error:  # genuine bugs still must not kill the batch
            outcome["status"] = "failed"
            outcome["error_type"] = type(error).__name__
            outcome["error"] = str(error)
        finally:
            if use_alarm:
                signal.setitimer(signal.ITIMER_REAL, 0.0)
                signal.signal(signal.SIGALRM, previous)
    except DeadlineExceeded:
        # The alarm (or a cooperative check) may fire anywhere in the
        # region above — mid-compile, inside an except handler, or even
        # inside the finally before the disarm completes — so the timeout
        # is caught out here, after the finally has run, and the job is
        # recorded rather than the whole batch dying on an escaped
        # BaseException.
        outcome["status"] = "timeout"
        outcome["error_type"] = "JobTimeout"
        outcome["error"] = f"exceeded {timeout}s"
        outcome["payload"] = None
        result = None
        if use_alarm:  # idempotent re-disarm in case finally was interrupted
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    outcome["elapsed"] = time.monotonic() - start
    if result is not None:
        outcome["payload"] = result_to_dict(result)
    if engine_local.any():
        outcome["engine"] = engine_local.as_dict()
    counters = oracle.counters()
    counters.evals += evaluator.evals
    counters.escalations += evaluator.escalations
    if counters.any():
        outcome["oracle"] = counters.as_dict()
    if trace is not None:
        outcome["trace"] = trace.as_dict()
    return outcome


def _pool_context():
    """Prefer fork (workers inherit the parent's hash seed and imports) —
    but never fork a multi-threaded process directly: forking from, say, a
    serve handler thread is deadlock-prone (the child inherits locks held
    by threads that don't exist in it) and deprecated on Python 3.12+.
    Such callers get *forkserver*: workers fork from a clean
    single-threaded helper process (unlike spawn, the caller's
    ``__main__`` is never re-executed)."""
    single_threaded = (
        threading.current_thread() is threading.main_thread()
        and threading.active_count() == 1
    )
    try:
        return multiprocessing.get_context("fork" if single_threaded else "forkserver")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


class BatchScheduler:
    """Runs batches of compile jobs with a bounded worker pool."""

    def __init__(self, jobs: int = 1, timeout: float | None = None):
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        if timeout is not None and timeout <= 0:
            # setitimer(0) would silently *disarm* the alarm.
            raise ValueError(f"timeout must be positive, got {timeout}")
        self.jobs = jobs
        self.timeout = timeout

    def run(
        self,
        batch: list[BatchJob],
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
        progress=None,
        inline_lock=None,
        pool=None,
    ) -> list[dict]:
        """Execute every job; returns outcome dicts sorted by job index.

        ``progress``, when given, is called with each outcome dict as it
        completes (pool order — not deterministic; the return value is).
        ``inline_lock`` is held around serial in-process execution (see
        :func:`repro.service.api.run_compile_jobs`).  ``pool``, when given,
        is a persistent :class:`~repro.service.pool.WorkerPool` that all
        jobs (even single-job batches — its workers are already warm) are
        dispatched through instead of a per-batch throwaway pool.
        """
        config = config or CompileConfig()
        sample_config = sample_config or SampleConfig()
        outcomes: list[dict] = []
        if pool is not None:
            outcomes = pool.run_batch(
                batch, config, sample_config, timeout=self.timeout,
                progress=progress,
            )
        elif self.jobs == 1 or len(batch) <= 1:
            with inline_lock if inline_lock is not None else nullcontext():
                _worker_init(config, sample_config, self.timeout)
                for job in batch:
                    outcome = run_job(job)
                    if progress is not None:
                        progress(outcome)
                    outcomes.append(outcome)
        else:
            context = _pool_context()
            workers = min(self.jobs, len(batch))
            with context.Pool(
                processes=workers,
                initializer=_worker_init,
                initargs=(config, sample_config, self.timeout),
            ) as pool:
                for outcome in pool.imap_unordered(run_job, batch):
                    if progress is not None:
                        progress(outcome)
                    outcomes.append(outcome)
        outcomes.sort(key=lambda o: o["index"])
        return outcomes
