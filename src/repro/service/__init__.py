"""Batch compilation service: persistent result cache + parallel scheduler.

The production-facing subsystem layered over the single-benchmark compiler
(:func:`repro.core.chassis.compile_fpcore`):

* :mod:`repro.service.cache`     — content-addressed persistent cache
* :mod:`repro.service.results`   — JSON round-trip of CompileResult
* :mod:`repro.service.scheduler` — multiprocessing job scheduler
* :mod:`repro.service.api`       — the :func:`compile_many` facade
* :mod:`repro.service.batch`     — the ``repro batch`` CLI command
"""

from .api import compile_many, iter_ok_results
from .cache import (
    CacheStats,
    CompileCache,
    config_fingerprint,
    core_fingerprint,
    job_fingerprint,
    target_fingerprint,
)
from .results import result_from_dict, result_to_dict
from .scheduler import BatchJob, BatchScheduler, JobOutcome

__all__ = [
    "compile_many",
    "iter_ok_results",
    "CompileCache",
    "CacheStats",
    "core_fingerprint",
    "target_fingerprint",
    "config_fingerprint",
    "job_fingerprint",
    "result_to_dict",
    "result_from_dict",
    "BatchJob",
    "BatchScheduler",
    "JobOutcome",
]
