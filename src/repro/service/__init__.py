"""Batch compilation service: persistent result cache + parallel scheduler.

The production-facing subsystem layered over the phase pipeline
(:func:`repro.core.pipeline.compile_core`):

* :mod:`repro.service.cache`     — content-addressed persistent cache
* :mod:`repro.service.results`   — JSON round-trip of CompileResult
* :mod:`repro.service.scheduler` — multiprocessing job scheduler
* :mod:`repro.service.pool`      — session-owned persistent worker pool
* :mod:`repro.service.api`       — the :func:`run_compile_jobs` engine
  (plus the deprecated :func:`compile_many` shim)
* :mod:`repro.service.batch`     — the ``repro batch`` CLI command
* :mod:`repro.service.server`    — the ``repro serve`` HTTP front-end

Most callers should go through :class:`repro.api.ChassisSession`, which
owns the cache, pool and evaluator across calls.
"""

from .api import JobSpec, compile_many, iter_ok_results, run_compile_jobs
from .cache import (
    CacheStats,
    CompileCache,
    config_fingerprint,
    core_fingerprint,
    job_fingerprint,
    sample_fingerprint,
    target_fingerprint,
)
from .pool import WorkerPool
from .results import result_from_dict, result_to_dict
from .scheduler import BatchJob, BatchScheduler, JobOutcome, JobTimeout, job_event

__all__ = [
    "compile_many",
    "run_compile_jobs",
    "iter_ok_results",
    "JobSpec",
    "CompileCache",
    "CacheStats",
    "core_fingerprint",
    "sample_fingerprint",
    "target_fingerprint",
    "config_fingerprint",
    "job_fingerprint",
    "result_to_dict",
    "result_from_dict",
    "BatchJob",
    "BatchScheduler",
    "JobOutcome",
    "JobTimeout",
    "WorkerPool",
    "job_event",
]
