"""The batch compilation engine: cache-aware fan-out over the worker pool.

:func:`run_compile_jobs` is the engine behind
:meth:`repro.api.ChassisSession.compile_many` (and the deprecated
module-level :func:`compile_many` shim).  It layers the persistent cache
under the parallel scheduler:

1. every job is fingerprinted and looked up in the cache (parent process,
   so hit/miss stats are centralized and workers stay cache-free);
2. misses are fanned out over the worker pool (or run inline for
   ``jobs=1`` and for targets not resolvable from the registry by name —
   custom targets hold unpicklable closures);
3. fresh results are stored back, and every ok outcome carries both the
   JSON payload (for reports) and the deserialized
   :class:`~repro.core.pipeline.CompileResult` (for re-scoring).

Cached and freshly-compiled outcomes are indistinguishable apart from the
``cached`` flag: both are round-tripped through the same serialization, so
a warm run reproduces a cold run's report byte-for-byte.
"""

from __future__ import annotations

import warnings
from contextlib import nullcontext
from typing import Iterable, Sequence, TypeAlias

from ..accuracy.sampler import SampleConfig, SampleSet
from ..core.loop import CompileConfig
from ..ir.fpcore import FPCore
from ..rival.backends import resolve_backend_name
from ..targets import get_target
from ..targets.target import Target
from .cache import CompileCache, job_fingerprint, target_fingerprint
from .results import core_to_source, result_from_dict
from .scheduler import (
    BatchJob,
    BatchScheduler,
    JobOutcome,
    _worker_init,
    job_event,
    run_job,
)

#: A unit of requested work: a benchmark plus a target (object or registry
#: name), optionally with pre-computed samples (see :func:`run_compile_jobs`).
JobSpec: TypeAlias = (
    tuple[FPCore, "Target | str"] | tuple[FPCore, "Target | str", "SampleSet | None"]
)


def _resolve_target(target: Target | str) -> Target:
    return get_target(target) if isinstance(target, str) else target


def _poolable(target: Target) -> bool:
    """A job can cross process boundaries only if the worker can rebuild
    exactly the same target from the registry by name."""
    try:
        registered = get_target(target.name)
    except (KeyError, ValueError):
        return False
    return registered is target or target_fingerprint(registered) == target_fingerprint(
        target
    )


def run_compile_jobs(
    specs: Sequence[JobSpec],
    config: CompileConfig | None = None,
    sample_config: SampleConfig | None = None,
    jobs: int = 1,
    cache: CompileCache | str | None = None,
    timeout: float | None = None,
    progress=None,
    inline_lock=None,
    pool=None,
    trace: bool = False,
    ledger=None,
) -> list[JobOutcome]:
    """Compile many (benchmark, target) pairs; returns outcomes in order.

    A spec is ``(core, target)`` or ``(core, target, samples)`` — the
    optional :class:`~repro.accuracy.sampler.SampleSet` skips per-job
    sampling and MUST equal what ``sample_core(core, sample_config)``
    would produce (samples are seeded, so precomputing them is purely an
    optimization; the cache fingerprint assumes this equality).

    ``cache`` may be a :class:`CompileCache` or a directory path; ``None``
    disables caching.  ``jobs`` is the worker-pool width; ``timeout``
    bounds each individual compilation in seconds.  ``pool``, when given,
    is a persistent :class:`~repro.service.pool.WorkerPool` that
    registry-target cache misses are dispatched through — even single-job
    batches, since its workers are already warm — instead of building a
    throwaway pool (sessions with ``jobs >= 2`` pass their own).

    Cache misses may run *inline* in the calling thread (``jobs=1`` with
    no pool, single-job pool-less batches, non-registry targets at any
    width), configured through module-global worker state — and mpmath
    precision is process-global — so concurrent callers must pass the same
    ``inline_lock`` to serialize those sections (pool-dispatched work is
    unaffected).  Going through
    :meth:`repro.api.ChassisSession.compile_many` does this for you.

    ``trace=True`` asks each freshly-compiled job — wherever it runs —
    to record a span trace, returned on ``JobOutcome.trace`` (cache hits
    have none: no phases ran).  Engine counters come back on
    ``JobOutcome.engine`` unconditionally.

    ``ledger``, when given, is a provenance journal (anything with
    :meth:`~repro.provenance.ledger.ProvenanceLedger.record_job`; taken
    duck-typed so this module never imports the provenance layer): one
    ``"batch"`` record is appended per job — hits in the lookup loop,
    fresh results as outcomes are rebuilt — always in the *parent*
    process; workers never touch the journal.
    """
    config = config or CompileConfig()
    sample_config = sample_config or SampleConfig()
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")
    if isinstance(cache, str):
        cache = CompileCache(cache)

    resolved: list[tuple[FPCore, Target, str, object]] = []
    for spec in specs:
        core, target = spec[0], _resolve_target(spec[1])
        samples = spec[2] if len(spec) > 2 else None
        resolved.append(
            (core, target, job_fingerprint(core, target, config, sample_config), samples)
        )

    outcomes: list[JobOutcome | None] = [None] * len(resolved)
    pool_batch: list[BatchJob] = []
    inline_jobs: list[tuple[int, BatchJob, Target]] = []
    targets_by_index: dict[int, Target] = {}
    # What the workers will resolve for themselves (scheduler._worker_init
    # resolves from the environment the same way); stamped into records.
    oracle_backend = resolve_backend_name() if ledger is not None else ""

    for index, (core, target, fingerprint, samples) in enumerate(resolved):
        targets_by_index[index] = target
        if cache is not None:
            payload = cache.get(fingerprint)
            if payload is not None:
                benchmark = core.name or "<anonymous>"
                outcomes[index] = JobOutcome(
                    index=index,
                    benchmark=benchmark,
                    target=target.name,
                    status="ok",
                    fingerprint=fingerprint,
                    cached=True,
                    payload=payload,
                )
                if progress is not None:
                    progress(job_event(index, benchmark, target.name, cached=True))
                if ledger is not None:
                    ledger.record_job(
                        "batch", core, target, config, sample_config,
                        fingerprint, cache="hit",
                        oracle_backend=oracle_backend,
                    )
                continue
        job = BatchJob(
            index, core_to_source(core), target.name,
            samples=samples, trace=trace,
        )
        if _poolable(target):
            pool_batch.append(job)
        else:
            inline_jobs.append((index, job, target))

    raw: list[dict] = []
    if pool_batch:
        scheduler = BatchScheduler(jobs=jobs, timeout=timeout)
        raw.extend(
            scheduler.run(
                pool_batch, config, sample_config, progress,
                inline_lock=inline_lock, pool=pool,
            )
        )
    if inline_jobs:
        with inline_lock if inline_lock is not None else nullcontext():
            _worker_init(config, sample_config, timeout)
            for _index, job, target in inline_jobs:
                outcome = run_job(job, target=target)
                if progress is not None:
                    progress(outcome)
                raw.append(outcome)

    for outcome_dict in raw:
        index = outcome_dict["index"]
        core, target, fingerprint, _samples = resolved[index]
        outcome = JobOutcome(
            index=index,
            # Label from the parent's core, not the worker's re-parse, so
            # cold and warm (cache-hit) runs agree on benchmark identity.
            benchmark=core.name or "<anonymous>",
            target=outcome_dict["target"],
            status=outcome_dict["status"],
            fingerprint=fingerprint,
            cached=False,
            elapsed=outcome_dict["elapsed"],
            error_type=outcome_dict["error_type"],
            error=outcome_dict["error"],
            payload=outcome_dict["payload"],
            engine=outcome_dict.get("engine"),
            oracle=outcome_dict.get("oracle"),
            trace=outcome_dict.get("trace"),
        )
        if outcome.ok and cache is not None:
            cache.put(fingerprint, outcome.payload)
        if ledger is not None:
            ledger.record_job(
                "batch", core, target, config, sample_config, fingerprint,
                cache=(
                    "store" if outcome.ok and cache is not None
                    else "none"
                ),
                status=outcome.status,
                elapsed=outcome.elapsed,
                engine=outcome.engine,
                oracle=outcome.oracle,
                oracle_backend=oracle_backend,
                error_type=outcome.error_type or None,
            )
        outcomes[index] = outcome

    final: list[JobOutcome] = []
    for index, outcome in enumerate(outcomes):
        assert outcome is not None, f"job {index} produced no outcome"
        if outcome.ok and outcome.payload is not None:
            outcome.result = result_from_dict(outcome.payload, targets_by_index[index])
        final.append(outcome)
    return final


def compile_many(
    specs: Sequence[JobSpec],
    config: CompileConfig | None = None,
    sample_config: SampleConfig | None = None,
    jobs: int = 1,
    cache: CompileCache | str | None = None,
    timeout: float | None = None,
    progress=None,
) -> list[JobOutcome]:
    """Deprecated: use :meth:`repro.api.ChassisSession.compile_many`.

    A session amortizes the evaluator, sample cache and persistent result
    cache across calls; this one-shot facade rebuilds them every time.
    """
    warnings.warn(
        "compile_many is deprecated; use repro.api.ChassisSession.compile_many",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_compile_jobs(
        specs,
        config=config,
        sample_config=sample_config,
        jobs=jobs,
        cache=cache,
        timeout=timeout,
        progress=progress,
    )


def iter_ok_results(outcomes: Iterable[JobOutcome]):
    """Yield (outcome, CompileResult) for every successful job."""
    for outcome in outcomes:
        if outcome.ok and outcome.result is not None:
            yield outcome, outcome.result
