"""``repro serve``: a long-running JSON-over-HTTP compilation front-end.

One warm :class:`~repro.session.ChassisSession` behind a stdlib
:class:`~http.server.ThreadingHTTPServer` — no third-party dependencies.
Repeated requests hit the session's sample cache, evaluator and persistent
result cache instead of paying process start-up per compilation.

Endpoints (all bodies JSON):

* ``GET  /health``  — liveness plus session/cache/worker-pool statistics,
  engine counters folded back from pooled workers, and oracle activity.
* ``GET  /metrics`` — the process metrics registry (:mod:`repro.obs`) in
  Prometheus text exposition format, plus session-state gauges.
* ``GET  /targets`` — the registered target descriptions (figure 6 data).
* ``GET  /provenance`` — the session's provenance-ledger info, or — with
  ``?fingerprint=<digest-or-8+-char-prefix>`` — every ledger record of
  that job (404 without a ledger or a match).
* ``POST /compile`` — ``{"core": "<FPCore src>", "target": "c99"}`` plus
  optional ``iterations``/``points``/``seed``/``timeout`` knobs.  Responds
  with ``{"status": "ok", ..., "result": <payload>}``; an identical second
  request is served from the warm cache with a **byte-identical** body
  (the ``X-Repro-Cached`` header is the only difference).  The opt-in
  ``"timings": true`` knob adds a per-phase wall-clock breakdown *outside*
  the result payload (null on warm hits — no phases ran), so the cached
  result bytes stay deterministic; the opt-in ``"provenance": true`` knob
  likewise attaches the job's ledger record — and, on warm hits, the
  origin record of the compilation that produced the cached bytes.
* ``POST /batch``   — ``{"cores": [...], "targets": [...]}``; the cross
  product through the session's *persistent* worker pool + cache (each
  benchmark sampled once, shared across targets), reported in the same
  row shape as ``repro batch --report``.
* ``POST /score``   — ``{"core": ..., "target": ..., "program": ...?}``;
  mean bits of error of a program (default: the transcribed input).
* ``POST /validate`` — ``{"core": ..., "target": ..., "program": ...?,
  "backend": "auto"|"c"|"python"?}``; compiles (through the session's
  worker pool when it has one), *executes* the emitted code — a
  system-compiler-built shared library, or the sandboxed Python backend
  when no C compiler exists — and reports empirical-vs-oracle and
  empirical-vs-machine agreement with per-point mismatch localization
  (:class:`~repro.exec.validate.ValidationReport`).

Malformed requests (bad JSON, missing/unknown fields, unparseable cores)
get a 4xx with ``{"error": ...}``; infeasible benchmark/target pairs are
*data*, not errors, and come back 200 with ``"status": "failed"`` exactly
like batch outcomes.  Compilations that exceed their deadline — the
session ``--timeout`` or a per-request ``timeout`` knob, enforced by a
thread-safe cooperative deadline even for inline compiles in handler
threads — come back 200 with ``"status": "timeout"`` the same way.  A
per-connection socket timeout stops dead keep-alive peers from pinning
handler threads.
"""

from __future__ import annotations

import dataclasses
import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..accuracy.sampler import SamplingError
from ..core.transcribe import Untranscribable
from ..deadline import DeadlineExceeded
from ..exec.builder import BuildError
from ..exec.executable import BACKENDS
from ..exec.python_backend import PythonExecError
from ..ir.parser import parse_expr
from ..obs.metrics import METRICS
from ..targets import TARGET_NAMES
from .batch import report_line

#: Routes that may appear as metric labels; anything else (scans, typos)
#: collapses to one bucket so label cardinality stays bounded.
_KNOWN_ROUTES = frozenset({
    "/health", "/metrics", "/targets", "/provenance",
    "/compile", "/batch", "/score", "/validate",
})

#: Request-size ceiling (bytes): far above any benchmark, far below a DoS.
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Default per-connection socket timeout (seconds): a dead keep-alive peer
#: must not pin a handler thread forever.  Only socket reads/writes count
#: against it — a long compile between them does not.
REQUEST_SOCKET_TIMEOUT = 60.0


class RequestError(ValueError):
    """A client-side problem: reported as a 4xx, never a stack trace."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def _require(body: dict, key: str, kind: type) -> object:
    value = body.get(key)
    if not isinstance(value, kind):
        raise RequestError(
            f"field {key!r} must be a {kind.__name__}, got {type(value).__name__}"
        )
    return value


class ChassisRequestHandler(BaseHTTPRequestHandler):
    """Routes requests onto the server's shared session."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"
    #: Per-connection socket timeout; BaseHTTPRequestHandler applies it via
    #: ``connection.settimeout`` in setup(), and handle_one_request treats
    #: an expiry while awaiting the next request line as connection close.
    timeout = REQUEST_SOCKET_TIMEOUT

    def setup(self):
        self.timeout = getattr(
            self.server, "request_timeout", REQUEST_SOCKET_TIMEOUT
        )
        super().setup()

    @property
    def session(self):
        return self.server.session

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # --- plumbing -------------------------------------------------------------------

    def _send_json(self, status: int, obj: dict, headers: dict | None = None) -> None:
        self._last_status = status
        body = json.dumps(obj).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if status >= 400:
            # Error paths may not have drained the request body; reusing
            # the keep-alive connection would parse the leftover bytes as
            # the next request line, so close it instead.
            self.close_connection = True
            self.send_header("Connection", "close")
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._last_status = status
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _observe_request(self, path: str, start: float) -> None:
        route = path if path in _KNOWN_ROUTES else "<other>"
        METRICS.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route and response status.",
            route=route, status=str(getattr(self, "_last_status", 0)),
        ).inc()
        METRICS.histogram(
            "repro_http_request_seconds",
            "Wall-clock seconds handling each HTTP request, by route.",
            route=route,
        ).observe(time.perf_counter() - start)

    def _read_body(self) -> dict:
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise RequestError("missing or invalid Content-Length") from None
        if length < 0 or length > MAX_BODY_BYTES:
            raise RequestError(f"body too large (limit {MAX_BODY_BYTES} bytes)", 413)
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except ValueError:
            raise RequestError("request body is not valid JSON") from None
        if not isinstance(body, dict):
            raise RequestError("request body must be a JSON object")
        return body

    def _configs_from(self, body: dict):
        """Per-request knob overrides on top of the session defaults."""
        session = self.session
        config, sample_config = session.config, session.sample_config
        if "iterations" in body:
            iterations = _require(body, "iterations", int)
            if iterations < 0:
                raise RequestError("iterations must be >= 0")
            config = dataclasses.replace(config, iterations=iterations)
        points = seed = None
        if "points" in body:
            points = _require(body, "points", int)
            if points < 1:
                raise RequestError("points must be >= 1")
        if "seed" in body:
            seed = _require(body, "seed", int)
        if points is not None or seed is not None:
            sample_config = dataclasses.replace(
                sample_config,
                **({"n_train": points, "n_test": points} if points is not None else {}),
                **({"seed": seed} if seed is not None else {}),
            )
        return config, sample_config

    def _timeout_from(self, body: dict) -> float | None:
        """Optional per-request ``timeout`` knob (seconds; None = session
        default).  The thread-safe deadline makes this honest for inline
        compiles in handler threads, not just pool-dispatched jobs."""
        if "timeout" not in body:
            return None
        timeout = body["timeout"]
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise RequestError("field 'timeout' must be a number (seconds)")
        if timeout <= 0:
            raise RequestError("timeout must be positive")
        return float(timeout)

    def _parse_core(self, source: str, target):
        try:
            return self.session.parse(source, target)
        except Exception as error:
            raise RequestError(f"unparseable FPCore: {error}") from None

    def _resolve_target(self, name: str):
        if name not in TARGET_NAMES:
            raise RequestError(
                f"unknown target {name!r}; available: {', '.join(TARGET_NAMES)}"
            )
        return self.session.resolve_target(name)

    # --- routes ---------------------------------------------------------------------

    def do_GET(self):  # noqa: N802 - stdlib naming
        path = urlparse(self.path).path
        start = time.perf_counter()
        if path == "/health":
            self._send_json(200, self.session.health())
        elif path == "/metrics":
            self._send_text(
                200, METRICS.exposition(),
                content_type="text/plain; version=0.0.4; charset=utf-8",
            )
        elif path == "/targets":
            self._send_json(200, {"targets": self.session.targets_info()})
        elif path == "/provenance":
            self._get_provenance()
        else:
            self._send_json(404, {"error": f"no such endpoint: {path}"})
        self._observe_request(path, start)

    def _get_provenance(self) -> None:
        """``GET /provenance`` — ledger info, or — with a ``fingerprint``
        query parameter (64-char digest or an 8+-char prefix) — every
        record of that job.  404 when the session has no ledger (no
        persistent cache) or no record matches."""
        session = self.session
        if session.ledger is None:
            self._send_json(404, {
                "error": "no provenance ledger (session has no persistent "
                         "cache; start with --cache-dir)"
            })
            return
        query = parse_qs(urlparse(self.path).query)
        fingerprint = query.get("fingerprint", [""])[0]
        if not fingerprint:
            self._send_json(200, session.ledger.info())
            return
        records = session.provenance_for(fingerprint)
        if not records:
            self._send_json(404, {
                "error": f"no provenance records for {fingerprint!r}"
            })
            return
        self._send_json(200, {"fingerprint": fingerprint, "records": records})

    def do_POST(self):  # noqa: N802 - stdlib naming
        path = urlparse(self.path).path
        start = time.perf_counter()
        handler = {
            "/compile": self._post_compile,
            "/batch": self._post_batch,
            "/score": self._post_score,
            "/validate": self._post_validate,
        }.get(path)
        if handler is None:
            self._send_json(404, {"error": f"no such endpoint: {path}"})
            self._observe_request(path, start)
            return
        try:
            handler(self._read_body())
        except RequestError as error:
            self._send_json(error.status, {"error": str(error)})
        except TimeoutError:
            # The peer stalled mid-request (socket timeout): the connection
            # is beyond saving, so release the handler thread quietly.
            self.close_connection = True
        except DeadlineExceeded as error:
            # Like a failed benchmark/target pair, a timeout is data, not a
            # server error (routes with more context respond before this).
            self._send_json(200, {
                "status": "timeout",
                "error_type": "JobTimeout",
                "error": str(error) or "compilation deadline exceeded",
            })
        except Exception as error:  # noqa: BLE001 - a bug must not kill the server
            self._send_json(
                500, {"error": str(error), "error_type": type(error).__name__}
            )
        finally:
            self._observe_request(path, start)

    def _post_compile(self, body: dict) -> None:
        target = self._resolve_target(_require(body, "target", str))
        core = self._parse_core(_require(body, "core", str), target)
        config, sample_config = self._configs_from(body)
        timeout = self._timeout_from(body)
        want_timings = body.get("timings", False)
        if not isinstance(want_timings, bool):
            raise RequestError("field 'timings' must be a boolean")
        want_provenance = body.get("provenance", False)
        if not isinstance(want_provenance, bool):
            raise RequestError("field 'provenance' must be a boolean")
        benchmark = core.name or "<anonymous>"
        try:
            payload, cached = self.session.compile_payload(
                core, target, config=config, sample_config=sample_config,
                timeout=timeout,
            )
        except (Untranscribable, SamplingError) as error:
            self._send_json(200, {
                "status": "failed",
                "benchmark": benchmark,
                "target": target.name,
                "error_type": type(error).__name__,
                "error": str(error),
            }, headers={"X-Repro-Cached": "0"})
            return
        except DeadlineExceeded:
            # Inline compiles run in this handler thread; the cooperative
            # deadline bounds them even though SIGALRM cannot arm here.
            effective = timeout if timeout is not None else self.session.timeout
            self._send_json(200, {
                "status": "timeout",
                "benchmark": benchmark,
                "target": target.name,
                "error_type": "JobTimeout",
                "error": f"exceeded {effective}s",
            }, headers={"X-Repro-Cached": "0"})
            return
        # The body is built from the stored payload, so a warm repeat of an
        # identical request is byte-identical; only the header differs.
        # Per-phase timings are opt-in and ride *outside* the result (they
        # are non-deterministic wall clock and must never enter the cached
        # bytes); a warm hit reports null — no phases ran.
        response = {
            "status": "ok",
            "benchmark": benchmark,
            "target": target.name,
            "result": payload,
        }
        if want_timings:
            response["timings"] = (
                None if cached else self.session.last_phase_timings()
            )
        if want_provenance:
            # Also opt-in and also outside the result payload.  On a warm
            # hit this carries the *origin* record of the compilation that
            # produced the cached bytes (resolved lazily — only clients
            # who ask pay the ledger scan), so warm responses are
            # auditable while their cached bytes stay identical.
            response["provenance"] = self.session.last_provenance()
        self._send_json(
            200, response, headers={"X-Repro-Cached": "1" if cached else "0"}
        )

    def _post_batch(self, body: dict) -> None:
        sources = _require(body, "cores", list)
        target_names = _require(body, "targets", list)
        if not sources or not target_names:
            raise RequestError("cores and targets must be non-empty lists")
        if not all(isinstance(name, str) for name in target_names):
            raise RequestError("targets must be a list of target names")
        if not all(isinstance(source, str) for source in sources):
            raise RequestError("cores must be a list of FPCore source strings")
        targets = [self._resolve_target(name) for name in target_names]
        cores = [self._parse_core(source, None) for source in sources]
        config, sample_config = self._configs_from(body)
        timeout = self._timeout_from(body)
        # Multi-target batches sample each benchmark once and share the
        # points across targets; see ChassisSession.shared_samples_for
        # for the warm-cache and failure-capture rules.
        shared_samples = self.session.shared_samples_for(
            cores, targets,
            config=config, sample_config=sample_config, timeout=timeout,
        )
        outcomes = self.session.compile_many(
            [
                (core, target, samples)
                for target in targets
                for core, samples in zip(cores, shared_samples)
            ],
            config=config,
            sample_config=sample_config,
            timeout=timeout,
        )
        self._send_json(200, {
            "outcomes": [report_line(outcome) for outcome in outcomes],
            "summary": {
                "ok": sum(o.ok for o in outcomes),
                "failed": sum(o.status == "failed" for o in outcomes),
                "timeout": sum(o.status == "timeout" for o in outcomes),
                "cached": sum(o.cached for o in outcomes),
            },
        })

    def _post_validate(self, body: dict) -> None:
        target = self._resolve_target(_require(body, "target", str))
        core = self._parse_core(_require(body, "core", str), target)
        config, sample_config = self._configs_from(body)
        timeout = self._timeout_from(body)
        backend = body.get("backend", "auto")
        if backend not in BACKENDS:
            raise RequestError(
                f"field 'backend' must be one of {', '.join(BACKENDS)}"
            )
        program = body.get("program")
        if program is not None:
            if not isinstance(program, str):
                raise RequestError("field 'program' must be a string")
            try:
                program = parse_expr(program, known_ops=set(target.operators))
            except Exception as error:
                raise RequestError(f"unparseable program: {error}") from None
        benchmark = core.name or "<anonymous>"
        try:
            report = self.session.validate(
                core, target, program=program, backend=backend,
                config=config, sample_config=sample_config, timeout=timeout,
            )
        except (Untranscribable, SamplingError, BuildError, PythonExecError) as error:
            # Infeasible pair / forced backend without a compiler /
            # unexecutable emitted source: data, not a server error —
            # same contract as /compile failures.
            self._send_json(200, {
                "status": "failed",
                "benchmark": benchmark,
                "target": target.name,
                "error_type": type(error).__name__,
                "error": str(error),
            })
            return
        except DeadlineExceeded:
            effective = timeout if timeout is not None else self.session.timeout
            self._send_json(200, {
                "status": "timeout",
                "benchmark": benchmark,
                "target": target.name,
                "error_type": "JobTimeout",
                "error": f"exceeded {effective}s",
            })
            return
        self._send_json(200, {
            "status": "ok",
            "benchmark": benchmark,
            "target": target.name,
            "report": report.as_dict(),
        })

    def _post_score(self, body: dict) -> None:
        target = self._resolve_target(_require(body, "target", str))
        core = self._parse_core(_require(body, "core", str), target)
        program = body.get("program")
        if program is not None and not isinstance(program, str):
            raise RequestError("field 'program' must be a string")
        if program is not None:
            # Pre-parse here so a bad program is the client's 400, not a 500
            # (mirrors _parse_core for the benchmark itself).
            try:
                program = parse_expr(program, known_ops=set(target.operators))
            except Exception as error:
                raise RequestError(f"unparseable program: {error}") from None
        try:
            error_bits = self.session.score(core, target, program)
        except (Untranscribable, SamplingError) as error:
            raise RequestError(
                f"{type(error).__name__}: {error}", status=422
            ) from None
        except KeyError as error:
            raise RequestError(f"unknown operator in program: {error}") from None
        self._send_json(200, {
            "benchmark": core.name or "<anonymous>",
            "target": target.name,
            "error_bits": error_bits,
        })


class ChassisServer(ThreadingHTTPServer):
    """HTTP server bound to one shared :class:`ChassisSession`."""

    daemon_threads = True

    def __init__(
        self,
        address,
        session,
        verbose: bool = False,
        request_timeout: float | None = REQUEST_SOCKET_TIMEOUT,
    ):
        super().__init__(address, ChassisRequestHandler)
        self.session = session
        self.verbose = verbose
        #: Per-connection socket timeout (None disables); handlers read it
        #: in setup().  Guards against stalled keep-alive peers, not
        #: against long compiles.
        self.request_timeout = request_timeout
        self._register_session_gauges()

    def _register_session_gauges(self) -> None:
        """Expose live session state on ``/metrics`` as gauges.

        Computed at exposition time from the bound session; re-binding a
        new server replaces the callables (``gauge_fn`` re-registration),
        so a fresh session never scrapes a dead one's closures.
        """
        session = self.session
        gauges = {
            "repro_session_compiles":
                ("Fresh compilations completed over the session's lifetime.",
                 lambda: session.stats.compiles),
            "repro_session_cache_hits":
                ("Compile requests answered from the persistent cache.",
                 lambda: session.stats.cache_hits),
            "repro_session_failures":
                ("Compilations that raised over the session's lifetime.",
                 lambda: session.stats.failures),
            "repro_session_timeouts":
                ("Compilations that exceeded their deadline.",
                 lambda: session.stats.timeouts),
            "repro_session_engine_enodes_built":
                ("E-nodes built by the e-graph engine, inline and pooled.",
                 lambda: session.stats.engine.enodes_built),
            "repro_oracle_evals":
                ("Correctly-rounded oracle ladder evaluations, in-process "
                 "plus folded back from pooled workers.",
                 lambda: (session.evaluator.evals
                          + session.oracle.counters().evals
                          + session.stats.rival.evals)),
            "repro_oracle_fastpath_points":
                ("Batched oracle points settled by the vectorized fast "
                 "path without touching the mpmath ladder.",
                 lambda: (session.oracle.counters().fastpath_hits
                          + session.stats.rival.fastpath_hits)),
            "repro_oracle_dd_points":
                ("Batched oracle points settled by the double-double "
                 "rung specifically (subset of the fast-path points).",
                 lambda: (session.oracle.counters().dd_hits
                          + session.stats.rival.dd_hits)),
        }
        for name, (help_text, fn) in gauges.items():
            METRICS.gauge_fn(name, fn, help_text)


def create_server(
    session=None,
    host: str = "127.0.0.1",
    port: int = 0,
    verbose: bool = False,
    request_timeout: float | None = REQUEST_SOCKET_TIMEOUT,
) -> ChassisServer:
    """Build (but do not start) a server; ``port=0`` picks a free port.

    The bound address is ``server.server_address``; run it with
    ``serve_forever()`` (tests drive it from a thread) and stop it with
    ``shutdown()`` + ``server_close()``.
    """
    if session is None:
        from ..session import ChassisSession

        session = ChassisSession()
    return ChassisServer(
        (host, port), session, verbose=verbose, request_timeout=request_timeout
    )


def serve(
    session=None,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
) -> int:
    """Run the front-end until interrupted (the ``repro serve`` command).

    Shuts down cleanly on SIGINT *and* SIGTERM (supervisors and CI send
    the latter; background shells ignore the former).
    """
    server = create_server(session, host, port, verbose=verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"repro serve: listening on http://{bound_host}:{bound_port}", file=sys.stderr)
    def _terminate(_signum, _frame):
        raise KeyboardInterrupt

    def _set_handlers(handler):
        try:
            import signal

            signal.signal(signal.SIGTERM, handler)
            signal.signal(signal.SIGINT, handler)
        except (ValueError, OSError, AttributeError):
            pass  # not the main thread (tests) or no signals on this platform

    _set_handlers(_terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        # A repeated SIGTERM/SIGINT (supervisors often send both, and some
        # wrappers forward the signal twice) must not interrupt the drain:
        # a KeyboardInterrupt raised inside pool.terminate() would orphan
        # the teardown half-way.  But the drain can block indefinitely
        # (e.g. a hung in-flight batch with no --timeout), so further
        # signals mean "force quit now" rather than being ignored — the
        # standard second-signal contract.
        def _force_exit(_signum, _frame):
            import os

            print(
                "repro serve: forced exit before drain completed",
                file=sys.stderr,
            )
            os._exit(1)

        _set_handlers(_force_exit)
        server.server_close()
        session = server.session
        session.close()  # drain the submit executor and worker pool
        print(f"repro serve: shut down ({session.stats.as_dict()})", file=sys.stderr)
    return 0
