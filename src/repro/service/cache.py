"""Content-addressed persistent cache for compilation results.

A compilation is a pure function of (FPCore source, target description,
compile config, sample config) — sampling is seeded and the improvement
loop is deterministic — so its result can be cached under a stable
fingerprint of those four inputs.  Entries are JSON files (the
:mod:`repro.service.results` layout) sharded two-hex-chars deep under a
cache directory, written atomically so concurrent workers on the same
directory never observe torn entries.

Fingerprints must be stable across processes and Python invocations, so
they are SHA-256 digests of canonical reprs — never ``hash()``, whose
string hashing is randomized per process.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import weakref
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path

from ..accuracy.sampler import SampleConfig
from ..core.chassis import CompileResult
from ..core.loop import CompileConfig
from ..ir.fpcore import FPCore
from ..ir.printer import expr_to_sexpr
from ..targets.target import Target
from .results import SCHEMA_VERSION, core_to_source, result_from_dict, result_to_dict

# --- fingerprints -----------------------------------------------------------------


def _canonical(obj) -> str:
    """A deterministic textual form for config-like values.

    Handles the types that appear in :class:`CompileConfig`,
    :class:`SampleConfig` and nested limit dataclasses.  Dataclasses
    canonicalize field-by-field (so adding a field changes every
    fingerprint — which is correct: new knobs mean new behavior).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = ",".join(
            f"{f.name}={_canonical(getattr(obj, f.name))}"
            for f in dataclasses.fields(obj)
        )
        return f"{type(obj).__name__}({fields})"
    if isinstance(obj, dict):
        inner = ",".join(
            f"{_canonical(k)}:{_canonical(v)}" for k, v in sorted(obj.items())
        )
        return "{" + inner + "}"
    if isinstance(obj, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in obj) + "]"
    if isinstance(obj, float):
        return repr(obj)
    if isinstance(obj, Fraction):
        return f"{obj.numerator}/{obj.denominator}"
    return repr(obj)


def _digest(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    return h.hexdigest()


def core_fingerprint(core: FPCore) -> str:
    """Stable content fingerprint of one benchmark.

    Keyed on the full FPCore source — arguments, precision, precondition
    and body — so two anonymous benchmarks never collide the way
    name-keyed caches do.  Uses the transport-safe rendering: ``to_sexpr``
    alone mangles names with spaces, which would let distinct benchmarks
    ("a b" vs "a-b") share a fingerprint.
    """
    return _digest("fpcore", core_to_source(core))


def sample_fingerprint(core: FPCore, sample_config: SampleConfig | None = None) -> str:
    """Key for one benchmark's seeded sample set (session sample cache).

    Samples are a pure function of the benchmark content and the sampling
    knobs (sampling is seeded), so this is exactly what identifies them.
    """
    return _digest(
        "samples", core_fingerprint(core), _canonical(sample_config or SampleConfig())
    )


# Targets are frozen; digesting one walks its whole operator table, so the
# digest is cached per instance, keyed by id() (targets are unhashable).
# A weakref.finalize evicts the entry when its target is collected: the
# eviction both bounds the cache in long-lived sessions (it used to retain
# a keepalive reference to every Target ever fingerprinted) and prevents a
# recycled id() from ever serving a dead target's digest.  Same idiom as
# Target's impl-registry cache.
_TARGET_FP_CACHE: dict[int, str] = {}


def target_fingerprint(target: Target) -> str:
    """Stable digest of a target's operator/cost tables.

    Everything the compiler's behavior depends on is included: per-operator
    signature, desugaring, cost and latency, plus literal/variable/if costs
    and the conditional style.  Editing a target description (or re-tuning
    its costs) therefore invalidates cached results for it.
    """
    cached = _TARGET_FP_CACHE.get(id(target))
    if cached is not None:
        return cached
    op_rows = []
    for name in sorted(target.operators):
        op = target.operators[name]
        op_rows.append(
            f"{name}:{','.join(op.arg_types)}->{op.ret_type}"
            f"={expr_to_sexpr(op.approx)}@{op.cost!r}/{op.true_latency!r}"
            f"/{int(op.linked)}"
        )
    fingerprint = _digest(
        "target",
        target.name,
        ";".join(op_rows),
        _canonical(target.literal_costs),
        repr(target.variable_cost),
        target.if_style,
        repr(target.if_cost),
        repr(target.perf_overhead),
        target.output_format,
    )
    _TARGET_FP_CACHE[id(target)] = fingerprint
    weakref.finalize(target, _TARGET_FP_CACHE.pop, id(target), None)
    return fingerprint


def config_fingerprint(
    config: CompileConfig | None, sample_config: SampleConfig | None
) -> str:
    """Stable digest of the compile + sampling knobs."""
    return _digest(
        "config",
        _canonical(config or CompileConfig()),
        _canonical(sample_config or SampleConfig()),
    )


#: Bump when the *compiler's* output changes for identical inputs (new
#: rewrite rules, extraction tie-break changes, ...): entries keyed under
#: an older epoch simply stop being found, instead of serving frontiers a
#: fresh compile would no longer produce.
COMPILER_EPOCH = 1


def job_fingerprint(
    core: FPCore,
    target: Target,
    config: CompileConfig | None = None,
    sample_config: SampleConfig | None = None,
) -> str:
    """The cache key for one (benchmark, target, configuration) job."""
    return _digest(
        "job",
        f"epoch={COMPILER_EPOCH}",
        core_fingerprint(core),
        target_fingerprint(target),
        config_fingerprint(config, sample_config),
    )


# --- the persistent cache ----------------------------------------------------------


@dataclass
class CacheStats:
    """Counters for one cache instance's lifetime."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    #: Entries found on disk but discarded (corrupt or stale schema).
    invalidations: int = 0

    def as_dict(self) -> dict:
        return dataclasses.asdict(self)

    def __str__(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.stores} stores, {self.invalidations} invalidations"
        )


class CompileCache:
    """Persistent content-addressed store of serialized compile results."""

    def __init__(self, cache_dir: str | os.PathLike):
        self.root = Path(cache_dir)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # --- raw payload interface ----------------------------------------------------

    def get(self, key: str) -> dict | None:
        """Fetch one entry's payload, or None on miss.

        Unreadable or schema-incompatible entries are deleted and counted
        as invalidations (plus the miss).
        """
        path = self._path(key)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError):
            payload = None
        if not isinstance(payload, dict) or payload.get("schema") != SCHEMA_VERSION:
            self.stats.invalidations += 1
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return payload

    def contains(self, key: str) -> bool:
        """Stat-free existence probe (no hit/miss accounting, no payload
        validation).  Lets batch front-ends decide whether pre-sampling is
        worth doing without perturbing the counters the engine's real
        lookups record."""
        return self._path(key).exists()

    def put(self, key: str, payload: dict) -> None:
        """Store one entry atomically (write-to-temp, rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # --- typed convenience interface ----------------------------------------------

    def load_result(
        self,
        core: FPCore,
        target: Target,
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
    ) -> CompileResult | None:
        """Look up and deserialize one compilation, or None on miss."""
        payload = self.get(job_fingerprint(core, target, config, sample_config))
        if payload is None:
            return None
        return result_from_dict(payload, target)

    def store_result(
        self,
        result: CompileResult,
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
    ) -> str:
        """Serialize and store one compilation; returns its fingerprint."""
        key = job_fingerprint(result.core, result.target, config, sample_config)
        self.put(key, result_to_dict(result))
        return key

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
