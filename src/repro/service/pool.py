"""Session-owned persistent worker pool: warm processes across batch calls.

The ad-hoc scheduler path (:class:`~repro.service.scheduler.BatchScheduler`
without a pool) builds a fresh ``multiprocessing`` pool per batch, so a
long-lived front-end like ``repro serve`` paid worker start-up — process
creation, re-importing :mod:`repro`, re-auto-tuning targets — on **every**
``/batch`` request.  A :class:`WorkerPool` is the amortized alternative:

* **lazily created** — no processes exist until the first batch needs them;
* **long-lived** — workers stay warm across calls, so consecutive batches
  reuse the same PIDs (observable via :meth:`worker_pids` and the serve
  front-end's ``/health``);
* **context chosen once** — fork vs forkserver is decided at creation (see
  :func:`~repro.service.scheduler._pool_context`), not per batch;
* **recycled only when the compile/sample configuration changes** — the
  pool initializer bakes those into worker state, so a different config
  means new workers (the common steady state, one config per session,
  never recycles).  Per-job *timeouts* ride on each job instead, so
  requests with different timeout knobs share the same warm workers;
* **watchdog-guarded** — workers enforce per-job timeouts themselves
  (cooperative deadline + SIGALRM), but a worker wedged in C code past its
  whole budget is detected parent-side, reported as a ``timeout`` outcome,
  and the pool is recycled so the wedged process cannot poison later
  batches.

One :class:`WorkerPool` is owned by a
:class:`~repro.session.ChassisSession` (created when ``jobs >= 2``) and
shared by ``compile_many``, the serve ``/batch`` endpoint, ``repro batch``,
registry-target :meth:`~repro.session.ChassisSession.submit` jobs and the
experiment runners; :meth:`shutdown` drains it in ``session.close()``.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import threading
import time

from ..accuracy.sampler import SampleConfig
from ..core.loop import CompileConfig
from ..deadline import check_deadline
from .cache import config_fingerprint
from .scheduler import BatchJob, _pool_context, _worker_init, job_event, run_job

#: Parent-side slack (seconds) on top of the per-job timeout before the
#: watchdog declares the pool wedged.  The watchdog is *progress-based*:
#: any completion anywhere in the pool resets the stall clock, so healthy
#: jobs queued behind other batches never trip it — it fires only when no
#: worker has produced anything for a whole job budget plus this grace.
#: Generous, because the in-worker alarm is the primary enforcement and
#: fires much earlier.
WATCHDOG_GRACE = 10.0

#: How often (seconds) a watchdog-guarded collection re-checks for pool
#: progress while its own job is still pending.
WATCHDOG_POLL = 0.5

#: How long (seconds) a graceful ``Pool.terminate`` may take before the
#: shutdown path hard-kills the worker processes instead.  Normally
#: terminate finishes in milliseconds; it can deadlock forever when a
#: worker *died* holding the shared task-queue lock — e.g. a supervisor
#: (systemd, docker stop, GNU timeout) delivered SIGTERM to the whole
#: process group, killing workers mid-``get()`` while the parent was
#: draining.
SHUTDOWN_GRACE = 5.0


class WorkerPool:
    """A lazily-created, persistent process pool for compile jobs.

    Thread-safe, and concurrent batches genuinely interleave: the lock is
    held only to (re)build the pool and dispatch, never while waiting for
    results, so e.g. several single-job :meth:`~repro.session.
    ChassisSession.submit` batches run in parallel across the warm
    workers.  Recycling (config change, wedged worker, :meth:`shutdown`)
    waits until every in-flight batch has collected its outcomes.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._lock = threading.RLock()
        self._condition = threading.Condition(self._lock)
        self._pool = None
        self._context = None
        self._init_key: str | None = None
        #: How many times a pool has been (re)built — 1 after first use;
        #: still 1 after any number of same-config batches.
        self.generation = 0
        #: Batches currently collecting results (dispatch done, lock
        #: released); the pool must not be torn down under them.
        self._active = 0
        #: Set when a watchdog fired: the pool is suspect and must be
        #: rebuilt before the next batch (deferred until in-flight batches
        #: drain — their outcomes are already accounted for).
        self._stale = False
        #: Monotonic instant of the last dispatch or completion anywhere
        #: in the pool; the watchdog measures stalls against this, so
        #: concurrent batches sharing the workers never time each other
        #: out while progress is being made.  (Float assignment is atomic
        #: under the GIL; read/written lock-free.)
        self._progress_mark = 0.0
        self._pids: list[int] = []
        self._closed = False

    # --- introspection ----------------------------------------------------------------

    # Deliberately lock-free (``_pids`` is rebound, never mutated in
    # place): /health must answer instantly even while batches are in
    # flight, and liveness probes must never block behind a compile.

    def worker_pids(self) -> list[int]:
        """PIDs of the current workers ([] before first use / after close)."""
        return list(self._pids)

    def info(self) -> dict:
        """JSON-able pool state (surfaced by the serve ``/health`` route)."""
        context = self._context
        return {
            "workers": self.workers,
            "pids": list(self._pids),
            "generation": self.generation,
            "active_batches": self._active,
            "start_method": context.get_start_method() if context else None,
        }

    # --- lifecycle --------------------------------------------------------------------

    def _ensure(self, config: CompileConfig, sample_config: SampleConfig):
        """The live pool for this configuration (recycling if it changed).

        Called with the lock held.  Recycles only on a config change or
        after a watchdog strike, and then only once every in-flight batch
        has drained (they hold references into the old pool).
        """
        key = config_fingerprint(config, sample_config)
        while True:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            if self._pool is not None and key == self._init_key and not self._stale:
                return self._pool
            if self._active == 0:
                break
            # Another batch is mid-collection on the old pool; wait, then
            # re-check — it may have been rebuilt to our key meanwhile.
            self._condition.wait()
        self._shutdown_pool()
        if self._context is None:
            # Chosen once for the pool's lifetime: fork when created from a
            # single-threaded main thread, forkserver otherwise.
            self._context = _pool_context()
        pool = self._context.Pool(
            processes=self.workers,
            initializer=_worker_init,
            initargs=(config, sample_config, None),
        )
        self._init_key = key
        self._stale = False
        self.generation += 1
        # multiprocessing.pool keeps its workers in ._pool; there is no
        # public enumeration, and dispatching getpid tasks instead would
        # race with real jobs.
        self._pids = sorted(proc.pid for proc in pool._pool)
        self._pool = pool
        return pool

    def _shutdown_pool(self) -> None:
        pool, self._pool = self._pool, None
        self._init_key = None
        self._pids = []
        if pool is None:
            return
        # Terminate from a helper thread with a bounded join:
        # Pool.terminate acquires the task-queue lock, which a worker
        # killed by a process-group signal can have taken to its grave.
        finisher = threading.Thread(
            target=pool.terminate, name="worker-pool-terminate", daemon=True
        )
        finisher.start()
        finisher.join(SHUTDOWN_GRACE)
        if finisher.is_alive():
            # Deadlocked terminate: hard-kill the worker processes and
            # abandon the pool machinery (its helper threads are daemonic,
            # so they die with this process; a recycle leaks them until
            # then — the failure mode is rare and already fatal to the
            # old pool).
            for proc in getattr(pool, "_pool", []):
                if proc.is_alive():
                    proc.kill()
        else:
            pool.join()

    def shutdown(self) -> None:
        """Tear the workers down; the pool object is dead afterwards.

        Waits for in-flight batches to collect their outcomes first, so
        none are lost — only idle workers are terminated.
        """
        with self._condition:
            while self._active > 0:
                self._condition.wait()
            self._shutdown_pool()
            self._closed = True

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.shutdown()

    # --- execution --------------------------------------------------------------------

    def run_batch(
        self,
        batch: list[BatchJob],
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
        timeout: float | None = None,
        progress=None,
    ) -> list[dict]:
        """Run every job on the warm workers; returns raw outcome dicts.

        Outcomes come back in submission order (the scheduler sorts by
        index anyway); ``progress`` is called per outcome as it lands.
        ``timeout`` is attached to each job (workers arm their own
        deadline from it), so batches with different timeouts share one
        warm pool.  A parent-side watchdog additionally guards against a
        worker wedged past its own in-process alarm: it fires only when
        *no* completion happens anywhere in the pool for a whole job
        budget plus grace (progress-based, so concurrent batches queued
        on the same workers never trip it), reports the stalled jobs as
        ``timeout`` outcomes, and marks the pool for recycling.
        """
        config = config or CompileConfig()
        sample_config = sample_config or SampleConfig()
        if timeout is not None:
            batch = [dataclasses.replace(job, timeout=timeout) for job in batch]
        with self._condition:
            pool = self._ensure(config, sample_config)
            pending = [(job, pool.apply_async(run_job, (job,))) for job in batch]
            self._active += 1
            self._progress_mark = time.monotonic()
        # Collected without the lock: concurrent batches interleave on the
        # same workers, and /health introspection never blocks on us.
        wedged = False
        outcomes: list[dict] = []
        try:
            for job, handle in pending:
                outcome = None
                while outcome is None:
                    try:
                        outcome = handle.get(
                            WATCHDOG_POLL if timeout is not None else None
                        )
                        self._progress_mark = time.monotonic()
                    except multiprocessing.TimeoutError:
                        stall = time.monotonic() - self._progress_mark
                        if stall <= timeout + WATCHDOG_GRACE:
                            continue  # the pool is making progress; wait on
                        # No completion from *any* worker for a whole job
                        # budget: the pool is wedged beyond its own
                        # in-process enforcement.  Later strikes in the
                        # same collection are collateral — those jobs were
                        # likely queued behind the wedge and may never
                        # have started; say so rather than blaming them.
                        error = (
                            f"watchdog: no worker progress for {stall:.1f}s "
                            f"(budget {timeout}s per job)"
                            if not wedged else
                            "watchdog: batch aborted after a wedged worker; "
                            "this job may never have started"
                        )
                        wedged = True
                        outcome = job_event(
                            job.index, "<unknown>", job.target_name,
                            status="timeout", error_type="JobTimeout",
                            error=error,
                        )
                if progress is not None:
                    progress(outcome)
                outcomes.append(outcome)
        finally:
            with self._condition:
                self._active -= 1
                if wedged:
                    # The stuck worker still occupies a slot; defer the
                    # rebuild to the next _ensure, once concurrent batches
                    # (whose outcomes are still being collected) drain.
                    self._stale = True
                self._condition.notify_all()
        return outcomes

    def run_tasks(
        self,
        fn,
        tasks: list,
        config: CompileConfig | None = None,
        sample_config: SampleConfig | None = None,
    ) -> list:
        """Run small picklable tasks on the warm workers, in task order.

        The lightweight sibling of :meth:`run_batch` for sub-job work —
        oracle batch shards, not whole compilations.  ``fn`` must be a
        module-level function of one task.  No watchdog rides along (an
        oracle shard has no per-job timeout to measure against); instead
        the *caller's* cooperative deadline is polled while waiting, so a
        timed-out compile abandons its shards — results land in the pool
        machinery and are dropped — without wedging or recycling the
        pool.  Worker exceptions re-raise here.
        """
        config = config or CompileConfig()
        sample_config = sample_config or SampleConfig()
        with self._condition:
            pool = self._ensure(config, sample_config)
            pending = [pool.apply_async(fn, (task,)) for task in tasks]
            self._active += 1
            self._progress_mark = time.monotonic()
        results: list = []
        try:
            for handle in pending:
                while True:
                    try:
                        results.append(handle.get(WATCHDOG_POLL))
                        self._progress_mark = time.monotonic()
                        break
                    except multiprocessing.TimeoutError:
                        check_deadline()
        finally:
            with self._condition:
                self._active -= 1
                self._condition.notify_all()
        return results
