"""Serialization layer: round-trip :class:`CompileResult` through JSON.

Cached compilation results must outlive the process that produced them, so
everything a :class:`~repro.core.chassis.CompileResult` holds is flattened
to JSON-compatible data: the benchmark is rendered back to FPCore source
(``FPCore.to_sexpr``), candidate programs to S-expression source
(:func:`~repro.ir.printer.expr_to_sexpr`) and re-parsed with
:func:`~repro.ir.parser.parse_expr` on load, so deserialized frontiers are
real expressions that can be re-scored, re-rendered, or re-simulated.

Floats survive the trip exactly: ``json`` serializes them via ``repr``,
which is shortest-round-trip in Python 3, and sample values are finite by
construction (the sampler rejects non-finite oracle results).
"""

from __future__ import annotations

import re

from ..accuracy.sampler import SampleSet
from ..core.candidates import Candidate, ParetoFrontier
from ..core.chassis import CompileResult
from ..ir.fpcore import FPCore, parse_fpcore
from ..ir.printer import expr_to_sexpr
from ..ir.parser import parse_expr
from ..targets.target import Target

#: Bump when the serialized layout changes; readers treat a mismatch as a
#: cache invalidation, never as an error.
SCHEMA_VERSION = 1


def candidate_to_dict(candidate: Candidate) -> dict:
    """Flatten one scored candidate to JSON-compatible data."""
    return {
        "program": expr_to_sexpr(candidate.program),
        "cost": candidate.cost,
        "error": candidate.error,
        "point_errors": list(candidate.point_errors),
        "origin": candidate.origin,
    }


def candidate_from_dict(data: dict, known_ops: set[str]) -> Candidate:
    """Rebuild a candidate; the program is re-parsed into a real Expr."""
    return Candidate(
        program=parse_expr(data["program"], known_ops),
        cost=data["cost"],
        error=data["error"],
        point_errors=tuple(data.get("point_errors", ())),
        origin=data.get("origin", ""),
    )


def samples_to_dict(samples: SampleSet) -> dict:
    return {
        "train": samples.train,
        "test": samples.test,
        "acceptance": samples.acceptance,
        "train_exact": samples.train_exact,
        "test_exact": samples.test_exact,
    }


def samples_from_dict(data: dict) -> SampleSet:
    return SampleSet(
        train=data["train"],
        test=data["test"],
        acceptance=data.get("acceptance", 1.0),
        train_exact=data.get("train_exact", []),
        test_exact=data.get("test_exact", []),
    )


def result_to_dict(result: CompileResult) -> dict:
    """Flatten a full compilation result (frontier, input, samples)."""
    return {
        "schema": SCHEMA_VERSION,
        "core": core_to_source(result.core),
        "target": result.target.name,
        "frontier": [candidate_to_dict(c) for c in result.frontier],
        "input": candidate_to_dict(result.input_candidate),
        "samples": samples_to_dict(result.samples),
        "elapsed": result.elapsed,
    }


def result_from_dict(data: dict, target: Target) -> CompileResult:
    """Rebuild a :class:`CompileResult` against a resolved ``target``.

    The caller supplies the target (cache keys already pin its identity);
    programs are parsed with the target's operator names in scope.
    """
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(f"unsupported result schema: {data.get('schema')!r}")
    if data["target"] != target.name:
        raise ValueError(
            f"result was compiled for {data['target']!r}, not {target.name!r}"
        )
    known_ops = set(target.operators)
    core = core_from_source(data["core"], known_ops)
    frontier = ParetoFrontier(
        candidate_from_dict(c, known_ops) for c in data["frontier"]
    )
    return CompileResult(
        core=core,
        target=target,
        frontier=frontier,
        input_candidate=candidate_from_dict(data["input"], known_ops),
        samples=samples_from_dict(data["samples"]),
        elapsed=data.get("elapsed", 0.0),
    )


def core_from_source(source: str, known_ops: set[str] | None = None) -> FPCore:
    """Parse one FPCore from source text (inverse of :func:`core_to_source`)."""
    return parse_fpcore(source, known_ops)


#: Names renderable as a bare FPCore symbol (no whitespace, parens, quotes,
#: comments or brackets — anything else would not tokenize back).
_SYMBOL_NAME = re.compile(r'^[^\s()\[\];"]+$')


def core_to_source(core: FPCore) -> str:
    """Render a benchmark as FPCore source that re-parses to the same core.

    ``FPCore.to_sexpr`` mangles names containing spaces (``a b`` -> ``a-b``)
    and emits unparseable output for names with parens or quotes; such
    names are carried in the ``:name "..."`` string property instead,
    which the parser restores verbatim.
    """
    if not core.name or _SYMBOL_NAME.match(core.name):
        return core.to_sexpr()
    renamed = FPCore(
        arguments=core.arguments,
        body=core.body,
        name="",
        precision=core.precision,
        pre=core.pre,
        # The tokenizer has no escape sequences; double quotes cannot
        # survive a string literal, so degrade them to single quotes.
        properties={**core.properties, "name": core.name.replace('"', "'")},
    )
    return renamed.to_sexpr()
