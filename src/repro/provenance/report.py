"""``repro report``: regenerate every paper figure with full lineage.

Drives a :class:`~repro.provenance.provider.DataProvider` over the warm
session/cache and writes, per figure, a JSON artifact and a Markdown
rendering under ``results/report/`` (plus a top-level ``manifest.json``
and ``report.md`` index).  Every artifact embeds a **provenance
manifest**: which fingerprinted jobs produced its values, whether each
was a warm cache hit or a fresh compile, and — resolved against the
provenance ledger — the record of the original compilation each value
traces back to (timestamp, host, compiler, commit, oracle backend).

``--check`` mode regenerates without writing and exits non-zero when

* a figure's committed artifact is missing,
* the regenerated table or data drifts from the artifact's, or
* any input job's fingerprint does not resolve in the ledger (the cache
  holds the bytes but their origin is gone — lineage is broken).

Determinism contract: on a warm cache with fixed seeds, regeneration is
byte-identical — sampling is seeded, the pipeline is deterministic (the
PR-1 contract), warm hits recompile nothing, and the rendered tables
exclude wall-clock measurements.  ``--check`` after a cold ``repro
report`` on the same cache therefore passes, and CI runs exactly that
pair on both compiler legs.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from .ledger import ProvenanceLedger, _now_iso, host_info
from .provider import FIGURES, FigureData

#: Version of the artifact layout (bumped on incompatible changes).
ARTIFACT_SCHEMA = 1


def _canon(data) -> str:
    """The canonical serialized form drift is measured on: a JSON text
    round-trip (tuples become lists, NaN compares as text) with sorted
    keys, so cold-written and regenerated data compare structurally."""
    return json.dumps(json.loads(json.dumps(data)), sort_keys=True)


def _job_entries(fig: FigureData, ledger: ProvenanceLedger | None) -> list[dict]:
    entries = []
    for outcome in fig.jobs:
        record = (
            # Failed/timed-out jobs are lineage too: they resolve to the
            # record of the original failure, not to an ok compile that
            # never happened.
            ledger.resolve(outcome.fingerprint, status=outcome.status)
            if ledger is not None and outcome.fingerprint else None
        )
        entry = {
            "fingerprint": outcome.fingerprint,
            "benchmark": outcome.benchmark,
            "target": outcome.target,
            "status": outcome.status,
            "cached": bool(outcome.cached),
            "ledger": "resolved" if record is not None else "missing",
        }
        if record is not None:
            entry["compiled_at"] = record.get("ts")
            entry["compiled_on"] = (record.get("host") or {}).get("hostname")
            entry["oracle_backend"] = record.get("oracle_backend")
        entries.append(entry)
    return entries


def _provenance_manifest(
    fig: FigureData, ledger: ProvenanceLedger | None
) -> dict:
    jobs = _job_entries(fig, ledger)
    return {
        "generated": _now_iso(),
        "host": host_info(),
        "ledger": {
            "path": str(ledger.path) if ledger is not None else None,
            "resolved": sum(j["ledger"] == "resolved" for j in jobs),
            "missing": sum(j["ledger"] == "missing" for j in jobs),
        },
        "compiles": {
            "total": len(jobs),
            "cached": sum(j["cached"] for j in jobs),
            "recompiled": sum(
                (not j["cached"]) and j["status"] == "ok" for j in jobs
            ),
            "failed": sum(j["status"] != "ok" for j in jobs),
        },
        "jobs": jobs,
    }


def _figure_markdown(fig: FigureData, provenance: dict) -> str:
    out = [f"# {fig.title}", "", "```", fig.table.rstrip("\n"), "```", ""]
    out += ["## Provenance", ""]
    host = provenance["host"]
    compiles = provenance["compiles"]
    ledger = provenance["ledger"]
    out += [
        f"- generated: {provenance['generated']}",
        f"- host: {host['hostname']} ({host['platform']}, "
        f"python {host['python']}, cc {host['cc']})",
        f"- commit: {host['commit']}",
        f"- compiles: {compiles['total']} jobs, {compiles['cached']} cached, "
        f"{compiles['recompiled']} recompiled, {compiles['failed']} failed",
        f"- ledger: {ledger['path'] or '(none)'} — "
        f"{ledger['resolved']} resolved, {ledger['missing']} missing",
        "",
    ]
    if provenance["jobs"]:
        out += [
            "| fingerprint | benchmark | target | status | cached | ledger |",
            "|---|---|---|---|---|---|",
        ]
        out += [
            f"| `{j['fingerprint'][:12]}` | {j['benchmark']} | {j['target']} "
            f"| {j['status']} | {'yes' if j['cached'] else 'no'} "
            f"| {j['ledger']} |"
            for j in provenance["jobs"]
        ]
    else:
        out += ["(no compile jobs: this figure reads only the target registry)"]
    return "\n".join(out) + "\n"


def generate_report(
    provider,
    ledger: ProvenanceLedger | None,
    out_dir: str | Path,
    *,
    figures=FIGURES,
    check: bool = False,
) -> tuple[int, dict]:
    """Regenerate ``figures`` through ``provider``; returns (status, summary).

    Generate mode writes ``<name>.json`` + ``<name>.md`` per figure plus
    ``manifest.json`` / ``report.md``.  Check mode writes nothing: it
    compares the regenerated table/data against the on-disk artifacts and
    verifies every input job resolves in the ledger, returning status 1
    with the problems listed in ``summary["problems"]`` on any failure.
    """
    out = Path(out_dir)
    problems: list[str] = []
    summary: dict = {
        "mode": "check" if check else "generate",
        "out": str(out),
        "figures": {},
    }
    sections: list[tuple[FigureData, dict]] = []

    for key in figures:
        fig = provider.figure(key)
        provenance = _provenance_manifest(fig, ledger)
        artifact = {
            "schema": ARTIFACT_SCHEMA,
            "figure": fig.figure,
            "name": fig.name,
            "title": fig.title,
            "table": fig.table,
            "data": json.loads(json.dumps(fig.data)),
            "provenance": provenance,
        }
        path = out / f"{fig.name}.json"
        if check:
            for job in provenance["jobs"]:
                if job["ledger"] == "missing":
                    problems.append(
                        f"{key}: job {job['fingerprint'][:12]} "
                        f"({job['benchmark']} on {job['target']}) has no "
                        f"fresh-compile record in the ledger"
                    )
            if not path.exists():
                problems.append(f"{key}: no committed artifact at {path}")
            else:
                try:
                    existing = json.loads(path.read_text())
                except ValueError:
                    existing = None
                if not isinstance(existing, dict):
                    problems.append(f"{key}: artifact {path} is not valid JSON")
                else:
                    if existing.get("table") != fig.table:
                        problems.append(
                            f"{key}: regenerated table differs from {path}"
                        )
                    if _canon(existing.get("data")) != _canon(fig.data):
                        problems.append(
                            f"{key}: regenerated data differs from {path}"
                        )
        else:
            out.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(artifact, indent=2, sort_keys=True) + "\n"
            )
            (out / f"{fig.name}.md").write_text(
                _figure_markdown(fig, provenance)
            )
        sections.append((fig, provenance))
        summary["figures"][key] = {
            "name": fig.name,
            "compiles": provenance["compiles"],
            "ledger": {
                "resolved": provenance["ledger"]["resolved"],
                "missing": provenance["ledger"]["missing"],
            },
        }

    totals = {
        "total": sum(s["compiles"]["total"] for s in summary["figures"].values()),
        "cached": sum(s["compiles"]["cached"] for s in summary["figures"].values()),
        "recompiled": sum(
            s["compiles"]["recompiled"] for s in summary["figures"].values()
        ),
        "failed": sum(s["compiles"]["failed"] for s in summary["figures"].values()),
        "ledger_missing": sum(
            s["ledger"]["missing"] for s in summary["figures"].values()
        ),
    }
    summary["totals"] = totals

    if not check:
        manifest = {
            "schema": ARTIFACT_SCHEMA,
            "generated": _now_iso(),
            "host": host_info(),
            "ledger": str(ledger.path) if ledger is not None else None,
            "figures": summary["figures"],
            "totals": totals,
        }
        (out / "manifest.json").write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        index = ["# Reproduction report", ""]
        host = manifest["host"]
        index += [
            f"- generated: {manifest['generated']} on {host['hostname']} "
            f"(python {host['python']}, cc {host['cc']}, "
            f"commit {host['commit'][:12]})",
            f"- compiles: {totals['total']} jobs, {totals['cached']} cached, "
            f"{totals['recompiled']} recompiled",
            f"- ledger: {manifest['ledger'] or '(none)'}",
            "",
        ]
        for fig, _provenance in sections:
            index += [f"## {fig.title}", "", "```", fig.table.rstrip("\n"),
                      "```", "", f"(lineage: [{fig.name}.md]({fig.name}.md))",
                      ""]
        (out / "report.md").write_text("\n".join(index))

    summary["problems"] = problems
    return (1 if problems else 0), summary


# --- CLI commands -------------------------------------------------------------------


def _parse_figures(spec: str | None) -> tuple[str, ...]:
    if not spec:
        return FIGURES
    keys = tuple(part.strip() for part in spec.split(",") if part.strip())
    unknown = [key for key in keys if key not in FIGURES]
    if unknown:
        raise SystemExit(
            f"unknown figures: {', '.join(unknown)} "
            f"(choose from {', '.join(FIGURES)})"
        )
    return keys


def cmd_report(args) -> int:
    """The ``repro report`` command (see ``repro report --help``)."""
    from ..accuracy.sampler import SampleConfig
    from ..benchsuite import core_named
    from ..core.loop import CompileConfig
    from ..experiments.runner import ExperimentConfig
    from .provider import PREFERRED_BENCHMARKS, SessionDataProvider

    figures = _parse_figures(args.figures)
    benchmarks, points, iterations = args.benchmarks, args.points, args.iterations
    if args.smoke:
        benchmarks, points, iterations = 3, 8, 1
    config = ExperimentConfig(
        CompileConfig(
            iterations=iterations, localize_points=8, max_variants=20
        ),
        SampleConfig(n_train=points, n_test=points, seed=args.seed),
        jobs=args.jobs,
        cache=args.cache_dir,
        timeout=args.timeout,
    )
    session = config.get_session()
    provider = SessionDataProvider(
        config, [core_named(name) for name in PREFERRED_BENCHMARKS[:benchmarks]]
    )
    try:
        status, summary = generate_report(
            provider, session.ledger, args.out, figures=figures,
            check=args.check,
        )
    finally:
        config.close()
    totals = summary["totals"]
    for key, entry in summary["figures"].items():
        compiles = entry["compiles"]
        print(
            f"{key:<6} {entry['name']:<20} jobs={compiles['total']:<3} "
            f"cached={compiles['cached']:<3} "
            f"recompiled={compiles['recompiled']:<3} "
            f"ledger missing={entry['ledger']['missing']}"
        )
    print(
        f"{summary['mode']}: {len(summary['figures'])} figures, "
        f"{totals['total']} jobs ({totals['cached']} cached, "
        f"{totals['recompiled']} recompiled) -> {summary['out']}"
    )
    if args.check:
        for problem in summary["problems"]:
            print(f"CHECK FAILED: {problem}")
        if not summary["problems"]:
            print("check ok: tables byte-identical, all jobs resolve in the ledger")
    return status


def cmd_provenance(args) -> int:
    """The ``repro provenance`` command: query ledger records."""
    if args.url:
        import urllib.error
        import urllib.parse
        import urllib.request

        base = args.url.rstrip("/")
        url = base + "/provenance"
        if args.fingerprint:
            url += "?" + urllib.parse.urlencode(
                {"fingerprint": args.fingerprint}
            )
        try:
            with urllib.request.urlopen(url, timeout=args.timeout) as resp:
                payload = json.load(resp)
        except urllib.error.HTTPError as error:
            try:
                payload = json.load(error)
            except ValueError:
                payload = {"error": str(error)}
            print(json.dumps(payload, indent=2))
            return 1
        except OSError as error:
            print(f"provenance: cannot reach {base}: {error}")
            return 1
        print(json.dumps(payload, indent=2))
        return 0

    if args.ledger:
        path = Path(args.ledger)
    elif args.cache_dir:
        path = Path(args.cache_dir) / "provenance.jsonl"
    else:
        raise SystemExit("need one of --ledger, --cache-dir or --url")
    ledger = ProvenanceLedger(path)
    if not args.fingerprint:
        print(json.dumps(ledger.info(), indent=2))
        return 0
    records = ledger.records_for(args.fingerprint)
    if not records:
        print(f"no provenance records for {args.fingerprint} in {path}")
        return 1
    if args.json:
        print(json.dumps(records, indent=2))
        return 0
    try:
        for record in records:
            engine = record.get("engine") or {}
            print(
                f"{record.get('ts', '?'):<29} {record.get('kind', '?'):<8} "
                f"{record.get('cache', '?'):<6} {record.get('status', '?'):<7} "
                f"{record.get('benchmark', '?')} on {record.get('target', '?')} "
                f"[{str(record.get('fingerprint', ''))[:12]}] "
                f"format={record.get('format', '?')} "
                f"backend={record.get('oracle_backend') or '-'} "
                f"elapsed={record.get('elapsed', 0.0):.3f}s"
                + (f" enodes={engine.get('enodes_built')}"
                   if engine.get("enodes_built") else "")
            )
    except BrokenPipeError:  # `repro provenance ... | head` closed the pipe
        sys.stderr.close()  # suppress the interpreter's flush-failure noise
    return 0
