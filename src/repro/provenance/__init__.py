"""Provenance: data lineage for every compiled artifact (see ledger.py).

The ledger is imported eagerly — :mod:`repro.session` depends on it, and
it depends only on the cache/metrics layers below.  The provider/report
layers sit *above* the session (they drive experiments), so they are
exposed lazily to keep the package importable from inside the session
without a cycle.
"""

from __future__ import annotations

from .ledger import CACHE_STATES, LEDGER_SCHEMA, ProvenanceLedger, host_info

_LAZY = {
    "DataProvider": "provider",
    "FigureData": "provider",
    "SessionDataProvider": "provider",
    "PREFERRED_BENCHMARKS": "provider",
    "FIGURES": "provider",
    "FIGURE_NAMES": "provider",
    "COST_MODEL_TARGETS": "provider",
    "ARTIFACT_SCHEMA": "report",
    "generate_report": "report",
}

__all__ = [
    "CACHE_STATES",
    "LEDGER_SCHEMA",
    "ProvenanceLedger",
    "host_info",
    *_LAZY,
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(f".{module}", __name__), name)
