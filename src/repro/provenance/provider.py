"""The ``DataProvider`` seam between experiments and figure artifacts.

Every paper figure (fig6–fig10) is regenerated through one protocol:
``figure(key)`` returns a :class:`FigureData` carrying the rendered table,
the JSON-able raw data, and — crucially — the list of
:class:`~repro.service.scheduler.JobOutcome`\\ s whose fingerprints the
numbers derive from.  The benchmark harness (``benchmarks/bench_fig*.py``)
and the ``repro report`` command both consume this layer, so there is
exactly one code path from cached batch results to a figure, and every
consumer gets lineage for free.

:class:`SessionDataProvider` is the live implementation: it drives the
existing experiment runners through a *recording*
:class:`~repro.experiments.runner.ExperimentConfig` whose ``compile_all``
captures each figure's outcomes.  Figure data is memoized, so fig8 and
fig9 (two views of one Chassis-vs-Herbie run) share a single comparison
instead of computing it twice, and a report over all five figures compiles
each (benchmark, target) job at most once.

Tables rendered here are **deterministic**: given a warm cache and a fixed
seed, regenerating a figure yields byte-identical text (the contract
``repro report --check`` enforces).  Wall-clock compile times therefore
stay out of them — ``clang_report`` is rendered with its timing footer
off; timings live in ledger records instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from ..experiments.pareto import speedup_at_matched_accuracy
from ..experiments.report import (
    clang_report,
    cost_model_report,
    herbie_relative_report,
    herbie_report,
    targets_table,
)
from ..experiments.runner import (
    ExperimentConfig,
    run_clang_comparison,
    run_cost_model_study,
    run_herbie_comparison,
)
from ..service.scheduler import JobOutcome
from ..targets import all_targets, get_target

#: The benchmark subset every figure harness draws from, in preference
#: order: multivariate transcendental kernels (where library targets'
#: approximate operators matter — series expansion cannot shortcut them)
#: interleaved with arithmetic-only kernels the hardware targets can
#: express.  ``benchmarks/conftest.py`` and ``repro report`` both slice
#: this list, so the bench harness and the report command regenerate
#: figures from the same corpus.
PREFERRED_BENCHMARKS = (
    "slerp-weight", "quadratic-mod", "logsumexp2", "sqrt-sub",
    "gauss-kernel", "acoth", "ellipse-angle", "logistic",
    "deg-dist", "rcp-norm", "cos-frac", "hypot-naive",
)

#: Figure keys in paper order, and their artifact/result-file base names
#: (matching the ``results/<name>.txt`` files the bench harness writes).
FIGURES = ("fig6", "fig7", "fig8", "fig9", "fig10")
FIGURE_NAMES = {
    "fig6": "fig6_targets",
    "fig7": "fig7_clang",
    "fig8": "fig8_herbie",
    "fig9": "fig9_herbie_relative",
    "fig10": "fig10_costmodel",
}

#: The target subset figure 10 correlates cost against run time on.
COST_MODEL_TARGETS = ("c99", "python", "julia", "vdt", "avx", "numpy")


@dataclass
class FigureData:
    """One regenerated figure: rendered table, raw data, and lineage."""

    figure: str
    #: Artifact base name (``fig7_clang`` etc.).
    name: str
    title: str
    #: Deterministic rendered text (the drift-checked bytes).
    table: str
    #: JSON-able raw series behind the table (also drift-checked).
    data: object
    #: The compile jobs whose fingerprints this figure's values trace to.
    jobs: list[JobOutcome] = field(default_factory=list, repr=False)


@runtime_checkable
class DataProvider(Protocol):
    """Anything that can regenerate paper figures with lineage.

    The report generator consumes exactly this; a provider backed by a
    remote service or a results database slots in without touching it.
    """

    def figures(self) -> tuple[str, ...]:
        """The figure keys this provider can regenerate."""
        ...

    def figure(self, key: str) -> FigureData:
        """Regenerate one figure (memoized; raises KeyError on unknown)."""
        ...


class _RecordingConfig(ExperimentConfig):
    """An :class:`ExperimentConfig` sharing ``base``'s session whose
    ``compile_all`` appends every outcome to ``sink`` — how the provider
    learns which fingerprinted jobs fed each figure."""

    def __init__(self, base: ExperimentConfig, sink: list):
        super().__init__(
            compile_config=base.compile_config,
            sample_config=base.sample_config,
            jobs=base.jobs,
            cache=base.cache,
            timeout=base.timeout,
            session=base.get_session(),
        )
        self._sink = sink

    def compile_all(self, specs):
        outcomes = super().compile_all(specs)
        self._sink.extend(outcomes)
        return outcomes


class SessionDataProvider:
    """Figures regenerated live through one warm session (see module doc).

    ``config`` supplies the session/cache/scale knobs; ``cores`` the
    benchmark subset (defaults to the first six of
    :data:`PREFERRED_BENCHMARKS` if None is passed by a caller that built
    its own core list elsewhere).  ``clang_empirical`` switches figure 7
    to wall-clock-timed executed code — never use it for checked reports,
    measurement noise breaks the determinism contract.
    """

    def __init__(
        self,
        config: ExperimentConfig,
        cores,
        *,
        clang_target: str = "c99",
        herbie_targets=None,
        cost_targets=COST_MODEL_TARGETS,
        clang_empirical: bool = False,
    ):
        self._sink: list[JobOutcome] = []
        self.config = _RecordingConfig(config, self._sink)
        self.cores = list(cores)
        self.clang_target = clang_target
        self._herbie_targets = herbie_targets
        self.cost_targets = tuple(cost_targets)
        self.clang_empirical = clang_empirical
        #: key -> (value, outcomes recorded while computing it)
        self._memo: dict[str, tuple[object, list[JobOutcome]]] = {}

    # --- raw data accessors (what the bench harness times) --------------------------

    def targets(self):
        """Figure 6's data: the registered target inventory."""
        return all_targets()

    def herbie_targets(self):
        return (
            all_targets() if self._herbie_targets is None
            else [get_target(t) if isinstance(t, str) else t
                  for t in self._herbie_targets]
        )

    def _run(self, key: str, fn) -> tuple[object, list[JobOutcome]]:
        if key not in self._memo:
            mark = len(self._sink)
            value = fn()
            self._memo[key] = (value, list(self._sink[mark:]))
        return self._memo[key]

    def clang_comparison(self):
        """Figure 7's data (memoized): Chassis vs 12 Clang configs."""
        return self._run("clang", lambda: run_clang_comparison(
            self.cores, get_target(self.clang_target), self.config,
            empirical=self.clang_empirical,
        ))[0]

    def herbie_comparison(self):
        """Figures 8 *and* 9's data (memoized once, shared)."""
        return self._run("herbie", lambda: run_herbie_comparison(
            self.cores, self.herbie_targets(), self.config,
        ))[0]

    def cost_model_points(self):
        """Figure 10's data (memoized): (estimated cost, run time) pairs."""
        return self._run("cost", lambda: run_cost_model_study(
            self.cores,
            [get_target(name) for name in self.cost_targets],
            self.config,
        ))[0]

    # --- the DataProvider protocol --------------------------------------------------

    def figures(self) -> tuple[str, ...]:
        return FIGURES

    def figure(self, key: str) -> FigureData:
        builder = {
            "fig6": self._fig6,
            "fig7": self._fig7,
            "fig8": self._fig8,
            "fig9": self._fig9,
            "fig10": self._fig10,
        }.get(key)
        if builder is None:
            raise KeyError(f"unknown figure {key!r}; have {', '.join(FIGURES)}")
        return builder()

    # --- per-figure builders --------------------------------------------------------

    def _fig6(self) -> FigureData:
        targets = self.targets()
        return FigureData(
            figure="fig6",
            name=FIGURE_NAMES["fig6"],
            title="Figure 6 — target descriptions",
            table=targets_table(targets),
            data=[
                {
                    "name": t.name,
                    "operators": len(t.operators),
                    "linkage": t.linkage,
                    "if_style": t.if_style,
                    "cost_source": t.cost_source,
                    "description": t.description,
                }
                for t in targets
            ],
            jobs=[],
        )

    def _fig7(self) -> FigureData:
        self.clang_comparison()
        results, jobs = self._memo["clang"]
        return FigureData(
            figure="fig7",
            name=FIGURE_NAMES["fig7"],
            title="Figure 7 — Chassis vs Clang on C99",
            # Timing footer off: compile wall clock is not reproducible
            # data; it lives in the ledger records instead.
            table=clang_report(results, include_timing=False),
            data=[
                {
                    "benchmark": r.benchmark,
                    "chassis": [list(e) for e in r.chassis],
                    "clang": {name: list(e) for name, e in sorted(r.clang.items())},
                    "empirical": r.empirical,
                }
                for r in results
            ],
            jobs=jobs,
        )

    def _fig8(self) -> FigureData:
        self.herbie_comparison()
        results, jobs = self._memo["herbie"]
        return FigureData(
            figure="fig8",
            name=FIGURE_NAMES["fig8"],
            title="Figure 8 — Chassis vs Herbie across targets",
            table=herbie_report(results),
            data=self._herbie_rows(results),
            jobs=jobs,
        )

    def _fig9(self) -> FigureData:
        self.herbie_comparison()
        results, jobs = self._memo["herbie"]
        return FigureData(
            figure="fig9",
            name=FIGURE_NAMES["fig9"],
            title="Figure 9 — Chassis speedup over Herbie at matched accuracy",
            table=herbie_relative_report(results),
            data=[
                {
                    "benchmark": r.benchmark,
                    "target": r.target,
                    "matched": [
                        list(m)
                        for m in speedup_at_matched_accuracy(r.chassis, r.herbie)
                    ],
                }
                for r in results
            ],
            jobs=jobs,
        )

    @staticmethod
    def _herbie_rows(results) -> list[dict]:
        return [
            {
                "benchmark": r.benchmark,
                "target": r.target,
                "chassis": [list(e) for e in r.chassis],
                "herbie": [list(e) for e in r.herbie],
                "input": list(r.input_entry),
                "translation": dict(sorted(r.translation_stats.items())),
            }
            for r in results
        ]

    def _fig10(self) -> FigureData:
        points = self.cost_model_points()
        _points, jobs = self._memo["cost"]
        scatter = "\n".join(
            f"  {p.target:<8} {p.benchmark:<16} cost={p.estimated_cost:10.1f} "
            f"time={p.run_time:10.1f}"
            for p in points
        )
        return FigureData(
            figure="fig10",
            name=FIGURE_NAMES["fig10"],
            title="Figure 10 — cost model vs simulated run time",
            table=cost_model_report(points) + "\nScatter points:\n" + scatter,
            data=[
                {
                    "target": p.target,
                    "benchmark": p.benchmark,
                    "cost": p.estimated_cost,
                    "time": p.run_time,
                }
                for p in points
            ],
            jobs=jobs,
        )
