"""The provenance ledger: an append-only JSONL journal of every job.

One record per compile/validate/batch job, written next to the persistent
:class:`~repro.service.cache.CompileCache` (``<cache>/provenance.jsonl``)
by :class:`~repro.session.ChassisSession` and the batch engine.  A record
answers "where did this cached value come from": the job fingerprint and
its three constituent fingerprints (core/target/config), the benchmark,
target and number format, the oracle backend that produced the sample
points, whether the cache was hit or a fresh result was stored, the
engine/oracle counter deltas of the work actually done, the host +
compiler + commit that did it, and the elapsed wall clock.

Records are single ``os.write`` calls on an ``O_APPEND`` descriptor, so
concurrent threads (serve handlers, the batch engine's parent loop) never
interleave partial lines; worker *processes* never write — their outcomes
ship home on :class:`~repro.service.scheduler.JobOutcome` and the parent
records them, so one process owns the file per session.  Reads
(:meth:`ProvenanceLedger.records_for`, ``repro provenance``, the serve
``GET /provenance`` route) are full scans tolerant of torn trailing
lines, which only ever appear if a previous process died mid-write.

The lineage contract consumed by ``repro report --check``: a fingerprint
*resolves* when the ledger holds a record of the fresh compilation that
produced the bytes (``cache`` != ``"hit"``, status ok).  Warm hits append
their own ``"hit"`` records — auditing trail, not lineage — so deleting
the ledger under a warm cache is detectable: the values regenerate, but
their origin is gone and ``--check`` fails.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

from ..obs.metrics import METRICS
from ..service.cache import (
    COMPILER_EPOCH,
    config_fingerprint,
    core_fingerprint,
    target_fingerprint,
)

#: Version of the record layout (bumped on incompatible field changes).
LEDGER_SCHEMA = 1

#: Values of a record's ``cache`` field.  ``hit`` = served from the
#: persistent cache; ``store`` = fresh result stored into it; ``none`` =
#: fresh result, no cache configured; ``bypass`` = fresh result that was
#: deliberately not cached (customized pipelines, ``use_cache=False``).
CACHE_STATES = ("hit", "store", "none", "bypass")

_HOST_LOCK = threading.Lock()
_HOST_INFO: dict | None = None


def _git_head() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=Path(__file__).resolve().parent,
        ).stdout.strip()
        return out or "unknown"
    except (OSError, subprocess.SubprocessError):
        return "unknown"


def host_info() -> dict:
    """Hostname/platform/python/compiler/commit stamped into every record
    (and into report manifests).  Computed once per process: the compiler
    probe and ``git rev-parse`` subprocess are not free, and none of it
    changes while the process lives."""
    global _HOST_INFO
    with _HOST_LOCK:
        if _HOST_INFO is None:
            try:
                from ..exec.builder import find_compiler

                cc = find_compiler() or "none"
            except Exception:
                cc = "unknown"
            _HOST_INFO = {
                "hostname": socket.gethostname(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                "cc": cc,
                "commit": _git_head(),
            }
        return dict(_HOST_INFO)


def _now_iso() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="milliseconds")


class ProvenanceLedger:
    """Append-only JSONL journal; see the module docstring.

    Thread-safe within one process (one lock around the append counter and
    the lazily-opened ``O_APPEND`` descriptor); safe across processes for
    *appends* because each record is a single positioned write.  The same
    path can be reopened across sessions — the journal only ever grows.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._fd: int | None = None
        #: Records appended through *this* instance (the "this session"
        #: number in ``/health``); the on-disk journal may hold more.
        self.appended = 0
        #: Unix timestamp of this instance's last append (0.0 = none yet).
        self.last_write = 0.0

    # --- writing --------------------------------------------------------------------

    def record_job(
        self,
        kind: str,
        core,
        target,
        config,
        sample_config,
        fingerprint: str,
        *,
        cache: str = "none",
        status: str = "ok",
        elapsed: float = 0.0,
        engine: dict | None = None,
        oracle: dict | None = None,
        oracle_backend: str = "",
        error_type: str | None = None,
        extra: dict | None = None,
    ) -> dict:
        """Build and append one job record; returns the record dict.

        ``core``/``target``/``config``/``sample_config`` are the job's
        actual inputs — the constituent fingerprints are derived here so
        every caller (session entry, batch engine, validate) records the
        same lineage without importing the fingerprint functions.  Callers
        pass this method duck-typed (the batch engine takes any object
        with it), so its signature is the ledger's write API.
        """
        record = {
            "schema": LEDGER_SCHEMA,
            "ts": _now_iso(),
            "kind": kind,
            "fingerprint": fingerprint,
            "core_fingerprint": core_fingerprint(core),
            "target_fingerprint": target_fingerprint(target),
            "config_fingerprint": config_fingerprint(config, sample_config),
            "benchmark": core.name or "<anonymous>",
            "target": target.name,
            "format": core.precision,
            "oracle_backend": oracle_backend,
            "cache": cache,
            "status": status,
            "elapsed": round(float(elapsed), 6),
            "engine": engine or None,
            "oracle": oracle or None,
            "epoch": COMPILER_EPOCH,
            "host": host_info(),
        }
        if error_type:
            record["error_type"] = error_type
        if extra:
            record.update(extra)
        return self.append(record)

    def append(self, record: dict) -> dict:
        """Append one already-built record as a single JSONL line."""
        data = (json.dumps(record, separators=(",", ":")) + "\n").encode("utf-8")
        with self._lock:
            if self._fd is None:
                self._fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
            os.write(self._fd, data)
            self.appended += 1
            self.last_write = time.time()
        METRICS.counter(
            "repro_provenance_records_total",
            "Provenance-ledger records appended, by job kind.",
            kind=str(record.get("kind", "?")),
        ).inc()
        return record

    # --- reading --------------------------------------------------------------------

    def iter_records(self):
        """Yield every parseable record, oldest first (the line order *is*
        the sequence).  Unparseable lines — a torn trailing write from a
        killed process — are skipped, never fatal."""
        try:
            with open(self.path, encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except ValueError:
                        continue
                    if isinstance(record, dict):
                        yield record
        except OSError:
            return

    def records_for(self, fingerprint: str) -> list[dict]:
        """Every record of one job fingerprint, oldest first.  Prefixes of
        at least 8 hex characters match too (CLI ergonomics: a 64-char
        digest is unwieldy to retype)."""
        if len(fingerprint) >= 64:
            return [
                r for r in self.iter_records()
                if r.get("fingerprint") == fingerprint
            ]
        if len(fingerprint) < 8:
            return []
        return [
            r for r in self.iter_records()
            if str(r.get("fingerprint", "")).startswith(fingerprint)
        ]

    def resolve(self, fingerprint: str, status: str = "ok") -> dict | None:
        """The latest record of the *fresh* attempt behind a fingerprint
        (``cache`` != hit) with the given ``status`` — the lineage record
        a cached value traces back to (or, for ``status="failed"`` /
        ``"timeout"``, the record of the original failure) — or None if
        the ledger never saw the job run (see the module docstring's
        lineage contract)."""
        found = None
        for record in self.records_for(fingerprint):
            if record.get("status") == status and record.get("cache") != "hit":
                found = record
        return found

    def count(self) -> int:
        return sum(1 for _ in self.iter_records())

    def info(self) -> dict:
        """The ``/health`` provenance section: journal path and size,
        records appended via this instance, last-write timestamp."""
        with self._lock:
            appended, last_write = self.appended, self.last_write
        return {
            "path": str(self.path),
            "records": self.count(),
            "appended": appended,
            "last_write": (
                datetime.fromtimestamp(last_write, timezone.utc)
                .isoformat(timespec="milliseconds")
                if last_write else None
            ),
        }

    def close(self) -> None:
        """Close the append descriptor (reopened lazily on next append)."""
        with self._lock:
            fd, self._fd = self._fd, None
        if fd is not None:
            os.close(fd)
