"""Synthesis of correctly-rounded operator implementations (paper section 4.2).

When a target description provides no linking information for an operator,
Chassis synthesizes a maximally-accurate implementation from the operator's
desugaring using Rival.  We do the same with mpmath: evaluate the desugaring
in high working precision at the input point and round once into the output
format.  At twice the output precision plus margin, double-rounding errors
are confined to results within a fraction of an ulp of a rounding boundary
— the paper itself notes these synthesized implementations are "typically
good enough" rather than proven correctly rounded.
"""

from __future__ import annotations

import math
from typing import Callable

import mpmath
from mpmath import mp, mpf

from ..ir.expr import App, Const, Expr, Num, Var

#: mpmath implementations of each real operator for *point* evaluation.
_MP_OPS: dict[str, Callable] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "neg": lambda a: -a,
    "fabs": abs,
    "fmin": min,
    "fmax": max,
    "copysign": lambda a, b: abs(a) if b >= 0 else -abs(a),
    "sqrt": mpmath.sqrt,
    "cbrt": lambda a: mpmath.cbrt(a) if a >= 0 else -mpmath.cbrt(-a),
    "pow": lambda a, b: mpmath.power(a, b),
    "hypot": mpmath.hypot,
    "exp": mpmath.exp,
    "exp2": lambda a: mpmath.power(2, a),
    "expm1": mpmath.expm1,
    "log": mpmath.log,
    "log2": lambda a: mpmath.log(a, 2),
    "log10": mpmath.log10,
    "log1p": mpmath.log1p,
    "sin": mpmath.sin,
    "cos": mpmath.cos,
    "tan": mpmath.tan,
    "asin": mpmath.asin,
    "acos": mpmath.acos,
    "atan": mpmath.atan,
    "atan2": mpmath.atan2,
    "sinh": mpmath.sinh,
    "cosh": mpmath.cosh,
    "tanh": mpmath.tanh,
    "asinh": mpmath.asinh,
    "acosh": mpmath.acosh,
    "atanh": mpmath.atanh,
    "floor": mpmath.floor,
    "ceil": mpmath.ceil,
    "round": mpmath.nint,
    "trunc": lambda a: mpmath.floor(a) if a >= 0 else mpmath.ceil(a),
    "fmod": lambda a, b: a - b * (mpmath.floor(a / b) if (a / b) >= 0 else mpmath.ceil(a / b)),
}


def mp_eval(expr: Expr, env: dict[str, mpf]) -> mpf:
    """Evaluate a real expression with mpmath at the current precision.

    Domain errors surface as mpmath exceptions or complex results, which
    callers convert to NaN.
    """
    if isinstance(expr, Var):
        return env[expr.name]
    if isinstance(expr, Num):
        return mpf(expr.value.numerator) / mpf(expr.value.denominator)
    if isinstance(expr, Const):
        if expr.name == "PI":
            return mpmath.pi()
        if expr.name == "E":
            return mpmath.e()
        if expr.name == "INFINITY":
            return mpf("inf")
        return mpf("nan")
    assert isinstance(expr, App)
    fn = _MP_OPS.get(expr.op)
    if fn is None:
        raise KeyError(f"no mpmath semantics for {expr.op!r}")
    args = [mp_eval(a, env) for a in expr.args]
    result = fn(*args)
    if isinstance(result, mpmath.mpc):
        raise ValueError(f"complex result from {expr.op}")
    return result


def synthesize_impl(
    approx: Expr, params: tuple[str, ...], ret_type: str
) -> Callable[..., float]:
    """Build a correctly-rounded implementation of a desugaring.

    Uses the adaptive interval oracle (our Rival stand-in): enclosures are
    tightened until the result rounds unambiguously into the output format,
    so cross-magnitude cancellations (``log1p(1e-300)``) round correctly
    rather than collapsing at a fixed working precision.
    """

    def impl(*args: float) -> float:
        from ..rival.eval import DomainError, PrecisionExhausted

        try:
            return _oracle().eval(approx, dict(zip(params, args)), ret_type)
        except (DomainError, PrecisionExhausted, KeyError, ValueError):
            return math.nan

    impl.__name__ = "synth_impl"
    return impl


_ORACLE = None


def _oracle():
    global _ORACLE
    if _ORACLE is None:
        from ..rival.eval import RivalEvaluator

        _ORACLE = RivalEvaluator()
    return _ORACLE
