"""Target description language and the built-in target library."""

from .autotune import autotune_costs, autotuned
from .builtin import TARGET_NAMES, all_targets, get_target
from .dsl import TargetDSLError, parse_target_description
from .operator import OperatorDef, opdef
from .synth import mp_eval, synthesize_impl
from .target import SCALAR, VECTOR, Target

__all__ = [
    "OperatorDef",
    "opdef",
    "Target",
    "SCALAR",
    "VECTOR",
    "get_target",
    "all_targets",
    "TARGET_NAMES",
    "autotuned",
    "autotune_costs",
    "synthesize_impl",
    "mp_eval",
    "parse_target_description",
    "TargetDSLError",
]
