"""Shared building blocks for the built-in target descriptions.

Latency numbers are representative per-operation times (ns for language
targets, cycles for hardware targets — only *relative* magnitudes matter to
Chassis) chosen to reflect each environment's character as described in the
paper's section 6.1: hardware targets have stark fast/slow divisions,
interpreted languages have flat, overhead-dominated costs, and libraries
offer cheap approximate variants of expensive functions.
"""

from __future__ import annotations

from typing import Callable

from ...fpeval import impls
from ...ir.types import F32, F64
from ..operator import OperatorDef, opdef

#: real-operator name -> (operator base name, desugaring source)
_BASE_APPROX = {
    "+": ("add", "(+ x y)"),
    "-": ("sub", "(- x y)"),
    "*": ("mul", "(* x y)"),
    "/": ("div", "(/ x y)"),
    "neg": ("neg", "(neg x)"),
    "fabs": ("fabs", "(fabs x)"),
    "sqrt": ("sqrt", "(sqrt x)"),
    "cbrt": ("cbrt", "(cbrt x)"),
    "fmin": ("fmin", "(fmin x y)"),
    "fmax": ("fmax", "(fmax x y)"),
    "copysign": ("copysign", "(copysign x y)"),
    "pow": ("pow", "(pow x y)"),
    "hypot": ("hypot", "(hypot x y)"),
    "exp": ("exp", "(exp x)"),
    "exp2": ("exp2", "(exp2 x)"),
    "expm1": ("expm1", "(expm1 x)"),
    "log": ("log", "(log x)"),
    "log2": ("log2", "(log2 x)"),
    "log10": ("log10", "(log10 x)"),
    "log1p": ("log1p", "(log1p x)"),
    "sin": ("sin", "(sin x)"),
    "cos": ("cos", "(cos x)"),
    "tan": ("tan", "(tan x)"),
    "asin": ("asin", "(asin x)"),
    "acos": ("acos", "(acos x)"),
    "atan": ("atan", "(atan x)"),
    "atan2": ("atan2", "(atan2 x y)"),
    "sinh": ("sinh", "(sinh x)"),
    "cosh": ("cosh", "(cosh x)"),
    "tanh": ("tanh", "(tanh x)"),
    "asinh": ("asinh", "(asinh x)"),
    "acosh": ("acosh", "(acosh x)"),
    "atanh": ("atanh", "(atanh x)"),
    "floor": ("floor", "(floor x)"),
    "ceil": ("ceil", "(ceil x)"),
    "round": ("round", "(round x)"),
    "trunc": ("trunc", "(trunc x)"),
    "fmod": ("fmod", "(fmod x y)"),
}

def _impl64(real_name: str) -> Callable[..., float] | None:
    base = _BASE_APPROX[real_name][0]
    return getattr(impls, f"{base}64", None)


def _arity(approx_src: str) -> int:
    from ...ir.parser import parse_expr

    return len(parse_expr(approx_src).free_vars())


def direct64(real_name: str, latency: float, linked: bool = False) -> OperatorDef:
    """A binary64 operator directly implementing one real operator."""
    base, approx_src = _BASE_APPROX[real_name]
    arity = _arity(approx_src)
    return opdef(
        f"{base}.f64",
        (F64,) * arity,
        F64,
        approx_src,
        latency,
        impl=_impl64(real_name),
        linked=linked,
    )


def direct32(real_name: str, latency: float, linked: bool = False) -> OperatorDef:
    """A binary32 operator directly implementing one real operator."""
    base, approx_src = _BASE_APPROX[real_name]
    arity = _arity(approx_src)
    impl64 = _impl64(real_name)
    impl32 = impls.f32_of(impl64) if impl64 is not None else None
    if base in ("neg", "fabs"):
        impl32 = impl64  # exact: no rounding needed
    return opdef(
        f"{base}.f32",
        (F32,) * arity,
        F32,
        approx_src,
        latency,
        impl=impl32,
        linked=linked,
    )


def direct_fmt(
    fmt, real_name: str, latency: float, linked: bool = False
) -> OperatorDef:
    """An operator in an arbitrary registered format (``fmt`` is a
    :class:`~repro.formats.FloatFormat`): the generalization of
    :func:`direct32` — compute the binary64 implementation wide, round the
    result into the format once.  Operator names carry the format's suffix
    (``add.bf16``), argument and return types its registered name."""
    base, approx_src = _BASE_APPROX[real_name]
    arity = _arity(approx_src)
    impl64 = _impl64(real_name)
    impl = impls.format_of(impl64, fmt) if impl64 is not None else None
    if base in ("neg", "fabs"):
        impl = impl64  # exact in every format: no rounding needed
    return opdef(
        f"{base}.{fmt.suffix}",
        (fmt.name,) * arity,
        fmt.name,
        approx_src,
        latency,
        impl=impl,
        linked=linked,
    )


def fma_ops_fmt(fmt, latency: float) -> list[OperatorDef]:
    """The fused multiply-add family in an arbitrary registered format."""
    specs = (
        ("fma", "(+ (* x y) z)", impls.fma64),
        ("fms", "(- (* x y) z)", impls.fms64),
        ("fnma", "(+ (neg (* x y)) z)", impls.fnma64),
        ("fnms", "(- (neg (* x y)) z)", impls.fnms64),
    )
    ty = fmt.name
    return [
        opdef(
            f"{base}.{fmt.suffix}",
            (ty, ty, ty),
            ty,
            approx,
            latency,
            impls.format_of(impl64, fmt),
            linked=True,
        )
        for base, approx, impl64 in specs
    ]


def fma_ops_f64(latency: float) -> list[OperatorDef]:
    """The fused multiply-add family at binary64."""
    return [
        opdef("fma.f64", (F64, F64, F64), F64, "(+ (* x y) z)", latency, impls.fma64),
        opdef("fms.f64", (F64, F64, F64), F64, "(- (* x y) z)", latency, impls.fms64),
        opdef("fnma.f64", (F64, F64, F64), F64, "(+ (neg (* x y)) z)", latency, impls.fnma64),
        opdef("fnms.f64", (F64, F64, F64), F64, "(- (neg (* x y)) z)", latency, impls.fnms64),
    ]


def fma_ops_f32(latency: float) -> list[OperatorDef]:
    """The fused multiply-add family at binary32."""
    return [
        opdef("fma.f32", (F32, F32, F32), F32, "(+ (* x y) z)", latency, impls.fma32),
        opdef("fms.f32", (F32, F32, F32), F32, "(- (* x y) z)", latency, impls.fms32),
        opdef("fnma.f32", (F32, F32, F32), F32, "(+ (neg (* x y)) z)", latency, impls.fnma32),
        opdef("fnms.f32", (F32, F32, F32), F32, "(- (neg (* x y)) z)", latency, impls.fnms32),
    ]


def cast_ops(latency: float = 2.0) -> list[OperatorDef]:
    """Format-conversion operators (trivial desugaring, paper section 4.1)."""
    from ...fpeval.impls import cast_to_f32, cast_to_f64
    from ...ir.expr import Var

    return [
        opdef("cast.f32", (F64,), F32, Var("x"), latency, cast_to_f32, linked=True),
        opdef("cast.f64", (F32,), F64, Var("x"), latency, cast_to_f64, linked=True),
    ]


def cast_ops_fmt(fmt, latency: float = 2.0) -> list[OperatorDef]:
    """Format-conversion operators between binary64 and an arbitrary
    registered format: the demotion rounds (``impls.cast_into``), the
    promotion is exact (narrow values are representable doubles)."""
    from ...fpeval.impls import cast_into, cast_to_f64
    from ...ir.expr import Var

    return [
        opdef(
            f"cast.{fmt.suffix}",
            (F64,),
            fmt.name,
            Var("x"),
            latency,
            cast_into(fmt),
            linked=True,
        ),
        opdef("cast.f64", (fmt.name,), F64, Var("x"), latency, cast_to_f64, linked=True),
    ]


def arith_core_f64(scale: float = 1.0) -> list[OperatorDef]:
    """Hardware-flavored binary64 arithmetic: the shared "core" operators."""
    return [
        direct64("+", 4.0 * scale),
        direct64("-", 4.0 * scale),
        direct64("*", 4.0 * scale),
        direct64("/", 13.0 * scale),
        direct64("neg", 1.0 * scale),
        direct64("fabs", 1.0 * scale),
        direct64("sqrt", 18.0 * scale),
        direct64("fmin", 2.0 * scale),
        direct64("fmax", 2.0 * scale),
    ]


#: Representative libm latencies (binary64, ns-scale for a C environment).
LIBM_LATENCIES = {
    "exp": 40.0,
    "exp2": 38.0,
    "expm1": 45.0,
    "log": 40.0,
    "log2": 42.0,
    "log10": 45.0,
    "log1p": 45.0,
    "sin": 45.0,
    "cos": 45.0,
    "tan": 55.0,
    "asin": 50.0,
    "acos": 50.0,
    "atan": 55.0,
    "atan2": 70.0,
    "sinh": 55.0,
    "cosh": 55.0,
    "tanh": 55.0,
    "asinh": 60.0,
    "acosh": 60.0,
    "atanh": 60.0,
    "pow": 90.0,
    "hypot": 55.0,
    "cbrt": 65.0,
    "fmod": 30.0,
    "floor": 6.0,
    "ceil": 6.0,
    "round": 8.0,
    "trunc": 6.0,
    "copysign": 2.0,
}


def libm_ops_f64(scale: float = 1.0, only: tuple[str, ...] | None = None) -> list[OperatorDef]:
    """Math-library operators at binary64 with scaled latencies."""
    names = only if only is not None else tuple(LIBM_LATENCIES)
    return [direct64(name, LIBM_LATENCIES[name] * scale) for name in names]
