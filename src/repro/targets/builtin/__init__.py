"""The nine built-in targets evaluated in the paper (figure 6), plus the
ML-accelerator narrow-format targets (``fp16``, ``bf16``) this
reproduction adds on top of the number-format layer."""

from __future__ import annotations

from functools import lru_cache

from ..autotune import autotuned
from ..target import Target
from .hardware import make_arith, make_arith_fma, make_avx
from .languages import make_c99, make_julia, make_python
from .libraries import make_fdlibm, make_numpy, make_vdt
from .mlformats import make_bf16, make_fp16

_FACTORIES = {
    "arith": (make_arith, True),
    "arith-fma": (make_arith_fma, True),
    "avx": (make_avx, False),  # AVX uses Fog's published tables, not auto-tune
    "c99": (make_c99, True),
    "python": (make_python, True),
    "julia": (make_julia, True),
    "numpy": (make_numpy, True),
    "vdt": (make_vdt, True),
    "fdlibm": (make_fdlibm, True),
    # Modeled costs: auto-tuning would measure the Python interpreter, not
    # accelerator character (same reasoning as AVX's published tables).
    "fp16": (make_fp16, False),
    "bf16": (make_bf16, False),
}

#: The paper's nine targets in evaluation order, then the added ML formats.
TARGET_NAMES = tuple(_FACTORIES)


@lru_cache(maxsize=None)
def get_target(name: str) -> Target:
    """Build (and cache) a built-in target, auto-tuning costs when the
    paper's figure 6 says that target used auto-tuned costs."""
    try:
        factory, tune = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown target {name!r}; available: {', '.join(TARGET_NAMES)}"
        ) from None
    target = factory()
    return autotuned(target) if tune else target


def all_targets() -> list[Target]:
    """Every built-in target, in the paper's order."""
    return [get_target(name) for name in TARGET_NAMES]
