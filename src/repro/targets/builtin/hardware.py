"""Hardware-flavored targets: Arith, Arith+FMA, and AVX (paper figure 6).

* **Arith** — bare arithmetic: + - * / sqrt |x|, binary64, scalar
  conditionals, auto-tuned costs.  No transcendental functions at all.
* **Arith+FMA** — Arith plus the fused multiply-add family.
* **AVX** — the x86 vector extensions: binary32 *and* binary64 arithmetic,
  all four fma variants, the fast approximate ``rcp``/``rsqrt`` (binary32
  only), *no negation instruction*, masked (vector-style) conditionals, and
  costs taken from Fog's instruction tables [20] rather than auto-tuning.
"""

from __future__ import annotations

from ...fpeval import approx
from ...ir.types import F32, F64
from ..operator import opdef
from ..target import SCALAR, VECTOR, Target
from .common import cast_ops, direct32, direct64, fma_ops_f32, fma_ops_f64


def _arith_operators():
    return [
        direct64("+", 4.0),
        direct64("-", 4.0),
        direct64("*", 4.0),
        direct64("/", 13.0),
        direct64("neg", 1.0),
        direct64("fabs", 1.0),
        direct64("sqrt", 16.0),
    ]


def make_arith() -> Target:
    """The bare-arithmetic hardware target."""
    return Target(
        name="arith",
        operators={op.name: op for op in _arith_operators()},
        literal_costs={F64: 1.0},
        variable_cost=1.0,
        if_style=SCALAR,
        if_cost=2.0,
        description="bare arithmetic ISA: + - * / sqrt |x|",
        cost_source="auto-tune",
        perf_overhead=0.0,
        output_format="c",
    )


def make_arith_fma() -> Target:
    """Arith extended with fused multiply-add."""
    return make_arith().extend(
        "arith-fma",
        add_operators=fma_ops_f64(4.0),
        description="arith ISA plus fused multiply-add",
    )


#: AVX latencies from Agner Fog's instruction tables (cycles).
_FOG = {
    "add": 4.0, "sub": 4.0, "mul": 4.0, "fma": 4.0,
    "div32": 11.0, "div64": 13.0, "sqrt32": 12.0, "sqrt64": 18.0,
    "rcp": 4.0, "rsqrt": 4.0, "fabs": 1.0, "minmax": 4.0, "cast": 4.0,
}


def _avx_operators():
    ops = [
        # binary64 lane operations (no neg: fold into fnma/sub instead).
        direct64("+", _FOG["add"], linked=True),
        direct64("-", _FOG["sub"], linked=True),
        direct64("*", _FOG["mul"], linked=True),
        direct64("/", _FOG["div64"], linked=True),
        direct64("sqrt", _FOG["sqrt64"], linked=True),
        direct64("fabs", _FOG["fabs"], linked=True),
        direct64("fmin", _FOG["minmax"], linked=True),
        direct64("fmax", _FOG["minmax"], linked=True),
        # binary32 lane operations.
        direct32("+", _FOG["add"], linked=True),
        direct32("-", _FOG["sub"], linked=True),
        direct32("*", _FOG["mul"], linked=True),
        direct32("/", _FOG["div32"], linked=True),
        direct32("sqrt", _FOG["sqrt32"], linked=True),
        direct32("fabs", _FOG["fabs"], linked=True),
        direct32("fmin", _FOG["minmax"], linked=True),
        direct32("fmax", _FOG["minmax"], linked=True),
        # Approximate reciprocal instructions (binary32 only, like rcpps).
        opdef("rcp.f32", (F32,), F32, "(/ 1 x)", _FOG["rcp"], approx.rcp32, linked=True),
        opdef(
            "rsqrt.f32", (F32,), F32, "(/ 1 (sqrt x))",
            _FOG["rsqrt"], approx.rsqrt32, linked=True,
        ),
    ]
    ops.extend(fma_ops_f64(_FOG["fma"]))
    ops.extend(fma_ops_f32(_FOG["fma"]))
    ops.extend(cast_ops(_FOG["cast"]))
    return ops


def make_avx() -> Target:
    """The AVX vector-extension target (costs from Fog's tables)."""
    return Target(
        name="avx",
        operators={op.name: op for op in _avx_operators()},
        literal_costs={F32: 1.0, F64: 1.0},
        variable_cost=1.0,
        if_style=VECTOR,
        if_cost=5.0,
        description="x86 AVX: fma family, rcp/rsqrt, masked conditionals",
        cost_source="Fog [20]",
        perf_overhead=0.0,
        output_format="c",
    )
