"""Programming-language targets: C 99, Python, and Julia (paper figure 6).

* **C 99** — ``math.h`` at binary32 and binary64, fma, casts; stark cost
  divisions between arithmetic and library calls.
* **Python** — the ``math`` module at binary64 only; large interpreter
  overhead flattens the cost model (paper 6.3), and there is *no fma*.
* **Julia** — ``Base`` math plus the extended helper library (``sind``,
  ``cosd``, ``deg2rad``, ``abs2``, ``sinpi``, ...) whose higher internal
  precision gives Chassis accuracy options Herbie lacks (paper 6.4).
"""

from __future__ import annotations

from ...ir.types import F32, F64
from ..operator import opdef
from ..target import SCALAR, Target
from .common import LIBM_LATENCIES, cast_ops, direct32, direct64, fma_ops_f64, libm_ops_f64


def _c99_operators():
    ops = [
        direct64("+", 4.0, linked=True),
        direct64("-", 4.0, linked=True),
        direct64("*", 4.0, linked=True),
        direct64("/", 13.0, linked=True),
        direct64("neg", 1.0, linked=True),
        direct64("fabs", 1.0, linked=True),
        direct64("sqrt", 18.0, linked=True),
        direct64("fmin", 4.0, linked=True),
        direct64("fmax", 4.0, linked=True),
        direct32("+", 4.0, linked=True),
        direct32("-", 4.0, linked=True),
        direct32("*", 4.0, linked=True),
        direct32("/", 11.0, linked=True),
        direct32("neg", 1.0, linked=True),
        direct32("fabs", 1.0, linked=True),
        direct32("sqrt", 12.0, linked=True),
    ]
    ops.extend(fma_ops_f64(5.0))
    ops.extend(cast_ops(2.0))
    ops.extend(libm_ops_f64())
    # Single-precision libm (sinf, expf, ...) runs ~20% faster.
    for name, latency in LIBM_LATENCIES.items():
        ops.append(direct32(name, latency * 0.8, linked=True))
    return ops


def make_c99() -> Target:
    """The C 99 / math.h target."""
    return Target(
        name="c99",
        operators={op.name: op for op in _c99_operators()},
        literal_costs={F32: 1.0, F64: 1.0},
        variable_cost=1.0,
        if_style=SCALAR,
        if_cost=2.0,
        description="C 99 with math.h, binary32 and binary64",
        cost_source="auto-tune",
        linkage="L",
        perf_overhead=0.0,
        output_format="c",
    )


#: math-module functions Python 3.10 actually provides (no fma!).
_PYTHON_LIBM = (
    "exp", "expm1", "log", "log2", "log10", "log1p",
    "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
    "sinh", "cosh", "tanh", "asinh", "acosh", "atanh",
    "pow", "hypot", "fmod", "floor", "ceil", "trunc", "copysign",
)


def _python_operators():
    ops = [
        direct64("+", 6.0),
        direct64("-", 6.0),
        direct64("*", 6.0),
        direct64("/", 9.0),
        direct64("neg", 4.0),
        direct64("fabs", 5.0),
        direct64("sqrt", 10.0),
        direct64("fmin", 8.0),
        direct64("fmax", 8.0),
    ]
    ops.extend(libm_ops_f64(scale=0.6, only=_PYTHON_LIBM))
    return ops


def make_python() -> Target:
    """The Python 3.10 ``math`` target (binary64, heavy overhead, no fma)."""
    return Target(
        name="python",
        operators={op.name: op for op in _python_operators()},
        literal_costs={F64: 3.0},
        variable_cost=3.0,
        if_style=SCALAR,
        if_cost=8.0,
        description="Python 3.10 with the math module",
        cost_source="auto-tune",
        linkage="E",
        perf_overhead=40.0,
        output_format="python",
    )


def _julia_helper_ops():
    """Julia Base's accuracy-oriented helper functions (synthesized impls:
    these helpers compute in higher internal precision, which our
    correctly-rounded synthesis reproduces)."""
    return [
        opdef("sind.f64", (F64,), F64, "(sin (* (/ PI 180) x))", 50.0),
        opdef("cosd.f64", (F64,), F64, "(cos (* (/ PI 180) x))", 50.0),
        opdef("tand.f64", (F64,), F64, "(tan (* (/ PI 180) x))", 58.0),
        opdef("deg2rad.f64", (F64,), F64, "(* (/ PI 180) x)", 6.0),
        opdef("rad2deg.f64", (F64,), F64, "(* (/ 180 PI) x)", 6.0),
        opdef("abs2.f64", (F64,), F64, "(* x x)", 5.0),
        opdef("sinpi.f64", (F64,), F64, "(sin (* PI x))", 48.0),
        opdef("cospi.f64", (F64,), F64, "(cos (* PI x))", 48.0),
        opdef("exp10.f64", (F64,), F64, "(pow 10 x)", 42.0),
    ]


def _julia_operators():
    ops = [
        direct64("+", 4.0),
        direct64("-", 4.0),
        direct64("*", 4.0),
        direct64("/", 13.0),
        direct64("neg", 1.5),
        direct64("fabs", 1.5),
        direct64("sqrt", 18.0),
        direct64("fmin", 4.0),
        direct64("fmax", 4.0),
        direct64("copysign", 2.0),
    ]
    ops.extend(fma_ops_f64(6.0))
    ops.extend(libm_ops_f64(scale=0.9))
    ops.extend(_julia_helper_ops())
    return ops


def make_julia() -> Target:
    """The Julia 1.10 target with its extended math helper library."""
    return Target(
        name="julia",
        operators={op.name: op for op in _julia_operators()},
        literal_costs={F64: 1.0},
        variable_cost=1.0,
        if_style=SCALAR,
        if_cost=3.0,
        description="Julia 1.10 Base math with helper functions",
        cost_source="auto-tune",
        linkage="E",
        perf_overhead=8.0,
        output_format="julia",
    )
