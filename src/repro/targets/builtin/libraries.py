"""Software-library targets: NumPy, CERN vdt, and Sun fdlibm (paper fig. 6).

* **NumPy** — vectorized element-wise math: cheap per-element costs,
  masked (vector-style) conditionals via ``numpy.where``, helper routines
  like ``logaddexp`` and ``square``; no fma.
* **vdt** — CERN's fast inline math library: accurate libm operators plus
  ``fast_*`` variants trading ~8 ulp of accuracy for large speedups, and a
  two-level approximate reciprocal square root.  The fast variants are
  *linked* to simulated implementations so Chassis observes their true
  (reduced) accuracy.
* **fdlibm** — Sun's reference libm, exposing the internal ``log1pmd``
  subroutine (``log(1+x) - log(1-x)``) as an operator: the paper's
  section 6.4 case study.
"""

from __future__ import annotations

from ...fpeval import approx
from ...ir.types import F64
from ..operator import opdef
from ..target import VECTOR, Target
from .common import direct64, libm_ops_f64
from .languages import make_c99

#: NumPy per-element latencies for vectorized ufuncs.
_NUMPY_LIBM_SCALE = 0.35


def _numpy_operators():
    ops = [
        direct64("+", 2.0),
        direct64("-", 2.0),
        direct64("*", 2.0),
        direct64("/", 4.0),
        direct64("neg", 1.5),
        direct64("fabs", 1.5),
        direct64("sqrt", 5.0),
        direct64("fmin", 2.0),
        direct64("fmax", 2.0),
        direct64("copysign", 2.0),
    ]
    ops.extend(libm_ops_f64(scale=_NUMPY_LIBM_SCALE))
    ops.extend(
        [
            opdef("square.f64", (F64,), F64, "(* x x)", 2.0),
            opdef("reciprocal.f64", (F64,), F64, "(/ 1 x)", 3.0),
            opdef(
                "logaddexp.f64", (F64, F64), F64,
                "(log (+ (exp x) (exp y)))", 26.0,
            ),
            opdef("deg2rad.f64", (F64,), F64, "(* (/ PI 180) x)", 2.5),
            opdef("rad2deg.f64", (F64,), F64, "(* (/ 180 PI) x)", 2.5),
        ]
    )
    return ops


def make_numpy() -> Target:
    """The NumPy routines.math target (vectorized, masked conditionals)."""
    return Target(
        name="numpy",
        operators={op.name: op for op in _numpy_operators()},
        literal_costs={F64: 0.5},
        variable_cost=0.5,
        if_style=VECTOR,
        if_cost=3.0,
        description="NumPy element-wise math (vectorized)",
        cost_source="auto-tune",
        linkage="E",
        perf_overhead=1.5,
        output_format="python",
    )


def _c99_f64_base(name: str) -> Target:
    """The binary64 subset of C 99, as an import base for C libraries."""
    base = make_c99()
    f32_ops = [
        op_name
        for op_name, op in base.operators.items()
        if op.ret_type != F64 or any(ty != F64 for ty in op.arg_types)
    ]
    return base.extend(name, remove_operators=f32_ops, literal_costs={F64: 1.0})


def _vdt_fast_ops():
    """vdt's fast_* operators: linked to reduced-accuracy simulations."""
    fast = [
        ("fast_exp.f64", "(exp x)", 14.0, approx.fast_exp64),
        ("fast_log.f64", "(log x)", 16.0, approx.fast_log64),
        ("fast_sin.f64", "(sin x)", 18.0, approx.fast_sin64),
        ("fast_cos.f64", "(cos x)", 18.0, approx.fast_cos64),
        ("fast_tan.f64", "(tan x)", 22.0, approx.fast_tan64),
        ("fast_asin.f64", "(asin x)", 20.0, approx.fast_asin64),
        ("fast_acos.f64", "(acos x)", 20.0, approx.fast_acos64),
        ("fast_atan.f64", "(atan x)", 22.0, approx.fast_atan64),
        ("fast_tanh.f64", "(tanh x)", 24.0, approx.fast_tanh64),
        ("fast_isqrt.f64", "(/ 1 (sqrt x))", 9.0, approx.fast_isqrt64),
        ("appr_isqrt.f64", "(/ 1 (sqrt x))", 6.0, approx.appr_isqrt64),
    ]
    return [
        opdef(name, (F64,), F64, desugaring, latency, impl, linked=True)
        for name, desugaring, latency, impl in fast
    ]


def make_vdt() -> Target:
    """The CERN vdt target: C 99 binary64 plus fast approximate operators."""
    return _c99_f64_base("vdt").extend(
        "vdt",
        add_operators=_vdt_fast_ops(),
        description="CERN vdt: accurate libm plus fast_* approximations",
        linkage="L",
        output_format="c",
    )


def _fdlibm_extra_ops():
    return [
        # The library-internal subroutine exposed as an operator: computes
        # log(1+x) - log(1-x) in one range-reduced pass (paper section 2).
        opdef("log1pmd.f64", (F64,), F64, "(- (log (+ 1 x)) (log (- 1 x)))", 46.0),
        # fdlibm's log is built from a log1p-style kernel; both are cheap
        # relative to calling log twice.
        opdef("log1p_kernel.f64", (F64,), F64, "(log1p x)", 42.0),
    ]


def make_fdlibm() -> Target:
    """Sun's fdlibm target, exposing internal logarithm subcomponents."""
    target = _c99_f64_base("fdlibm").extend(
        "fdlibm",
        add_operators=_fdlibm_extra_ops(),
        override_costs={"log.f64": 42.0, "log1p.f64": 48.0},
        description="Sun fdlibm with internal log subroutines exposed",
        linkage="L",
        output_format="c",
    )
    return target
