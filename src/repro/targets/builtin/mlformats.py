"""ML-accelerator-flavored narrow-format targets: ``fp16`` and ``bf16``.

These two targets cash in the first-class number-format layer
(:mod:`repro.formats`): each compiles FPCore benchmarks *into* a 16-bit
format — IEEE binary16 (``fp16``, 11-bit significand, narrow exponent) or
bfloat16 (``bf16``, 8-bit significand, binary32's exponent range) — with
every operator rounding its result into the format, the same compute-wide,
round-once discipline real accelerators and ML frameworks use for
half-precision math.

The cost model is modeled, not auto-tuned (the linked implementations run
in Python here; auto-tuning would measure interpreter overhead, not
accelerator character): arithmetic and fma are uniformly cheap — tensor
ALUs make no fast/slow distinction among them — while the transcendental
set is the short special-function-unit menu (exp/log bases, sin/cos, tanh)
at a flat modest cost, and conditionals price like AVX masking
(vector-style: both branches plus a blend).

Programs emit as Python (the formats have no C scalar type): every
operator renders as ``math.add_bf16(...)``-style calls that the sandboxed
exec backend links to these rounding implementations, so ``repro validate
--backend python`` runs real format-faithful code.
"""

from __future__ import annotations

from ...formats import get_format
from ..target import VECTOR, Target
from .common import cast_ops_fmt, direct_fmt, fma_ops_fmt

#: The special-function-unit menu: what accelerator hardware actually
#: provides fast approximations for (everything else would be emulated).
_SFU_OPS = ("exp", "exp2", "log", "log2", "sin", "cos", "tanh")

#: Flat SFU latency relative to unit-cost arithmetic.
_SFU_LATENCY = 8.0


def _ml_operators(fmt):
    ops = [
        direct_fmt(fmt, "+", 1.0, linked=True),
        direct_fmt(fmt, "-", 1.0, linked=True),
        direct_fmt(fmt, "*", 1.0, linked=True),
        direct_fmt(fmt, "/", 4.0, linked=True),
        direct_fmt(fmt, "neg", 0.5, linked=True),
        direct_fmt(fmt, "fabs", 0.5, linked=True),
        direct_fmt(fmt, "sqrt", 4.0, linked=True),
        direct_fmt(fmt, "fmin", 1.0, linked=True),
        direct_fmt(fmt, "fmax", 1.0, linked=True),
    ]
    ops.extend(fma_ops_fmt(fmt, 1.0))
    ops.extend(direct_fmt(fmt, name, _SFU_LATENCY, linked=True) for name in _SFU_OPS)
    ops.extend(cast_ops_fmt(fmt, 1.0))
    return ops


def _make_ml_target(format_name: str, description: str) -> Target:
    fmt = get_format(format_name)
    return Target(
        name=fmt.name,
        operators={op.name: op for op in _ml_operators(fmt)},
        literal_costs={fmt.name: 1.0},
        variable_cost=1.0,
        if_style=VECTOR,
        if_cost=2.0,
        description=description,
        cost_source="modeled",
        linkage="L",
        perf_overhead=0.0,
        output_format="python",
    )


def make_fp16() -> Target:
    """IEEE binary16 accelerator target (11-bit significand, emax 15)."""
    return _make_ml_target(
        "fp16",
        "ML accelerator at IEEE binary16 (fp16): cheap fused arithmetic, "
        "SFU transcendentals, vector-style conditionals",
    )


def make_bf16() -> Target:
    """bfloat16 accelerator target (8-bit significand, binary32 range)."""
    return _make_ml_target(
        "bf16",
        "ML accelerator at bfloat16 (bf16): binary32's range at 8 bits of "
        "significand; cheap fused arithmetic, SFU transcendentals",
    )
