"""Operator definitions: the core abstraction of Chassis (paper section 4).

An operator is an atomic floating-point instruction of a target: it has a
name, a type signature, a *desugaring* (the real-number expression it
approximates), a scalar cost, and an implementation used to evaluate
accuracy.  The desugaring is the load-bearing piece: Chassis optimizations
preserve the desugaring of the program, not its float semantics, which is
what lets one e-graph mix mathematical identities with target-specific
instruction selection.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

from ..egraph.rewrite import Rewrite
from ..ir.expr import App, Expr, Var
from ..ir.parser import parse_expr
from ..ir.types import check_float_type

#: Conventional parameter names, positionally matching operator arguments.
PARAM_NAMES = ("x", "y", "z")


@dataclass(frozen=True)
class OperatorDef:
    """One target operator: name, signature, desugaring, cost, implementation."""

    name: str
    arg_types: tuple[str, ...]
    ret_type: str
    #: The real expression this operator approximates, over Var("x"/"y"/"z").
    approx: Expr
    #: Cost-model cost (what Chassis' search sees).
    cost: float
    #: True per-invocation latency in the performance simulator (hidden from
    #: the compiler; see DESIGN.md substitution 3).
    true_latency: float
    #: Linked implementation, or None to synthesize a correctly-rounded one.
    impl: Callable[..., float] | None = field(default=None, compare=False)
    #: Whether this operator was linked (L) or emulated/synthesized (E).
    linked: bool = False

    def __post_init__(self):
        check_float_type(self.ret_type)
        for ty in self.arg_types:
            check_float_type(ty)
        params = self.params
        extra = self.approx.free_vars() - set(params)
        if extra:
            raise ValueError(
                f"operator {self.name}: desugaring uses unknown params {sorted(extra)}"
            )

    @property
    def arity(self) -> int:
        return len(self.arg_types)

    @property
    def params(self) -> tuple[str, ...]:
        return PARAM_NAMES[: self.arity]

    @property
    def is_direct(self) -> bool:
        """True when the desugaring is exactly one real operator over the
        parameters in order (e.g. ``add.f64 -> (+ x y)``).  Direct operators
        give a one-to-one transcription from real expressions."""
        approx = self.approx
        return (
            isinstance(approx, App)
            and len(approx.args) == self.arity
            and all(
                isinstance(arg, Var) and arg.name == param
                for arg, param in zip(approx.args, self.params)
            )
        )

    @property
    def direct_real_op(self) -> str | None:
        """The real operator this directly implements, if :attr:`is_direct`."""
        return self.approx.op if self.is_direct else None  # type: ignore[union-attr]

    def pattern(self) -> Expr:
        """The application pattern ``name(x, y, ...)`` for rewrites."""
        return App(self.name, tuple(Var(p) for p in self.params))

    def desugar_rules(self) -> list[Rewrite]:
        """The two rewrites connecting this operator to its denotation.

        ``lower`` (real -> float) introduces the operator during instruction
        selection; ``desugar`` (float -> real) exposes an input program's
        mathematical meaning to the identity rules.
        """
        pattern = self.pattern()
        return [
            Rewrite(f"desugar-{self.name}", pattern, self.approx, tags=frozenset(["desugar"])),
            Rewrite(f"lower-{self.name}", self.approx, pattern, tags=frozenset(["lower"])),
        ]

    def with_cost(self, cost: float) -> "OperatorDef":
        """A copy of this operator with a different cost-model cost."""
        return replace(self, cost=cost)

    def with_impl(self, impl: Callable[..., float], linked: bool = True) -> "OperatorDef":
        """A copy of this operator with a (linked) implementation."""
        return replace(self, impl=impl, linked=linked)


def opdef(
    name: str,
    arg_types,
    ret_type: str,
    approx: str | Expr,
    latency: float,
    impl: Callable[..., float] | None = None,
    cost: float | None = None,
    linked: bool | None = None,
) -> OperatorDef:
    """Concise :class:`OperatorDef` constructor used by target modules.

    ``approx`` may be S-expression source over parameters ``x``/``y``/``z``.
    ``cost`` defaults to ``latency`` (targets usually replace it by an
    auto-tuned estimate); ``linked`` defaults to whether an implementation
    was supplied.
    """
    approx_expr = parse_expr(approx) if isinstance(approx, str) else approx
    return OperatorDef(
        name=name,
        arg_types=tuple(arg_types),
        ret_type=ret_type,
        approx=approx_expr,
        cost=latency if cost is None else cost,
        true_latency=latency,
        impl=impl,
        linked=(impl is not None) if linked is None else linked,
    )
