"""Cost-model auto-tuning (paper section 4.2).

If a target provides no cost information, Chassis "estimates the cost of
each operator by compiling and measuring the runtime of short programs that
call that operator in a hot loop".  We reproduce this against the
performance simulator: each operator is invoked on a small set of benign
inputs and the measured mean time becomes its cost-model cost.  The paper
stresses that these auto-tuned costs "are not very accurate, but seem to
suffice" — the measurement noise and input-dependence of the simulator give
our auto-tuned costs the same character (visible in the figure 10 scatter).
"""

from __future__ import annotations

import zlib

from .target import Target

#: Benign magnitudes used for hot-loop measurement inputs.
_PROBE_VALUES = (0.5, 0.75, 1.5, 2.5, 7.5, 0.1)


def _probe_args(op, index: int) -> tuple:
    """Arguments for one probe call, kept inside every operator's domain."""
    base = _PROBE_VALUES[index % len(_PROBE_VALUES)]
    return tuple(base + 0.125 * k for k in range(op.arity))


def autotune_costs(target: Target, rounds: int = 8) -> dict[str, float]:
    """Measure every operator of ``target`` in a hot loop; return costs."""
    from ..perf.simulator import PerfSimulator

    simulator = PerfSimulator(target)
    costs: dict[str, float] = {}
    for name, op in target.operators.items():
        probes = [_probe_args(op, i) for i in range(rounds)]
        # Stable digest, not hash(): per-process string-hash randomization
        # would give every worker process different auto-tuned costs.
        salt = zlib.crc32(name.encode("utf-8")) % 97
        measured = simulator.operator_run_time(name, probes, index0=salt)
        costs[name] = max(0.5, round(measured, 1))
    return costs


def autotuned(target: Target) -> Target:
    """A copy of ``target`` whose cost model comes from auto-tuning."""
    return target.extend(
        target.name,
        override_costs=autotune_costs(target),
        cost_source="auto-tune",
    )
