"""Target descriptions: a named set of operators plus cost-model data.

A target description (paper section 4.2) lists the operators available in a
compilation environment and the information Chassis needs to estimate the
speed of generated programs: per-operator scalar costs, literal and variable
costs, and how conditionals are priced ("scalar" style pays for the taken
branch, "vector" style pays for both branches plus a blend, as in AVX
masking or ``numpy.where``).

Targets can be *extended* (import + add/override operators), which is how
the built-in library targets share the core C arithmetic (paper: "a 'libm'
target may import the core C target").
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, replace
from typing import Callable, Iterable

from ..egraph.rewrite import Rewrite
from .operator import OperatorDef
from .synth import synthesize_impl

#: Conditional-cost styles.
SCALAR = "scalar"
VECTOR = "vector"


@dataclass(frozen=True)
class _OpSpec:
    """Adapter giving :mod:`repro.fpeval.machine` what it needs."""

    arg_types: tuple[str, ...]
    ret_type: str
    impl: Callable[..., float]


@dataclass(frozen=True)
class Target:
    """One compilation target: operators, costs, and conditional style."""

    name: str
    operators: dict[str, OperatorDef]
    #: Cost of materializing a literal, per float format; also defines which
    #: formats the target supports for constants.
    literal_costs: dict[str, float]
    variable_cost: float = 1.0
    if_style: str = SCALAR
    if_cost: float = 1.0
    description: str = ""
    #: Where the cost model came from ("auto-tune", "Fog [20]", ...).
    cost_source: str = "auto-tune"
    #: Whether operators are predominantly linked (L) or emulated (E), for
    #: the figure 6 table.
    linkage: str = "E"
    #: Per-operator interpreter/dispatch overhead added by the performance
    #: simulator (large for Python/Julia, ~0 for hardware targets).
    perf_overhead: float = 0.0
    #: Output syntax this target prefers ("c", "python", "julia", or "fpcore").
    output_format: str = "fpcore"

    def __post_init__(self):
        if self.if_style not in (SCALAR, VECTOR):
            raise ValueError(f"bad if_style {self.if_style!r}")
        for op_name, op in self.operators.items():
            if op_name != op.name:
                raise ValueError(f"operator registered under wrong name: {op_name}")

    # --- basic queries ------------------------------------------------------------

    def operator(self, name: str) -> OperatorDef:
        return self.operators[name]

    def supports(self, name: str) -> bool:
        return name in self.operators

    def float_types(self) -> tuple[str, ...]:
        """Formats this target computes in (from literal cost declarations)."""
        return tuple(sorted(self.literal_costs))

    def operators_returning(self, ty: str) -> list[OperatorDef]:
        return [op for op in self.operators.values() if op.ret_type == ty]

    # --- rewrites and lowering ---------------------------------------------------------

    def desugar_rules(self) -> list[Rewrite]:
        """Desugar/lower rewrites for every operator (paper section 5.1)."""
        rules: list[Rewrite] = []
        for op in self.operators.values():
            rules.extend(op.desugar_rules())
        return rules

    def desugar_expr(self, expr):
        """Replace every target operator by its real-number denotation.

        The result is the program's *desugaring* (paper section 4.1): the
        real expression whose rounding Chassis promises to preserve.  Real
        operators, conditionals and predicates pass through untouched.
        """
        from ..ir.expr import App

        if not isinstance(expr, App):
            return expr
        args = tuple(self.desugar_expr(a) for a in expr.args)
        op = self.operators.get(expr.op)
        if op is None:
            return App(expr.op, args)
        return op.approx.substitute(dict(zip(op.params, args)))

    def direct_index(self) -> dict[tuple[str, str], OperatorDef]:
        """Map ``(real_op, ret_type)`` to the cheapest *direct* operator.

        Direct operators desugar to exactly one real operator, so they give
        a syntax-directed transcription of real expressions — used to lower
        target-agnostic (Herbie) outputs onto this target.
        """
        def rank(op: OperatorDef, real: str) -> tuple:
            # Prefer the canonically-named accurate operator (exp.f64 for
            # exp) over approximate variants (fast_exp.f64) which merely
            # share the desugaring; then prefer the more expensive (in
            # practice more accurate) implementation.
            base = op.name.partition(".")[0]
            return (base == real, op.cost)

        index: dict[tuple[str, str], OperatorDef] = {}
        _REAL_TO_BASE = {"+": "add", "-": "sub", "*": "mul", "/": "div"}
        for op in self.operators.values():
            real = op.direct_real_op
            if real is None:
                continue
            key = (real, op.ret_type)
            base_name = _REAL_TO_BASE.get(real, real)
            if key not in index or rank(op, base_name) > rank(index[key], base_name):
                index[key] = op
        return index

    # --- evaluation ------------------------------------------------------------------

    def impl_registry(self) -> dict[str, _OpSpec]:
        """Operator implementations for the evaluation machine.

        Unlinked operators get a synthesized correctly-rounded
        implementation derived from their desugaring (paper section 4.2).
        Computed lazily once per target and cached on the instance.
        """
        cached = _IMPL_CACHE.get(id(self))
        if cached is not None:
            return cached
        registry: dict[str, _OpSpec] = {}
        for op in self.operators.values():
            impl = op.impl
            if impl is None:
                impl = synthesize_impl(op.approx, op.params, op.ret_type)
            registry[op.name] = _OpSpec(op.arg_types, op.ret_type, impl)
        _IMPL_CACHE[id(self)] = registry
        weakref.finalize(self, _IMPL_CACHE.pop, id(self), None)
        return registry

    # --- derivation ----------------------------------------------------------------------

    def extend(
        self,
        name: str,
        add_operators: Iterable[OperatorDef] = (),
        remove_operators: Iterable[str] = (),
        override_costs: dict[str, float] | None = None,
        **changes,
    ) -> "Target":
        """Derive a new target by importing this one and modifying it."""
        ops = dict(self.operators)
        for op_name in remove_operators:
            ops.pop(op_name, None)
        for op in add_operators:
            ops[op.name] = op
        if override_costs:
            for op_name, cost in override_costs.items():
                ops[op_name] = ops[op_name].with_cost(cost)
        return replace(self, name=name, operators=ops, **changes)


# Implementation registries are pure functions of the (frozen) target, so a
# per-instance cache keyed by id() is safe as long as an entry never
# outlives its target: a weakref.finalize evicts it at collection, which
# both prevents recycled ids from serving stale registries and stops the
# cache retaining every Target ever evaluated (it used to pin them all via
# a keepalive list).
_IMPL_CACHE: dict[int, dict[str, _OpSpec]] = {}
