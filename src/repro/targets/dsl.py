"""The S-expression target description language (paper figure 3).

Users describe targets in a small DSL::

    (define-operator (rcp.f32 [x binary32]) binary32
      #:approx (/ 1 x)
      #:link rcp32
      #:cost 4.0)

    (define-operator (/.f32 [x binary32] [y binary32]) binary32
      #:approx (/ x y)
      #:cost 10.0)

    (define-target avx
      #:if-cost 5
      #:if-style vector
      #:literals ([binary32 1])
      #:operators (rcp.f32 /.f32))

``#:link`` names a Python callable in the linking registry passed to
:func:`parse_target_description` (our stand-in for a shared-library symbol).
Operators without ``#:link`` get synthesized correctly-rounded
implementations; operators without ``#:cost`` are auto-tuned afterwards via
:func:`repro.targets.autotune.autotuned`.  ``#:import`` pulls in another
target's operators, enabling the paper's "libm imports core C" pattern.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..ir.expr import Var
from ..ir.parser import expr_from_sexpr, parse_sexprs
from ..ir.types import check_float_type
from .operator import PARAM_NAMES, OperatorDef
from .target import SCALAR, VECTOR, Target


class TargetDSLError(ValueError):
    """Malformed target description source."""


def parse_target_description(
    source: str,
    link_registry: Mapping[str, Callable[..., float]] | None = None,
    import_registry: Mapping[str, Target] | None = None,
) -> Target:
    """Parse a target description file; returns the (single) target defined.

    ``link_registry`` resolves ``#:link`` names to Python callables;
    ``import_registry`` resolves ``#:import`` names to existing targets.
    """
    link_registry = link_registry or {}
    import_registry = import_registry or {}
    operators: dict[str, OperatorDef] = {}
    target: Target | None = None

    for form in parse_sexprs(source):
        if not (isinstance(form, list) and form):
            raise TargetDSLError(f"expected a definition form, got {form!r}")
        head = form[0]
        if head == "define-operator":
            op = _parse_operator(form, link_registry)
            operators[op.name] = op
        elif head == "define-target":
            if target is not None:
                raise TargetDSLError("multiple define-target forms")
            target = _parse_target(form, operators, import_registry)
        else:
            raise TargetDSLError(f"unknown form {head!r}")
    if target is None:
        raise TargetDSLError("no define-target form found")
    return target


def _keywords(items: list) -> dict[str, object]:
    """Parse a ``#:key value`` tail into a dict."""
    out: dict[str, object] = {}
    i = 0
    while i < len(items):
        key = items[i]
        if not (isinstance(key, str) and key.startswith("#:")):
            raise TargetDSLError(f"expected #:keyword, got {key!r}")
        if i + 1 >= len(items):
            raise TargetDSLError(f"keyword {key} missing a value")
        out[key[2:]] = items[i + 1]
        i += 2
    return out


def _parse_operator(form: list, link_registry) -> OperatorDef:
    if len(form) < 3:
        raise TargetDSLError("define-operator needs a signature and return type")
    signature, ret_type = form[1], form[2]
    if not (isinstance(signature, list) and signature):
        raise TargetDSLError(f"bad operator signature {signature!r}")
    name = signature[0]
    params: list[str] = []
    arg_types: list[str] = []
    for arg in signature[1:]:
        if not (isinstance(arg, list) and len(arg) == 2):
            raise TargetDSLError(f"bad operator argument {arg!r}")
        params.append(arg[0])
        arg_types.append(check_float_type(arg[1]))
    check_float_type(ret_type)

    options = _keywords(form[3:])
    if "approx" not in options:
        raise TargetDSLError(f"operator {name} requires #:approx (its desugaring)")
    approx = expr_from_sexpr(options["approx"])
    # Normalize user parameter names to the canonical x/y/z convention.
    renaming = {user: Var(canon) for user, canon in zip(params, PARAM_NAMES)}
    approx = approx.substitute(renaming)

    impl = None
    if "link" in options:
        link_name = options["link"]
        if isinstance(link_name, list):
            link_name = link_name[-1]  # (lib "libavx" rcpps) -> rcpps
        impl = link_registry.get(str(link_name))
        if impl is None:
            raise TargetDSLError(f"operator {name}: no linked symbol {link_name!r}")

    cost = float(options["cost"]) if "cost" in options else 1.0
    return OperatorDef(
        name=name,
        arg_types=tuple(arg_types),
        ret_type=ret_type,
        approx=approx,
        cost=cost,
        true_latency=cost,
        impl=impl,
        linked=impl is not None,
    )


def _parse_target(form: list, operators, import_registry) -> Target:
    if len(form) < 2 or not isinstance(form[1], str):
        raise TargetDSLError("define-target needs a name")
    name = form[1]
    options = _keywords(form[2:])

    ops: dict[str, OperatorDef] = {}
    for import_name in _as_list(options.get("import", [])):
        imported = import_registry.get(str(import_name))
        if imported is None:
            raise TargetDSLError(f"unknown import target {import_name!r}")
        ops.update(imported.operators)
    for op_name in _as_list(options.get("operators", [])):
        if op_name not in operators:
            raise TargetDSLError(f"target {name}: unknown operator {op_name!r}")
        ops[op_name] = operators[op_name]
    if not ops:
        raise TargetDSLError(f"target {name} defines no operators")

    literals: dict[str, float] = {}
    for entry in _as_list(options.get("literals", [])):
        if not (isinstance(entry, list) and len(entry) == 2):
            raise TargetDSLError(f"bad literal cost entry {entry!r}")
        literals[check_float_type(entry[0])] = float(entry[1])
    if not literals:
        literals = {ty: 1.0 for op in ops.values() for ty in (op.ret_type,)}

    if_style = str(options.get("if-style", SCALAR))
    if if_style not in (SCALAR, VECTOR):
        raise TargetDSLError(f"bad #:if-style {if_style!r}")

    return Target(
        name=name,
        operators=ops,
        literal_costs=literals,
        variable_cost=float(options.get("var-cost", 1.0)),
        if_style=if_style,
        if_cost=_parse_if_cost(options.get("if-cost", 1.0)),
        description=str(options.get("description", "")).strip('"'),
        cost_source="target description",
    )


def _parse_if_cost(value) -> float:
    # The paper writes "#:if-cost (max 5)" for vector targets; accept both
    # a bare number and that (max N) form.
    if isinstance(value, list) and len(value) == 2 and value[0] == "max":
        return float(value[1])
    return float(value)


def _as_list(value) -> list:
    if isinstance(value, list):
        return value
    return [value]
