"""Entry point for ``python -m repro``.

The ``__name__`` guard matters: multiprocessing start methods that
re-import ``__main__`` (spawn) must not re-run the CLI in worker
processes.
"""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
