"""Process-wide counters and latency histograms: the metrics half of
:mod:`repro.obs`.

One :class:`MetricsRegistry` (the module-level :data:`METRICS`) holds
every metric family in the process.  Instrumentation sites resolve a
child by ``(family name, label set)`` and bump it; the serve front-end's
``/metrics`` route and ``repro health`` render the whole registry in the
Prometheus text exposition format (version 0.0.4).

Design points:

* **Fixed-bucket histograms** — latency distributions are recorded into a
  static bucket ladder (no per-observation allocation beyond one index
  bump), with cumulative ``_bucket{le=...}``, ``_sum`` and ``_count``
  lines on exposition, exactly the Prometheus histogram contract.
* **Cheap when disabled** — ``REPRO_METRICS=0`` (or
  ``METRICS.enabled = False``) turns every ``inc``/``observe`` into a
  single attribute check.  Metrics are *on* by default: every site is
  coarse-grained (per phase, per saturation, per request — never
  per-point), so the enabled cost is a lock-free int/float bump behind
  one registry lock acquisition.
* **Label children are cached** — ``registry.counter(name, phase="improve")``
  returns the same child object every call, so hot sites may also resolve
  once and keep the handle.
"""

from __future__ import annotations

import math
import os
import threading
from bisect import bisect_left

#: Latency bucket ladder (seconds) shared by every duration histogram:
#: spans sub-millisecond phase hits through multi-minute compiles.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.025, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0,
)

#: Power-of-two count ladder for size-shaped histograms (oracle batch
#: sizes): single points through full benchsuite sample sets.
COUNT_BUCKETS = (
    1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0,
    2048.0, 4096.0,
)


def _format_value(value: float) -> str:
    """Prometheus sample-value formatting (integers stay integral)."""
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [
        f'{key}="{_escape(value)}"' for key, value in labels
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class Counter:
    """A monotonically increasing sample (one label set of a family)."""

    __slots__ = ("_registry", "labels", "value")

    def __init__(self, registry: "MetricsRegistry", labels):
        self._registry = registry
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self.value += amount

    def _lines(self, name: str):
        yield f"{name}{_format_labels(self.labels)} {_format_value(self.value)}"


class Histogram:
    """A fixed-bucket distribution (one label set of a family)."""

    __slots__ = ("_registry", "labels", "buckets", "counts", "sum", "count")

    def __init__(self, registry: "MetricsRegistry", labels, buckets):
        self._registry = registry
        self.labels = labels
        self.buckets = buckets
        #: Per-bucket counts; one extra slot for the +Inf overflow bucket.
        self.counts = [0] * (len(buckets) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1

    def _lines(self, name: str):
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            le = _format_labels(self.labels, f'le="{_format_value(bound)}"')
            yield f"{name}_bucket{le} {cumulative}"
        le = _format_labels(self.labels, 'le="+Inf"')
        yield f"{name}_bucket{le} {self.count}"
        yield f"{name}_sum{_format_labels(self.labels)} {_format_value(self.sum)}"
        yield f"{name}_count{_format_labels(self.labels)} {self.count}"


class MetricsRegistry:
    """Every metric family in one process, renderable as Prometheus text."""

    def __init__(self, enabled: bool | None = None):
        if enabled is None:
            enabled = os.environ.get("REPRO_METRICS", "1") != "0"
        self.enabled = enabled
        self._lock = threading.RLock()
        #: family name -> (kind, help text)
        self._families: dict[str, tuple[str, str]] = {}
        #: (family name, sorted label items) -> metric child
        self._children: dict[tuple, object] = {}
        #: family name -> zero-arg callable returning a float (gauges
        #: computed at exposition time, e.g. session-owned totals).
        self._gauge_fns: dict[str, tuple[str, object]] = {}

    # --- registration ---------------------------------------------------------------

    def _child(self, kind: str, name: str, help_text: str, labels: dict, factory):
        label_items = tuple(sorted(labels.items()))
        key = (name, label_items)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                self._families[name] = (kind, help_text)
            elif family[0] != kind:
                raise ValueError(
                    f"metric {name!r} already registered as a {family[0]}"
                )
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = factory(label_items)
            return child

    def counter(self, name: str, help_text: str = "", **labels) -> Counter:
        """The counter child for this (family, label set), creating both."""
        return self._child(
            "counter", name, help_text, labels,
            lambda items: Counter(self, items),
        )

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels,
    ) -> Histogram:
        """The histogram child for this (family, label set), creating both."""
        return self._child(
            "histogram", name, help_text, labels,
            lambda items: Histogram(self, items, buckets),
        )

    def gauge_fn(self, name: str, fn, help_text: str = "") -> None:
        """Register a gauge computed by ``fn()`` at exposition time.

        Re-registering a name replaces the callable (a restarted server
        re-binding its session must not accumulate dead closures).
        """
        with self._lock:
            self._gauge_fns[name] = (help_text, fn)

    # --- exposition -------------------------------------------------------------------

    def exposition(self) -> str:
        """The whole registry in Prometheus text format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            families = sorted(self._families.items())
            children: dict[str, list] = {}
            for (name, _labels), child in self._children.items():
                children.setdefault(name, []).append(child)
            gauges = sorted(self._gauge_fns.items())
        for name, (kind, help_text) in families:
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} {kind}")
            for child in sorted(
                children.get(name, ()), key=lambda c: c.labels
            ):
                lines.extend(child._lines(name))
        for name, (help_text, fn) in gauges:
            try:
                value = float(fn())
            except Exception:  # a broken gauge must not break scraping
                continue
            if help_text:
                lines.append(f"# HELP {name} {help_text}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(value)}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every family and child (test isolation)."""
        with self._lock:
            self._families.clear()
            self._children.clear()
            self._gauge_fns.clear()


#: The process-wide registry every instrumentation site records into.
METRICS = MetricsRegistry()
