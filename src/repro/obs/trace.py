"""Low-overhead nestable spans: the tracing half of :mod:`repro.obs`.

A :class:`Trace` is one job's recording — a flat list of span records with
parent links — and a :class:`Tracer` is the thread-local recorder armed
over a region with :func:`tracing`.  Instrumentation sites call
:func:`span`, which is **near-zero-cost when no tracer is armed**: one
thread-local read and an immediate yield (the disabled path allocates no
span, takes no lock, and reads no clock).  That property is what lets the
pipeline, the improvement loop, the e-graph runner and the exec layer stay
permanently instrumented while tracing is off by default.

Spans record wall-relative start offsets (``perf_counter`` deltas against
a per-trace epoch that also carries a ``time.time()`` anchor), so traces
recorded in *different processes* — pooled compile workers ship theirs
back through ``JobOutcome`` — can be merged onto one absolute timeline by
:func:`chrome_trace`, which emits Chrome trace-event JSON loadable in
``chrome://tracing`` and Perfetto.

A Tracer is deliberately single-threaded: it is armed per compilation on
the thread doing the work (serve handler thread, submit worker, pool
worker process), never shared.  Traces, by contrast, are plain data
(:meth:`Trace.as_dict` / :func:`trace_from_dict`) and travel freely.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager

#: Span-record keys (each span is a plain dict, cheap to serialize):
#: ``name`` str, ``start`` float seconds since the trace epoch, ``dur``
#: float seconds, ``parent`` int index into the trace's span list or None,
#: ``attrs`` dict of JSON-able attributes.

_LOCAL = threading.local()


class Trace:
    """One job's span recording plus the clock anchors needed to merge it."""

    def __init__(self, name: str = "", pid: int | None = None):
        self.name = name
        self.pid = os.getpid() if pid is None else pid
        #: Wall-clock anchor: ``epoch_wall + span["start"]`` is an absolute
        #: timestamp comparable across processes.
        self.epoch_wall = time.time()
        self.epoch_perf = time.perf_counter()
        self.spans: list[dict] = []

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "pid": self.pid,
            "epoch_wall": self.epoch_wall,
            "spans": self.spans,
        }

    def span_names(self) -> list[str]:
        return [record["name"] for record in self.spans]

    def find(self, name: str) -> list[dict]:
        """Every span record with this name, in recording order."""
        return [record for record in self.spans if record["name"] == name]

    def phase_seconds(self) -> dict[str, float]:
        """Summed duration per ``phase.*`` span (the timing breakdown)."""
        totals: dict[str, float] = {}
        for record in self.spans:
            name = record["name"]
            if name.startswith("phase."):
                phase = name[len("phase."):]
                totals[phase] = totals.get(phase, 0.0) + record["dur"]
        return totals


def trace_from_dict(payload: dict) -> Trace:
    """Rebuild a shipped trace (e.g. from a pooled ``JobOutcome``)."""
    trace = Trace(name=payload.get("name", ""), pid=payload.get("pid", 0))
    trace.epoch_wall = payload.get("epoch_wall", 0.0)
    trace.spans = list(payload.get("spans", []))
    return trace


class Tracer:
    """The active recorder for one thread; holds the open-span stack."""

    __slots__ = ("trace", "_stack")

    def __init__(self, trace: Trace):
        self.trace = trace
        self._stack: list[int] = []

    def begin(self, name: str, attrs: dict) -> dict:
        record = {
            "name": name,
            "start": time.perf_counter() - self.trace.epoch_perf,
            "dur": 0.0,
            "parent": self._stack[-1] if self._stack else None,
            "attrs": attrs,
        }
        self.trace.spans.append(record)
        self._stack.append(len(self.trace.spans) - 1)
        return record

    def end(self, record: dict) -> None:
        record["dur"] = (
            time.perf_counter() - self.trace.epoch_perf - record["start"]
        )
        if self._stack:
            self._stack.pop()


def current_tracer() -> Tracer | None:
    """The tracer armed on this thread, if any."""
    return getattr(_LOCAL, "tracer", None)


@contextmanager
def tracing(trace: Trace):
    """Arm ``trace`` as this thread's recording for the enclosed region.

    Re-entrant like the engine-stats sink: an inner arming shadows the
    outer one and the previous tracer is restored on exit.
    """
    previous = getattr(_LOCAL, "tracer", None)
    _LOCAL.tracer = Tracer(trace)
    try:
        yield trace
    finally:
        _LOCAL.tracer = previous


@contextmanager
def span(name: str, **attrs):
    """Record a nested span around the enclosed work (no-op when untraced).

    Yields the span record (a dict) so callers can attach attributes
    discovered mid-span — ``if s is not None: s["attrs"]["x"] = ...`` —
    or ``None`` when no tracer is armed.
    """
    tracer = getattr(_LOCAL, "tracer", None)
    if tracer is None:
        yield None
        return
    record = tracer.begin(name, attrs)
    try:
        yield record
    finally:
        tracer.end(record)


# --- Chrome trace-event export ----------------------------------------------------


def chrome_trace(traces: list[Trace | dict]) -> dict:
    """Merge traces (possibly from many processes) into Chrome trace JSON.

    Returns the ``{"traceEvents": [...]}`` object format; every span
    becomes a complete (``"ph": "X"``) event with microsecond timestamps
    on one absolute timeline, normalized so the earliest span starts at
    ts=0.  Loadable in ``chrome://tracing`` and Perfetto.
    """
    events: list[dict] = []
    for trace in traces:
        payload = trace.as_dict() if isinstance(trace, Trace) else trace
        base_us = payload.get("epoch_wall", 0.0) * 1e6
        pid = payload.get("pid", 0)
        label = payload.get("name", "")
        for record in payload.get("spans", ()):
            args = dict(record.get("attrs") or {})
            if label:
                args.setdefault("job", label)
            events.append({
                "name": record["name"],
                "cat": "repro",
                "ph": "X",
                "ts": base_us + record["start"] * 1e6,
                "dur": record["dur"] * 1e6,
                "pid": pid,
                "tid": 0,
                "args": args,
            })
    if events:
        origin = min(event["ts"] for event in events)
        for event in events:
            event["ts"] -= origin
    events.sort(key=lambda event: (event["pid"], event["ts"]))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str | os.PathLike, traces: list[Trace | dict]) -> int:
    """Write merged Chrome trace JSON to ``path``; returns the event count."""
    payload = chrome_trace(traces)
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(payload["traceEvents"])
