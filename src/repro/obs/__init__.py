"""``repro.obs``: end-to-end tracing and metrics for the whole system.

Two complementary halves, both engineered to be near-zero-cost when off:

* :mod:`repro.obs.trace` — a thread-local :class:`Tracer` of nestable
  :func:`span`\\ s recording wall-clock, attributes and parent links into
  a per-job :class:`Trace`; merged across pooled worker processes into
  Chrome trace-event JSON (:func:`chrome_trace`, Perfetto-loadable).
* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters and fixed-bucket latency histograms, rendered in Prometheus
  text exposition format by the serve ``/metrics`` route.

Instrumented layers: the six pipeline phases (``core/pipeline.py``),
improvement-loop iterations and saturation-cache decisions (``core/loop``,
``core/isel``), ``run_rules`` search/apply (``egraph/runner``), oracle
lock wait-vs-hold and evaluation counts (``session``, ``rival/eval``),
the exec build/run/validate path, and serve request handling.  Pooled
compile jobs ship their spans and engine counters back through
``JobOutcome``, so ``/health`` and ``--trace`` cover ``jobs >= 2``
compiles, not just inline ones.
"""

from .metrics import DEFAULT_BUCKETS, METRICS, Counter, Histogram, MetricsRegistry
from .trace import (
    Trace,
    Tracer,
    chrome_trace,
    current_tracer,
    span,
    trace_from_dict,
    tracing,
    write_chrome_trace,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "METRICS",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Trace",
    "Tracer",
    "chrome_trace",
    "current_tracer",
    "span",
    "trace_from_dict",
    "tracing",
    "write_chrome_trace",
]
