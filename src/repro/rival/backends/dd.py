"""Rung 2 of the oracle cascade: batched double-double interval arithmetic.

The longdouble sweep (rung 1) has ~11 bits of headroom over binary64 —
not enough for cancellation-dominated sample sets, where ordinal-uniform
sampling concentrates mass at tiny magnitudes and ``1 - cos(x)``-style
subtractions wipe out 40+ bits.  This rung re-evaluates the residue in
**double-double** arithmetic: every value is an unevaluated sum of two
binary64 floats ``hi + lo`` with ``|lo| <= ulp(hi)/2``, giving ~106
effective significand bits, built from the classic error-free
transforms (Knuth two-sum, Dekker split/two-product — numpy has no
vectorized fma, so products split).  Everything is plain numpy ufunc
arithmetic over float64 arrays, so a whole residue block is swept in a
handful of vector passes.

The acceptance contract is the same as rung 1's: each operator produces
an outward-widened *interval* (endpoints are double-double values) whose
margin strictly exceeds the kernel's worst-case error, so every lane's
enclosure contains the true real value; a point is settled only when
both endpoints round to the same single nonzero finite binary64 value.
Everything else — possible domain errors, non-unique rounding, rounding
ties, results that round to zero or into the subnormal range, operators
without a dd kernel — escalates to the mpmath ladder.  Bit-identity with
the ladder therefore holds by construction.

Soundness notes:

* **Margins.**  Error-free transforms are exact; dd add/mul/div/sqrt
  have relative error below ``2**-103`` (Joldes/Muller/Popescu-style
  bounds, degraded slightly by the fma-free two-product), and the
  transcendental kernels below ``2**-97`` in their guarded ranges.  The
  widening margins (``2**-100`` arithmetic, ``2**-95`` trig, ``2**-92``
  exp, ``2**-90`` + ``2**-95``-absolute log) leave 4-30x measured
  headroom, plus an absolute ``2**-1070`` term covering underflow-inexact
  error terms, and per-lane ``|k| * 2**-102`` for trig argument
  reduction (the dd pi/2 constant's representation error scales with
  the quadrant count).
* **Certain verdicts need only containment.**  Unlike rung 1, whose
  ``cert`` lanes rely on enclosure *nesting* inside the ladder's
  first-rung margins, a dd enclosure is far tighter than any ladder
  rung's — but a certain domain violation (e.g. a sqrt argument whose
  enclosure upper endpoint is negative) is safe from containment alone:
  the true value is then certainly outside the domain, and the ladder
  classifies such a point as a domain error on every path (a certain
  violation at some precision raises immediately; a possible violation
  persisting at maximum precision raises the same error).
* **Rounding is exact or refused.**  A dd value is rounded to binary64
  by comparing ``lo`` against half the gap to ``hi``'s neighbor — exact
  because both are binary64 quantities.  Rounding *ties*, gaps that
  underflow, near-overflow endpoints, and results inside (or near) the
  subnormal range — where the ladder's compound rounding (53-bit
  significand, then storage cast) can double-round differently from a
  single round-to-nearest — all escalate instead of guessing.
* **Binary64 targets only.**  Narrower formats have >= 29 bits of
  headroom in rung 1's float64 sweep already; the cancellation residue
  this rung exists for is a binary64 phenomenon.  (The rung also works
  on platforms whose ``long double`` aliases ``double``, where rung 1
  stands down entirely.)
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Sequence

import mpmath
import numpy as np
from mpmath import mp, mpf

from ...ir.expr import App, Const, Expr, Num, Var
from ...ir.types import F64
from .base import DOMAIN_ERROR, INVALID, OK, PointResult
from .rungs import ProgramCache, Rung, Unsupported

# --- widening margins ---------------------------------------------------------

#: Relative margin for dd add/sub/mul/div/sqrt (worst observed bound
#: ~2**-103.4 for fma-free division): >= 10x headroom.
_REL_ARITH = 2.0 ** -100
#: sin/cos kernels: series roundoff ~15 Horner steps at ~2**-103 each.
_REL_TRIG = 2.0 ** -95
#: exp/exp2: Cody-Waite-free reduction pays |k| * 2**-107.5 with
#: |k| <= 1100, so ~2**-97.4 worst-case relative error.
_REL_EXP = 2.0 ** -92
#: expm1 loses a little more cancelling the reduced exponential's 1.
_REL_EXPM1 = 2.0 ** -88
#: log: two Newton corrections leave the exp-kernel error, relative for
#: large results plus a floor absolute term near log(1) = 0 (the Newton
#: residual is the exp kernel's *relative* error, ~2**-98.2 observed
#: worst-case absolute across 600 binades of arguments).
_REL_LOG = 2.0 ** -90
_ABS_LOG = 2.0 ** -95
#: Absolute widening floor: covers underflow-inexact error terms of the
#: error-free transforms (exact only up to the subnormal boundary) and
#: keeps every margin strictly positive.
_TINY = 2.0 ** -1070
#: Per-quadrant absolute reduction error for sin/cos: the dd pi/2
#: constant's ~2**-106 representation error plus the lo-limb product
#: roundoff (~k * 2**-105.3) give ~k * 2**-104.9 observed worst-case;
#: 2**-102 keeps >4x headroom.
_RED_STEP = 2.0 ** -102

#: Trig argument reduction trusts np.rint(a * 2/pi) only while the
#: product stays well under 2**52; larger arguments escalate.
_MAX_TRIG_ARG = 2.0 ** 45

#: 2**27 + 1, Dekker's splitter for 53-bit significands.
_SPLITTER = 134217729.0

_INV_LN2_F = 1.4426950408889634  # float64 nearest to 1/ln 2 (seed only)


# --- error-free transforms ----------------------------------------------------


def two_sum(a, b):
    """Knuth's exact addition: returns (s, e) with s = fl(a+b), s+e = a+b.

    Exact for all finite inputs whose sum does not overflow (underflow is
    harmless: subnormal sums are exact).
    """
    s = a + b
    bb = s - a
    return s, (a - (s - bb)) + (b - bb)


def quick_two_sum(a, b):
    """Dekker's fast renormalization; requires |a| >= |b| (or a == 0)."""
    s = a + b
    return s, b - (s - a)


def split(a):
    """Dekker's splitter: a == hi + lo with 26/27-bit halves.

    Overflows (to inf/nan limbs) for |a| >= ~2**996; downstream sealing
    escalates those lanes.
    """
    t = _SPLITTER * a
    hi = t - (t - a)
    return hi, a - hi


def two_prod(a, b):
    """Exact product without fma: p = fl(a*b), p + e = a*b.

    Exact while neither the split nor the product term underflows to the
    subnormal range; below that the error term is merely bounded by one
    subnormal ulp, which the _TINY widening floor covers.
    """
    p = a * b
    ah, al = split(a)
    bh, bl = split(b)
    return p, ((ah * bh - p) + ah * bl + al * bh) + al * bl


# --- double-double value arithmetic (pairs of float64 arrays) -----------------


def dd_add(a, b):
    s1, s2 = two_sum(a[0], b[0])
    t1, t2 = two_sum(a[1], b[1])
    s1, s2 = quick_two_sum(s1, s2 + t1)
    return quick_two_sum(s1, s2 + t2)


def dd_neg(a):
    return (-a[0], -a[1])


def dd_sub(a, b):
    return dd_add(a, dd_neg(b))


def dd_mul(a, b):
    p1, p2 = two_prod(a[0], b[0])
    return quick_two_sum(p1, p2 + a[0] * b[1] + a[1] * b[0])


def dd_mul_f(a, f):
    """dd * float64 (one exact product + the lo-limb correction)."""
    p1, p2 = two_prod(a[0], f)
    return quick_two_sum(p1, p2 + a[1] * f)


def dd_div(a, b):
    q1 = a[0] / b[0]
    r = dd_sub(a, dd_mul_f(b, q1))
    q2 = r[0] / b[0]
    r = dd_sub(r, dd_mul_f(b, q2))
    q3 = r[0] / b[0]
    q, qe = quick_two_sum(q1, q2)
    return dd_add((q, qe), (q3, np.zeros_like(np.asarray(q3))))


def dd_sqrt(a):
    """Karp-Markstein: one Newton correction of the float64 sqrt."""
    s = np.sqrt(a[0])
    e = dd_sub(a, two_prod(s, s))
    with np.errstate(all="ignore"):
        d = np.where(s > 0, e[0] / (s + s), np.where(a[0] == 0, 0.0, np.nan))
    return quick_two_sum(s, d)


def dd_lt(a, b):
    return (a[0] < b[0]) | ((a[0] == b[0]) & (a[1] < b[1]))


def dd_select(mask, a, b):
    return (np.where(mask, a[0], b[0]), np.where(mask, a[1], b[1]))


def dd_min(a, b):
    return dd_select(dd_lt(a, b), a, b)


def dd_max(a, b):
    return dd_select(dd_lt(a, b), b, a)


def _ge_zero(a):
    return (a[0] > 0) | ((a[0] == 0) & (a[1] >= 0))


def _gt_zero(a):
    return (a[0] > 0) | ((a[0] == 0) & (a[1] > 0))


def _le_zero(a):
    return (a[0] < 0) | ((a[0] == 0) & (a[1] <= 0))


def _lt_zero(a):
    return (a[0] < 0) | ((a[0] == 0) & (a[1] < 0))


# --- dd constants and series coefficients -------------------------------------


def _const_mp(x) -> tuple[float, float]:
    hi = float(x)
    return hi, float(x - mpf(hi))


def _const_frac(frac: Fraction) -> tuple[float, float]:
    hi = float(frac)
    return hi, float(frac - Fraction(hi))


with mp.workprec(200):
    _PI = _const_mp(mpmath.pi)
    _E = _const_mp(mpmath.e)
    _PI_2 = _const_mp(mpmath.pi / 2)
    _LN2 = _const_mp(mpmath.ln(2))
    _INV_LN2 = _const_mp(1 / mpmath.ln(2))
    _INV_LN10 = _const_mp(1 / mpmath.ln(10))
    _TWO_OVER_PI_F = float(2 / mpmath.pi)

#: expm1(r) = r * Q(r) with Q(r) = sum r^j / (j+1)!; 25 terms keep the
#: truncation below 2**-118 on |r| <= ln(2)/2.
_EXPM1_Q = tuple(
    _const_frac(Fraction(1, math.factorial(j + 1))) for j in range(25)
)
#: cos/sin over |r| <= 0.8 (pi/4 plus reduction slop): 15 even/odd terms
#: keep truncation below 2**-106.
_COS_C = tuple(
    _const_frac(Fraction((-1) ** m, math.factorial(2 * m))) for m in range(15)
)
_SIN_C = tuple(
    _const_frac(Fraction((-1) ** m, math.factorial(2 * m + 1)))
    for m in range(15)
)
#: (cos(r) - 1) / t as a series in t = r*r: sum_{m>=1} (-1)^m t^(m-1)/(2m)!
_COSM1_C = tuple(
    _const_frac(Fraction((-1) ** m, math.factorial(2 * m)))
    for m in range(1, 16)
)

_F64_HALF_PI = math.pi / 2
_F64_TWO_PI = 2 * math.pi
_F64_PI = math.pi


def _poly(t, coefs):
    """Horner evaluation of sum coefs[j] * t^j in dd."""
    p = coefs[-1]
    for c in reversed(coefs[:-1]):
        p = dd_add(dd_mul(p, t), c)
    return p


# --- dd transcendental kernels ------------------------------------------------


def _exp_parts(a):
    """Shared exp reduction: returns (exp(r), expm1(r), k) with
    a = k*ln2 + r, |r| <= ln(2)/2 for in-range lanes.  Lanes with
    |a| > 830 (past float64 overflow one way, past underflow-to-zero
    the other) are poisoned with NaN so the interval layer escalates
    them: clipping k silently would evaluate the expm1 polynomial far
    outside its reduced domain and return garbage that *looks* finite."""
    a0 = np.asarray(a[0], dtype=np.float64)
    k = np.rint(a0 * _INV_LN2_F)
    bad = ~np.isfinite(k) | (np.abs(a0) > 830.0)
    k = np.where(bad, 0.0, k)
    r = dd_sub(a, dd_mul_f(_LN2, k))
    em1 = dd_mul(r, _poly(r, _EXPM1_Q))
    poison = np.where(bad, np.nan, 0.0)
    em1 = (em1[0] + poison, em1[1] + poison)
    return dd_add(em1, (1.0, 0.0)), em1, k


def dd_exp(a):
    p, _, k = _exp_parts(a)
    ki = k.astype(np.int64)
    return (np.ldexp(p[0], ki), np.ldexp(p[1], ki))


def dd_expm1(a):
    # k == 0 lanes take the direct series (full relative accuracy for
    # tiny arguments — the dd pair (1, r) holds 1 + r exactly); others
    # subtract 1 from the scaled exponential, which cancels at most
    # ~1.8x (|expm1| >= 0.29 once |a| > ln(2)/2).
    p, em1, k = _exp_parts(a)
    ki = k.astype(np.int64)
    scaled = (np.ldexp(p[0], ki), np.ldexp(p[1], ki))
    return dd_select(k == 0, em1, dd_add(scaled, (-1.0, 0.0)))


def dd_log(a):
    """log via two Newton corrections of the float64 seed:
    y <- y + (a * exp(-y) - 1).  The first step squares the seed's
    ~2**-52 relative error away; the second removes the first step's
    residual, leaving only the exp kernel's error (absolute ~2**-101
    near log = 0, relative ~2**-96 elsewhere — hence the log margins).
    Arguments >= ~2**996 overflow the Dekker split and escalate."""
    y = (np.log(np.asarray(a[0], dtype=np.float64)), np.zeros_like(a[0]))
    for _ in range(2):
        p = dd_mul(a, dd_exp(dd_neg(y)))
        y = dd_add(y, dd_add(p, (-1.0, 0.0)))
    return y


def _sincos_parts(a):
    """Reduce mod pi/2 and evaluate both series; returns
    (sin r, cos r, t = r*r, quadrant, unreduced_mask, |k|)."""
    a0 = np.asarray(a[0], dtype=np.float64)
    k = np.rint(a0 * _TWO_OVER_PI_F)
    k = np.where(np.isfinite(k), k, 0.0)
    bad = np.abs(a0) > _MAX_TRIG_ARG
    k = np.where(bad, 0.0, k)
    r = dd_sub(a, dd_mul_f(_PI_2, k))
    # A wrong quadrant from np.rint would leave |r| > pi/4; the guard
    # catches both that and any slop past the series' validated range.
    bad = bad | (np.abs(r[0]) > 0.8)
    t = dd_mul(r, r)
    c = _poly(t, _COS_C)
    s = dd_mul(r, _poly(t, _SIN_C))
    return s, c, t, np.mod(k, 4.0), bad, np.abs(k)


def dd_sin(a):
    """sin value plus per-lane (escalate_mask, absolute error margin)."""
    s, c, t, q, bad, kabs = _sincos_parts(a)
    v = dd_select(
        q == 0, s, dd_select(q == 1, c, dd_select(q == 2, dd_neg(s), dd_neg(c)))
    )
    margin = np.abs(v[0]) * _REL_TRIG + kabs * _RED_STEP
    return v, bad, margin


def dd_cos(a):
    s, c, t, q, bad, kabs = _sincos_parts(a)
    v = dd_select(
        q == 0, c, dd_select(q == 1, dd_neg(s), dd_select(q == 2, dd_neg(c), s))
    )
    margin = np.abs(v[0]) * _REL_TRIG + kabs * _RED_STEP
    return v, bad, margin


def dd_cosm1(a):
    """cos(a) - 1, computed so tiny arguments keep relative accuracy.

    A dd value near 1 carries at best ~2**-107 *absolute* information
    (the lo limb's quantization), so ``1 - cos(x)`` computed through the
    plain cos node cannot settle once ``x**2/2`` drops below ~2**-53 —
    no margin bookkeeping can recover bits the representation already
    lost.  This kernel never forms the value near 1: unreduced lanes
    (k == 0, r == a exactly) evaluate ``t * P(t)`` with
    ``P(t) = sum_{m>=1} (-1)^m t^(m-1) / (2m)!``, where every error term
    is proportional to t, keeping full relative accuracy at arbitrarily
    tiny arguments.  Reduced lanes subtract 1 from the quadrant value
    (no cancellation concern: |cos - 1| is tiny only near k == 0 mod 4,
    and those lanes' margins carry the k-reduction term anyway).
    """
    s, c, t, q, bad, kabs = _sincos_parts(a)
    series = dd_mul(t, _poly(t, _COSM1_C))
    cosv = dd_select(
        q == 0, c, dd_select(q == 1, dd_neg(s), dd_select(q == 2, dd_neg(c), s))
    )
    general = dd_add(cosv, (-1.0, 0.0))
    small = kabs == 0
    v = dd_select(small, series, general)
    margin = np.where(
        small,
        np.abs(t[0]) * _REL_TRIG,
        np.abs(cosv[0]) * _REL_TRIG + kabs * _RED_STEP
        + np.abs(general[0]) * _REL_ARITH,
    )
    return v, bad, margin


# --- interval layer -----------------------------------------------------------


class _Iv:
    """One program slot: dd endpoint pairs plus error/certainty masks."""

    __slots__ = ("lo", "hi", "err", "cert")

    def __init__(self, lo, hi, err, cert):
        self.lo = lo
        self.hi = hi
        self.err = err
        self.cert = cert


def _widen(lo, hi, rel, extra=None):
    """Outward widening; margins exceed every kernel error bound above."""
    m_lo = np.abs(lo[0]) * rel + _TINY
    m_hi = np.abs(hi[0]) * rel + _TINY
    if extra is not None:
        m_lo = m_lo + extra
        m_hi = m_hi + extra
    return dd_add(lo, (-m_lo, 0.0)), dd_add(hi, (m_hi, 0.0))


def _seal(lo, hi, err, cert) -> _Iv:
    """Non-finite limbs (overflow, split overflow, domain nans) and
    inverted endpoints escalate, mirroring rung 1's sealing."""
    bad = (
        ~np.isfinite(lo[0]) | ~np.isfinite(lo[1])
        | ~np.isfinite(hi[0]) | ~np.isfinite(hi[1])
    )
    inverted = ~bad & dd_lt(hi, lo)
    return _Iv(lo, hi, err | bad | inverted, cert)


def _flags(*ivs):
    err = ivs[0].err
    cert = ivs[0].cert
    for iv in ivs[1:]:
        err = err | iv.err
        cert = cert | iv.cert
    return err, cert


def _d_add(a, b):
    err, cert = _flags(a, b)
    lo, hi = _widen(dd_add(a.lo, b.lo), dd_add(a.hi, b.hi), _REL_ARITH)
    return _seal(lo, hi, err, cert)


def _d_sub(a, b):
    err, cert = _flags(a, b)
    lo, hi = _widen(dd_sub(a.lo, b.hi), dd_sub(a.hi, b.lo), _REL_ARITH)
    return _seal(lo, hi, err, cert)


def _d_neg(a):
    return _seal(dd_neg(a.hi), dd_neg(a.lo), a.err, a.cert)


def _d_mul(a, b):
    err, cert = _flags(a, b)
    p1 = dd_mul(a.lo, b.lo)
    p2 = dd_mul(a.lo, b.hi)
    p3 = dd_mul(a.hi, b.lo)
    p4 = dd_mul(a.hi, b.hi)
    lo = dd_min(dd_min(p1, p2), dd_min(p3, p4))
    hi = dd_max(dd_max(p1, p2), dd_max(p3, p4))
    lo, hi = _widen(lo, hi, _REL_ARITH)
    return _seal(lo, hi, err, cert)


def _d_div(a, b):
    err, cert = _flags(a, b)
    straddle = _le_zero(b.lo) & _ge_zero(b.hi)
    # Exact-chain point zeros are certain errors (pointness transfers to
    # the ladder, as in rung 1); straddles merely escalate.
    point_zero = (
        (b.lo[0] == 0) & (b.lo[1] == 0) & (b.hi[0] == 0) & (b.hi[1] == 0)
        & ~b.err
    )
    q1 = dd_div(a.lo, b.lo)
    q2 = dd_div(a.lo, b.hi)
    q3 = dd_div(a.hi, b.lo)
    q4 = dd_div(a.hi, b.hi)
    lo = dd_min(dd_min(q1, q2), dd_min(q3, q4))
    hi = dd_max(dd_max(q1, q2), dd_max(q3, q4))
    lo, hi = _widen(lo, hi, _REL_ARITH)
    return _seal(lo, hi, err | straddle, cert | point_zero)


def _d_fabs(a):
    pos = _ge_zero(a.lo)
    neg = _le_zero(a.hi)
    zero = (np.zeros_like(a.lo[0]), np.zeros_like(a.lo[0]))
    neg_hi = dd_neg(a.hi)
    neg_lo = dd_neg(a.lo)
    lo = dd_select(pos, a.lo, dd_select(neg, neg_hi, zero))
    hi = dd_select(pos, a.hi, dd_select(neg, neg_lo, dd_max(neg_lo, a.hi)))
    return _seal(lo, hi, a.err, a.cert)


def _d_fmin(a, b):
    err, cert = _flags(a, b)
    return _seal(dd_min(a.lo, b.lo), dd_min(a.hi, b.hi), err, cert)


def _d_fmax(a, b):
    err, cert = _flags(a, b)
    return _seal(dd_max(a.lo, b.lo), dd_max(a.hi, b.hi), err, cert)


def _d_sqrt(a):
    bad = ~_ge_zero(a.lo)
    certainly = _lt_zero(a.hi)
    lo, hi = _widen(dd_sqrt(a.lo), dd_sqrt(a.hi), _REL_ARITH)
    return _seal(lo, hi, a.err | bad, a.cert | certainly)


def _d_exp(a):
    lo, hi = _widen(dd_exp(a.lo), dd_exp(a.hi), _REL_EXP)
    return _seal(lo, hi, a.err, a.cert)


def _d_expm1(a):
    lo, hi = _widen(dd_expm1(a.lo), dd_expm1(a.hi), _REL_EXPM1)
    return _seal(lo, hi, a.err, a.cert)


def _log_core(a):
    """Log endpoints + widening, *without* domain verdicts (pow reuses
    this where a domain violation must escalate rather than settle)."""
    return _widen(dd_log(a.lo), dd_log(a.hi), _REL_LOG, _ABS_LOG)


def _d_log(a):
    bad = ~_gt_zero(a.lo)
    certainly = _le_zero(a.hi)
    lo, hi = _log_core(a)
    return _seal(lo, hi, a.err | bad, a.cert | certainly)


def _d_scale(a, c):
    """Multiply by a positive dd constant (log2/log10/exp2 rescaling)."""
    lo, hi = _widen(dd_mul(a.lo, c), dd_mul(a.hi, c), _REL_ARITH)
    return _seal(lo, hi, a.err, a.cert)


def _d_log2(a):
    return _d_scale(_d_log(a), _INV_LN2)


def _d_log10(a):
    return _d_scale(_d_log(a), _INV_LN10)


def _d_log1p(a):
    one = (np.ones_like(a.lo[0]), np.zeros_like(a.lo[0]))
    shifted = _d_add(a, _Iv(one, one, np.zeros_like(a.err), np.zeros_like(a.err)))
    return _d_log(shifted)


def _d_exp2(a):
    lo, hi = _widen(dd_mul(a.lo, _LN2), dd_mul(a.hi, _LN2), _REL_ARITH)
    scaled = _seal(lo, hi, a.err, a.cert)
    return _d_exp(scaled)


def _d_pow(a, b):
    # General branch only: a**b = exp(b * log a) on a certainly > 0.
    # Integer-exponent powers of non-positive bases escalate (rung 1
    # already settles the easy ones; the ladder owns the rest) — and
    # log's *certain* domain verdict must not leak, since pow(-2, 2) is
    # no domain error.
    err, cert = _flags(a, b)
    lo, hi = _log_core(a)
    lg = _seal(lo, hi, err | ~_gt_zero(a.lo), cert)
    return _d_exp(_d_mul(lg, b))


def _periodic_hits(lo_q, hi_q):
    """Does the quotient interval contain an integer (an extremum)?

    The quotients are computed from the endpoints' hi limbs in float64:
    one shift subtraction and one division (each <= 2**-53 relative)
    plus the neglected dd lo limbs (<= 2**-53 of the argument) bound the
    quotient error by ~2**-51.5 * (1 + |q|); a 2**-50 slack covers that
    with headroom.  Erring toward "extremum present" only widens
    enclosures, but the slack must stay *small*: an absolute slack like
    rung 1's 1e-6 would make every tiny argument "contain" a cos
    extremum and escalate exactly the cancellation lanes this rung
    exists for."""
    slack = 2.0 ** -50 * (1.0 + np.abs(lo_q) + np.abs(hi_q))
    return np.floor(hi_q + slack) >= np.ceil(lo_q - slack)


def _trig_interval(a, kernel, max_shift, min_shift):
    v_lo, bad1, m1 = kernel(a.lo)
    v_hi, bad2, m2 = kernel(a.hi)
    lo = dd_min(v_lo, v_hi)
    hi = dd_max(v_lo, v_hi)
    # The kernels return per-lane absolute margins; applying the sum to
    # both endpoints is conservative for whichever endpoint contributed
    # less.
    lo, hi = _widen(lo, hi, 0.0, m1 + m2)
    has_max = _periodic_hits(
        (a.lo[0] - max_shift) / _F64_TWO_PI, (a.hi[0] - max_shift) / _F64_TWO_PI
    )
    has_min = _periodic_hits(
        (a.lo[0] - min_shift) / _F64_TWO_PI, (a.hi[0] - min_shift) / _F64_TWO_PI
    )
    full = (a.hi[0] - a.lo[0]) >= _F64_TWO_PI
    hi = dd_select(full | has_max, (1.0, 0.0), hi)
    lo = dd_select(full | has_min, (-1.0, 0.0), lo)
    lo = dd_max(lo, (-1.0, 0.0))
    hi = dd_min(hi, (1.0, 0.0))
    return _seal(lo, hi, a.err | bad1 | bad2, a.cert)


def _d_sin(a):
    return _trig_interval(a, dd_sin, _F64_HALF_PI, -_F64_HALF_PI)


def _d_cos(a):
    return _trig_interval(a, dd_cos, 0.0, _F64_PI)


# --- fused cancellation kernels -----------------------------------------------
#
# The builder peepholes ``(- 1 (cos u))``, ``(- (cos u) 1)``,
# ``(- (exp u) 1)`` and ``(- 1 (exp u))`` onto these: computed through
# the plain cos/exp nodes, the intermediate dd value near 1 has already
# quantized away the bits the subtraction needs (see :func:`dd_cosm1`),
# while the fused forms keep every error term proportional to the tiny
# result.  The enclosures still contain the true real value and
# acceptance still demands unique rounding, so bit-identity with the
# ladder (which evaluates the unfused tree at escalating precision) is
# unaffected — the fusion only changes *which* points settle here.


def _d_one_minus_cos(a):
    v_lo, bad1, m1 = dd_cosm1(a.lo)
    v_hi, bad2, m2 = dd_cosm1(a.hi)
    f_lo = dd_neg(v_lo)
    f_hi = dd_neg(v_hi)
    lo = dd_min(f_lo, f_hi)
    hi = dd_max(f_lo, f_hi)
    lo, hi = _widen(lo, hi, 0.0, m1 + m2)
    has_max = _periodic_hits(
        (a.lo[0] - _F64_PI) / _F64_TWO_PI, (a.hi[0] - _F64_PI) / _F64_TWO_PI
    )
    has_min = _periodic_hits(a.lo[0] / _F64_TWO_PI, a.hi[0] / _F64_TWO_PI)
    full = (a.hi[0] - a.lo[0]) >= _F64_TWO_PI
    hi = dd_select(full | has_max, (2.0, 0.0), hi)
    lo = dd_select(full | has_min, (0.0, 0.0), lo)
    lo = dd_max(lo, (0.0, 0.0))
    hi = dd_min(hi, (2.0, 0.0))
    return _seal(lo, hi, a.err | bad1 | bad2, a.cert)


def _d_cosm1(a):
    return _d_neg(_d_one_minus_cos(a))


def _d_one_minus_exp(a):
    return _d_neg(_d_expm1(a))


_D_OPS = {
    "+": _d_add,
    "-": _d_sub,
    "*": _d_mul,
    "/": _d_div,
    "neg": _d_neg,
    "fabs": _d_fabs,
    "fmin": _d_fmin,
    "fmax": _d_fmax,
    "sqrt": _d_sqrt,
    "exp": _d_exp,
    "exp2": _d_exp2,
    "expm1": _d_expm1,
    "log": _d_log,
    "log2": _d_log2,
    "log10": _d_log10,
    "log1p": _d_log1p,
    "sin": _d_sin,
    "cos": _d_cos,
    "pow": _d_pow,
}


# --- expression compilation ---------------------------------------------------


def _num_endpoints(frac: Fraction):
    """Compile-time dd enclosure of an exact rational literal."""
    try:
        hi = float(frac)
    except OverflowError:
        raise Unsupported("literal exceeds float range") from None
    if not math.isfinite(hi):
        raise Unsupported("non-finite literal")
    lo = float(frac - Fraction(hi))
    if Fraction(hi) + Fraction(lo) == frac:
        return (hi, lo), (hi, lo)
    pad = abs(lo) * 2.0 ** -51 + _TINY
    return dd_add((hi, lo), (-pad, 0.0)), dd_add((hi, lo), (pad, 0.0))


def _const_endpoints(pair):
    """Enclosure of an irrational dd constant (error < 2**-107 relative)."""
    pad = abs(pair[0]) * 2.0 ** -105 + _TINY
    return dd_add(pair, (-pad, 0.0)), dd_add(pair, (pad, 0.0))


class _Builder:
    """Compiles an Expr into a CSE'd straight-line dd interval program."""

    def __init__(self):
        self.instrs: list[tuple] = []
        self.memo: dict[Expr, int] = {}

    def real(self, expr: Expr) -> int:
        slot = self.memo.get(expr)
        if slot is not None:
            return slot
        instr = self._real_instr(expr)
        self.instrs.append(instr)
        slot = len(self.instrs) - 1
        self.memo[expr] = slot
        return slot

    def _real_instr(self, expr: Expr) -> tuple:
        if isinstance(expr, Var):
            return ("var", expr.name)
        if isinstance(expr, Num):
            lo, hi = _num_endpoints(expr.value)
            return ("num", lo, hi)
        if isinstance(expr, Const):
            if expr.name == "PI":
                return ("num", *_const_endpoints(_PI))
            if expr.name == "E":
                return ("num", *_const_endpoints(_E))
            raise Unsupported(f"constant {expr.name}")
        if isinstance(expr, App):
            if expr.op == "-" and len(expr.args) == 2:
                fused = self._fused_sub(expr.args[0], expr.args[1])
                if fused is not None:
                    return fused
            fn = _D_OPS.get(expr.op)
            if fn is None:
                raise Unsupported(expr.op)
            return ("app", fn, tuple(self.real(arg) for arg in expr.args))
        raise Unsupported(type(expr).__name__)

    def _fused_sub(self, lhs: Expr, rhs: Expr) -> tuple | None:
        """Peephole the cancellation patterns onto fused kernels."""

        def is_one(e: Expr) -> bool:
            return isinstance(e, Num) and e.value == 1

        def arg_of(e: Expr, op: str) -> Expr | None:
            if isinstance(e, App) and e.op == op and len(e.args) == 1:
                return e.args[0]
            return None

        if is_one(lhs):
            u = arg_of(rhs, "cos")
            if u is not None:
                return ("app", _d_one_minus_cos, (self.real(u),))
            u = arg_of(rhs, "exp")
            if u is not None:
                return ("app", _d_one_minus_exp, (self.real(u),))
        if is_one(rhs):
            u = arg_of(lhs, "cos")
            if u is not None:
                return ("app", _d_cosm1, (self.real(u),))
            u = arg_of(lhs, "exp")
            if u is not None:
                return ("app", _d_expm1, (self.real(u),))
        return None


class _Program:
    """A compiled straight-line dd interval program."""

    __slots__ = ("instrs", "root")

    def __init__(self, instrs, root):
        self.instrs = instrs
        self.root = root

    def run(self, points) -> _Iv:
        n = len(points)
        false = np.zeros(n, dtype=bool)
        slots: list[_Iv] = []
        with np.errstate(all="ignore"):
            for instr in self.instrs:
                kind = instr[0]
                if kind == "app":
                    slots.append(instr[1](*(slots[s] for s in instr[2])))
                elif kind == "var":
                    vals = np.asarray(
                        [point[instr[1]] for point in points], dtype=np.float64
                    )
                    zero = np.zeros(n, dtype=np.float64)
                    pair = (vals, zero)
                    slots.append(_Iv(pair, pair, ~np.isfinite(vals), false))
                else:  # num
                    lo = (np.full(n, instr[1][0]), np.full(n, instr[1][1]))
                    hi = (np.full(n, instr[2][0]), np.full(n, instr[2][1]))
                    slots.append(_Iv(lo, hi, false, false))
        return slots[self.root]


# --- exact dd -> binary64 rounding --------------------------------------------


def round_dd_to_f64(hi, lo):
    """Round dd values to binary64, or refuse.

    Returns ``(rounded, escalate)``.  With ``|lo| <= ulp(hi)/2`` the
    round-to-nearest of ``hi + lo`` is either ``hi`` or its neighbor in
    ``lo``'s direction, decided by comparing ``|lo|`` with half the gap
    — both exact binary64 quantities, so the comparison is exact.
    Escalated lanes: exact ties (the value sits on a rounding boundary;
    the widened endpoints land there with probability ~0, and refusing
    is always sound), gaps that underflow or overflow the comparison,
    and |values| below 2**-1000, where the ladder's compound rounding
    (53-bit significand then storage cast) can legitimately double-round
    differently from this single rounding."""
    with np.errstate(all="ignore"):
        direction = np.where(lo > 0.0, np.inf, -np.inf)
        neighbor = np.nextafter(hi, direction)
        gap_half = (neighbor - hi) * 0.5
        mag = np.abs(lo)
        bound = np.abs(gap_half)
        rounded = np.where(mag > bound, neighbor, hi)
        nonzero_lo = lo != 0.0
        escalate = (
            (((gap_half == 0.0) | ~np.isfinite(gap_half)) & nonzero_lo)
            | ((mag == bound) & nonzero_lo)
            | ((np.abs(hi) < 2.0 ** -1000) & nonzero_lo)
        )
    return rounded, escalate


# --- the rung -----------------------------------------------------------------


class DoubleDoubleRung(Rung):
    """Batched double-double acceptance filter for binary64 targets."""

    name = "dd"

    def __init__(self, max_programs: int = 256):
        self._cache = ProgramCache(max_programs)

    def _program(self, expr: Expr) -> _Program | None:
        def build():
            builder = _Builder()
            root = builder.real(expr)
            return _Program(builder.instrs, root)

        return self._cache.get((expr, F64), build)

    def evaluate(
        self, expr: Expr, points: Sequence[dict], ty: str
    ) -> list[PointResult | None] | None:
        if ty != F64 or not points:
            return None
        program = self._program(expr)
        if program is None:
            return None
        try:
            result = program.run(points)
        except KeyError:
            # Missing variable: fails identically everywhere (mirrors
            # the per-point KeyError the ladder would raise).
            return [PointResult(INVALID)] * len(points)
        with np.errstate(all="ignore"):
            rlo, esc_lo = round_dd_to_f64(*result.lo)
            rhi, esc_hi = round_dd_to_f64(*result.hi)
            accept = (
                ~result.err & ~esc_lo & ~esc_hi
                & np.isfinite(rlo) & (rlo == rhi) & (rlo != 0)
            )
        cert_list = result.cert.tolist()
        accept_list = accept.tolist()
        value_list = rlo.tolist()
        out: list[PointResult | None] = []
        for i in range(len(points)):
            if cert_list[i]:
                out.append(PointResult(DOMAIN_ERROR))
            elif accept_list[i]:
                out.append(PointResult(OK, value_list[i]))
            else:
                out.append(None)
        return out


__all__ = [
    "DoubleDoubleRung",
    "dd_add",
    "dd_cos",
    "dd_div",
    "dd_exp",
    "dd_expm1",
    "dd_log",
    "dd_mul",
    "dd_sin",
    "dd_sqrt",
    "dd_sub",
    "round_dd_to_f64",
    "split",
    "two_prod",
    "two_sum",
]
