"""Vectorized numpy interval fast path for batched oracle evaluation.

This backend mirrors the mpmath interval semantics of
:mod:`repro.rival.interval` over whole point sets at once: each operator
is evaluated on numpy endpoint arrays (``np.longdouble`` for binary64
targets, ``np.float64`` for binary32 targets) and widened *outward* by a
margin strictly larger than the arithmetic error, so every lane's
enclosure is guaranteed to contain the true real value.  A point is
**accepted** only when its enclosure, rounded into the target format
with the same compound rounding the mpmath ladder uses, collapses to a
single nonzero value — then that value *is* the correctly rounded result
and bit-identical to what the ladder would return.  Everything else (any
possible domain error, non-unique rounding, results that round to zero,
operators without a vector mirror) escalates to the unchanged mpmath
escalation ladder, so the fast path is an acceptance filter, never an
approximation.

Soundness notes baked into the margins:

* Margins are strictly wider than the mpmath ladder's first-rung margins
  (relative ``2**-77``, absolute ``2**-1160``), so every numpy enclosure
  contains the corresponding precision-80 enclosure.  That nesting is
  what makes *certain* boolean verdicts and *certain* domain errors
  (``cert`` lanes) safe to report without consulting the ladder: the
  ladder, run on the same point, must reach the same verdict.
* Results that round to zero are always escalated: the ladder can
  legitimately return ``-0.0`` (its enclosure endpoints compare equal
  across the sign of zero), and matching that sign bit-for-bit is only
  guaranteed by running the ladder itself.
"""

from __future__ import annotations

import math
import threading
from fractions import Fraction
from typing import Sequence

import mpmath
import numpy as np
from mpmath import mp, mpf

from ...deadline import check_deadline
from ...formats import UnknownFormatError, get_format
from ...ir.expr import App, Const, Expr, Num, Var
from ...ir.types import F32, F64
from .base import (
    DOMAIN_ERROR,
    INVALID,
    OK,
    OracleBackend,
    OracleCounters,
    PointResult,
)
from .dd import DoubleDoubleRung
from .mpmath_backend import MpmathBackend
from .rungs import ProgramCache, Rung, Unsupported, run_cascade


class _Unsupported(Unsupported):
    """The expression has no faithful vector mirror; use the ladder."""


#: 2 ulps of outward widening for compile-time constants parsed from
#: high-precision decimal strings (the strings are correct to < 1 ulp).
_CONST_ULPS = 2

_PI_STR = "3.14159265358979323846264338327950288419716939937510582097"
_E_STR = "2.71828182845904523536028747135266249775724709369995957497"


class _Format:
    """Per-target-format compute dtype, margins, and rounding parameters."""

    def __init__(self, dtype, target_bits: int, storage_cast=None):
        self.dtype = dtype
        self.target_bits = target_bits
        #: Vectorized storage cast of the target FloatFormat (None for the
        #: legacy f32/f64 paths, which pick their cast by target_bits).
        self.storage_cast = storage_cast
        eps = np.finfo(dtype).eps
        # Endpoint arithmetic (and sqrt) is correctly rounded (1/2 ulp
        # per step, at most a couple of steps before widening); libm
        # transcendentals are a few ulps; powl historically the worst.
        # All leave 4-8x headroom over those error bounds while staying
        # far above the ladder's first-rung relative margin of 2**-77,
        # which the enclosure-nesting argument requires.
        self.rel_arith = eps * dtype(4)
        self.rel_trans = eps * dtype(16)
        self.rel_pow = eps * dtype(64)
        # Absolute term: must exceed the ladder's 2**-1160 so enclosures
        # nest.  float64 cannot represent that, so its smallest subnormal
        # (2**-1074) serves; longdouble uses 2**-1159 directly.
        if np.finfo(dtype).machep < -60:
            self.tiny = dtype(2) ** dtype(-1159)
        else:
            self.tiny = dtype(2.0 ** -1074)
        self.pi = dtype(_PI_STR)
        self.half_pi = self.pi / dtype(2)
        self.two_pi = self.pi * dtype(2)
        # Slack for the periodic extremum/asymptote tests: generous
        # absolute cushion plus a relative term that dominates the
        # quotient's rounding error at any magnitude.  Slack errs toward
        # "extremum present", which only widens the enclosure.
        self.slack_base = dtype(1e-6)
        self.slack_rel = dtype(1e-12)


_FORMATS: dict[str, _Format | None] = {}
_FORMATS_LOCK = threading.Lock()


def _format_for(ty: str) -> _Format | None:
    with _FORMATS_LOCK:
        if ty not in _FORMATS:
            if ty == F64:
                # binary64 targets need >53 mantissa bits of headroom; on
                # platforms where long double is an alias of double the
                # fast path stands down and everything takes the ladder.
                ld = np.finfo(np.longdouble)
                _FORMATS[ty] = _Format(np.longdouble, 53) if ld.nmant > 52 else None
            elif ty == F32:
                _FORMATS[ty] = _Format(np.float64, 24)
            else:
                # Any other registered format narrower than binary64 gets
                # the float64 compute path (>= 29 bits of headroom over
                # the widest sub-f32 significand) with the format's own
                # vectorized storage cast; formats with no vectorized
                # cast — and unknown names — stand down to the ladder.
                try:
                    target = get_format(ty)
                except UnknownFormatError:
                    target = None
                if (
                    target is not None
                    and target.precision <= 24
                    and target.numpy_storage_cast(np.zeros(1)) is not None
                ):
                    _FORMATS[ty] = _Format(
                        np.float64,
                        target.precision,
                        storage_cast=target.numpy_storage_cast,
                    )
                else:
                    _FORMATS[ty] = None
        return _FORMATS[ty]


class _IV:
    """One program slot: endpoint arrays plus error/certainty masks."""

    __slots__ = ("lo", "hi", "err", "cert")

    def __init__(self, lo, hi, err, cert):
        self.lo = lo
        self.hi = hi
        self.err = err
        self.cert = cert


def _flags(*ivs):
    err = ivs[0].err
    cert = ivs[0].cert
    for iv in ivs[1:]:
        err = err | iv.err
        cert = cert | iv.cert
    return err, cert


def _widen(fmt: _Format, lo, hi, rel):
    """Outward widening mirroring ``interval._down``/``_up``.

    Infinite (and nan) endpoints pass through unchanged, exactly like
    the mpmath margins.
    """
    mlo = np.abs(lo) * rel + fmt.tiny
    mhi = np.abs(hi) * rel + fmt.tiny
    wlo = np.where(np.isfinite(lo), lo - mlo, lo)
    whi = np.where(np.isfinite(hi), hi + mhi, hi)
    return wlo, whi


def _seal(fmt: _Format, lo, hi, err, cert) -> _IV:
    """Flag non-finite endpoints and inversions as possible errors.

    Unlike mpf, the dtype has a bounded exponent: an operation that
    overflows rounds an endpoint to ±inf, which may *exceed* the true
    value and break containment (e.g. a huge quotient truncating to
    [inf, inf] while the ladder computes it exactly).  Any op-produced
    non-finite endpoint therefore escalates; only leaf infinities
    (an INFINITY literal or an infinite input) stay accepted, and those
    never pass through _seal.
    """
    bad = ~np.isfinite(lo) | ~np.isfinite(hi)
    inverted = ~bad & (lo > hi)
    return _IV(lo, hi, err | bad | inverted, cert)


def _widen_ulps(value, dtype, ulps: int = _CONST_ULPS):
    lo = hi = dtype(value)
    down = dtype(-np.inf)
    up = dtype(np.inf)
    for _ in range(ulps):
        lo = np.nextafter(lo, down)
        hi = np.nextafter(hi, up)
    return lo, hi


def _num_endpoints(frac: Fraction, fmt: _Format):
    """Compile-time enclosure of an exact rational literal."""
    try:
        approx64 = float(frac)  # correctly rounded by Fraction.__float__
    except OverflowError:
        raise _Unsupported("literal exceeds float range") from None
    if Fraction(approx64) == frac:
        v = fmt.dtype(approx64)
        return v, v
    if np.finfo(fmt.dtype).machep < -60:
        with mp.workprec(200):
            text = mpmath.nstr(
                mpf(frac.numerator) / mpf(frac.denominator), 40
            )
        approx = fmt.dtype(text)
    else:
        approx = fmt.dtype(approx64)
    return _widen_ulps(approx, fmt.dtype)


# --- vector interval operators (mirrors of repro.rival.interval) -------------


def _iadd(fmt, a, b):
    err, cert = _flags(a, b)
    lo, hi = _widen(fmt, a.lo + b.lo, a.hi + b.hi, fmt.rel_arith)
    return _seal(fmt, lo, hi, err, cert)


def _isub(fmt, a, b):
    err, cert = _flags(a, b)
    lo, hi = _widen(fmt, a.lo - b.hi, a.hi - b.lo, fmt.rel_arith)
    return _seal(fmt, lo, hi, err, cert)


def _ineg(fmt, a):
    return _seal(fmt, -a.hi, -a.lo, a.err, a.cert)


def _imul(fmt, a, b):
    err, cert = _flags(a, b)
    p1 = a.lo * b.lo
    p2 = a.lo * b.hi
    p3 = a.hi * b.lo
    p4 = a.hi * b.hi
    lo = np.minimum(np.minimum(p1, p2), np.minimum(p3, p4))
    hi = np.maximum(np.maximum(p1, p2), np.maximum(p3, p4))
    lo, hi = _widen(fmt, lo, hi, fmt.rel_arith)
    return _seal(fmt, lo, hi, err, cert)


def _idiv(fmt, a, b):
    err, cert = _flags(a, b)
    straddle = (b.lo <= 0) & (b.hi >= 0)
    # A point denominator of exactly 0 is an error at every precision
    # (exact-chain pointness transfers to the ladder); a straddle may
    # shrink away, so it only escalates.
    point_zero = (b.lo == 0) & (b.hi == 0) & ~b.err
    q1 = a.lo / b.lo
    q2 = a.lo / b.hi
    q3 = a.hi / b.lo
    q4 = a.hi / b.hi
    lo = np.minimum(np.minimum(q1, q2), np.minimum(q3, q4))
    hi = np.maximum(np.maximum(q1, q2), np.maximum(q3, q4))
    lo, hi = _widen(fmt, lo, hi, fmt.rel_arith)
    return _seal(fmt, lo, hi, err | straddle, cert | point_zero)


def _ifabs(fmt, a):
    pos = a.lo >= 0
    neg = a.hi <= 0
    zero = np.zeros_like(a.lo)
    lo = np.where(pos, a.lo, np.where(neg, -a.hi, zero))
    hi = np.where(pos, a.hi, np.where(neg, -a.lo, np.maximum(-a.lo, a.hi)))
    return _seal(fmt, lo, hi, a.err, a.cert)


def _ifmin(fmt, a, b):
    err, cert = _flags(a, b)
    return _seal(fmt, np.minimum(a.lo, b.lo), np.minimum(a.hi, b.hi), err, cert)


def _ifmax(fmt, a, b):
    err, cert = _flags(a, b)
    return _seal(fmt, np.maximum(a.lo, b.lo), np.maximum(a.hi, b.hi), err, cert)


def _icopysign(fmt, a, b):
    mag = _ifabs(fmt, a)
    pos = b.lo > 0
    neg = b.hi < 0
    lo = np.where(pos, mag.lo, -mag.hi)
    hi = np.where(pos, mag.hi, np.where(neg, -mag.lo, mag.hi))
    return _seal(fmt, lo, hi, mag.err | b.err, a.cert | b.cert)


def _mono(fmt, fn, a, rel, dom=None):
    """Lift a monotonically increasing numpy ufunc with domain checks.

    ``dom(a) -> (bad, certainly_bad)``: ``bad`` mirrors the ladder's
    possible-error condition; ``certainly_bad`` holds only where the
    enclosure is certainly outside the domain at any precision.
    """
    err = a.err
    cert = a.cert
    if dom is not None:
        bad, certainly = dom(a)
        err = err | bad
        cert = cert | certainly
    lo, hi = _widen(fmt, fn(a.lo), fn(a.hi), rel)
    return _seal(fmt, lo, hi, err, cert)


def _dom_sqrt(a):
    return ~(a.lo >= 0), a.hi < 0


def _dom_log(a):
    return ~(a.lo > 0), a.hi <= 0


def _dom_log1p(a):
    return ~(a.lo > -1), a.hi <= -1


def _dom_acosh(a):
    return ~(a.lo >= 1), a.hi < 1


def _dom_asin(a):
    return ~((a.lo >= -1) & (a.hi <= 1)), (a.lo > 1) | (a.hi < -1)


def _dom_atanh(a):
    return ~((a.lo > -1) & (a.hi < 1)), (a.lo >= 1) | (a.hi <= -1)


def _iacos(fmt, a):
    bad, certainly = _dom_asin(a)
    lo, hi = _widen(fmt, np.arccos(a.hi), np.arccos(a.lo), fmt.rel_trans)
    return _seal(fmt, lo, hi, a.err | bad, a.cert | certainly)


def _icosh(fmt, a):
    cl = np.cosh(a.lo)
    ch = np.cosh(a.hi)
    contains0 = (a.lo <= 0) & (a.hi >= 0)
    hi = np.maximum(cl, ch)
    lo = np.where(contains0, np.ones_like(cl), np.minimum(cl, ch))
    lo, hi = _widen(fmt, lo, hi, fmt.rel_trans)
    return _seal(fmt, lo, hi, a.err, a.cert)


def _periodic_hits(fmt, lo_q, hi_q):
    """Does [lo, hi] contain a point with quotient ≡ 0 (mod 1)?

    ``lo_q``/``hi_q`` are the endpoint quotients (e.g. ``(x - pi/2) /
    two_pi``); slack errs toward True, which only widens enclosures (sin
    extrema) or forces escalation (tan asymptotes) — never unsoundness.
    """
    slack = fmt.slack_base + (np.abs(lo_q) + np.abs(hi_q)) * fmt.slack_rel
    return np.floor(hi_q + slack) >= np.ceil(lo_q - slack)


def _sin_arrays(fmt, lo_a, hi_a):
    full = (hi_a - lo_a) >= fmt.two_pi
    has_max = _periodic_hits(
        fmt, (lo_a - fmt.half_pi) / fmt.two_pi, (hi_a - fmt.half_pi) / fmt.two_pi
    )
    has_min = _periodic_hits(
        fmt, (lo_a + fmt.half_pi) / fmt.two_pi, (hi_a + fmt.half_pi) / fmt.two_pi
    )
    slo = np.sin(lo_a)
    shi = np.sin(hi_a)
    wlo, whi = _widen(
        fmt, np.minimum(slo, shi), np.maximum(slo, shi), fmt.rel_trans
    )
    one = fmt.dtype(1)
    hi = np.where(full | has_max, one, whi)
    lo = np.where(full | has_min, -one, wlo)
    return np.maximum(lo, -one), np.minimum(hi, one)


def _isin(fmt, a):
    lo, hi = _sin_arrays(fmt, a.lo, a.hi)
    return _seal(fmt, lo, hi, a.err, a.cert)


def _icos(fmt, a):
    # Mirror of icos: sin(a + widened(pi/2)), the shift interval carrying
    # the pi/2 approximation error and the add widening outward.
    m = fmt.half_pi * fmt.rel_trans + fmt.tiny
    slo, shi = _widen(
        fmt, a.lo + (fmt.half_pi - m), a.hi + (fmt.half_pi + m), fmt.rel_arith
    )
    lo, hi = _sin_arrays(fmt, slo, shi)
    return _seal(fmt, lo, hi, a.err, a.cert)


def _itan(fmt, a):
    asymptote = _periodic_hits(
        fmt, (a.lo - fmt.half_pi) / fmt.pi, (a.hi - fmt.half_pi) / fmt.pi
    )
    lo, hi = _widen(fmt, np.tan(a.lo), np.tan(a.hi), fmt.rel_trans)
    # A missed asymptote inside a width-<pi interval always inverts the
    # endpoints (tan(hi-pi) < tan(lo) on one branch), which _seal flags.
    return _seal(fmt, lo, hi, a.err | asymptote, a.cert)


def _ipow(fmt, a, b):
    err, cert = _flags(a, b)
    b_int = (
        ~b.err
        & (b.lo == b.hi)
        & np.isfinite(b.lo)
        & (np.floor(b.lo) == b.lo)
    )
    # --- integer branch: vector _ipow_int ---------------------------------
    m = np.abs(b.lo)
    neg_n = b.lo < 0
    zero_n = b.lo == 0
    # Reciprocal (idiv(point(1), a)) feeds negative exponents.
    r_straddle = (a.lo <= 0) & (a.hi >= 0)
    r_point_zero = (a.lo == 0) & (a.hi == 0) & ~a.err
    iq1 = 1 / a.lo
    iq2 = 1 / a.hi
    ilo, ihi = _widen(
        fmt, np.minimum(iq1, iq2), np.maximum(iq1, iq2), fmt.rel_arith
    )
    base_lo = np.where(neg_n, ilo, a.lo)
    base_hi = np.where(neg_n, ihi, a.hi)
    p_lo = np.power(base_lo, m)
    p_hi = np.power(base_hi, m)
    odd = (m % fmt.dtype(2)) == 1
    pos = base_lo >= 0
    neg = base_hi <= 0
    even_lo = np.where(pos, p_lo, np.where(neg, p_hi, np.zeros_like(p_lo)))
    even_hi = np.where(pos, p_hi, np.where(neg, p_lo, np.maximum(p_lo, p_hi)))
    i_lo, i_hi = _widen(
        fmt,
        np.where(odd, p_lo, even_lo),
        np.where(odd, p_hi, even_hi),
        fmt.rel_pow,
    )
    # n == 0 is the exact point 1 (no widening), before the reciprocal.
    one = np.ones_like(p_lo)
    i_lo = np.where(zero_n, one, i_lo)
    i_hi = np.where(zero_n, one, i_hi)
    int_err = neg_n & r_straddle & ~zero_n
    int_cert = neg_n & r_point_zero & ~zero_n
    # --- general branch: exp(b * log(a)), defined for a.lo > 0 ------------
    gen_ok = a.lo > 0
    la_lo, la_hi = _widen(fmt, np.log(a.lo), np.log(a.hi), fmt.rel_trans)
    p1 = b.lo * la_lo
    p2 = b.lo * la_hi
    p3 = b.hi * la_lo
    p4 = b.hi * la_hi
    m_lo, m_hi = _widen(
        fmt,
        np.minimum(np.minimum(p1, p2), np.minimum(p3, p4)),
        np.maximum(np.maximum(p1, p2), np.maximum(p3, p4)),
        fmt.rel_arith,
    )
    g_lo, g_hi = _widen(fmt, np.exp(m_lo), np.exp(m_hi), fmt.rel_trans)
    # --- select ------------------------------------------------------------
    lo = np.where(b_int, i_lo, g_lo)
    hi = np.where(b_int, i_hi, g_hi)
    err = err | np.where(b_int, int_err, ~gen_ok)
    cert = cert | (b_int & int_cert)
    return _seal(fmt, lo, hi, err, cert)


def _iexp2(fmt, a):
    two = np.full_like(a.lo, 2)
    false = np.zeros_like(a.err)
    return _ipow(fmt, _IV(two, two, false, false), a)


def _ihypot(fmt, a, b):
    return _mono(
        fmt,
        np.sqrt,
        _iadd(fmt, _imul(fmt, a, a), _imul(fmt, b, b)),
        fmt.rel_arith,
        _dom_sqrt,
    )


def _iatan2(fmt, y, x):
    err, cert = _flags(y, x)
    y_zero = (y.lo <= 0) & (y.hi >= 0)
    ok = (x.lo > 0) | ((x.lo >= 0) & ~y_zero) | (y.lo > 0) | (y.hi < 0)
    c1 = np.arctan2(y.lo, x.lo)
    c2 = np.arctan2(y.lo, x.hi)
    c3 = np.arctan2(y.hi, x.lo)
    c4 = np.arctan2(y.hi, x.hi)
    lo = np.minimum(np.minimum(c1, c2), np.minimum(c3, c4))
    hi = np.maximum(np.maximum(c1, c2), np.maximum(c3, c4))
    lo, hi = _widen(fmt, lo, hi, fmt.rel_trans)
    return _seal(fmt, lo, hi, err | ~ok, cert)


def _rounding(fmt, fn, a):
    return _seal(fmt, fn(a.lo), fn(a.hi), a.err, a.cert)


def _ifmod(fmt, a, b):
    quotient = _rounding(fmt, np.trunc, _idiv(fmt, a, b))
    split = quotient.lo != quotient.hi
    result = _isub(fmt, a, _imul(fmt, b, quotient))
    return _IV(result.lo, result.hi, result.err | split, result.cert)


_OPS = {
    "+": _iadd,
    "-": _isub,
    "*": _imul,
    "/": _idiv,
    "neg": _ineg,
    "fabs": _ifabs,
    "fmin": _ifmin,
    "fmax": _ifmax,
    "copysign": _icopysign,
    # np.sqrt is IEEE correctly rounded, so it earns the arithmetic margin.
    "sqrt": lambda fmt, a: _mono(fmt, np.sqrt, a, fmt.rel_arith, _dom_sqrt),
    "cbrt": lambda fmt, a: _mono(fmt, np.cbrt, a, fmt.rel_trans),
    "pow": _ipow,
    "hypot": _ihypot,
    "exp": lambda fmt, a: _mono(fmt, np.exp, a, fmt.rel_trans),
    "exp2": _iexp2,
    "expm1": lambda fmt, a: _mono(fmt, np.expm1, a, fmt.rel_trans),
    "log": lambda fmt, a: _mono(fmt, np.log, a, fmt.rel_trans, _dom_log),
    "log2": lambda fmt, a: _mono(fmt, np.log2, a, fmt.rel_trans, _dom_log),
    "log10": lambda fmt, a: _mono(fmt, np.log10, a, fmt.rel_trans, _dom_log),
    "log1p": lambda fmt, a: _mono(fmt, np.log1p, a, fmt.rel_trans, _dom_log1p),
    "sin": _isin,
    "cos": _icos,
    "tan": _itan,
    "asin": lambda fmt, a: _mono(fmt, np.arcsin, a, fmt.rel_trans, _dom_asin),
    "acos": _iacos,
    "atan": lambda fmt, a: _mono(fmt, np.arctan, a, fmt.rel_trans),
    "atan2": _iatan2,
    "sinh": lambda fmt, a: _mono(fmt, np.sinh, a, fmt.rel_trans),
    "cosh": _icosh,
    "tanh": lambda fmt, a: _mono(fmt, np.tanh, a, fmt.rel_trans),
    "asinh": lambda fmt, a: _mono(fmt, np.arcsinh, a, fmt.rel_trans),
    "acosh": lambda fmt, a: _mono(fmt, np.arccosh, a, fmt.rel_trans, _dom_acosh),
    "atanh": lambda fmt, a: _mono(fmt, np.arctanh, a, fmt.rel_trans, _dom_atanh),
    "floor": lambda fmt, a: _rounding(fmt, np.floor, a),
    "ceil": lambda fmt, a: _rounding(fmt, np.ceil, a),
    "round": lambda fmt, a: _rounding(fmt, np.rint, a),
    "trunc": lambda fmt, a: _rounding(fmt, np.trunc, a),
    "fmod": _ifmod,
}

_CMPS = ("<", "<=", ">", ">=", "==", "!=")

#: Boolean verdict lattice (int8): certain False / certain True /
#: undecidable here (escalate to the ladder) / certain domain error.
_FALSE, _TRUE, _ESCALATE, _CERT_ERROR = 0, 1, 2, 3


class _Builder:
    """Compiles an Expr into a CSE'd straight-line interval program."""

    def __init__(self, fmt: _Format):
        self.fmt = fmt
        self.instrs: list[tuple] = []
        self.memo: dict[Expr, int] = {}

    def real(self, expr: Expr) -> int:
        slot = self.memo.get(expr)
        if slot is not None:
            return slot
        instr = self._real_instr(expr)
        self.instrs.append(instr)
        slot = len(self.instrs) - 1
        self.memo[expr] = slot
        return slot

    def _real_instr(self, expr: Expr) -> tuple:
        if isinstance(expr, Var):
            return ("var", expr.name)
        if isinstance(expr, Num):
            lo, hi = _num_endpoints(expr.value, self.fmt)
            return ("num", lo, hi)
        if isinstance(expr, Const):
            if expr.name in ("PI", "E"):
                text = _PI_STR if expr.name == "PI" else _E_STR
                lo, hi = _widen_ulps(self.fmt.dtype(text), self.fmt.dtype)
                return ("num", lo, hi)
            if expr.name == "INFINITY":
                inf = self.fmt.dtype(np.inf)
                return ("num", inf, inf)
            if expr.name == "NAN":
                return ("error",)
            raise _Unsupported(f"constant {expr.name}")
        if isinstance(expr, App):
            if expr.op == "if" and len(expr.args) == 3:
                cond = self.boolean(expr.args[0])
                then = self.real(expr.args[1])
                other = self.real(expr.args[2])
                return ("if", cond, then, other)
            fn = _OPS.get(expr.op)
            if fn is None:
                raise _Unsupported(expr.op)
            return ("app", fn, tuple(self.real(arg) for arg in expr.args))
        raise _Unsupported(type(expr).__name__)

    def boolean(self, expr: Expr) -> tuple:
        if isinstance(expr, Const) and expr.name in ("TRUE", "FALSE"):
            return ("const", expr.name == "TRUE")
        if not isinstance(expr, App):
            raise _Unsupported("boolean leaf")
        if expr.op in ("and", "or") and len(expr.args) == 2:
            return (expr.op, self.boolean(expr.args[0]), self.boolean(expr.args[1]))
        if expr.op == "not" and len(expr.args) == 1:
            return ("not", self.boolean(expr.args[0]))
        if expr.op in _CMPS and len(expr.args) == 2:
            return ("cmp", expr.op, self.real(expr.args[0]), self.real(expr.args[1]))
        raise _Unsupported(expr.op)


def _cmp_verdict(op: str, l: _IV, r: _IV):
    if op == "<":
        true = l.hi < r.lo
        false = l.lo >= r.hi
    elif op == "<=":
        true = l.hi <= r.lo
        false = l.lo > r.hi
    elif op == ">":
        true = l.lo > r.hi
        false = l.hi <= r.lo
    elif op == ">=":
        true = l.lo >= r.hi
        false = l.hi < r.lo
    else:  # == / !=
        err = l.err | r.err
        point_eq = ~err & (l.lo == l.hi) & (r.lo == r.hi) & (l.lo == r.lo)
        disjoint = (l.hi < r.lo) | (r.hi < l.lo)
        true, false = (point_eq, disjoint) if op == "==" else (disjoint, point_eq)
    verdict = np.where(
        true, np.int8(_TRUE), np.where(false, np.int8(_FALSE), np.int8(_ESCALATE))
    )
    # Operand errors come first, mirroring _eval_bool: a possible error
    # means the ladder's first rung may raise DomainError, so escalate; a
    # certain error means it must.
    verdict = np.where(l.err | r.err, np.int8(_ESCALATE), verdict)
    return np.where(l.cert | r.cert, np.int8(_CERT_ERROR), verdict).astype(np.int8)


def _bool_verdict(node: tuple, slots: list, n: int):
    kind = node[0]
    if kind == "const":
        return np.full(n, _TRUE if node[1] else _FALSE, dtype=np.int8)
    if kind == "cmp":
        return _cmp_verdict(node[1], slots[node[2]], slots[node[3]])
    if kind == "not":
        v = _bool_verdict(node[1], slots, n)
        return np.where(
            v == _FALSE, np.int8(_TRUE), np.where(v == _TRUE, np.int8(_FALSE), v)
        ).astype(np.int8)
    a = _bool_verdict(node[1], slots, n)
    b = _bool_verdict(node[2], slots, n)
    # Short-circuit mirror: the first operand's certain verdicts and
    # errors win; only a certain-True "and" / certain-False "or" defers.
    if kind == "and":
        return np.where(a == _TRUE, b, a).astype(np.int8)
    return np.where(a == _FALSE, b, a).astype(np.int8)


class _Program:
    """A compiled straight-line interval program over one format."""

    __slots__ = ("fmt", "instrs", "root", "bool_root")

    def __init__(self, fmt, instrs, root=None, bool_root=None):
        self.fmt = fmt
        self.instrs = instrs
        self.root = root
        self.bool_root = bool_root

    def _run_slots(self, points) -> list:
        fmt = self.fmt
        n = len(points)
        false = np.zeros(n, dtype=bool)
        slots: list = []
        with np.errstate(all="ignore"):
            for instr in self.instrs:
                kind = instr[0]
                if kind == "app":
                    slots.append(instr[1](fmt, *(slots[s] for s in instr[2])))
                elif kind == "var":
                    name = instr[1]
                    vals = np.asarray(
                        [point[name] for point in points], dtype=np.float64
                    ).astype(fmt.dtype)
                    # Non-finite inputs escalate: mpmath's treatment of
                    # infinities is op-specific (e.g. atan2(inf, inf) is a
                    # domain error there but pi/4 under IEEE), so the
                    # ladder stays the authority for those lanes.
                    slots.append(_IV(vals, vals, ~np.isfinite(vals), false))
                elif kind == "num":
                    lo = np.full(n, instr[1], dtype=fmt.dtype)
                    hi = np.full(n, instr[2], dtype=fmt.dtype)
                    finite = math.isfinite(instr[1]) and math.isfinite(instr[2])
                    err = false if finite else np.ones(n, dtype=bool)
                    slots.append(_IV(lo, hi, err, false))
                elif kind == "error":
                    nan = np.full(n, np.nan, dtype=fmt.dtype)
                    true = np.ones(n, dtype=bool)
                    slots.append(_IV(nan, nan, true, true))
                else:  # if
                    verdict = _bool_verdict(instr[1], slots, n)
                    then, other = slots[instr[2]], slots[instr[3]]
                    take = verdict == _TRUE
                    slots.append(
                        _IV(
                            np.where(take, then.lo, other.lo),
                            np.where(take, then.hi, other.hi),
                            np.where(take, then.err, other.err)
                            | (verdict >= _ESCALATE),
                            np.where(take, then.cert, other.cert)
                            | (verdict == _CERT_ERROR),
                        )
                    )
        return slots

    def run(self, points) -> _IV:
        return self._run_slots(points)[self.root]

    def run_bool(self, points):
        slots = self._run_slots(points)
        with np.errstate(all="ignore"):
            return _bool_verdict(self.bool_root, slots, len(points))


def _round_sig(x, bits: int):
    """Round to a ``bits``-bit significand, half-even, unbounded exponent
    (the ladder's ``mp.workprec(bits)`` re-rounding step)."""
    mantissa, exponent = np.frexp(x)
    scaled = np.rint(np.ldexp(mantissa, bits))
    return np.where(np.isfinite(x), np.ldexp(scaled, exponent - bits), x)


def _target_round(fmt: _Format, values):
    """The compound target-format rounding used by ``round_to_format``:
    first to the format's significand width (unbounded exponent), then the
    storage cast that applies overflow/subnormal semantics."""
    sig = _round_sig(values, fmt.target_bits)
    if fmt.storage_cast is not None:
        return fmt.storage_cast(sig)
    if fmt.target_bits == 24:
        return sig.astype(np.float32)
    return sig.astype(np.float64)


class LongDoubleRung(Rung):
    """Rung 1: one extended-precision (``np.longdouble``) interval sweep.

    ~11 bits of headroom over binary64 (or a float64 sweep with >= 29
    bits of headroom for narrower targets); settles everything except
    deep cancellation, which rung 2 (:class:`~.dd.DoubleDoubleRung`)
    re-examines with ~106 effective bits.
    """

    name = "longdouble"

    def __init__(self, max_programs: int = 256):
        self._cache = ProgramCache(max_programs)

    def _real_program(self, expr: Expr, ty: str) -> _Program | None:
        fmt = _format_for(ty)
        if fmt is None:
            return None

        def build():
            builder = _Builder(fmt)
            root = builder.real(expr)
            return _Program(fmt, builder.instrs, root=root)

        return self._cache.get((expr, ty), build)

    def _bool_program(self, expr: Expr) -> _Program | None:
        # Boolean decisions compare real subterms; evaluate those in the
        # widest available dtype so verdicts settle as often as possible.
        fmt = _format_for(F64) or _format_for(F32)
        if fmt is None:
            return None

        def build():
            builder = _Builder(fmt)
            root = builder.boolean(expr)
            return _Program(fmt, builder.instrs, bool_root=root)

        return self._cache.get((expr, "bool"), build)

    def evaluate(
        self, expr: Expr, points: Sequence[dict], ty: str
    ) -> list[PointResult | None] | None:
        program = self._real_program(expr, ty)
        if program is None or not points:
            return None
        n = len(points)
        try:
            result = program.run(points)
        except KeyError:
            # A missing variable fails every point identically; mirror
            # the per-point KeyError the ladder raises.
            return [PointResult(INVALID)] * n
        with np.errstate(all="ignore"):
            rlo = _target_round(program.fmt, result.lo)
            rhi = _target_round(program.fmt, result.hi)
            accept = ~result.err & (rlo == rhi) & (rlo != 0)
        # Pull masks/values into Python objects once; per-element numpy
        # scalar indexing would dominate the batch on large sample sets.
        cert_list = result.cert.tolist()
        accept_list = accept.tolist()
        value_list = rlo.astype(np.float64).tolist()
        out: list[PointResult | None] = []
        for i in range(n):
            if cert_list[i]:
                out.append(PointResult(DOMAIN_ERROR))
            elif accept_list[i]:
                out.append(PointResult(OK, value_list[i]))
            else:
                out.append(None)
        return out


class NumpyBackend(OracleBackend):
    """Vectorized rung cascade with the mpmath ladder as its last rung.

    Real-valued batches run the :func:`~.rungs.run_cascade` driver over
    ``longdouble -> dd``; the surviving residue climbs the unchanged
    mpmath escalation ladder.  Boolean batches use the longdouble sweep
    only (the dd rung carries no boolean/conditional programs — an
    ``if`` anywhere in an expression makes the whole expression
    unsupported on rung 2, and its residue goes straight to the ladder).
    """

    name = "numpy"

    #: Compiled-program cache bound per rung (programs are small;
    #: expressions churn during improvement loops).
    max_programs = 256

    def __init__(self, fallback: MpmathBackend):
        self.fallback = fallback
        self.evaluator = fallback.evaluator
        self._longdouble = LongDoubleRung(self.max_programs)
        self._dd = DoubleDoubleRung(self.max_programs)
        self._rungs = (self._longdouble, self._dd)
        self._counters = OracleCounters()
        self._counters_lock = threading.Lock()

    # --- point-at-a-time: straight to the ladder ------------------------------

    def eval(self, expr, point, ty=F64):
        return self.fallback.eval(expr, point, ty)

    def eval_bool(self, expr, point):
        return self.fallback.eval_bool(expr, point)

    # --- counters -------------------------------------------------------------

    def _bump(
        self, points: int, fastpath: int, escalated: int, dd: int = 0
    ) -> None:
        with self._counters_lock:
            self._counters.batch_calls += 1
            self._counters.batch_points += points
            self._counters.fastpath_hits += fastpath
            self._counters.escalated_points += escalated
            self._counters.dd_hits += dd
        self._record_batch(points, fastpath=fastpath, escalated=escalated, dd=dd)

    def counters(self) -> OracleCounters:
        # Includes the fallback's own counters: whole batches of
        # unsupported expressions delegate to ``fallback.eval_batch``,
        # which records them itself (escalated residue goes through the
        # bump-free ``_ladder_batch``, so nothing is counted twice).
        with self._counters_lock:
            snapshot = OracleCounters()
            snapshot.merge(self._counters)
        snapshot.merge(self.fallback.counters())
        return snapshot

    # --- batched --------------------------------------------------------------

    def eval_batch(self, expr, points, ty=F64) -> list[PointResult]:
        check_deadline()
        n = len(points)
        if n == 0:
            return self.fallback.eval_batch(expr, points, ty)
        results, residue, hits, applicable = run_cascade(
            self._rungs, expr, points, ty
        )
        if not applicable:
            # No rung could compile the expression for this target:
            # delegate the whole batch so counters follow the historical
            # fallback path.
            return self.fallback.eval_batch(expr, points, ty)
        if residue:
            laddered = self.fallback._ladder_batch(
                expr, [points[i] for i in residue], ty
            )
            for i, outcome in zip(residue, laddered):
                results[i] = outcome
        self._bump(
            n,
            fastpath=n - len(residue),
            escalated=len(residue),
            dd=hits.get(DoubleDoubleRung.name, 0),
        )
        return results  # type: ignore[return-value]

    def eval_bool_batch(self, expr, points) -> list[PointResult]:
        check_deadline()
        n = len(points)
        program = self._longdouble._bool_program(expr)
        if program is None or n == 0:
            return self.fallback.eval_bool_batch(expr, points)
        try:
            verdict = program.run_bool(points)
        except KeyError:
            self._bump(n, fastpath=0, escalated=0)
            return [PointResult(INVALID)] * n
        results: list[PointResult | None] = [None] * n
        residue: list[int] = []
        for i, v in enumerate(verdict.tolist()):
            if v == _CERT_ERROR:
                results[i] = PointResult(DOMAIN_ERROR)
            elif v == _ESCALATE:
                residue.append(i)
            else:
                results[i] = PointResult(OK, 1.0 if v == _TRUE else 0.0)
        if residue:
            laddered = self.fallback._ladder_bool_batch(
                expr, [points[i] for i in residue]
            )
            for i, outcome in zip(residue, laddered):
                results[i] = outcome
        self._bump(n, fastpath=n - len(residue), escalated=len(residue))
        return results  # type: ignore[return-value]
