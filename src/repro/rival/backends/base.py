"""Common protocol and bookkeeping for pluggable oracle backends.

An :class:`OracleBackend` answers ground-truth queries about real
expressions — the correctly rounded value at a point (the Rival contract,
paper section 3.1) and exact boolean decisions for preconditions — and,
new in this subsystem, answers them for **whole point sets at once**
through :meth:`OracleBackend.eval_batch`.  Batch entry points let a
backend amortize work across points (vectorized interval arithmetic,
process-pool sharding) that the point-at-a-time API cannot express.

Batch calls never raise per-point failures: each point comes back as a
:class:`PointResult` carrying a status (`"ok"`, `"domain-error"`,
`"precision-exhausted"`, `"invalid"`) so one bad point cannot poison the
rest of the block.  Every backend must be *semantics-preserving*: for
each point, the status and (for ``"ok"``) the bit pattern of the value
must equal what :class:`repro.rival.eval.RivalEvaluator` produces for
that point alone.  Fast paths are acceptance filters, never
approximations.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, fields
from typing import Iterator, Sequence

from ...ir.expr import Expr
from ...ir.types import F64
from ...obs.metrics import COUNT_BUCKETS, METRICS
from ..eval import PrecisionExhausted
from ..interval import DomainError

#: Per-point batch statuses.
OK = "ok"
DOMAIN_ERROR = "domain-error"
PRECISION_EXHAUSTED = "precision-exhausted"
INVALID = "invalid"

#: Backend names accepted by :func:`repro.rival.backends.make_backend`
#: and the ``REPRO_ORACLE_BACKEND`` environment knob.
BACKEND_NAMES = ("numpy", "mpmath", "pool")

#: Name aliases: ``auto`` (and empty) mean the vectorized fast path with
#: the mpmath ladder as its escalation rung.
_ALIASES = {"auto": "numpy", "": "numpy"}


@dataclass(frozen=True)
class PointResult:
    """Outcome of one point inside a batched oracle call.

    ``value`` is meaningful only when ``status == "ok"``; boolean batch
    calls encode True/False as 1.0/0.0 (see :attr:`truthy`).
    """

    status: str
    value: float = math.nan

    @property
    def ok(self) -> bool:
        return self.status == OK

    @property
    def truthy(self) -> bool:
        """The boolean reading of an ``"ok"`` result."""
        return self.status == OK and bool(self.value)


@dataclass
class OracleCounters:
    """Backend-level work counters, mergeable across processes.

    ``evals``/``escalations`` mirror :class:`RivalEvaluator`'s per-rung
    counters but are non-zero only for evaluator instances *owned* by a
    backend on the far side of a process boundary (pool workers); the
    in-process backends share the session evaluator, whose own counters
    remain authoritative, so the session can sum both without double
    counting.
    """

    evals: int = 0
    escalations: int = 0
    batch_calls: int = 0
    batch_points: int = 0
    fastpath_hits: int = 0
    escalated_points: int = 0
    pool_chunks: int = 0
    #: Points settled by the double-double rung specifically (a subset of
    #: ``fastpath_hits``; ``fastpath_hits - dd_hits`` is the longdouble
    #: sweep's share, ``escalated_points`` the ladder's).
    dd_hits: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other) -> None:
        """Add another counter set (an OracleCounters or a plain dict).

        Unknown dict keys are ignored so payloads from newer/older
        workers stay mergeable.
        """
        if isinstance(other, OracleCounters):
            other = other.as_dict()
        for f in fields(self):
            delta = other.get(f.name)
            if delta:
                setattr(self, f.name, getattr(self, f.name) + int(delta))

    def any(self) -> bool:
        return any(getattr(self, f.name) for f in fields(self))


def classify_failure(exc: Exception) -> PointResult:
    """Map a per-point evaluator exception onto a batch status."""
    if isinstance(exc, DomainError):
        return PointResult(DOMAIN_ERROR)
    if isinstance(exc, PrecisionExhausted):
        return PointResult(PRECISION_EXHAUSTED)
    return PointResult(INVALID)


def resolve_backend_name(name: str | None = None) -> str:
    """Resolve an oracle backend name: argument, then environment, then auto.

    Raises ValueError for names outside :data:`BACKEND_NAMES`.
    """
    if name is None:
        name = os.environ.get("REPRO_ORACLE_BACKEND", "")
    name = name.strip().lower()
    resolved = _ALIASES.get(name, name)
    if resolved not in BACKEND_NAMES:
        raise ValueError(
            f"unknown oracle backend {name!r}; expected one of "
            f"{', '.join(BACKEND_NAMES)} (or 'auto')"
        )
    return resolved


class OracleBackend:
    """Abstract base: ground-truth evaluation, point-wise and batched."""

    #: Resolved backend name, surfaced through ``/health``.
    name = "abstract"

    # --- point-at-a-time API (the original RivalEvaluator surface) ------------

    def eval(self, expr: Expr, point: dict[str, float], ty: str = F64) -> float:
        raise NotImplementedError

    def eval_bool(self, expr: Expr, point: dict[str, float]) -> bool:
        raise NotImplementedError

    # --- batched API ----------------------------------------------------------

    def eval_batch(
        self, expr: Expr, points: Sequence[dict[str, float]], ty: str = F64
    ) -> list[PointResult]:
        """Correctly rounded values for every point, one backend call."""
        raise NotImplementedError

    def eval_bool_batch(
        self, expr: Expr, points: Sequence[dict[str, float]]
    ) -> list[PointResult]:
        """Boolean decisions (1.0/0.0 values) for every point."""
        raise NotImplementedError

    def sample_batch(
        self,
        pre: Expr | None,
        body: Expr,
        points: Sequence[dict[str, float]],
        ty: str = F64,
    ) -> list[PointResult | None]:
        """One sampler iteration: precondition filter + body evaluation.

        Returns one entry per candidate point: ``None`` where the
        precondition is not certainly true (the point never reaches the
        body), otherwise the body's :class:`PointResult`.  The default
        composes :meth:`eval_bool_batch` and :meth:`eval_batch`
        in-process; sharding backends override it so the *whole* sampler
        iteration (filtering and evaluation) crosses the process
        boundary once instead of twice.
        """
        if pre is not None:
            verdicts = self.eval_bool_batch(pre, points)
            passing = [i for i, v in enumerate(verdicts) if v.truthy]
        else:
            passing = list(range(len(points)))
        outcomes = self.eval_batch(body, [points[i] for i in passing], ty)
        results: list[PointResult | None] = [None] * len(points)
        for i, outcome in zip(passing, outcomes):
            results[i] = outcome
        return results

    def counters(self) -> OracleCounters:
        """A snapshot of this backend's work counters."""
        return OracleCounters()

    # --- shared instrumentation -----------------------------------------------

    def _record_batch(
        self, points: int, fastpath: int, escalated: int, dd: int = 0
    ) -> None:
        """Bump batch metrics for one ``eval_batch``/``eval_bool_batch``."""
        METRICS.counter(
            "repro_oracle_batch_points",
            "Points submitted to batched oracle evaluation.",
            backend=self.name,
        ).inc(points)
        METRICS.counter(
            "repro_oracle_fastpath_hits",
            "Batched points settled by the vectorized fast path "
            "(no mpmath escalation).",
            backend=self.name,
        ).inc(fastpath)
        for rung, hits in (
            ("longdouble", fastpath - dd),
            ("dd", dd),
            ("ladder", escalated),
        ):
            if hits:
                METRICS.counter(
                    "repro_oracle_rung_points",
                    "Batched points settled per cascade rung "
                    "(longdouble sweep, double-double, mpmath ladder).",
                    backend=self.name,
                    rung=rung,
                ).inc(hits)
        METRICS.histogram(
            "repro_oracle_batch_size",
            "Distribution of oracle batch sizes (points per call).",
            buckets=COUNT_BUCKETS,
            backend=self.name,
        ).observe(points)


def iter_ok_values(results: Sequence[PointResult]) -> Iterator[float]:
    """The values of the ``"ok"`` results, in order (helper for tests)."""
    for result in results:
        if result.status == OK:
            yield result.value
