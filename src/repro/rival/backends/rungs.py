"""The oracle fast-path rung cascade: longdouble → double-double → ladder.

The batched oracle is structured as an explicit cascade of *rungs*.
Each rung is a vectorized acceptance filter: given one expression and a
block of points it may **settle** a point (produce the exact
:class:`~repro.rival.backends.base.PointResult` the mpmath ladder would
produce, bit for bit) or **pass** on it, and whatever survives every
rung climbs the unchanged mpmath escalation ladder.  Because every rung
only accepts a point when its outward-rounded enclosure collapses to a
single target-format float, the cascade is bit-identical to running the
ladder alone by construction — rungs trade precision for throughput,
never for semantics.

Concretely (see :class:`repro.rival.backends.numpy_backend.NumpyBackend`):

* rung 1 — ``longdouble``: one numpy sweep in 80-bit extended precision
  (:mod:`.numpy_backend`), ~11 bits of headroom over binary64;
* rung 2 — ``dd``: batched double-double interval arithmetic
  (:mod:`.dd`), ~106 effective bits, built from error-free transforms,
  for the cancellation-dominated residue the longdouble sweep cannot
  settle;
* rung 3 — the per-point mpmath ladder (80→1280 bits), the authority.

This module holds the pieces shared by every rung implementation: the
:class:`Rung` contract, the bounded compiled-program cache, the
:class:`Unsupported` escape hatch, and :func:`run_cascade`, the driver
that threads a shrinking residue through the rung list and reports
per-rung hit counts.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Sequence

from .base import PointResult


class Unsupported(Exception):
    """The expression has no faithful vector mirror on this rung."""


class ProgramCache:
    """Bounded LRU of compiled straight-line programs, keyed by caller.

    ``None`` entries are cached too: an expression a rung cannot compile
    (an :class:`Unsupported` op) stays unsupported, and re-raising the
    builder on every batch would dominate small-batch calls.
    """

    def __init__(self, max_programs: int = 256):
        self.max_programs = max_programs
        self._programs: OrderedDict[tuple, object | None] = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: tuple, build):
        with self._lock:
            if key in self._programs:
                self._programs.move_to_end(key)
                return self._programs[key]
        try:
            program = build()
        except Unsupported:
            program = None
        with self._lock:
            self._programs[key] = program
            while len(self._programs) > self.max_programs:
                self._programs.popitem(last=False)
        return program


class Rung:
    """One vectorized acceptance filter of the cascade."""

    #: Stable rung name used in counters, metrics labels and ``/health``.
    name = "abstract"

    def evaluate(
        self, expr, points: Sequence[dict], ty: str
    ) -> list[PointResult | None] | None:
        """Settle what this rung can; ``None`` entries pass to the next.

        Returns ``None`` (instead of a list) when the rung does not apply
        at all — unsupported expression, unsupported target format — so
        the driver can tell "rung stood down" apart from "rung settled
        nothing".
        """
        raise NotImplementedError


def run_cascade(
    rungs: Sequence[Rung], expr, points: Sequence[dict], ty: str
) -> tuple[list[PointResult | None], list[int], dict[str, int], bool]:
    """Drive ``points`` through the rungs, each seeing the prior residue.

    Returns ``(results, residue, hits, applicable)``: per-point results
    (``None`` where every rung passed), the indices of the unsettled
    residue (the ladder's work list), per-rung settle counts, and whether
    *any* rung applied (when none did, the caller should delegate the
    whole batch to its fallback so counters follow the historical
    delegate path).
    """
    n = len(points)
    results: list[PointResult | None] = [None] * n
    residue = list(range(n))
    hits: dict[str, int] = {}
    applicable = False
    for rung in rungs:
        if not residue:
            hits.setdefault(rung.name, 0)
            continue
        subset = points if len(residue) == n else [points[i] for i in residue]
        outcome = rung.evaluate(expr, subset, ty)
        if outcome is None:
            hits.setdefault(rung.name, 0)
            continue
        applicable = True
        next_residue: list[int] = []
        settled = 0
        for index, result in zip(residue, outcome):
            if result is None:
                next_residue.append(index)
            else:
                results[index] = result
                settled += 1
        hits[rung.name] = settled
        residue = next_residue
    return results, residue, hits, applicable
