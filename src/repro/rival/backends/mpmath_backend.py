"""The mpmath escalation ladder as an oracle backend.

This wraps the original :class:`RivalEvaluator` (interval arithmetic at
escalating ``mp.workprec``) behind the :class:`OracleBackend` protocol.
It is both a standalone backend (``REPRO_ORACLE_BACKEND=mpmath``) and
the hard-point fallback rung of the numpy fast path: batch calls loop
point-at-a-time, but take the serialization lock **once per batch**
instead of once per point, so a session's ``_oracle_lock`` now guards
only the mpmath rung (``mp.workprec`` is process-global state) rather
than entire sampling or scoring passes.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Sequence

from ...ir.expr import Expr
from ...ir.types import F64
from ...deadline import check_deadline
from ..eval import RivalEvaluator
from .base import OK, OracleBackend, OracleCounters, PointResult, classify_failure


class MpmathBackend(OracleBackend):
    """Adaptive-precision mpmath evaluation behind the backend protocol."""

    name = "mpmath"

    def __init__(self, evaluator: RivalEvaluator | None = None, lock=None):
        #: The escalation ladder; shared with the owning session so its
        #: ``evals``/``escalations`` counters stay authoritative.
        self.evaluator = evaluator if evaluator is not None else RivalEvaluator()
        #: Zero-arg callable returning a context manager that serializes
        #: access to the process-global mpmath state (a session passes
        #: its instrumented ``_oracle_section``); None means the caller
        #: guarantees single-threaded use.
        self._lock = lock
        self._counters = OracleCounters()
        self._counters_lock = threading.Lock()

    def _section(self):
        return self._lock() if self._lock is not None else nullcontext()

    def _bump(self, points: int, escalated: int, fastpath: int = 0) -> None:
        with self._counters_lock:
            self._counters.batch_calls += 1
            self._counters.batch_points += points
            self._counters.escalated_points += escalated
            self._counters.fastpath_hits += fastpath
        self._record_batch(points, fastpath=fastpath, escalated=escalated)

    def counters(self) -> OracleCounters:
        with self._counters_lock:
            snapshot = OracleCounters()
            snapshot.merge(self._counters)
        return snapshot

    # --- point-at-a-time ------------------------------------------------------

    def eval(self, expr: Expr, point: dict[str, float], ty: str = F64) -> float:
        with self._section():
            return self.evaluator.eval(expr, point, ty)

    def eval_bool(self, expr: Expr, point: dict[str, float]) -> bool:
        with self._section():
            return self.evaluator.eval_bool(expr, point)

    # --- batched --------------------------------------------------------------

    def eval_batch(
        self, expr: Expr, points: Sequence[dict[str, float]], ty: str = F64
    ) -> list[PointResult]:
        results = self._ladder_batch(expr, points, ty)
        self._bump(len(points), escalated=len(points))
        return results

    def eval_bool_batch(
        self, expr: Expr, points: Sequence[dict[str, float]]
    ) -> list[PointResult]:
        results = self._ladder_bool_batch(expr, points)
        self._bump(len(points), escalated=len(points))
        return results

    # --- the ladder rung (also used by the numpy backend's residue) -----------

    def _ladder_batch(
        self, expr: Expr, points: Sequence[dict[str, float]], ty: str
    ) -> list[PointResult]:
        """Run every point through the full ladder, under one lock hold.

        DeadlineExceeded (a BaseException) propagates; ordinary per-point
        failures become statuses.
        """
        results: list[PointResult] = []
        with self._section():
            for point in points:
                check_deadline()
                try:
                    value = self.evaluator.eval(expr, point, ty)
                except Exception as exc:
                    results.append(classify_failure(exc))
                else:
                    results.append(PointResult(OK, value))
        return results

    def _ladder_bool_batch(
        self, expr: Expr, points: Sequence[dict[str, float]]
    ) -> list[PointResult]:
        results: list[PointResult] = []
        with self._section():
            for point in points:
                check_deadline()
                try:
                    verdict = self.evaluator.eval_bool(expr, point)
                except Exception as exc:
                    results.append(classify_failure(exc))
                else:
                    results.append(PointResult(OK, 1.0 if verdict else 0.0))
        return results
