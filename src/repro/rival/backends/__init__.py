"""Pluggable oracle backends (see :mod:`repro.rival.backends.base`).

Three strategies behind one :class:`OracleBackend` protocol:

* ``numpy`` (alias ``auto``, the default) — the vectorized rung cascade
  (:mod:`.rungs`): an extended-precision interval sweep, then batched
  double-double interval arithmetic (:mod:`.dd`), each accepting only
  points whose outward-rounded enclosure already rounds uniquely in the
  target format; the residue escalates to the mpmath ladder.
* ``mpmath`` — the original escalation ladder alone (the reference
  semantics every other backend must match bit-for-bit).
* ``pool`` — batches *and whole sampler iterations* sharded across
  per-worker oracle instances on the session's persistent
  :class:`~repro.service.pool.WorkerPool`.

Select with ``ChassisSession(oracle_backend=...)`` or the
``REPRO_ORACLE_BACKEND`` environment variable.
"""

from __future__ import annotations

from ..eval import RivalEvaluator
from .base import (
    BACKEND_NAMES,
    DOMAIN_ERROR,
    INVALID,
    OK,
    PRECISION_EXHAUSTED,
    OracleBackend,
    OracleCounters,
    PointResult,
    classify_failure,
    iter_ok_values,
    resolve_backend_name,
)
from .mpmath_backend import MpmathBackend
from .numpy_backend import NumpyBackend

__all__ = [
    "BACKEND_NAMES",
    "DOMAIN_ERROR",
    "INVALID",
    "OK",
    "PRECISION_EXHAUSTED",
    "MpmathBackend",
    "NumpyBackend",
    "OracleBackend",
    "OracleCounters",
    "PointResult",
    "classify_failure",
    "iter_ok_values",
    "make_backend",
    "resolve_backend_name",
]


def make_backend(
    name: str | None = None,
    *,
    evaluator: RivalEvaluator | None = None,
    lock=None,
    pool_provider=None,
    config_provider=None,
    min_pool_points: int | None = None,
) -> OracleBackend:
    """Build the oracle backend for ``name`` (None: environment, then auto).

    ``evaluator`` is the shared escalation ladder (a fresh one when
    omitted); ``lock`` is a zero-arg callable returning a context manager
    serializing the process-global mpmath rung (sessions pass their
    instrumented oracle section).  ``pool_provider``/``config_provider``
    feed the ``pool`` backend; without a provider (or with a ``jobs=1``
    session, whose provider returns None) pooled requests degrade to the
    in-process fast path.  ``min_pool_points`` overrides the pool's
    sharding threshold (default: ``REPRO_ORACLE_POOL_MIN_BATCH``, then
    64 points).
    """
    resolved = resolve_backend_name(name)
    evaluator = evaluator if evaluator is not None else RivalEvaluator()
    ladder = MpmathBackend(evaluator, lock=lock)
    if resolved == "mpmath":
        return ladder
    fast = NumpyBackend(ladder)
    if resolved == "numpy":
        return fast
    # Imported lazily so the common in-process backends never pay for the
    # pool machinery (and so worker processes resolving "pool" -> fallback
    # keep their import footprint small).
    from .pool_backend import PoolOracleBackend

    return PoolOracleBackend(
        fast,
        pool_provider=pool_provider,
        config_provider=config_provider,
        min_pool_points=min_pool_points,
    )
