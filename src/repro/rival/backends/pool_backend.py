"""Process-pool oracle backend: shard batches across worker oracles.

The third backend of the subsystem: batch evaluations are split into
per-worker chunks and dispatched through the session's persistent
:class:`~repro.service.pool.WorkerPool`, so oracle-bound work stops
contending on the parent's one process-global ``mp.workprec`` lock.
Each worker owns a private :class:`~repro.rival.eval.RivalEvaluator`
wrapped in the numpy fast path (workers are single-threaded, so no lock
is needed there), and ships per-chunk counter deltas home so the session
can still account every evaluation.

Expressions cross the process boundary as s-expression text (:class:`Expr`
trees hold interned structural state that must not be pickled); points are
plain ``{name: float}`` dicts.  Results come back as ``(status, value)``
pairs in point order, so chunk concatenation preserves the batch order
and the combined output is bit-identical to an in-process evaluation.

Small batches (and point-at-a-time calls) skip the pool entirely — the
round-trip would cost more than the evaluation — and run on the
in-process fallback backend instead.
"""

from __future__ import annotations

import os
import threading
from typing import Sequence

from ...ir.parser import parse_expr
from ...ir.printer import expr_to_sexpr
from ...ir.types import F64
from ..eval import RivalEvaluator
from .base import OracleBackend, OracleCounters, PointResult
from .mpmath_backend import MpmathBackend
from .numpy_backend import NumpyBackend

#: Batches below this many points run in-process: the pickle round-trip
#: and dispatch latency beat the ladder only once a chunk has real work.
#: Overridable per instance (constructor) or per process
#: (``REPRO_ORACLE_POOL_MIN_BATCH``).
MIN_POOL_POINTS = 64


def _resolve_min_pool_points(value: int | None = None) -> int:
    """Sharding threshold: explicit argument, then environment, then 64."""
    if value is not None:
        return max(1, int(value))
    raw = os.environ.get("REPRO_ORACLE_POOL_MIN_BATCH", "").strip()
    if raw:
        try:
            parsed = int(raw)
        except ValueError:
            raise ValueError(
                "REPRO_ORACLE_POOL_MIN_BATCH must be an integer, "
                f"got {raw!r}"
            ) from None
        return max(1, parsed)
    return MIN_POOL_POINTS

#: Per-worker oracle instances, keyed by the ladder's precision tuple.
#: Module-level so warm workers reuse their evaluator (and its compiled
#: numpy programs) across chunks and across batches.
_WORKER_ORACLE: dict = {}


def _worker_oracle(precisions: tuple) -> NumpyBackend:
    oracle = _WORKER_ORACLE.get(precisions)
    if oracle is None:
        # No lock: pool workers run one task at a time on one thread.
        evaluator = RivalEvaluator(precisions)
        oracle = _WORKER_ORACLE[precisions] = NumpyBackend(
            MpmathBackend(evaluator)
        )
    return oracle


def _oracle_worker_chunk(task: dict) -> dict:
    """Evaluate one batch shard inside a pool worker.

    ``task`` is ``{"kind": "real"|"bool"|"sample", "source": sexpr,
    "ty": str, "points": [...], "precisions": (...)}`` — ``"sample"``
    chunks additionally carry ``"pre"`` (a precondition sexpr or None)
    and run the whole sampler iteration (filter + body) worker-side.
    Returns point-ordered ``(status, value)`` pairs (``None`` for sample
    points the precondition rejected) plus this chunk's counter deltas
    (including the worker evaluator's ``evals``/``escalations``, which
    have no other way home).
    """
    oracle = _worker_oracle(tuple(task["precisions"]))
    evaluator = oracle.evaluator
    evals0, escalations0 = evaluator.evals, evaluator.escalations
    before = oracle.counters()
    expr = parse_expr(task["source"])
    if task["kind"] == "bool":
        results = oracle.eval_bool_batch(expr, task["points"])
    elif task["kind"] == "sample":
        pre = parse_expr(task["pre"]) if task["pre"] else None
        results = oracle.sample_batch(pre, expr, task["points"], task["ty"])
    else:
        results = oracle.eval_batch(expr, task["points"], task["ty"])
    counters = oracle.counters()
    deltas = {
        key: value - getattr(before, key)
        for key, value in counters.as_dict().items()
    }
    deltas["evals"] = evaluator.evals - evals0
    deltas["escalations"] = evaluator.escalations - escalations0
    # The parent records its own batch-level shape (one logical batch,
    # not one per shard).
    deltas["batch_calls"] = 0
    deltas["batch_points"] = 0
    return {
        "results": [
            None if r is None else (r.status, r.value) for r in results
        ],
        "counters": deltas,
    }


class PoolOracleBackend(OracleBackend):
    """Shard batched oracle calls across per-worker oracle instances."""

    name = "pool"

    def __init__(
        self,
        fallback: NumpyBackend,
        *,
        pool_provider=None,
        config_provider=None,
        min_pool_points: int | None = None,
    ):
        #: In-process backend for point calls and small batches.
        self.fallback = fallback
        self.evaluator = fallback.evaluator
        #: Zero-arg callable returning the session's WorkerPool (or None,
        #: in which case everything runs on the fallback).
        self._pool_provider = pool_provider
        #: Zero-arg callable returning ``(CompileConfig, SampleConfig)``
        #: for the pool's worker-initialization fingerprint.
        self._config_provider = config_provider
        #: Sharding threshold: constructor argument, then the
        #: ``REPRO_ORACLE_POOL_MIN_BATCH`` environment knob, then 64.
        self.min_pool_points = _resolve_min_pool_points(min_pool_points)
        self._counters = OracleCounters()
        self._counters_lock = threading.Lock()

    # --- point-at-a-time ------------------------------------------------------

    def eval(self, expr, point, ty=F64):
        return self.fallback.eval(expr, point, ty)

    def eval_bool(self, expr, point):
        return self.fallback.eval_bool(expr, point)

    # --- counters -------------------------------------------------------------

    def counters(self) -> OracleCounters:
        # ``_counters`` holds only sharded batches (worker deltas merged
        # in); small batches and point calls land on the fallback, whose
        # counters are disjoint by construction.
        with self._counters_lock:
            snapshot = OracleCounters()
            snapshot.merge(self._counters)
        snapshot.merge(self.fallback.counters())
        return snapshot

    # --- batched --------------------------------------------------------------

    def eval_batch(self, expr, points, ty=F64) -> list[PointResult]:
        return self._sharded(expr, points, kind="real", ty=ty)

    def eval_bool_batch(self, expr, points) -> list[PointResult]:
        return self._sharded(expr, points, kind="bool", ty=F64)

    def sample_batch(
        self, pre, body, points: Sequence[dict], ty: str = F64
    ) -> list[PointResult | None]:
        """Shard whole sampler iterations: each worker filters its chunk
        against the precondition and evaluates the survivors' bodies in
        one round trip, so cancellation-bound sampling no longer
        serializes on the parent's ladder between the two passes."""
        return self._sharded(body, points, kind="sample", ty=ty, pre=pre)

    def _sharded(
        self, expr, points: Sequence[dict], *, kind: str, ty: str, pre=None
    ) -> list[PointResult]:
        pool = self._pool_provider() if self._pool_provider else None
        if pool is None or len(points) < self.min_pool_points:
            if kind == "bool":
                return self.fallback.eval_bool_batch(expr, points)
            if kind == "sample":
                return self.fallback.sample_batch(pre, expr, points, ty)
            return self.fallback.eval_batch(expr, points, ty)
        config = sample_config = None
        if self._config_provider is not None:
            config, sample_config = self._config_provider()
        source = expr_to_sexpr(expr)
        pre_source = expr_to_sexpr(pre) if pre is not None else None
        precisions = tuple(self.evaluator.precisions)
        chunk = max(
            self.min_pool_points,
            (len(points) + pool.workers - 1) // pool.workers,
        )
        tasks = [
            {
                "kind": kind,
                "source": source,
                "ty": ty,
                "points": list(points[start:start + chunk]),
                "precisions": precisions,
            }
            for start in range(0, len(points), chunk)
        ]
        if kind == "sample":
            for task in tasks:
                task["pre"] = pre_source
        payloads = pool.run_tasks(
            _oracle_worker_chunk, tasks, config, sample_config
        )
        results: list = []
        merged = OracleCounters()
        for payload in payloads:
            results.extend(
                None if entry is None else PointResult(entry[0], entry[1])
                for entry in payload["results"]
            )
            merged.merge(payload["counters"])
        if kind == "sample":
            # Mirror the in-process composition's batch shape: one bool
            # batch over every candidate plus one real batch over the
            # precondition's survivors (or just the real batch when the
            # core has no precondition).
            passing = sum(1 for entry in results if entry is not None)
            merged.batch_calls = 2 if pre is not None else 1
            merged.batch_points = (
                len(points) + passing if pre is not None else len(points)
            )
        else:
            merged.batch_calls = 1
            merged.batch_points = len(points)
        merged.pool_chunks = len(tasks)
        with self._counters_lock:
            self._counters.merge(merged)
        self._record_batch(
            merged.batch_points,
            fastpath=merged.fastpath_hits,
            escalated=merged.escalated_points,
            dd=merged.dd_hits,
        )
        return results
