"""Real interval arithmetic over mpmath — our stand-in for the Rival library.

Herbie and Chassis score accuracy against "correctly rounded" results
computed by the Rival interval library (paper section 3.1).  This module
provides the same contract: guaranteed-enclosure interval arithmetic over
arbitrary-precision floats, with a *possible error* flag for domain
violations (log of a negative, division by zero, ...).

Soundness recipe: each operation computes endpoint values with mpmath at the
current working precision (mpmath's transcendental functions are accurate to
~1 ulp) and then widens the result outward by a few ulps at that precision.
The adaptive evaluator (:mod:`repro.rival.eval`) escalates precision until
the enclosure rounds unambiguously into the target format, so the widening
margin only costs iterations, never correctness.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable

import mpmath
from mpmath import mp, mpf


class DomainError(ArithmeticError):
    """The expression is (certainly) undefined at the evaluated point."""


class Interval:
    """A closed real interval ``[lo, hi]`` with a possible-error flag.

    ``err=True`` means the true result *may* be a domain error (the input
    enclosure straddles a singularity or domain edge); the adaptive
    evaluator treats it as "escalate precision, and give up if it persists".
    """

    __slots__ = ("lo", "hi", "err")

    def __init__(self, lo, hi, err: bool = False):
        self.lo = mpf(lo)
        self.hi = mpf(hi)
        self.err = err
        if not err and not (self.lo <= self.hi):
            if mpmath.isnan(self.lo) or mpmath.isnan(self.hi):
                self.err = True
            else:
                raise ValueError(f"inverted interval [{lo}, {hi}]")

    # --- constructors -----------------------------------------------------------

    @staticmethod
    def point(value) -> "Interval":
        """An exact (width-zero) interval; value must be mpf-representable."""
        v = _exact(value)
        return Interval(v, v)

    @staticmethod
    def error() -> "Interval":
        """A certainly-erroneous interval."""
        return Interval(mpf("nan"), mpf("nan"), err=True)

    # --- inspection --------------------------------------------------------------

    def is_point(self) -> bool:
        return not self.err and self.lo == self.hi

    def width(self) -> mpf:
        return self.hi - self.lo

    def contains(self, value) -> bool:
        v = mpf(value)
        return not self.err and self.lo <= v <= self.hi

    def contains_zero(self) -> bool:
        return not self.err and self.lo <= 0 <= self.hi

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", err" if self.err else ""
        return f"Interval({mpmath.nstr(self.lo, 12)}, {mpmath.nstr(self.hi, 12)}{flag})"


def _exact(value) -> mpf:
    """Convert a float/int/Fraction exactly to mpf (no rounding)."""
    if isinstance(value, Fraction):
        with mp.workprec(max(mp.prec, 256)):
            return mpf(value.numerator) / mpf(value.denominator)
    return mpf(value)


# --- outward widening ------------------------------------------------------------


def _down(x: mpf) -> mpf:
    """A value certainly <= the true value that ``x`` approximates."""
    if mpmath.isinf(x) or mpmath.isnan(x):
        return x
    margin = abs(x) * mpf(2) ** (3 - mp.prec) + mpf(2) ** (-mp.prec - 1080)
    return x - margin


def _up(x: mpf) -> mpf:
    """A value certainly >= the true value that ``x`` approximates."""
    if mpmath.isinf(x) or mpmath.isnan(x):
        return x
    margin = abs(x) * mpf(2) ** (3 - mp.prec) + mpf(2) ** (-mp.prec - 1080)
    return x + margin


def _widened(lo: mpf, hi: mpf) -> Interval:
    return Interval(_down(lo), _up(hi))


# --- exact endpoint arithmetic -----------------------------------------------------


def iadd(a: Interval, b: Interval) -> Interval:
    if a.err or b.err:
        return Interval.error()
    return _widened(a.lo + b.lo, a.hi + b.hi)


def isub(a: Interval, b: Interval) -> Interval:
    if a.err or b.err:
        return Interval.error()
    return _widened(a.lo - b.hi, a.hi - b.lo)


def ineg(a: Interval) -> Interval:
    if a.err:
        return Interval.error()
    return Interval(-a.hi, -a.lo)


def imul(a: Interval, b: Interval) -> Interval:
    if a.err or b.err:
        return Interval.error()
    products = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
    return _widened(min(products), max(products))


def idiv(a: Interval, b: Interval) -> Interval:
    if a.err or b.err:
        return Interval.error()
    if b.contains_zero():
        # A point denominator of exactly 0 is certainly an error; an interval
        # merely straddling 0 may shrink away at higher precision.
        return Interval.error()
    quotients = (a.lo / b.lo, a.lo / b.hi, a.hi / b.lo, a.hi / b.hi)
    return _widened(min(quotients), max(quotients))


def ifabs(a: Interval) -> Interval:
    if a.err:
        return Interval.error()
    if a.lo >= 0:
        return Interval(a.lo, a.hi)
    if a.hi <= 0:
        return Interval(-a.hi, -a.lo)
    return Interval(mpf(0), max(-a.lo, a.hi))


def ifmin(a: Interval, b: Interval) -> Interval:
    if a.err or b.err:
        return Interval.error()
    return Interval(min(a.lo, b.lo), min(a.hi, b.hi))


def ifmax(a: Interval, b: Interval) -> Interval:
    if a.err or b.err:
        return Interval.error()
    return Interval(max(a.lo, b.lo), max(a.hi, b.hi))


def icopysign(a: Interval, b: Interval) -> Interval:
    if a.err or b.err:
        return Interval.error()
    mag = ifabs(a)
    if b.lo > 0:
        return mag
    if b.hi < 0:
        return ineg(mag)
    return Interval(-mag.hi, mag.hi)


# --- monotone function lifting -------------------------------------------------------


def _monotone_inc(fn: Callable, a: Interval, lo_ok: Callable | None = None) -> Interval:
    """Lift a monotonically increasing function with optional domain check."""
    if a.err:
        return Interval.error()
    if lo_ok is not None and not lo_ok(a):
        return Interval.error()
    try:
        return _widened(fn(a.lo), fn(a.hi))
    except (ValueError, mpmath.libmp.ComplexResult, ZeroDivisionError, OverflowError):
        return Interval.error()


def iexp(a: Interval) -> Interval:
    return _monotone_inc(mpmath.exp, a)


def iexpm1(a: Interval) -> Interval:
    return _monotone_inc(mpmath.expm1, a)


def ilog(a: Interval) -> Interval:
    return _monotone_inc(mpmath.log, a, lambda iv: iv.lo > 0)


def ilog2(a: Interval) -> Interval:
    return _monotone_inc(lambda x: mpmath.log(x, 2), a, lambda iv: iv.lo > 0)


def ilog10(a: Interval) -> Interval:
    return _monotone_inc(mpmath.log10, a, lambda iv: iv.lo > 0)


def ilog1p(a: Interval) -> Interval:
    return _monotone_inc(mpmath.log1p, a, lambda iv: iv.lo > -1)


def isqrt(a: Interval) -> Interval:
    return _monotone_inc(mpmath.sqrt, a, lambda iv: iv.lo >= 0)


def _real_cbrt(x):
    """Real cube root (mpmath.cbrt returns the complex principal root)."""
    if x >= 0:
        return mpmath.cbrt(x)
    return -mpmath.cbrt(-x)


def icbrt(a: Interval) -> Interval:
    return _monotone_inc(_real_cbrt, a)


def iasin(a: Interval) -> Interval:
    return _monotone_inc(mpmath.asin, a, lambda iv: iv.lo >= -1 and iv.hi <= 1)


def iacos(a: Interval) -> Interval:
    if a.err or a.lo < -1 or a.hi > 1:
        return Interval.error()
    return _widened(mpmath.acos(a.hi), mpmath.acos(a.lo))


def iatan(a: Interval) -> Interval:
    return _monotone_inc(mpmath.atan, a)


def isinh(a: Interval) -> Interval:
    return _monotone_inc(mpmath.sinh, a)


def itanh(a: Interval) -> Interval:
    return _monotone_inc(mpmath.tanh, a)


def iasinh(a: Interval) -> Interval:
    return _monotone_inc(mpmath.asinh, a)


def iacosh(a: Interval) -> Interval:
    return _monotone_inc(mpmath.acosh, a, lambda iv: iv.lo >= 1)


def iatanh(a: Interval) -> Interval:
    return _monotone_inc(mpmath.atanh, a, lambda iv: iv.lo > -1 and iv.hi < 1)


def icosh(a: Interval) -> Interval:
    if a.err:
        return Interval.error()
    hi = max(mpmath.cosh(a.lo), mpmath.cosh(a.hi))
    lo = mpf(1) if a.contains_zero() else min(mpmath.cosh(a.lo), mpmath.cosh(a.hi))
    return _widened(lo, hi)


# --- periodic functions ----------------------------------------------------------------


def _pi() -> mpf:
    return mpmath.pi()


def isin(a: Interval) -> Interval:
    if a.err:
        return Interval.error()
    two_pi = 2 * _pi()
    if a.width() >= two_pi:
        return Interval(mpf(-1), mpf(1))
    half_pi = _pi() / 2
    # Maximum at pi/2 + 2k*pi within [lo, hi]?
    has_max = mpmath.floor((a.hi - half_pi) / two_pi) >= mpmath.ceil(
        (a.lo - half_pi) / two_pi
    )
    has_min = mpmath.floor((a.hi + half_pi) / two_pi) >= mpmath.ceil(
        (a.lo + half_pi) / two_pi
    )
    values = (mpmath.sin(a.lo), mpmath.sin(a.hi))
    hi = mpf(1) if has_max else _up(max(values))
    lo = mpf(-1) if has_min else _down(min(values))
    return Interval(max(lo, mpf(-1)), min(hi, mpf(1)))


def icos(a: Interval) -> Interval:
    if a.err:
        return Interval.error()
    half_pi = _pi() / 2
    shift = Interval(_down(half_pi), _up(half_pi))
    return isin(iadd(a, shift))


def itan(a: Interval) -> Interval:
    if a.err:
        return Interval.error()
    pi = _pi()
    # Does [lo, hi] contain an asymptote pi/2 + k*pi?
    if mpmath.floor((a.hi - pi / 2) / pi) >= mpmath.ceil((a.lo - pi / 2) / pi):
        return Interval.error()
    return _widened(mpmath.tan(a.lo), mpmath.tan(a.hi))


# --- power -----------------------------------------------------------------------------


def ipow(a: Interval, b: Interval) -> Interval:
    if a.err or b.err:
        return Interval.error()
    if b.is_point() and mpmath.isint(b.lo):
        return _ipow_int(a, int(b.lo))
    if a.lo > 0:
        return iexp(imul(b, ilog(a)))
    return Interval.error()


def _ipow_int(a: Interval, n: int) -> Interval:
    if n == 0:
        return Interval.point(1)
    if n < 0:
        inv = idiv(Interval.point(1), a)
        return _ipow_int(inv, -n) if not inv.err else Interval.error()
    lo_p, hi_p = a.lo**n, a.hi**n
    if n % 2 == 1:
        return _widened(lo_p, hi_p)
    if a.lo >= 0:
        return _widened(lo_p, hi_p)
    if a.hi <= 0:
        return _widened(hi_p, lo_p)
    return _widened(mpf(0), max(lo_p, hi_p))


def ihypot(a: Interval, b: Interval) -> Interval:
    return isqrt(iadd(imul(a, a), imul(b, b)))


def iatan2(y: Interval, x: Interval) -> Interval:
    if y.err or x.err:
        return Interval.error()
    if x.lo > 0 or (x.lo >= 0 and not y.contains_zero()) or y.lo > 0 or y.hi < 0:
        corners = [
            mpmath.atan2(yy, xx)
            for yy in (y.lo, y.hi)
            for xx in (x.lo, x.hi)
        ]
        return _widened(min(corners), max(corners))
    # Interval straddles the branch cut (negative x-axis) or the origin.
    return Interval.error()


# --- rounding functions --------------------------------------------------------------------


def _rounding(fn: Callable, a: Interval) -> Interval:
    if a.err:
        return Interval.error()
    return Interval(fn(a.lo), fn(a.hi))


def ifloor(a: Interval) -> Interval:
    return _rounding(mpmath.floor, a)


def iceil(a: Interval) -> Interval:
    return _rounding(mpmath.ceil, a)


def itrunc(a: Interval) -> Interval:
    return _rounding(lambda x: mpmath.floor(x) if x >= 0 else mpmath.ceil(x), a)


def iround(a: Interval) -> Interval:
    return _rounding(mpmath.nint, a)


def ifmod(a: Interval, b: Interval) -> Interval:
    if a.err or b.err or b.contains_zero():
        return Interval.error()
    quotient = itrunc(idiv(a, b))
    if quotient.lo != quotient.hi:
        # Straddles a discontinuity; escalation may shrink it for points.
        return Interval.error()
    return isub(a, imul(b, quotient))


# --- dispatch table ----------------------------------------------------------------------

#: Interval implementation for each real operator.
INTERVAL_OPS: dict[str, Callable[..., Interval]] = {
    "+": iadd,
    "-": isub,
    "*": imul,
    "/": idiv,
    "neg": ineg,
    "fabs": ifabs,
    "fmin": ifmin,
    "fmax": ifmax,
    "copysign": icopysign,
    "sqrt": isqrt,
    "cbrt": icbrt,
    "pow": ipow,
    "hypot": ihypot,
    "exp": iexp,
    "exp2": lambda a: ipow(Interval.point(2), a),
    "expm1": iexpm1,
    "log": ilog,
    "log2": ilog2,
    "log10": ilog10,
    "log1p": ilog1p,
    "sin": isin,
    "cos": icos,
    "tan": itan,
    "asin": iasin,
    "acos": iacos,
    "atan": iatan,
    "atan2": iatan2,
    "sinh": isinh,
    "cosh": icosh,
    "tanh": itanh,
    "asinh": iasinh,
    "acosh": iacosh,
    "atanh": iatanh,
    "floor": ifloor,
    "ceil": iceil,
    "round": iround,
    "trunc": itrunc,
    "fmod": ifmod,
}
