"""Rival-style interval arithmetic: correctly-rounded real evaluation."""

from .eval import (
    DEFAULT_PRECISIONS,
    PrecisionExhausted,
    RivalEvaluator,
    round_to_format,
)
from .interval import INTERVAL_OPS, DomainError, Interval

__all__ = [
    "Interval",
    "DomainError",
    "INTERVAL_OPS",
    "RivalEvaluator",
    "PrecisionExhausted",
    "round_to_format",
    "DEFAULT_PRECISIONS",
]
