"""Rival-style interval arithmetic: correctly-rounded real evaluation."""

from .backends import (
    BACKEND_NAMES,
    MpmathBackend,
    NumpyBackend,
    OracleBackend,
    OracleCounters,
    PointResult,
    make_backend,
    resolve_backend_name,
)
from .eval import (
    DEFAULT_PRECISIONS,
    PrecisionExhausted,
    RivalEvaluator,
    round_to_format,
)
from .interval import INTERVAL_OPS, DomainError, Interval

__all__ = [
    "Interval",
    "DomainError",
    "INTERVAL_OPS",
    "RivalEvaluator",
    "PrecisionExhausted",
    "round_to_format",
    "DEFAULT_PRECISIONS",
    "BACKEND_NAMES",
    "MpmathBackend",
    "NumpyBackend",
    "OracleBackend",
    "OracleCounters",
    "PointResult",
    "make_backend",
    "resolve_backend_name",
]
