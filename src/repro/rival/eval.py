"""Adaptive-precision correctly-rounded evaluation (the Rival contract).

Given a real expression and an exact input point, compute the *correctly
rounded* result in a target float format: evaluate with interval arithmetic
at escalating working precision until the enclosure rounds to a single
floating-point value, exactly as Herbie/Chassis use the Rival library
(paper section 3.1).
"""

from __future__ import annotations

import math
from fractions import Fraction

import mpmath
from mpmath import mp, mpf

from ..formats import get_format
from ..ir.expr import App, Const, Expr, Num, Var
from ..ir.types import F64
from .interval import INTERVAL_OPS, DomainError, Interval

#: Working precisions tried in order (bits of significand).
DEFAULT_PRECISIONS = (80, 160, 320, 640, 1280)


class PrecisionExhausted(ArithmeticError):
    """The enclosure failed to converge at the highest working precision."""


def round_to_format(value: mpf, ty) -> float:
    """Round an mpf correctly into float format ``ty`` (returned as Python float).

    Every registered format's values are representable exactly in a
    Python float, so the return type is float for all of them.  This is
    the compound rounding the numpy fast path mirrors: re-round the
    significand to the format's precision half-even at unbounded exponent
    (``mp.workprec``), then apply the format's storage cast for
    overflow/subnormal semantics.
    """
    if mpmath.isnan(value):
        return math.nan
    fmt = get_format(ty)
    with mp.workprec(fmt.precision):
        rounded = +value  # unary plus re-rounds to the context precision
    return fmt.storage_clamp(float(rounded))


def _interval_of_leaf(expr: Expr, point: dict[str, float]) -> Interval:
    if isinstance(expr, Var):
        try:
            return Interval.point(point[expr.name])
        except KeyError:
            raise KeyError(f"no value for variable {expr.name!r}") from None
    if isinstance(expr, Num):
        value = expr.value
        if value.denominator == 1:
            return Interval.point(value)
        num = Interval.point(Fraction(value.numerator))
        den = Interval.point(Fraction(value.denominator))
        return INTERVAL_OPS["/"](num, den)
    if isinstance(expr, Const):
        if expr.name == "PI":
            pi = mpmath.pi()
            return Interval(pi * (1 - mpf(2) ** (2 - mp.prec)), pi * (1 + mpf(2) ** (2 - mp.prec)))
        if expr.name == "E":
            e = mpmath.e()
            return Interval(e * (1 - mpf(2) ** (2 - mp.prec)), e * (1 + mpf(2) ** (2 - mp.prec)))
        if expr.name == "INFINITY":
            return Interval.point(mpf("inf"))
        if expr.name == "NAN":
            return Interval.error()
        raise DomainError(f"constant {expr.name} is not a real value")
    raise TypeError(f"not a leaf: {expr!r}")


class Ambiguous(Exception):
    """A boolean condition could not be decided at this precision."""


def _eval_interval(expr: Expr, point: dict[str, float]) -> Interval:
    """One interval-arithmetic pass at the current working precision."""
    if isinstance(expr, App):
        if expr.op == "if":
            cond = _eval_bool(expr.args[0], point)
            return _eval_interval(expr.args[1 if cond else 2], point)
        fn = INTERVAL_OPS.get(expr.op)
        if fn is None:
            raise KeyError(f"no interval semantics for operator {expr.op!r}")
        args = [_eval_interval(a, point) for a in expr.args]
        return fn(*args)
    return _interval_of_leaf(expr, point)


def _eval_bool(expr: Expr, point: dict[str, float]) -> bool:
    """Decide a comparison/boolean expression exactly, or raise Ambiguous."""
    if isinstance(expr, Const):
        if expr.name == "TRUE":
            return True
        if expr.name == "FALSE":
            return False
    if not isinstance(expr, App):
        raise TypeError(f"not a boolean expression: {expr!r}")
    op = expr.op
    if op == "and":
        return _eval_bool(expr.args[0], point) and _eval_bool(expr.args[1], point)
    if op == "or":
        return _eval_bool(expr.args[0], point) or _eval_bool(expr.args[1], point)
    if op == "not":
        return not _eval_bool(expr.args[0], point)
    left = _eval_interval(expr.args[0], point)
    right = _eval_interval(expr.args[1], point)
    if left.err or right.err:
        raise DomainError(f"domain error inside condition {op}")
    if op == "<":
        if left.hi < right.lo:
            return True
        if left.lo >= right.hi:
            return False
    elif op == "<=":
        if left.hi <= right.lo:
            return True
        if left.lo > right.hi:
            return False
    elif op == ">":
        if left.lo > right.hi:
            return True
        if left.hi <= right.lo:
            return False
    elif op == ">=":
        if left.lo >= right.hi:
            return True
        if left.hi < right.lo:
            return False
    elif op == "==":
        if left.is_point() and right.is_point() and left.lo == right.lo:
            return True
        if left.hi < right.lo or right.hi < left.lo:
            return False
    elif op == "!=":
        if left.hi < right.lo or right.hi < left.lo:
            return True
        if left.is_point() and right.is_point() and left.lo == right.lo:
            return False
    else:
        raise KeyError(f"unknown predicate {op!r}")
    raise Ambiguous(op)


class RivalEvaluator:
    """Correctly-rounded evaluation of real expressions at exact points."""

    def __init__(self, precisions: tuple[int, ...] = DEFAULT_PRECISIONS):
        self.precisions = precisions
        #: Correctly-rounded evaluations performed by this evaluator.
        #: Plain ints, not locked: in-process callers serialize on the
        #: session's mpmath-rung lock (mp.workprec is process-global
        #: state), and per-worker instances are single-threaded — their
        #: counts travel home as ``JobOutcome.oracle`` deltas and merge
        #: into ``SessionStats.rival`` under the session lock.
        self.evals = 0
        #: Evaluations that needed more than the lowest working precision.
        self.escalations = 0

    def eval(self, expr: Expr, point: dict[str, float], ty: str = F64) -> float:
        """The correctly rounded value of ``expr`` at ``point`` in format ``ty``.

        Raises :class:`DomainError` when the expression is undefined at the
        point, and :class:`PrecisionExhausted` when the enclosure will not
        converge (e.g. comparing identical quantities for equality).
        """
        self.evals += 1
        last_issue = "did not converge"
        for index, prec in enumerate(self.precisions):
            with mp.workprec(prec):
                try:
                    result = _eval_interval(expr, point)
                except Ambiguous:
                    last_issue = "ambiguous condition"
                    continue
                except DomainError:
                    raise
                if result.err:
                    last_issue = "possible domain error"
                    continue
                lo = round_to_format(result.lo, ty)
                hi = round_to_format(result.hi, ty)
                if lo == hi:
                    if index:
                        self.escalations += 1
                    return lo
        if last_issue == "possible domain error":
            raise DomainError("domain error persisted at maximum precision")
        raise PrecisionExhausted(last_issue)

    def eval_bool(self, expr: Expr, point: dict[str, float]) -> bool:
        """Decide a boolean expression (e.g. an FPCore precondition)."""
        for prec in self.precisions:
            with mp.workprec(prec):
                try:
                    return _eval_bool(expr, point)
                except Ambiguous:
                    continue
        raise PrecisionExhausted("ambiguous condition at maximum precision")

    def defined_at(self, expr: Expr, point: dict[str, float], ty: str = F64) -> bool:
        """True when the expression has a finite correctly-rounded value."""
        try:
            value = self.eval(expr, point, ty)
        except (DomainError, PrecisionExhausted, KeyError):
            return False
        return math.isfinite(value)
