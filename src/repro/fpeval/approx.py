"""Simulated approximate accelerator operators.

The paper's targets include *approximate* operators whose whole point is
trading accuracy for speed: AVX's ``rcpps``/``rsqrtps`` (relative error
about 1.5 * 2^-12) and CERN vdt's ``fast_*`` transcendentals (about 8 ulp at
binary64).  We cannot execute the real instructions portably, so we simulate
them deterministically: compute the accurate result, then *degrade* the
significand by zeroing low mantissa bits and injecting a deterministic,
input-dependent perturbation at the retained-precision scale.  This
preserves what matters for Chassis: the operators are measurably less
accurate than their exact counterparts by the documented margin, so the
accuracy model learns their true cost (see DESIGN.md substitution 3 — the
*speed* advantage is modeled by the performance simulator, not here).
"""

from __future__ import annotations

import math
import struct

from . import impls


def _degrade64(value: float, keep_bits: int, salt: int) -> float:
    """Keep only ``keep_bits`` significand bits of a binary64 value.

    A deterministic pseudo-random offset of up to one retained-precision ulp
    is added first (keyed by the bit pattern and ``salt``) so the error
    isn't pure truncation — real approximate instructions err in both
    directions.
    """
    if not math.isfinite(value) or value == 0.0:
        return value
    (bits,) = struct.unpack("<Q", struct.pack("<d", value))
    drop = 52 - keep_bits
    if drop <= 0:
        return value
    jitter = (hash((bits, salt)) & ((1 << drop) - 1)) - (1 << (drop - 1))
    bits = (bits + jitter) & ~((1 << drop) - 1)
    (out,) = struct.unpack("<d", struct.pack("<Q", bits))
    return out


def _degrade32(value: float, keep_bits: int, salt: int) -> float:
    """Degrade then round to binary32 (for f32 approximate instructions)."""
    return impls.to_f32(_degrade64(impls.to_f32(value), keep_bits, salt))


# --- AVX approximate instructions ---------------------------------------------------

#: rcpps/rsqrtps guarantee |rel err| <= 1.5 * 2^-12: ~12 good bits.
_AVX_APPROX_BITS = 12


def rcp32(x: float) -> float:
    """AVX ``rcpps``: fast approximate single-precision reciprocal."""
    return _degrade32(impls.div64(1.0, x), _AVX_APPROX_BITS, salt=0xA1)


def rsqrt32(x: float) -> float:
    """AVX ``rsqrtps``: fast approximate single-precision 1/sqrt(x)."""
    if x < 0.0:
        return math.nan
    if x == 0.0:
        return math.inf
    return _degrade32(1.0 / math.sqrt(x), _AVX_APPROX_BITS, salt=0xA2)


# --- vdt-style fast transcendentals ----------------------------------------------------

#: vdt targets ~8 ulp of binary64 error: about 50 good bits.
_VDT_FAST_BITS = 49
#: vdt's cruder "approx" variants (e.g. appr_isqrt): much less accurate.
_VDT_APPR_BITS = 16


def _vdt_fast(fn, salt):
    def fast_fn(x: float) -> float:
        return _degrade64(fn(x), _VDT_FAST_BITS, salt)

    fast_fn.__name__ = f"fast_{getattr(fn, '__name__', 'op')}"
    return fast_fn


fast_exp64 = _vdt_fast(impls.exp64, 0xB0)
fast_log64 = _vdt_fast(impls.log64, 0xB1)
fast_sin64 = _vdt_fast(impls.sin64, 0xB2)
fast_cos64 = _vdt_fast(impls.cos64, 0xB3)
fast_tan64 = _vdt_fast(impls.tan64, 0xB4)
fast_tanh64 = _vdt_fast(impls.tanh64, 0xB5)
fast_asin64 = _vdt_fast(impls.asin64, 0xB6)
fast_acos64 = _vdt_fast(impls.acos64, 0xB7)
fast_atan64 = _vdt_fast(impls.atan64, 0xB8)


def fast_isqrt64(x: float) -> float:
    """vdt ``fast_isqrt``: approximate 1/sqrt at ~fast precision."""
    if x < 0.0:
        return math.nan
    if x == 0.0:
        return math.inf
    return _degrade64(1.0 / math.sqrt(x), _VDT_FAST_BITS, salt=0xB9)


def appr_isqrt64(x: float) -> float:
    """vdt ``appr_isqrt``: cruder, even faster 1/sqrt approximation."""
    if x < 0.0:
        return math.nan
    if x == 0.0:
        return math.inf
    return _degrade64(1.0 / math.sqrt(x), _VDT_APPR_BITS, salt=0xBA)
