"""Native floating-point operator implementations.

These are the "linked" implementations a Chassis target can reference
(paper figure 3, ``#:link``): ordinary IEEE-754 binary64 operations built on
Python's float/math, and binary32 operations computed in double then rounded
(values of binary32 format are represented as exactly-f32-representable
Python floats throughout the system).

Per the paper's operator abstraction (section 4.1), operators are pure and
total: domain errors return NaN, overflow returns ±inf.
"""

from __future__ import annotations

import math
from fractions import Fraction

import numpy as np


#: Values at or beyond this round to binary32 infinity (max f32 + half ulp).
_F32_OVERFLOW = 3.402823669209385e38


def to_f32(x: float) -> float:
    """Round a double to binary32, returned as an exactly-representable float."""
    if x >= _F32_OVERFLOW:
        return math.inf
    if x <= -_F32_OVERFLOW:
        return -math.inf
    return float(np.float32(x))


def _total(fn):
    """Wrap a math function so domain errors become NaN and overflow ±inf."""

    def wrapped(*args: float) -> float:
        try:
            return fn(*args)
        except ValueError:
            return math.nan
        except OverflowError:
            return math.inf
        except ZeroDivisionError:
            return math.nan

    wrapped.__name__ = getattr(fn, "__name__", "op")
    return wrapped


# --- binary64 primitives -------------------------------------------------------


def add64(a: float, b: float) -> float:
    return a + b


def sub64(a: float, b: float) -> float:
    return a - b


def mul64(a: float, b: float) -> float:
    return a * b


def div64(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    try:
        return a / b
    except OverflowError:  # pragma: no cover - huge/denormal corner
        return math.copysign(math.inf, a) * math.copysign(1.0, b)


def neg64(a: float) -> float:
    return -a


def fabs64(a: float) -> float:
    return abs(a)


def fma64(a: float, b: float, c: float) -> float:
    """Fused multiply-add: a*b + c with a single rounding.

    Python lacks math.fma before 3.13, so we compute the exact rational
    result and round once.  Infinities and NaNs short-circuit.
    """
    if not (math.isfinite(a) and math.isfinite(b) and math.isfinite(c)):
        return a * b + c
    exact = Fraction(a) * Fraction(b) + Fraction(c)
    try:
        return float(exact)
    except OverflowError:
        return math.copysign(math.inf, exact)


def fms64(a: float, b: float, c: float) -> float:
    """Fused multiply-subtract: a*b - c, single rounding."""
    return fma64(a, b, -c)


def fnma64(a: float, b: float, c: float) -> float:
    """Fused negate-multiply-add: -(a*b) + c, single rounding."""
    return fma64(-a, b, c)


def fnms64(a: float, b: float, c: float) -> float:
    """Fused negate-multiply-subtract: -(a*b) - c, single rounding."""
    return fma64(-a, b, -c)


sqrt64 = _total(math.sqrt)
cbrt64 = _total(lambda x: math.copysign(abs(x) ** (1.0 / 3.0), x))
exp64 = _total(math.exp)
expm164 = _total(math.expm1)
exp264 = _total(lambda x: 2.0**x)
log64 = _total(math.log)
log264 = _total(math.log2)
log1064 = _total(math.log10)
log1p64 = _total(math.log1p)
sin64 = _total(math.sin)
cos64 = _total(math.cos)
tan64 = _total(math.tan)
asin64 = _total(math.asin)
acos64 = _total(math.acos)
atan64 = _total(math.atan)
atan264 = _total(math.atan2)
sinh64 = _total(math.sinh)
cosh64 = _total(math.cosh)
tanh64 = _total(math.tanh)
asinh64 = _total(math.asinh)
acosh64 = _total(math.acosh)
atanh64 = _total(math.atanh)
hypot64 = _total(math.hypot)
floor64 = _total(math.floor)
ceil64 = _total(math.ceil)
trunc64 = _total(math.trunc)
round64 = _total(lambda x: float(round(x)))
fmod64 = _total(math.fmod)
copysign64 = math.copysign


def pow64(a: float, b: float) -> float:
    try:
        result = math.pow(a, b)
    except ValueError:
        return math.nan
    except OverflowError:
        return math.inf
    return result


def fmin64(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    return min(a, b)


def fmax64(a: float, b: float) -> float:
    if math.isnan(a):
        return b
    if math.isnan(b):
        return a
    return max(a, b)


# --- binary32 wrappers -----------------------------------------------------------


def f32_of(fn64):
    """Build the binary32 version of a binary64 op: compute wide, round once.

    Inputs are assumed already binary32-representable; the double-rounding
    introduced by computing transcendental functions in binary64 first is
    far below the half-ulp target and is the standard way libm implements
    float functions.
    """

    def f32_fn(*args: float) -> float:
        return to_f32(fn64(*args))

    f32_fn.__name__ = fn64.__name__ + "_f32"
    return f32_fn


add32 = f32_of(add64)
sub32 = f32_of(sub64)
mul32 = f32_of(mul64)
div32 = f32_of(div64)
neg32 = neg64  # exact: negation never rounds
fabs32 = fabs64
sqrt32 = f32_of(sqrt64)
fma32 = f32_of(fma64)
fms32 = f32_of(fms64)
fnma32 = f32_of(fnma64)
fnms32 = f32_of(fnms64)


def cast_to_f32(a: float) -> float:
    """Demote binary64 -> binary32 (rounds)."""
    return to_f32(a)


def cast_to_f64(a: float) -> float:
    """Promote binary32 -> binary64 (exact)."""
    return a


# --- generic narrow-format wrappers ----------------------------------------------


def format_of(fn64, fmt):
    """Build a narrow-format version of a binary64 op: compute wide, round once.

    The narrow-format twin of :func:`f32_of`, parameterized by a
    :class:`~repro.formats.FloatFormat`: inputs are assumed already
    representable in ``fmt``, the operation computes in binary64, and the
    result rounds into the format with the same compound rounding the
    oracle stack uses (``FloatFormat.round_float``).
    """
    round_float = fmt.round_float

    def fmt_fn(*args: float) -> float:
        return round_float(fn64(*args))

    fmt_fn.__name__ = f"{fn64.__name__}_{fmt.suffix}"
    return fmt_fn


def cast_into(fmt):
    """A demoting cast (binary64 -> ``fmt``), named for the MathLink."""
    round_float = fmt.round_float

    def cast_fn(a: float) -> float:
        return round_float(a)

    cast_fn.__name__ = f"cast_{fmt.suffix}"
    return cast_fn
