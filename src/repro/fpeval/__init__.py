"""Floating-point evaluation: operator implementations and the machine."""

from . import approx, impls
from .impls import to_f32
from .machine import (
    UnsupportedOperator,
    compile_condition,
    compile_expr,
    eval_expr,
    round_literal,
)

__all__ = [
    "impls",
    "approx",
    "to_f32",
    "compile_expr",
    "compile_condition",
    "eval_expr",
    "round_literal",
    "UnsupportedOperator",
]
