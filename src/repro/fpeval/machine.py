"""Evaluation machine for floating-point programs.

Evaluates mixed-format float expressions (trees of *target operators*) at
concrete input points, using the operator implementations supplied by a
target description.  Expressions are compiled once into nested Python
closures and then run at many points, since accuracy scoring evaluates every
candidate on the whole training set.

The machine is deliberately independent of :mod:`repro.targets`: it works
against the small :class:`OpSpec` protocol so it can be tested in isolation.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Protocol

from ..formats import get_format
from ..ir.expr import App, Const, Expr, Num, Var
from ..ir.types import F32, F64
from .impls import to_f32


class OpSpec(Protocol):
    """What the machine needs to know about one target operator."""

    arg_types: tuple[str, ...]
    ret_type: str

    @property
    def impl(self) -> Callable[..., float]: ...


class UnsupportedOperator(KeyError):
    """The expression uses an operator the target does not provide."""


def round_literal(value, ty: str) -> float:
    """Round an exact literal (Fraction) into float format ``ty``."""
    try:
        as_float = float(value)
    except OverflowError:
        as_float = math.inf if value > 0 else -math.inf
    if ty == F64:
        return as_float
    if ty == F32:
        return to_f32(as_float)
    return get_format(ty).round_float(as_float)


_CONST_VALUES = {"PI": math.pi, "E": math.e, "INFINITY": math.inf, "NAN": math.nan}

_COMPARISONS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

Point = Mapping[str, float]
Evaluator = Callable[[Point], float]


def compile_expr(
    expr: Expr, ops: Mapping[str, OpSpec], expected_ty: str = F64
) -> Evaluator:
    """Compile a float program into a closure evaluating one input point.

    ``expected_ty`` is the format literals are materialized in when the
    surrounding context doesn't dictate one (the program's output format).
    """
    if isinstance(expr, Var):
        name = expr.name
        return lambda point: point[name]
    if isinstance(expr, Num):
        value = round_literal(expr.value, expected_ty)
        return lambda point: value
    if isinstance(expr, Const):
        raw = _CONST_VALUES.get(expr.name)
        if raw is None:
            raise UnsupportedOperator(f"constant {expr.name} in value position")
        value = raw if expected_ty == F64 else round_literal(raw, expected_ty)
        return lambda point: value
    assert isinstance(expr, App)
    if expr.op == "if":
        cond = compile_condition(expr.args[0], ops, expected_ty)
        then_fn = compile_expr(expr.args[1], ops, expected_ty)
        else_fn = compile_expr(expr.args[2], ops, expected_ty)
        return lambda point: then_fn(point) if cond(point) else else_fn(point)
    spec = ops.get(expr.op)
    if spec is None:
        raise UnsupportedOperator(expr.op)
    if len(spec.arg_types) != len(expr.args):
        raise UnsupportedOperator(
            f"{expr.op} expects {len(spec.arg_types)} args, got {len(expr.args)}"
        )
    arg_fns = tuple(
        compile_expr(arg, ops, arg_ty)
        for arg, arg_ty in zip(expr.args, spec.arg_types)
    )
    impl = spec.impl
    if len(arg_fns) == 1:
        (f0,) = arg_fns
        return lambda point: impl(f0(point))
    if len(arg_fns) == 2:
        f0, f1 = arg_fns
        return lambda point: impl(f0(point), f1(point))
    if len(arg_fns) == 3:
        f0, f1, f2 = arg_fns
        return lambda point: impl(f0(point), f1(point), f2(point))
    return lambda point: impl(*[fn(point) for fn in arg_fns])


def compile_condition(
    expr: Expr, ops: Mapping[str, OpSpec], expected_ty: str = F64
) -> Callable[[Point], bool]:
    """Compile a boolean condition (comparisons over float operands)."""
    if isinstance(expr, Const):
        if expr.name == "TRUE":
            return lambda point: True
        if expr.name == "FALSE":
            return lambda point: False
    if isinstance(expr, App):
        if expr.op == "and":
            left = compile_condition(expr.args[0], ops, expected_ty)
            right = compile_condition(expr.args[1], ops, expected_ty)
            return lambda point: left(point) and right(point)
        if expr.op == "or":
            left = compile_condition(expr.args[0], ops, expected_ty)
            right = compile_condition(expr.args[1], ops, expected_ty)
            return lambda point: left(point) or right(point)
        if expr.op == "not":
            inner = compile_condition(expr.args[0], ops, expected_ty)
            return lambda point: not inner(point)
        compare = _COMPARISONS.get(expr.op)
        if compare is not None:
            left = compile_expr(expr.args[0], ops, expected_ty)
            right = compile_expr(expr.args[1], ops, expected_ty)
            return lambda point: compare(left(point), right(point))
    raise UnsupportedOperator(f"not a condition: {expr!r}")


def eval_expr(
    expr: Expr, point: Point, ops: Mapping[str, OpSpec], expected_ty: str = F64
) -> float:
    """One-shot evaluation (compiles then runs; prefer compile_expr in loops)."""
    return compile_expr(expr, ops, expected_ty)(point)
