"""Benchmark suite registry and filtering."""

from __future__ import annotations

from functools import lru_cache

from ..ir.fpcore import FPCore, parse_fpcores
from .corpus import corpus_sources
from .generator import generate_suite


@lru_cache(maxsize=1)
def curated_suite() -> tuple[FPCore, ...]:
    """The curated corpus, parsed once."""
    return tuple(parse_fpcores(corpus_sources()))


@lru_cache(maxsize=1)
def _suite_index() -> dict[str, FPCore]:
    """Name -> benchmark index (batch jobs look benchmarks up by the
    hundreds, so linear scans add up)."""
    index: dict[str, FPCore] = {}
    for core in curated_suite():
        prop_name = core.properties.get("name")
        if isinstance(prop_name, str) and prop_name not in index:
            index[prop_name] = core
        if core.name and core.name not in index:
            index[core.name] = core
    return index


def core_named(name: str) -> FPCore:
    """Look up one curated benchmark by its FPCore identifier."""
    try:
        return _suite_index()[name]
    except KeyError:
        raise KeyError(name) from None


def suite_names() -> list[str]:
    """Every benchmark name in the curated corpus, in suite order."""
    return [core.name for core in curated_suite() if core.name]


def suite(
    max_benchmarks: int | None = None,
    max_vars: int | None = None,
    operators_subset: set[str] | None = None,
    with_synthetic: int = 0,
) -> list[FPCore]:
    """Select benchmarks for an experiment run.

    ``operators_subset`` keeps only benchmarks whose real operators all fall
    in the given set (e.g. arithmetic-only benchmarks for the Arith target).
    ``with_synthetic`` appends that many generated benchmarks.
    """
    cores = list(curated_suite())
    if operators_subset is not None:
        cores = [c for c in cores if c.body.operators() <= operators_subset]
    if max_vars is not None:
        cores = [c for c in cores if len(c.arguments) <= max_vars]
    if with_synthetic:
        cores.extend(generate_suite(with_synthetic))
    if max_benchmarks is not None:
        cores = cores[:max_benchmarks]
    return cores
