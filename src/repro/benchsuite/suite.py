"""Benchmark suite registry and filtering."""

from __future__ import annotations

from functools import lru_cache

from ..ir.fpcore import FPCore, parse_fpcores
from .corpus import corpus_sources
from .generator import generate_suite


@lru_cache(maxsize=1)
def curated_suite() -> tuple[FPCore, ...]:
    """The curated corpus, parsed once."""
    return tuple(parse_fpcores(corpus_sources()))


def core_named(name: str) -> FPCore:
    """Look up one curated benchmark by its FPCore identifier."""
    for core in curated_suite():
        if core.name == name or core.properties.get("name") == name:
            return core
    raise KeyError(name)


def suite(
    max_benchmarks: int | None = None,
    max_vars: int | None = None,
    operators_subset: set[str] | None = None,
    with_synthetic: int = 0,
) -> list[FPCore]:
    """Select benchmarks for an experiment run.

    ``operators_subset`` keeps only benchmarks whose real operators all fall
    in the given set (e.g. arithmetic-only benchmarks for the Arith target).
    ``with_synthetic`` appends that many generated benchmarks.
    """
    cores = list(curated_suite())
    if operators_subset is not None:
        cores = [c for c in cores if c.body.operators() <= operators_subset]
    if max_vars is not None:
        cores = [c for c in cores if len(c.arguments) <= max_vars]
    if with_synthetic:
        cores.extend(generate_suite(with_synthetic))
    if max_benchmarks is not None:
        cores = cores[:max_benchmarks]
    return cores
