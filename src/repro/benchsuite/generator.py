"""Seeded synthetic benchmark generator.

The paper's suite has 547 benchmarks; our curated corpus is smaller, so this
generator can synthesize additional well-formed FPCores on demand (scale
testing, fuzzing the compiler, stress benchmarks).  Generation is grammar-
based and deterministic for a given seed; preconditions keep the sampled
domains benign so every generated core is actually compilable.
"""

from __future__ import annotations

import random
from fractions import Fraction

from ..ir.expr import App, Expr, Num, Var
from ..ir.fpcore import FPCore

#: Operators by arity, weighted toward arithmetic like the real suite.
_UNARY = ("sqrt", "exp", "log", "sin", "cos", "fabs", "neg", "tanh", "log1p")
_BINARY = ("+", "-", "*", "/", "pow2")  # pow2 is expanded to (* e e)
_UNARY_WEIGHTS = (3, 2, 2, 2, 2, 1, 2, 1, 1)
_BINARY_WEIGHTS = (5, 5, 5, 3, 2)

#: Domain bound keeping log/sqrt arguments positive-ish and exp small.
_VAR_BOUND = "(and (< 0.001 {v}) (< {v} 100))"


def _gen_expr(rng: random.Random, variables: tuple[str, ...], depth: int) -> Expr:
    if depth <= 0 or rng.random() < 0.25:
        if rng.random() < 0.75:
            return Var(rng.choice(variables))
        mantissa = rng.randint(1, 9)
        exponent = rng.choice((-1, 0, 0, 1))
        return Num(Fraction(mantissa) * Fraction(10) ** exponent)
    if rng.random() < 0.45:
        op = rng.choices(_UNARY, weights=_UNARY_WEIGHTS)[0]
        return App(op, (_gen_expr(rng, variables, depth - 1),))
    op = rng.choices(_BINARY, weights=_BINARY_WEIGHTS)[0]
    left = _gen_expr(rng, variables, depth - 1)
    right = _gen_expr(rng, variables, depth - 1)
    if op == "pow2":
        return App("*", (left, left))
    return App(op, (left, right))


def generate_core(seed: int, n_vars: int = 2, depth: int = 4) -> FPCore:
    """Generate one synthetic FPCore, deterministic in ``seed``."""
    rng = random.Random(seed)
    variables = tuple(f"x{i}" for i in range(max(1, n_vars)))
    body = _gen_expr(rng, variables, depth)
    # Ensure every declared variable occurs (sampling is over all of them).
    used = body.free_vars()
    for name in variables:
        if name not in used:
            body = App("+", (body, App("*", (Num(0), Var(name)))))
    from ..ir.parser import parse_expr

    pre_parts = [_VAR_BOUND.format(v=name) for name in variables]
    pre_src = pre_parts[0] if len(pre_parts) == 1 else "(and " + " ".join(pre_parts) + ")"
    return FPCore(
        arguments=variables,
        body=body,
        name=f"synthetic-{seed}",
        pre=parse_expr(pre_src),
    )


def generate_suite(count: int, seed: int = 1, n_vars: int = 2, depth: int = 4) -> list[FPCore]:
    """A deterministic list of ``count`` synthetic benchmarks."""
    return [
        generate_core(seed * 1_000_003 + i, n_vars=n_vars, depth=depth)
        for i in range(count)
    ]
