"""FPBench corpus importer: grow the benchsuite beyond the curated set.

The FPBench project ships hundreds of ``.fpcore`` benchmark files (and
Herbie's full 547-benchmark suite is FPCore text too).  This module imports
such files into the reproduction's suite the way FPBench's own tooling
does it — *filter, don't crash*: every core the pipeline cannot handle
(loops, tensors, an unregistered ``:precision``, operators outside the
real-operator vocabulary) is **skipped with a recorded reason**, and
everything else parses into ordinary :class:`~repro.ir.fpcore.FPCore`
benchmarks ready for :meth:`~repro.session.ChassisSession.compile`.

Two layers, mirroring FPBench's ``filter.rkt`` idiom:

* :func:`import_fpbench` / :func:`import_fpcores_text` — syntactic
  admission.  Each top-level form is parsed *individually* (one malformed
  core must not take down the file) and failures become
  :class:`SkippedCore` rows carrying the parser's reason.
* :func:`filter_cores` — semantic selection over already-parsed cores
  (by operator set, argument count, precision, precondition presence),
  again returning both the kept cores and the per-core skip reasons.

Unknown ``:precision`` names are a *registry* question, not a parser one:
registering a format (``repro.formats.register_format`` or
``$REPRO_FORMATS``) makes previously-skipped cores importable with no
change here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from ..formats import UnknownFormatError
from ..ir.fpcore import FPCore, fpcore_from_sexpr
from ..ir.parser import ParseError, parse_sexprs


@dataclass(frozen=True)
class SkippedCore:
    """One core the importer could not admit, and the reason why."""

    name: str
    reason: str
    source_file: str = ""

    def __str__(self) -> str:
        where = f" ({self.source_file})" if self.source_file else ""
        return f"{self.name or '<unnamed>'}{where}: {self.reason}"


@dataclass
class ImportReport:
    """What an import (or filter) pass admitted and what it skipped."""

    cores: list[FPCore] = field(default_factory=list)
    skipped: list[SkippedCore] = field(default_factory=list)

    def extend(self, other: "ImportReport") -> None:
        self.cores.extend(other.cores)
        self.skipped.extend(other.skipped)

    def summary(self) -> str:
        """One line for logs: ``imported 412 cores, skipped 23``."""
        return f"imported {len(self.cores)} cores, skipped {len(self.skipped)}"


def _sexpr_name(sx) -> str:
    """Best-effort benchmark name from a raw (possibly bad) FPCore form."""
    if not isinstance(sx, list):
        return ""
    if len(sx) >= 2 and isinstance(sx[1], str) and sx[1] != "FPCore":
        candidate = sx[1]
        if not candidate.startswith("(") and not candidate.startswith(":"):
            return candidate
    for i, item in enumerate(sx):
        if item == ":name" and i + 1 < len(sx) and isinstance(sx[i + 1], str):
            return sx[i + 1].strip('"')
    return ""


def import_fpcores_text(
    text: str, source_file: str = "", known_ops=None
) -> ImportReport:
    """Import every FPCore form in one source text, skipping bad ones.

    Unlike :func:`~repro.ir.fpcore.parse_fpcores` (which raises on the
    first problem), each top-level form is admitted or skipped on its own:
    a core using ``while`` loops or ``:precision binary80`` becomes a
    :class:`SkippedCore` with the parser's reason, and its neighbors still
    import.
    """
    report = ImportReport()
    try:
        forms = parse_sexprs(text)
    except ParseError as error:
        # Unbalanced text: nothing inside is recoverable form-by-form.
        report.skipped.append(
            SkippedCore("", f"unparseable file: {error}", source_file)
        )
        return report
    for sx in forms:
        name = _sexpr_name(sx)
        try:
            report.cores.append(fpcore_from_sexpr(sx, known_ops))
        except UnknownFormatError as error:
            report.skipped.append(SkippedCore(name, str(error), source_file))
        except ParseError as error:
            report.skipped.append(SkippedCore(name, str(error), source_file))
    return report


def import_fpbench(
    path: str | Path, known_ops=None, pattern: str = "*.fpcore"
) -> ImportReport:
    """Import an FPBench-style benchmark file or directory of them.

    A directory is scanned for ``pattern`` files (sorted, so imports are
    deterministic); a single file imports directly.  The report aggregates
    admitted cores and skip reasons across all files.
    """
    root = Path(path)
    if root.is_dir():
        files = sorted(root.glob(pattern))
        if not files:
            raise FileNotFoundError(f"no {pattern} files under {root}")
    elif root.is_file():
        files = [root]
    else:
        raise FileNotFoundError(f"no such file or directory: {root}")
    report = ImportReport()
    for file in files:
        report.extend(
            import_fpcores_text(
                file.read_text(), source_file=str(file), known_ops=known_ops
            )
        )
    return report


def filter_cores(
    cores: Iterable[FPCore],
    *,
    operators: set[str] | None = None,
    max_arguments: int | None = None,
    precisions: set[str] | None = None,
    require_pre: bool = False,
) -> ImportReport:
    """Select cores the way FPBench's filter tool does, reasons included.

    Every criterion that rejects a core names itself in the skip reason
    (``operators: uses {'tan'}``), so a corpus report can say exactly why
    the suite is the size it is.
    """
    report = ImportReport()
    for core in cores:
        reason = None
        if operators is not None:
            used = core.body.operators()
            extra = used - operators
            if extra:
                reason = f"operators: uses {sorted(extra)}"
        if reason is None and max_arguments is not None:
            if len(core.arguments) > max_arguments:
                reason = (
                    f"arguments: {len(core.arguments)} > {max_arguments}"
                )
        if reason is None and precisions is not None:
            if core.precision not in precisions:
                reason = f"precision: {core.precision} not in {sorted(precisions)}"
        if reason is None and require_pre and core.pre is None:
            reason = "no :pre precondition (unbounded sampling domain)"
        if reason is None:
            report.cores.append(core)
        else:
            report.skipped.append(SkippedCore(core.name, reason))
    return report
