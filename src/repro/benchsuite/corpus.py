"""Curated FPCore benchmark corpus.

The paper evaluates on the 547 benchmarks shipped with Herbie 2.0.2, drawn
from numerical-analysis textbooks, math libraries, and geometry/statistics
kernels.  We curate a representative subset covering the same sources and
failure modes — catastrophic cancellation, overflow in intermediates,
series-expansion opportunities, helper-function opportunities — plus the
paper's three section-6.4 case studies, and scale further with the seeded
generator (:mod:`repro.benchsuite.generator`).

Preconditions keep sampling efficient and match how Herbie's suite bounds
its inputs.
"""

CORPUS_TEXT = r"""
; --- the paper's case studies (section 6.4) -------------------------------

(FPCore quadratic-mod (a b2 c)
  :name "modified quadratic formula (paper 6.4)"
  :pre (and (< 1e-6 a 1e6) (< -1e6 b2 1e6) (< -1e6 c 1e6))
  (/ (+ (- b2) (sqrt (- (* b2 b2) (* a c)))) a))

(FPCore ellipse-angle (a b theta)
  :name "ellipse implicit-equation coefficient (paper 6.4)"
  :pre (and (< 1e-3 a 1e3) (< 1e-3 b 1e3) (< -360 theta 360))
  (+ (* (* a a) (* (sin (* (/ PI 180) theta)) (sin (* (/ PI 180) theta))))
     (* (* b b) (* (cos (* (/ PI 180) theta)) (cos (* (/ PI 180) theta))))))

(FPCore acoth (x)
  :name "inverse hyperbolic cotangent (paper 2, 6.4)"
  :pre (and (< 0.001 (fabs x)) (< (fabs x) 0.999))
  (* 1/2 (log (/ (+ 1 x) (- 1 x)))))

; --- classic cancellation repairs (Herbie motivating examples) -----------------

(FPCore sqrt-sub (x)
  :name "sqrt(x+1) - sqrt(x)"
  :pre (and (<= 0 x) (<= x 1e18))
  (- (sqrt (+ x 1)) (sqrt x)))

(FPCore quad-plus (a b c)
  :name "quadratic formula, + root"
  :pre (and (< 1e-6 a 1e6) (< -1e6 b 1e6) (< -1e6 c 1e6))
  (/ (+ (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a)))

(FPCore quad-minus (a b c)
  :name "quadratic formula, - root"
  :pre (and (< 1e-6 a 1e6) (< -1e6 b 1e6) (< -1e6 c 1e6))
  (/ (- (- b) (sqrt (- (* b b) (* 4 (* a c))))) (* 2 a)))

(FPCore expm1-naive (x)
  :name "exp(x) - 1"
  :pre (< -20 x 20)
  (- (exp x) 1))

(FPCore log1p-naive (x)
  :name "log(1 + x)"
  :pre (< -0.999 x 1e18)
  (log (+ 1 x)))

(FPCore cos-frac (x)
  :name "(1 - cos(x)) / x^2"
  :pre (and (< 1e-12 (fabs x)) (< (fabs x) 10))
  (/ (- 1 (cos x)) (* x x)))

(FPCore sin-frac (x)
  :name "sin(x) / x"
  :pre (and (< 1e-12 (fabs x)) (< (fabs x) 100))
  (/ (sin x) x))

(FPCore tan-sub-sin (x)
  :name "tan(x) - sin(x)"
  :pre (< -1.5 x 1.5)
  (- (tan x) (sin x)))

(FPCore exp-frac (x)
  :name "(exp(x) - 1) / x"
  :pre (and (< 1e-12 (fabs x)) (< (fabs x) 20))
  (/ (- (exp x) 1) x))

(FPCore log-sub (x)
  :name "log(x+1) - log(x)"
  :pre (< 1e-3 x 1e18)
  (- (log (+ x 1)) (log x)))

(FPCore rcp-diff (x)
  :name "1/(x+1) - 1/x"
  :pre (< 1e-3 x 1e15)
  (- (/ 1 (+ x 1)) (/ 1 x)))

(FPCore sqrt-sq-sub (x)
  :name "sqrt(x^2 + 1) - x"
  :pre (< 0 x 1e15)
  (- (sqrt (+ (* x x) 1)) x))

(FPCore sinh-naive (x)
  :name "(exp(x) - exp(-x)) / 2"
  :pre (< -20 x 20)
  (/ (- (exp x) (exp (- x))) 2))

(FPCore x-sub-sin (x)
  :name "x - sin(x)"
  :pre (< -3 x 3)
  (- x (sin x)))

(FPCore cos2-sin2 (x)
  :name "cos(x)^2 - sin(x)^2"
  :pre (< -10 x 10)
  (- (* (cos x) (cos x)) (* (sin x) (sin x))))

; --- math-library idioms --------------------------------------------------------

(FPCore logistic (x)
  :name "logistic function 1/(1+exp(-x))"
  :pre (< -100 x 100)
  (/ 1 (+ 1 (exp (- x)))))

(FPCore softplus (x)
  :name "softplus log(1 + exp(x))"
  :pre (< -100 x 100)
  (log (+ 1 (exp x))))

(FPCore logsumexp2 (x y)
  :name "log(exp(x) + exp(y))"
  :pre (and (< -100 x 100) (< -100 y 100))
  (log (+ (exp x) (exp y))))

(FPCore hypot-naive (x y)
  :name "sqrt(x^2 + y^2)"
  :pre (and (< 1e-6 (fabs x) 1e8) (< 1e-6 (fabs y) 1e8))
  (sqrt (+ (* x x) (* y y))))

(FPCore norm3d (x y z)
  :name "3-d Euclidean norm"
  :pre (and (< 1e-6 (fabs x) 1e8) (< 1e-6 (fabs y) 1e8) (< 1e-6 (fabs z) 1e8))
  (sqrt (+ (+ (* x x) (* y y)) (* z z))))

(FPCore asinh-naive (x)
  :name "log(x + sqrt(x^2 + 1))"
  :pre (< -1e8 x 1e8)
  (log (+ x (sqrt (+ (* x x) 1)))))

(FPCore geo-mean (a b)
  :name "geometric mean"
  :pre (and (< 1e-8 a 1e8) (< 1e-8 b 1e8))
  (sqrt (* a b)))

(FPCore harmonic-mean (a b)
  :name "harmonic mean"
  :pre (and (< 1e-8 a 1e8) (< 1e-8 b 1e8))
  (/ 2 (+ (/ 1 a) (/ 1 b))))

(FPCore midpoint (a b)
  :name "midpoint (a+b)/2"
  :pre (and (< -1e300 a 1e300) (< -1e300 b 1e300))
  (/ (+ a b) 2))

(FPCore quad-disc (a b c)
  :name "quadratic discriminant"
  :pre (and (< -1e8 a 1e8) (< -1e8 b 1e8) (< -1e8 c 1e8))
  (- (* b b) (* 4 (* a c))))

; --- geometry and statistics kernels ----------------------------------------------

(FPCore triangle-area (a b c)
  :name "Heron's formula"
  :pre (and (< 1e-3 a 1e3) (< 1e-3 b 1e3) (< 1e-3 c 1e3)
            (< (fabs (- a b)) c) (< c (+ a b)))
  (sqrt (* (* (/ (+ (+ a b) c) 2)
              (- (/ (+ (+ a b) c) 2) a))
           (* (- (/ (+ (+ a b) c) 2) b)
              (- (/ (+ (+ a b) c) 2) c)))))

(FPCore slerp-weight (t omega)
  :name "spherical interpolation weight"
  :pre (and (< 0.001 t 0.999) (< 0.01 omega 3.1))
  (/ (sin (* t omega)) (sin omega)))

(FPCore deg-dist (t1 t2)
  :name "angular distance via cosines (degrees)"
  :pre (and (< -360 t1 360) (< -360 t2 360))
  (- (cos (* (/ PI 180) t1)) (cos (* (/ PI 180) t2))))

(FPCore variance-2 (x y)
  :name "two-sample variance"
  :pre (and (< -1e6 x 1e6) (< -1e6 y 1e6))
  (/ (+ (* (- x (/ (+ x y) 2)) (- x (/ (+ x y) 2)))
        (* (- y (/ (+ x y) 2)) (- y (/ (+ x y) 2)))) 2))

(FPCore pythag-diff (x y)
  :name "sqrt(x^2+y^2) - x"
  :pre (and (< 1e-3 x 1e8) (< 1e-6 (fabs y) 1e4))
  (- (sqrt (+ (* x x) (* y y))) x))

; --- polynomial / rational kernels -----------------------------------------------------

(FPCore poly-horner (x)
  :name "cubic polynomial, expanded form"
  :pre (< -100 x 100)
  (+ (+ (+ 1 x) (* (/ 1 2) (* x x))) (* (/ 1 6) (* (* x x) x))))

(FPCore rump (a b)
  :name "Rump's polynomial (scaled)"
  :pre (and (< 1 a 1e4) (< 1 b 1e4))
  (+ (+ (* 333.75 (* (* (* (* (* b b) b) b) b) b))
        (* (* a a)
           (- (- (* (* 11 (* a a)) (* b b)) (* (* (* (* (* b b) b) b) b) b))
              (- (* 121 (* (* (* b b) b) b)) 2))))
     (/ a (* 2 b))))

(FPCore sum-sq-diff (x y)
  :name "(x+y)^2 - x^2"
  :pre (and (< -1e8 x 1e8) (< 1e-8 (fabs y) 1))
  (- (* (+ x y) (+ x y)) (* x x)))

(FPCore cube-diff (x)
  :name "(x+1)^3 - x^3"
  :pre (< 1 x 1e5)
  (- (* (* (+ x 1) (+ x 1)) (+ x 1)) (* (* x x) x)))

; --- division/reciprocal shapes (accelerator targets) -------------------------------------

(FPCore div-chain (x y)
  :name "x / (x + y)"
  :pre (and (< 1e-4 x 1e6) (< 1e-4 y 1e6))
  (/ x (+ x y)))

(FPCore rcp-norm (x y)
  :name "x / sqrt(x^2 + y^2)"
  :pre (and (< 1e-4 (fabs x) 1e6) (< 1e-4 (fabs y) 1e6))
  (/ x (sqrt (+ (* x x) (* y y)))))

(FPCore rcp-sum (x y)
  :name "1 / (1/x + 1/y)"
  :pre (and (< 1e-4 x 1e6) (< 1e-4 y 1e6))
  (/ 1 (+ (/ 1 x) (/ 1 y))))

(FPCore fma-chain (a b c d)
  :name "a*b + c*d"
  :pre (and (< -1e6 a 1e6) (< -1e6 b 1e6) (< -1e6 c 1e6) (< -1e6 d 1e6))
  (+ (* a b) (* c d)))

(FPCore poly-eval-2 (a b c x)
  :name "a*x^2 + b*x + c"
  :pre (and (< -100 a 100) (< -100 b 100) (< -100 c 100) (< -100 x 100))
  (+ (+ (* a (* x x)) (* b x)) c))

; --- hyperbolic / exponential kernels ---------------------------------------------------

(FPCore tanh-naive (x)
  :name "tanh via exponentials"
  :pre (< -20 x 20)
  (/ (- (exp x) (exp (- x))) (+ (exp x) (exp (- x)))))

(FPCore sigmoid-diff (x)
  :name "1/(1+exp(-x)) - 1/2"
  :pre (< -30 x 30)
  (- (/ 1 (+ 1 (exp (- x)))) 1/2))

(FPCore exp-sq (x)
  :name "exp(x)^2 * exp(-x)"
  :pre (< -20 x 20)
  (* (* (exp x) (exp x)) (exp (- x))))

(FPCore cosh-1 (x)
  :name "cosh(x) - 1"
  :pre (< -3 x 3)
  (- (cosh x) 1))

; --- physics and statistics kernels ------------------------------------------------------

(FPCore lorentz (v)
  :name "Lorentz factor 1/sqrt(1 - v^2)"
  :pre (and (< 1e-6 (fabs v)) (< (fabs v) 0.99999))
  (/ 1 (sqrt (- 1 (* v v)))))

(FPCore planck (x)
  :name "Planck radiance shape x^3/(exp(x)-1)"
  :pre (< 1e-6 x 30)
  (/ (* (* x x) x) (- (exp x) 1)))

(FPCore entropy-term (p)
  :name "entropy term -p*log(p)"
  :pre (< 1e-12 p 1)
  (- 0 (* p (log p))))

(FPCore haversine-half (theta)
  :name "haversine sin^2(theta/2)"
  :pre (< -6.28 theta 6.28)
  (* (sin (/ theta 2)) (sin (/ theta 2))))

(FPCore compound-interest (r)
  :name "monthly compounding (1 + r/12)^12"
  :pre (< 1e-8 r 0.5)
  (pow (+ 1 (/ r 12)) 12))

(FPCore gauss-kernel (x s)
  :name "Gaussian kernel exp(-x^2 / (2 s^2))"
  :pre (and (< -20 x 20) (< 0.1 s 10))
  (exp (/ (- 0 (* x x)) (* 2 (* s s)))))

; --- difference quotients and second differences -------------------------------------------

(FPCore sqrt-2nd-diff (x)
  :name "second difference of sqrt"
  :pre (< 1 x 1e14)
  (+ (- (sqrt (+ x 2)) (* 2 (sqrt (+ x 1)))) (sqrt x)))

(FPCore atan-diff (x)
  :name "atan(x+1) - atan(x)"
  :pre (< 1 x 1e8)
  (- (atan (+ x 1)) (atan x)))

(FPCore cot-small (x)
  :name "cotangent near zero"
  :pre (and (< 1e-9 (fabs x)) (< (fabs x) 1.5))
  (/ (cos x) (sin x)))

(FPCore sinc-sq (x)
  :name "sinc squared"
  :pre (and (< 1e-9 (fabs x)) (< (fabs x) 50))
  (/ (* (sin x) (sin x)) (* x x)))

(FPCore cube-expand (a b)
  :name "(a+b)^3 - a^3 - b^3"
  :pre (and (< 0.1 (fabs a) 1e4) (< 1e-6 (fabs b) 0.1))
  (- (- (* (* (+ a b) (+ a b)) (+ a b)) (* (* a a) a)) (* (* b b) b)))

(FPCore exp-ratio (x)
  :name "exp(2x)/(exp(x)+1)"
  :pre (< -30 x 30)
  (/ (exp (* 2 x)) (+ (exp x) 1)))

(FPCore log-ratio-sym (p)
  :name "log-odds log(p/(1-p))"
  :pre (< 1e-9 p 0.999999999)
  (log (/ p (- 1 p))))

(FPCore hypot3-diff (x y)
  :name "hypot minus max"
  :pre (and (< 1e-3 x 1e7) (< 1e-6 y 1e-1))
  (- (sqrt (+ (* x x) (* y y))) x))
"""


def corpus_sources() -> str:
    """The raw FPCore source text of the curated corpus."""
    return CORPUS_TEXT
