"""Benchmark corpus: curated Herbie-style FPCores, a seeded generator, and
an FPBench importer for external ``.fpcore`` suites."""

from .fpbench import filter_cores, import_fpbench, import_fpcores_text
from .generator import generate_core, generate_suite
from .suite import core_named, curated_suite, suite, suite_names

__all__ = [
    "curated_suite",
    "core_named",
    "suite",
    "suite_names",
    "generate_core",
    "generate_suite",
    "filter_cores",
    "import_fpbench",
    "import_fpcores_text",
]
