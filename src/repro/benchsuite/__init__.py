"""Benchmark corpus: curated Herbie-style FPCores plus a seeded generator."""

from .generator import generate_core, generate_suite
from .suite import core_named, curated_suite, suite

__all__ = [
    "curated_suite",
    "core_named",
    "suite",
    "generate_core",
    "generate_suite",
]
