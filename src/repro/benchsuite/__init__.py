"""Benchmark corpus: curated Herbie-style FPCores plus a seeded generator."""

from .generator import generate_core, generate_suite
from .suite import core_named, curated_suite, suite, suite_names

__all__ = [
    "curated_suite",
    "core_named",
    "suite",
    "suite_names",
    "generate_core",
    "generate_suite",
]
