"""Experiment harness regenerating the paper's tables and figures."""

from .pareto import (
    JointPoint,
    geomean,
    joint_pareto,
    pareto_filter,
    speedup_at_matched_accuracy,
)
from .report import (
    clang_report,
    cost_model_report,
    herbie_relative_report,
    herbie_report,
    targets_table,
)
from .runner import (
    ClangComparison,
    CostModelPoint,
    ExperimentConfig,
    HerbieComparison,
    correlation,
    run_clang_comparison,
    run_cost_model_study,
    run_herbie_comparison,
)

__all__ = [
    "JointPoint",
    "geomean",
    "joint_pareto",
    "pareto_filter",
    "speedup_at_matched_accuracy",
    "ExperimentConfig",
    "ClangComparison",
    "HerbieComparison",
    "CostModelPoint",
    "run_clang_comparison",
    "run_herbie_comparison",
    "run_cost_model_study",
    "correlation",
    "targets_table",
    "clang_report",
    "herbie_report",
    "herbie_relative_report",
    "cost_model_report",
]
