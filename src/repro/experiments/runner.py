"""Experiment runners regenerating the paper's evaluation (section 6).

Each ``run_*`` function reproduces the data behind one figure; the printers
in :mod:`repro.experiments.report` render them as the rows/series the paper
reports.  Scale knobs (benchmark count, sample sizes, loop iterations) keep
full runs tractable in pure Python; raising them approaches the paper's
settings (547 benchmarks, 10 000 points).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import sys

from ..accuracy.sampler import SampleConfig, SampleSet, SamplingError
from ..baselines.clang import compile_all_configs
from ..baselines.herbie import herbie_frontier_on_target, run_herbie
from ..core.candidates import ParetoFrontier
from ..core.loop import CompileConfig
from ..core.transcribe import Untranscribable
from ..ir.fpcore import FPCore
from ..formats import get_format
from ..perf.simulator import PerfSimulator
from ..service.cache import CompileCache, core_fingerprint
from ..session import ChassisSession
from ..targets.target import Target
from .pareto import Entry


@dataclass
class ExperimentConfig:
    """Shared scale knobs for all experiment runners."""

    compile_config: CompileConfig = field(default_factory=CompileConfig)
    sample_config: SampleConfig = field(
        default_factory=lambda: SampleConfig(n_train=48, n_test=48)
    )
    #: Worker-pool width for the batch compilation service.
    jobs: int = 1
    #: Shared persistent result cache (a CompileCache or a directory path);
    #: None disables caching.
    cache: CompileCache | str | None = None
    #: Per-compilation timeout in seconds (None = unbounded).
    timeout: float | None = None
    #: The warm session every runner compiles through (built lazily from the
    #: knobs above; pass one explicitly to share it across experiments).
    session: ChassisSession | None = field(default=None, repr=False)

    def get_session(self) -> ChassisSession:
        """This experiment's session (created on first use).

        With ``jobs >= 2`` the session owns a *persistent* worker pool:
        every ``compile_all`` across every runner sharing this config
        reuses the same warm worker processes instead of rebuilding a pool
        per batch.  Call :meth:`close` when the experiments are done.
        """
        if self.session is None:
            self.session = ChassisSession(
                config=self.compile_config,
                sample_config=self.sample_config,
                cache=self.cache,
                jobs=self.jobs,
                timeout=self.timeout,
            )
        return self.session

    def close(self) -> None:
        """Drain the session's submit executor and worker pool (no-op if
        no session was ever created; the session stays usable for
        synchronous calls)."""
        if self.session is not None:
            self.session.close()

    def compile_all(self, specs):
        """Run (core, target[, samples]) specs through the session's pool.

        Expected infeasibilities (Untranscribable, SamplingError, timeouts)
        are the paper's removal protocol and stay silent; anything else is a
        compiler bug being dropped from a figure, so it is loudly flagged.
        """
        outcomes = self.get_session().compile_many(specs)
        expected = {"Untranscribable", "SamplingError", "JobTimeout", ""}
        for outcome in outcomes:
            if not outcome.ok and outcome.error_type not in expected:
                print(
                    f"warning: {outcome.benchmark} on {outcome.target} "
                    f"failed unexpectedly ({outcome.error_type}: {outcome.error}); "
                    f"dropped from results",
                    file=sys.stderr,
                )
        return outcomes


def _accuracy_bits(error: float, precision: str) -> float:
    return get_format(precision).bits - error


def _runtime(simulator: PerfSimulator, program, samples: SampleSet, precision: str) -> float:
    return simulator.run_time(program, samples.test, precision)


# --- Figure 7: Chassis vs Clang on the C target -----------------------------------------


@dataclass
class ClangComparison:
    """Per-benchmark figure 7 data."""

    benchmark: str
    chassis: list[Entry]
    #: config name -> single (speedup, accuracy) entry
    clang: dict[str, Entry]
    #: compiler run times (seconds): the paper reports Chassis ~1 minute
    #: per benchmark vs Clang under a second.
    chassis_compile_s: float = 0.0
    clang_compile_s: float = 0.0
    #: Whether run times were *measured* on executed emitted code rather
    #: than predicted by the performance simulator.
    empirical: bool = False


def run_clang_comparison(
    cores: list[FPCore],
    target: Target,
    config: ExperimentConfig | None = None,
    *,
    empirical: bool = False,
) -> list[ClangComparison]:
    """Chassis vs 12 Clang configurations; speedups relative to -O0.

    With ``empirical=True`` program run times come from the execution
    backend (:mod:`repro.exec`) — emitted code compiled by the system
    compiler (or the Python backend when none exists) and wall-clock
    timed over the test points — instead of from the performance
    simulator, closing the figure's loop on real hardware.  Speedups are
    ratios, so measured and simulated times must never mix within one
    benchmark: if *any* of a benchmark's programs cannot be measured, the
    whole benchmark falls back to simulated time.
    """
    config = config or ExperimentConfig()
    session = config.get_session()
    simulator = session.simulator(target)
    results: list[ClangComparison] = []

    def runtimes_for(programs, core, samples) -> tuple[dict[int, float], bool]:
        """``(id(program) -> ns/eval, measured?)`` — empirically for every
        program or, if any fails to build/run, from the simulator for
        every program (a measured-to-simulated speedup ratio is
        meaningless), with the flag recording which actually happened so
        the per-benchmark ``empirical`` field stays honest."""
        if empirical:
            from ..exec.timing import measure_executable

            try:
                times = {}
                for program in programs:
                    executable = session.executable(
                        core, target, program=program
                    )
                    times[id(program)] = measure_executable(
                        executable,
                        samples.test[:24] or samples.train[:24],
                        repeats=3,
                    ).median_ns
                return times, True
            except Exception:
                pass  # some program is unrunnable: simulate them all
        return {
            id(program): _runtime(simulator, program, samples, core.precision)
            for program in programs
        }, False

    outcomes = config.compile_all([(core, target) for core in cores])
    for core, outcome in zip(cores, outcomes):
        if not outcome.ok:
            continue  # paper: infeasible benchmark/target pairs are removed
        result = outcome.result
        samples = result.samples
        import time as _time

        clang_start = _time.monotonic()
        try:
            clang_outputs = compile_all_configs(core, target)
        except Untranscribable:
            continue
        clang_elapsed = _time.monotonic() - clang_start
        times, measured = runtimes_for(
            {id(p): p for p in (
                [o.program for o in clang_outputs]
                + [c.program for c in result.frontier]
            )}.values(),
            core,
            samples,
        )
        base = next(o for o in clang_outputs if o.level == "-O0" and not o.fast_math)
        base_time = times[id(base.program)] * base.time_factor
        if base_time <= 0:
            continue

        clang_entries: dict[str, Entry] = {}
        from ..accuracy.scoring import score_program

        for output in clang_outputs:
            time = times[id(output.program)] * output.time_factor
            error = score_program(
                output.program, target, samples.test, samples.test_exact, core.precision
            )
            clang_entries[output.config_name] = (
                base_time / time,
                _accuracy_bits(error, core.precision),
            )

        chassis_entries: list[Entry] = []
        for candidate in result.frontier:
            time = times[id(candidate.program)]
            chassis_entries.append(
                (base_time / time, _accuracy_bits(candidate.error, core.precision))
            )
        results.append(
            ClangComparison(
                core.name or "?",
                chassis_entries,
                clang_entries,
                chassis_compile_s=result.elapsed,
                clang_compile_s=clang_elapsed,
                empirical=measured,
            )
        )
    return results


# --- Figures 8 and 9: Chassis vs Herbie across targets ----------------------------------------


@dataclass
class HerbieComparison:
    """Per-benchmark, per-target figure 8/9 data."""

    benchmark: str
    target: str
    chassis: list[Entry]
    herbie: list[Entry]
    input_entry: Entry
    translation_stats: dict[str, int]


def run_herbie_comparison(
    cores: list[FPCore],
    targets: list[Target],
    config: ExperimentConfig | None = None,
) -> list[HerbieComparison]:
    """Chassis vs Herbie; speedups relative to the *input* program.

    Implements the paper's bias-toward-Herbie rules: Chassis outputs more
    accurate than Herbie's best are discarded; benchmarks where every Herbie
    output is unsupported are removed for both systems.
    """
    config = config or ExperimentConfig()
    session = config.get_session()
    results: list[HerbieComparison] = []

    # Sample once per benchmark and share across every target (sampling is
    # target-independent and the oracle is expensive).  Keyed by *content*
    # fingerprint: keying on core.name collides for anonymous benchmarks.
    # The session's own sample cache backs this; the local dict just records
    # which benchmarks proved sampleable.
    samples_cache: dict[str, SampleSet] = {}
    for core in cores:
        key = core_fingerprint(core)
        if key in samples_cache:
            continue
        try:
            samples_cache[key] = session.samples_for(core)
        except SamplingError:
            continue  # paper: unsampleable benchmarks are removed

    # One list drives both the service call and the consuming loop, so
    # outcome pairing is by construction, not by two filters agreeing.
    jobs: list[tuple[Target, FPCore, str]] = []
    for target in targets:
        for core in cores:
            key = core_fingerprint(core)
            if key in samples_cache:
                jobs.append((target, core, key))
    outcomes = config.compile_all(
        [(core, target, samples_cache[key]) for target, core, key in jobs]
    )

    # Herbie's target-agnostic loop also depends only on the benchmark and
    # its samples, so its IR frontier is computed once and lowered per
    # target.
    herbie_ir_cache: dict[str, ParetoFrontier] = {}

    for (target, core, key), outcome in zip(jobs, outcomes):
        simulator = session.simulator(target)
        samples = samples_cache[key]
        if not outcome.ok:
            continue
        result = outcome.result
        if key not in herbie_ir_cache:
            herbie_ir_cache[key] = run_herbie(
                core, samples, config.compile_config, session=session
            )
        herbie_frontier, stats = herbie_frontier_on_target(
            core, target, samples, config.compile_config,
            ir_frontier=herbie_ir_cache[key], session=session,
        )
        if len(herbie_frontier) == 0:
            continue  # paper: benchmark removed for both systems

        input_time = _runtime(
            simulator, result.input_candidate.program, samples, core.precision
        )
        input_entry = (
            1.0,
            _accuracy_bits(result.input_candidate.error, core.precision),
        )

        herbie_entries: list[Entry] = []
        for candidate in herbie_frontier:
            time = _runtime(simulator, candidate.program, samples, core.precision)
            herbie_entries.append(
                (input_time / time, _accuracy_bits(candidate.error, core.precision))
            )
        herbie_best_acc = max(a for _s, a in herbie_entries)

        chassis_entries: list[Entry] = []
        for candidate in result.frontier:
            accuracy = _accuracy_bits(candidate.error, core.precision)
            if accuracy > herbie_best_acc + 0.5:
                continue  # paper: discard outputs more accurate than Herbie's
            time = _runtime(simulator, candidate.program, samples, core.precision)
            chassis_entries.append((input_time / time, accuracy))
        if not chassis_entries:
            continue

        results.append(
            HerbieComparison(
                benchmark=core.name or "?",
                target=target.name,
                chassis=chassis_entries,
                herbie=herbie_entries,
                input_entry=input_entry,
                translation_stats=stats,
            )
        )
    return results


# --- Figure 10: cost model vs simulated run time ------------------------------------------------


@dataclass
class CostModelPoint:
    """One program's estimated cost and simulated run time."""

    target: str
    benchmark: str
    estimated_cost: float
    run_time: float


def run_cost_model_study(
    cores: list[FPCore],
    targets: list[Target],
    config: ExperimentConfig | None = None,
) -> list[CostModelPoint]:
    """Collect (estimated cost, simulated run time) pairs across targets."""
    config = config or ExperimentConfig()
    session = config.get_session()
    points: list[CostModelPoint] = []
    outcomes = config.compile_all(
        [(core, target) for target in targets for core in cores]
    )
    index = 0
    for target in targets:
        simulator = session.simulator(target)
        model = session.cost_model(target)
        for core in cores:
            outcome = outcomes[index]
            index += 1
            if not outcome.ok:
                continue
            result = outcome.result
            for candidate in result.frontier:
                try:
                    cost = model.program_cost(candidate.program)
                except KeyError:
                    continue
                time = _runtime(simulator, candidate.program, result.samples, core.precision)
                points.append(
                    CostModelPoint(target.name, core.name or "?", cost, time)
                )
    return points


def correlation(points: list[CostModelPoint]) -> float:
    """Pearson correlation of log-cost vs log-runtime (figure 10's trend)."""
    if len(points) < 3:
        return float("nan")
    xs = [math.log(max(p.estimated_cost, 1e-9)) for p in points]
    ys = [math.log(max(p.run_time, 1e-9)) for p in points]
    n = len(xs)
    mx, my = sum(xs) / n, sum(ys) / n
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    vx = sum((x - mx) ** 2 for x in xs)
    vy = sum((y - my) ** 2 for y in ys)
    if vx <= 0 or vy <= 0:
        return float("nan")
    return cov / math.sqrt(vx * vy)
