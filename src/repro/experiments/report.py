"""Report printers: render each experiment as the paper's rows/series."""

from __future__ import annotations

from io import StringIO

from ..targets.target import Target
from .pareto import JointPoint, joint_pareto, speedup_at_matched_accuracy
from .runner import ClangComparison, CostModelPoint, HerbieComparison, correlation


def targets_table(targets: list[Target]) -> str:
    """Figure 6: the target-description table."""
    out = StringIO()
    out.write(f"{'Target':<11}{'Ops':>5}  {'L/E':<4}{'S/V':<4}{'Costs':<22}Notes\n")
    out.write("-" * 78 + "\n")
    for target in targets:
        style = "S" if target.if_style == "scalar" else "V"
        out.write(
            f"{target.name:<11}{len(target.operators):>5}  "
            f"{target.linkage:<4}{style:<4}{target.cost_source:<22}"
            f"{target.description}\n"
        )
    return out.getvalue()


def _curve_rows(points: list[JointPoint]) -> str:
    return "\n".join(
        f"    speedup {p.speedup:7.3f}x   total accuracy {p.total_accuracy:9.1f} bits"
        for p in points
    )


def clang_report(results: list[ClangComparison], include_timing: bool = True) -> str:
    """Figure 7: joint Pareto of Chassis vs 12 Clang configurations.

    ``include_timing=False`` drops the wall-clock compile-time footer —
    the one non-deterministic line — so provenance-checked report
    artifacts regenerate byte-identically (timings live in the ledger
    records instead); the bench harness keeps it on.
    """
    out = StringIO()
    out.write(f"Figure 7 — Chassis vs Clang on C99 ({len(results)} benchmarks)\n\n")
    chassis_curve = joint_pareto([r.chassis for r in results])
    out.write("Chassis joint Pareto curve:\n")
    out.write(_curve_rows(chassis_curve) + "\n\n")

    config_names = sorted({name for r in results for name in r.clang})
    out.write(f"{'Clang configuration':<22}{'geomean speedup':>16}{'total accuracy':>16}\n")
    from .pareto import geomean

    best_fast_speedup = 0.0
    for name in config_names:
        entries = [r.clang[name] for r in results if name in r.clang]
        speedup = geomean([e[0] for e in entries])
        accuracy = sum(e[1] for e in entries)
        out.write(f"{name:<22}{speedup:>15.3f}x{accuracy:>15.1f}\n")
        best_fast_speedup = max(best_fast_speedup, speedup)

    if chassis_curve:
        chassis_best = max(p.speedup for p in chassis_curve)
        out.write(
            f"\nChassis best speedup {chassis_best:.2f}x vs best Clang config "
            f"{best_fast_speedup:.2f}x -> advantage {chassis_best / max(best_fast_speedup, 1e-9):.2f}x\n"
        )
    if include_timing:
        chassis_time = sum(r.chassis_compile_s for r in results) / max(1, len(results))
        clang_time = sum(r.clang_compile_s for r in results) / max(1, len(results))
        out.write(
            f"Compiler run time per benchmark: Chassis {chassis_time:.2f}s vs "
            f"Clang (12 configs) {clang_time:.3f}s\n"
        )
    return out.getvalue()


def herbie_report(results: list[HerbieComparison]) -> str:
    """Figure 8: per-target joint Pareto curves, speedup over inputs."""
    out = StringIO()
    targets = sorted({r.target for r in results})
    out.write(f"Figure 8 — Chassis vs Herbie ({len(results)} benchmark*target points)\n")
    for target in targets:
        rows = [r for r in results if r.target == target]
        chassis = joint_pareto([r.chassis for r in rows])
        herbie = joint_pareto([r.herbie for r in rows])
        out.write(f"\n  target {target} ({len(rows)} benchmarks)\n")
        out.write("   Chassis:\n" + _indent(_curve_rows(chassis)) + "\n")
        out.write("   Herbie:\n" + _indent(_curve_rows(herbie)) + "\n")
        best_c = max((p.speedup for p in chassis), default=1.0)
        best_h = max((p.speedup for p in herbie), default=1.0)
        out.write(
            f"   max speedups: Chassis {best_c:.2f}x vs Herbie {best_h:.2f}x "
            f"-> gap {best_c / max(best_h, 1e-9):.2f}x\n"
        )
    return out.getvalue()


def herbie_relative_report(results: list[HerbieComparison]) -> str:
    """Figure 9: speedup over Herbie's program at matched accuracy."""
    out = StringIO()
    targets = sorted({r.target for r in results})
    out.write("Figure 9 — Chassis speedup over Herbie at matched accuracy\n")
    from .pareto import geomean

    for target in targets:
        rows = [r for r in results if r.target == target]
        ratios: list[float] = []
        tails = 0
        for row in rows:
            matched = speedup_at_matched_accuracy(row.chassis, row.herbie)
            for _acc, ratio in matched:
                ratios.append(ratio)
                if ratio < 0.8:
                    tails += 1
        if not ratios:
            continue
        out.write(
            f"  {target:<10} geomean ratio {geomean(ratios):6.3f}x over "
            f"{len(ratios)} matched points ({tails} tail points < 0.8x)\n"
        )
    return out.getvalue()


def cost_model_report(points: list[CostModelPoint]) -> str:
    """Figure 10: cost-estimate vs run-time correlation."""
    out = StringIO()
    r = correlation(points)
    out.write(
        f"Figure 10 — cost model vs simulated run time "
        f"({len(points)} programs): Pearson r (log-log) = {r:.3f}\n"
    )
    targets = sorted({p.target for p in points})
    for target in targets:
        subset = [p for p in points if p.target == target]
        out.write(
            f"  {target:<10} n={len(subset):<4} r={correlation(subset):6.3f}\n"
        )
    return out.getvalue()


def _indent(text: str, prefix: str = "   ") -> str:
    return "\n".join(prefix + line for line in text.splitlines())
