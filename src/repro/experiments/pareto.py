"""Cross-benchmark Pareto aggregation (paper figures 7-9).

The paper aggregates per-benchmark Pareto curves into one joint curve by
"computing the geometric mean of speedups and the sum of accuracies".  We
sweep an accuracy threshold: at each threshold every benchmark contributes
its fastest program at least that accurate (falling back to its most
accurate program when none qualifies), giving one joint (geomean speedup,
summed accuracy) point per threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

#: One program's measurement: simulated speedup and accuracy in bits.
Entry = tuple[float, float]


@dataclass(frozen=True)
class JointPoint:
    """One point of a joint Pareto curve."""

    speedup: float
    total_accuracy: float


def geomean(values: Sequence[float]) -> float:
    """Geometric mean; requires positive values."""
    if not values:
        raise ValueError("geomean of empty sequence")
    return math.exp(sum(math.log(max(v, 1e-12)) for v in values) / len(values))


def pareto_filter(entries: Sequence[Entry]) -> list[Entry]:
    """Keep entries not dominated in (speedup up, accuracy up)."""
    kept: list[Entry] = []
    for speedup, accuracy in sorted(entries, key=lambda e: (-e[0], -e[1])):
        if not kept or accuracy > kept[-1][1] + 1e-12:
            kept.append((speedup, accuracy))
    return kept


def joint_pareto(
    per_benchmark: Sequence[Sequence[Entry]],
    n_thresholds: int = 33,
    max_bits: float = 64.0,
) -> list[JointPoint]:
    """Aggregate per-benchmark (speedup, accuracy-bits) curves.

    Benchmarks with no entries are ignored; the returned curve is itself
    Pareto-filtered and sorted by increasing accuracy.
    """
    curves = [pareto_filter(entries) for entries in per_benchmark if entries]
    if not curves:
        return []

    points: list[JointPoint] = []
    for k in range(n_thresholds + 1):
        threshold = max_bits * k / n_thresholds
        speedups, accuracies = [], []
        for curve in curves:
            qualifying = [e for e in curve if e[1] >= threshold]
            if qualifying:
                best = max(qualifying, key=lambda e: e[0])
            else:
                best = max(curve, key=lambda e: e[1])  # most accurate fallback
            speedups.append(best[0])
            accuracies.append(best[1])
        points.append(JointPoint(geomean(speedups), sum(accuracies)))

    # Deduplicate and keep the non-dominated sweep.
    unique: dict[tuple[float, float], JointPoint] = {}
    for point in points:
        unique[(round(point.speedup, 6), round(point.total_accuracy, 4))] = point
    filtered = pareto_filter(
        [(p.speedup, p.total_accuracy) for p in unique.values()]
    )
    return [JointPoint(s, a) for s, a in sorted(filtered, key=lambda e: e[1])]


def speedup_at_matched_accuracy(
    ours: Sequence[Entry], baseline: Sequence[Entry]
) -> list[tuple[float, float]]:
    """Per-accuracy speedup of ``ours`` over ``baseline`` (figure 9 view).

    For each baseline point, find our fastest entry at least as accurate;
    returns (accuracy, ours_speedup / baseline_speedup) pairs.  Accuracies
    where we have nothing comparable yield ratios < 1 computed against our
    most accurate program — producing the paper's right-hand "tails".
    """
    our_curve = pareto_filter(ours)
    out: list[tuple[float, float]] = []
    for base_speed, base_acc in pareto_filter(baseline):
        qualifying = [e for e in our_curve if e[1] >= base_acc]
        mine = (
            max(qualifying, key=lambda e: e[0])
            if qualifying
            else max(our_curve, key=lambda e: e[1])
        )
        out.append((base_acc, mine[0] / max(base_speed, 1e-12)))
    return sorted(out)
