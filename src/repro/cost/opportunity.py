"""The cost-opportunity heuristic (paper section 5.2, figure 5).

Local error finds *inaccurate* subexpressions; cost opportunity finds
subexpressions where rewriting could make the program *faster*.  Naively,
"expensive" nodes are poor candidates — a transcendental call is expensive
no matter what.  Cost opportunity instead asks how much a node's cost drops
under a cheap, AST-non-growing ("simplifying") saturation, *minus* the drop
attributable to its children, so a node is never credited for savings that
happen inside its arguments (otherwise the program root always wins).
"""

from __future__ import annotations

from ..egraph.egraph import EGraph
from ..egraph.runner import RunnerLimits, run_rules
from ..egraph.typed_extract import TypedExtractor
from ..ir.expr import App, Expr
from ..ir.types import F64
from ..rules.registry import opportunity_rules
from ..targets.target import Target
from .model import TargetCostModel

Path = tuple[int, ...]

#: Lightweight limits: the analysis runs over *every* subexpression, so the
#: paper keeps this pass much cheaper than the real rewrite pass.
_LIGHT_LIMITS = RunnerLimits(max_iterations=3, max_nodes=1200, max_matches_per_rule=150, time_limit=3.0)


def infer_types(program: Expr, target: Target, ty: str = F64) -> dict[Path, str]:
    """The float format of every value node of a well-typed float program."""
    types: dict[Path, str] = {}

    def visit(expr: Expr, path: Path, expected: str) -> None:
        types[path] = expected
        if not isinstance(expr, App):
            return
        if expr.op == "if":
            visit(expr.args[0], path + (0,), expected)
            visit(expr.args[1], path + (1,), expected)
            visit(expr.args[2], path + (2,), expected)
            return
        opdef = target.operators.get(expr.op)
        if opdef is None:
            # Predicate/comparison: operands default to the program format.
            for i, arg in enumerate(expr.args):
                visit(arg, path + (i,), expected)
            return
        types[path] = opdef.ret_type
        for i, (arg, arg_ty) in enumerate(zip(expr.args, opdef.arg_types)):
            visit(arg, path + (i,), arg_ty)

    visit(program, (), ty)
    return types


def cost_opportunities(
    program: Expr,
    target: Target,
    ty: str = F64,
    var_types: dict[str, str] | None = None,
    limits: RunnerLimits = _LIGHT_LIMITS,
) -> dict[Path, float]:
    """Cost opportunity of every operator node (paper figure 5).

    One e-graph holds the whole program (every subexpression is an e-class);
    simplifying identities plus the target's desugar/lower rules connect
    float operators to cheaper equivalents; typed extraction then prices the
    best available form of each subexpression.
    """
    model = TargetCostModel(target)
    var_types = var_types or {name: ty for name in program.free_vars()}

    egraph = EGraph()
    class_of: dict[Path, int] = {}

    def insert(expr: Expr, path: Path) -> int:
        if isinstance(expr, App):
            args = [insert(a, path + (i,)) for i, a in enumerate(expr.args)]
            cid = egraph.add_node(expr.op, tuple(args))
        else:
            cid = egraph.add_expr(expr)
        class_of[path] = cid
        return cid

    insert(program, ())
    rules = list(opportunity_rules()) + target.desugar_rules()
    run_rules(egraph, rules, limits)

    extractor = TypedExtractor(egraph, model, var_types)
    node_types = infer_types(program, target, ty)

    deltas: dict[Path, float] = {}
    for path, node in program.subexprs():
        node_ty = node_types.get(path, ty)
        best = extractor.cost_of(class_of[path], node_ty)
        if best is None:
            deltas[path] = 0.0
            continue
        try:
            original = model.program_cost(node)
        except KeyError:
            deltas[path] = 0.0
            continue
        deltas[path] = max(0.0, original - best)

    opportunities: dict[Path, float] = {}
    for path, node in program.subexprs():
        if not isinstance(node, App) or node.op not in target.operators:
            continue
        child_delta = sum(
            deltas.get(path + (i,), 0.0) for i in range(len(node.args))
        )
        opportunities[path] = max(0.0, deltas.get(path, 0.0) - child_delta)
    return opportunities
