"""Cost models and the cost-opportunity heuristic."""

from .model import NaiveCostModel, TargetCostModel
from .opportunity import cost_opportunities, infer_types

__all__ = [
    "TargetCostModel",
    "NaiveCostModel",
    "cost_opportunities",
    "infer_types",
]
