"""Target cost models (paper section 4.2).

The speed of a program is estimated as the sum of its operators' scalar
costs plus literal/variable costs, with conditionals priced by the target's
style: *scalar* targets pay for the predicate plus the more expensive
branch, *vector* targets (masked execution) pay for the predicate plus both
branches.  The same object implements the e-graph layer's
:class:`~repro.egraph.typed_extract.TypedCostModel` protocol, so typed
extraction and static program costing always agree.
"""

from __future__ import annotations

from typing import Iterable

from ..ir.expr import App, Const, Expr, Num, Var
from ..ir.ops import COMPARISON_OPS
from ..targets.target import VECTOR, Target


class TargetCostModel:
    """Cost model derived from a target description."""

    def __init__(self, target: Target):
        self.target = target

    # --- TypedCostModel protocol (used by typed extraction) ---------------------

    def operator_signature(self, op: str) -> tuple[tuple[str, ...], str] | None:
        opdef = self.target.operators.get(op)
        if opdef is None:
            return None
        return opdef.arg_types, opdef.ret_type

    def operator_cost(self, op: str) -> float:
        return self.target.operators[op].cost

    def literal_types(self) -> Iterable[str]:
        return self.target.literal_costs.keys()

    def literal_cost(self, ty: str) -> float:
        return self.target.literal_costs[ty]

    def variable_cost(self, ty: str) -> float:
        return self.target.variable_cost

    # --- static program costing ------------------------------------------------------

    def program_cost(self, expr: Expr) -> float:
        """Estimated cost of a whole float program (tree-structured)."""
        if isinstance(expr, Var):
            return self.target.variable_cost
        if isinstance(expr, (Num, Const)):
            costs = self.target.literal_costs
            return min(costs.values()) if costs else 1.0
        assert isinstance(expr, App)
        if expr.op == "if":
            cond, then_branch, else_branch = expr.args
            cond_cost = self.program_cost(cond)
            then_cost = self.program_cost(then_branch)
            else_cost = self.program_cost(else_branch)
            if self.target.if_style == VECTOR:
                return cond_cost + then_cost + else_cost + self.target.if_cost
            return cond_cost + max(then_cost, else_cost) + self.target.if_cost
        if expr.op in COMPARISON_OPS or expr.op in ("and", "or", "not"):
            return self.target.if_cost + sum(self.program_cost(a) for a in expr.args)
        opdef = self.target.operators.get(expr.op)
        if opdef is None:
            raise KeyError(
                f"target {self.target.name} cannot cost operator {expr.op!r}"
            )
        return opdef.cost + sum(self.program_cost(a) for a in expr.args)

    def supports_program(self, expr: Expr) -> bool:
        """True when every operator in ``expr`` exists on the target."""
        try:
            self.program_cost(expr)
        except KeyError:
            return False
        return True


class NaiveCostModel(TargetCostModel):
    """Herbie's target-agnostic cost model (paper section 3.1).

    Arithmetic costs 1, every other function call costs 100 — "approximating
    a wide range of hardware and software targets where only relative
    performance matters".  Built over a pseudo-target so the same machinery
    runs unchanged; see :mod:`repro.baselines.herbie`.
    """

    ARITH_COST = 1.0
    CALL_COST = 100.0
