"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``compile`` — compile FPCore source for a target, print the Pareto
  frontier (optionally as target-language code or ``--json``).
* ``batch``  — compile many benchmarks x targets through the batch
  service: parallel workers, persistent result cache, JSONL report.
* ``serve``  — long-running JSON-over-HTTP front-end backed by one warm
  :class:`~repro.session.ChassisSession` (compile/batch/targets/score).
* ``targets`` — list the built-in target descriptions (the figure 6 table);
  ``--json`` adds per-target execution capability metadata.
* ``sample`` — sample valid inputs for an FPCore and report acceptance.
* ``score``  — score a float program's accuracy against the oracle.
* ``run``    — compile, then *execute* the emitted code (C via the system
  compiler, or the sandboxed Python backend) at the sampled points.
* ``validate`` — run emitted code and cross-check it against the Rival
  oracle and the fpeval machine (empirical accuracy report).
* ``health`` — human-readable session/engine/oracle stats table, from a
  running server's ``/health`` + ``/metrics`` (``--url``) or a fresh
  in-process session.

Every command that compiles goes through a :class:`ChassisSession`, so one
invocation shares its evaluator, sample cache and (optional) persistent
result cache across all its benchmarks.

Examples::

    python -m repro targets
    python -m repro compile --target fdlibm --iterations 2 bench.fpcore
    echo '(FPCore (x) :pre (< 0.001 x 0.999) (log (+ 1 x)))' | \
        python -m repro compile --target c99 -
    python -m repro batch --suite 8 --targets c99,fdlibm --jobs 4 \
        --cache-dir .repro-cache --report report.jsonl
    python -m repro serve --port 8080 --cache-dir .repro-cache
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from .accuracy.sampler import SampleConfig
from .benchsuite import core_named
from .core.loop import CompileConfig
from .core.output import render, to_fpcore
from .experiments.report import targets_table
from .formats import UnknownFormatError
from .ir.fpcore import parse_fpcores
from .ir.printer import expr_to_infix
from .session import ChassisSession
from .targets import TARGET_NAMES, all_targets, get_target


def _read_cores(source: str, known_ops=None):
    if source == "-":
        text = sys.stdin.read()
    else:
        try:
            with open(source) as handle:
                text = handle.read()
        except OSError:  # not a readable file: try as a benchmark name
            try:
                return [core_named(source)]
            except KeyError:
                from .benchsuite import suite_names

                known = ", ".join(suite_names()[:8])
                raise SystemExit(
                    f"no such file or benchmark: {source} "
                    f"(suite starts: {known}, ...)"
                ) from None
    try:
        return parse_fpcores(text, known_ops)
    except UnknownFormatError as error:
        # A bad :precision is a user typo, not a crash: name the format and
        # the registered alternatives instead of dumping a traceback.
        raise SystemExit(f"error: {error}") from None


def _cmd_targets(args) -> int:
    if getattr(args, "json", False):
        from .session import targets_info

        print(json.dumps({"targets": targets_info()}, indent=2))
        return 0
    print(targets_table(all_targets()), end="")
    return 0


def _resolve_target(args):
    """Resolve --target / --target-file into a Target."""
    if getattr(args, "target_file", None):
        from .fpeval import approx, impls
        from .targets import autotuned, parse_target_description

        links = {
            name: fn
            for module in (impls, approx)
            for name, fn in vars(module).items()
            if callable(fn) and not name.startswith("_")
        }
        import_registry = {name: get_target(name) for name in TARGET_NAMES}
        with open(args.target_file) as handle:
            target = parse_target_description(
                handle.read(), link_registry=links, import_registry=import_registry
            )
        return autotuned(target)
    return get_target(args.target)


def _cmd_compile(args) -> int:
    from .service.batch import job_row

    target = _resolve_target(args)
    session = ChassisSession(
        config=CompileConfig(iterations=args.iterations),
        sample_config=SampleConfig(
            n_train=args.points, n_test=args.points, seed=args.seed
        ),
        jobs=args.jobs,
    )

    def emit_failed(label: str, error_type: str, error: str) -> None:
        if args.json:
            print(json.dumps(job_row(
                label, target.name, "failed",
                error_type=error_type, error=error,
            )))
        else:
            print(f"{label}: FAILED ({error_type}: {error})")

    def emit_ok(label, core, result, elapsed, engine_delta, timings) -> None:
        if args.json:
            from .service.results import result_to_dict

            # The same deterministic row shape the batch report writer emits
            # (joinable on "benchmark"/"target", no bulky fields), plus this
            # job's engine-counter delta — e-nodes built, incremental
            # re-match savings, saturation-cache hits and per-rule
            # match-budget truncations (`rules_truncated`) — and its
            # per-phase wall-clock breakdown, the observability hooks for
            # tuning node/match budgets and finding the slow phase.
            row = job_row(
                label, target.name, "ok", payload=result_to_dict(result)
            )
            row["engine"] = engine_delta
            row["timings"] = timings
            print(json.dumps(row))
            return
        print(f"{label} on {target.name} ({elapsed:.1f}s):")
        inp = result.input_candidate
        print(f"  input  cost={inp.cost:9.1f}  bits-of-error={inp.error:6.2f}")
        for candidate in result.frontier:
            print(
                f"  output cost={candidate.cost:9.1f}  "
                f"bits-of-error={candidate.error:6.2f}"
            )
            if args.code:
                body = render(candidate.program, core, target)
                print("    " + "\n    ".join(body.splitlines()))
            else:
                shown = (
                    expr_to_infix(candidate.program)
                    if args.infix
                    else to_fpcore(candidate.program, core)
                )
                print(f"    {shown}")

    cores = _read_cores(args.input)
    traces: list = []
    status = 0
    if args.jobs > 1:
        from .obs.trace import trace_from_dict

        # Pooled path: benchmarks fan out across warm worker processes.
        # Each worker records its own span trace and engine counters and
        # ships them back on the JobOutcome; --trace merges every worker's
        # spans onto one absolute timeline below.
        outcomes = session.compile_many(
            [(core, target) for core in cores], trace=bool(args.trace)
        )
        for core, outcome in zip(cores, outcomes):
            label = core.name or core.properties.get("name", "<anonymous>")
            if outcome.trace:
                traces.append(outcome.trace)
            if not outcome.ok:
                emit_failed(
                    label, outcome.error_type or outcome.status, outcome.error
                )
                status = 1
                continue
            timings = (
                trace_from_dict(outcome.trace).phase_seconds()
                if outcome.trace else None
            )
            emit_ok(
                label, core, outcome.result, outcome.elapsed,
                outcome.engine or {}, timings,
            )
    else:
        from .egraph.stats import stats_delta
        from .obs.trace import Trace, tracing

        for core in cores:
            label = core.name or core.properties.get("name", "<anonymous>")
            start = time.monotonic()
            engine_before = session.stats.engine.as_dict()
            trace = Trace(name=f"{label}:{target.name}") if args.trace else None
            try:
                if trace is not None:
                    with tracing(trace):
                        result = session.compile(core, target)
                else:
                    result = session.compile(core, target)
            except Exception as error:  # surface per-core failures, keep going
                emit_failed(label, type(error).__name__, str(error))
                status = 1
                continue
            if trace is not None:
                traces.append(trace)
            emit_ok(
                label, core, result, time.monotonic() - start,
                stats_delta(session.stats.engine.as_dict(), engine_before),
                session.last_phase_timings(),
            )
    if args.trace:
        from .obs.trace import write_chrome_trace

        events = write_chrome_trace(args.trace, traces)
        print(
            f"wrote {events} trace events from {len(traces)} compile(s) "
            f"to {args.trace} (load in Perfetto / chrome://tracing)",
            file=sys.stderr,
        )
    session.close()
    return status


def _cmd_batch(args) -> int:
    from .service.batch import cmd_batch

    return cmd_batch(args)


def _cmd_sample(args) -> int:
    session = ChassisSession(
        sample_config=SampleConfig(
            n_train=args.points, n_test=args.points, seed=args.seed
        )
    )
    for core in _read_cores(args.input):
        samples = session.samples_for(core)
        label = core.name or "<anonymous>"
        print(
            f"{label}: {len(samples.train)} train + {len(samples.test)} test "
            f"points (acceptance {samples.acceptance:.1%})"
        )
        if args.show:
            for point, exact in list(zip(samples.train, samples.train_exact))[: args.show]:
                rendered = ", ".join(f"{k}={v:.6g}" for k, v in point.items())
                print(f"  {rendered}  ->  {exact:.17g}")
    return 0


def _cmd_score(args) -> int:
    session = ChassisSession(
        sample_config=SampleConfig(n_train=8, n_test=args.points)
    )
    target = get_target(args.target)
    for core in _read_cores(args.input):
        error = session.score(core, target, args.program or None)
        print(f"{core.name or '<anonymous>'}: mean bits of error = {error:.3f}")
    return 0


def _exec_session(args) -> ChassisSession:
    """The session behind ``repro run`` / ``repro validate``."""
    return ChassisSession(
        config=CompileConfig(iterations=args.iterations),
        sample_config=SampleConfig(
            n_train=args.points, n_test=args.points, seed=args.seed
        ),
        cache=getattr(args, "cache_dir", None) or None,
    )


def _cmd_run(args) -> int:
    """Compile and *execute* emitted code at the sampled points."""
    session = _exec_session(args)
    status = 0
    for core in _read_cores(args.input):
        label = core.name or core.properties.get("name", "<anonymous>")
        try:
            run = session.execute(
                core, args.target, program=args.program or None,
                backend=args.backend,
            )
            samples = session.samples_for(core)
        except Exception as error:
            print(f"{label}: FAILED ({type(error).__name__}: {error})")
            status = 1
            continue
        if args.json:
            print(json.dumps(run.as_dict()))
            continue
        note = f" ({run.note})" if run.note else ""
        print(
            f"{label} on {args.target}: executed {run.fn_name} "
            f"[{run.backend} backend] over {len(run.outputs)} points{note}"
        )
        exacts = samples.test_exact or samples.train_exact
        points = samples.test or samples.train
        for point, output, exact in list(zip(points, run.outputs, exacts))[: args.show]:
            rendered = ", ".join(f"{k}={v:.6g}" for k, v in point.items())
            print(f"  {rendered}  ->  {output:.17g}  (exact {exact:.17g})")
    return status


def _cmd_validate(args) -> int:
    """Execute emitted code and cross-check it against oracle + machine."""
    session = _exec_session(args)
    status = 0
    for core in _read_cores(args.input):
        label = core.name or core.properties.get("name", "<anonymous>")
        try:
            report = session.validate(
                core, args.target, program=args.program or None,
                backend=args.backend,
            )
        except Exception as error:
            print(f"{label}: FAILED ({type(error).__name__}: {error})")
            status = 1
            continue
        if args.json:
            print(json.dumps(report.as_dict()))
            continue
        verdict = "agree" if report.ok else "DISAGREE"
        print(
            f"{label} on {report.target} [{report.backend} backend]: "
            f"executed {report.executed_bits:.3f} vs machine "
            f"{report.machine_bits:.3f} bits of error over "
            f"{report.n_points} points -> {verdict} "
            f"(delta {report.agreement_bits:.3f} bits, "
            f"max {report.max_ulps} ulps, "
            f"{report.mismatch_count} mismatching points)"
        )
        if report.note:
            print(f"  note: {report.note}")
        for mismatch in report.mismatches:
            rendered = ", ".join(
                f"{k}={v:.6g}" for k, v in mismatch.point.items()
            )
            print(
                f"  point {mismatch.index} ({rendered}): "
                f"executed {mismatch.executed:.17g} vs machine "
                f"{mismatch.machine:.17g} ({mismatch.ulps} ulps)"
            )
    return status


def _render_health(payload: dict) -> None:
    """Print one ``/health`` payload as an aligned human-readable table."""

    def section(title: str, mapping) -> None:
        if not mapping:
            return
        print(f"{title}:")
        for key, value in mapping.items():
            if isinstance(value, dict):
                rendered = (
                    ", ".join(f"{k}={v}" for k, v in value.items()) or "-"
                )
                print(f"  {key:<22} {rendered}")
            elif isinstance(value, float):
                print(f"  {key:<22} {value:.4f}")
            else:
                print(f"  {key:<22} {value}")

    print(f"status: {'ok' if payload.get('ok') else 'DOWN'}")
    stats = payload.get("stats") or {}
    section(
        "session",
        {k: v for k, v in stats.items() if not isinstance(v, dict)},
    )
    section("engine", stats.get("engine"))
    section("oracle lock", stats.get("oracle"))
    section("pooled oracle", stats.get("rival"))
    section("oracle", payload.get("oracle"))
    section("cache", payload.get("cache"))
    section("pool", payload.get("pool"))
    section("provenance", payload.get("provenance"))


def _cmd_health(args) -> int:
    """Show server (or fresh local session) health as a table or JSON."""
    if args.url:
        from urllib.error import URLError
        from urllib.request import urlopen

        base = args.url.rstrip("/")
        try:
            with urlopen(base + "/health", timeout=args.timeout) as resp:
                payload = json.load(resp)
            metrics_text = ""
            if args.metrics:
                with urlopen(base + "/metrics", timeout=args.timeout) as resp:
                    metrics_text = resp.read().decode("utf-8")
        except (URLError, OSError, ValueError) as error:
            print(f"health: cannot reach {base}: {error}", file=sys.stderr)
            return 1
    else:
        from .obs.metrics import METRICS

        session = ChassisSession()
        payload = session.health()
        metrics_text = METRICS.exposition() if args.metrics else ""
        session.close()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        _render_health(payload)
    if args.metrics and metrics_text:
        print()
        print(metrics_text, end="")
    return 0 if payload.get("ok") else 1


def _cmd_provenance(args) -> int:
    from .provenance.report import cmd_provenance

    return cmd_provenance(args)


def _cmd_report(args) -> int:
    from .provenance.report import cmd_report

    return cmd_report(args)


def _cmd_serve(args) -> int:
    from .service.server import serve

    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit("--timeout must be positive (seconds)")
    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    session = ChassisSession(
        config=CompileConfig(iterations=args.iterations),
        sample_config=SampleConfig(
            n_train=args.points, n_test=args.points, seed=args.seed
        ),
        cache=args.cache_dir or None,
        jobs=args.jobs,
        timeout=args.timeout,
    )
    return serve(session, host=args.host, port=args.port, verbose=not args.quiet)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chassis, a target-aware numerical compiler (reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_targets = sub.add_parser("targets", help="list built-in targets")
    p_targets.add_argument(
        "--json",
        action="store_true",
        help="emit JSON with per-target execution capability metadata "
        "(emittable languages, available empirical backends)",
    )
    p_targets.set_defaults(fn=_cmd_targets)

    p_compile = sub.add_parser("compile", help="compile FPCore for a target")
    p_compile.add_argument("input", help="FPCore file, '-' for stdin, or a benchmark name")
    p_compile.add_argument("--target", choices=TARGET_NAMES, default="c99")
    p_compile.add_argument(
        "--target-file",
        help="path to a target description in the S-expression DSL "
        "(overrides --target; links resolve against repro.fpeval)",
    )
    p_compile.add_argument("--iterations", type=int, default=2)
    p_compile.add_argument("--points", type=int, default=48)
    p_compile.add_argument("--seed", type=int, default=20250401)
    p_compile.add_argument("--code", action="store_true", help="emit target-language code")
    p_compile.add_argument("--infix", action="store_true", help="print programs in infix form")
    p_compile.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object per benchmark "
        "(includes engine-counter deltas and per-phase timings)",
    )
    p_compile.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes; >= 2 fans benchmarks out over a pool and "
        "merges their traces/counters back into the session",
    )
    p_compile.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a Chrome trace-event JSON timeline of every compile "
        "(phases, e-graph search/apply, oracle wait/hold) to PATH; "
        "load it in Perfetto or chrome://tracing",
    )
    p_compile.set_defaults(fn=_cmd_compile)

    p_batch = sub.add_parser(
        "batch",
        help="compile many benchmarks x targets (parallel, cached)",
    )
    p_batch.add_argument(
        "input",
        nargs="*",
        help="FPCore files or benchmark names (default: the built-in suite)",
    )
    p_batch.add_argument(
        "--suite",
        type=int,
        default=None,
        metavar="N",
        help="take the first N built-in benchmarks (when no inputs are named)",
    )
    p_batch.add_argument(
        "--targets",
        default="c99",
        help="comma-separated target names (default: c99)",
    )
    p_batch.add_argument("--jobs", type=int, default=1, help="worker processes")
    p_batch.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result cache directory (omit to disable caching)",
    )
    p_batch.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job compile timeout in seconds",
    )
    p_batch.add_argument("--report", help="write a JSONL report to this path")
    p_batch.add_argument("--iterations", type=int, default=2)
    p_batch.add_argument("--points", type=int, default=48)
    p_batch.add_argument("--seed", type=int, default=20250401)
    p_batch.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )
    p_batch.set_defaults(fn=_cmd_batch)

    p_serve = sub.add_parser(
        "serve",
        help="long-running JSON-over-HTTP compile server (one warm session)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8080, help="0 picks a free port")
    p_serve.add_argument(
        "--cache-dir",
        default=None,
        help="persistent result cache directory (omit to disable caching)",
    )
    p_serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="width of the persistent worker pool shared by /batch requests "
        "(>= 2 keeps warm worker processes across requests)",
    )
    p_serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job compile timeout in seconds; binds pool workers and "
        "inline /compile-in-handler-thread requests alike (clients may "
        "override per request with a 'timeout' field)",
    )
    p_serve.add_argument("--iterations", type=int, default=2)
    p_serve.add_argument("--points", type=int, default=48)
    p_serve.add_argument("--seed", type=int, default=20250401)
    p_serve.add_argument(
        "--quiet", action="store_true", help="suppress per-request log lines"
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_sample = sub.add_parser("sample", help="sample valid inputs for an FPCore")
    p_sample.add_argument("input")
    p_sample.add_argument("--points", type=int, default=32)
    p_sample.add_argument("--seed", type=int, default=20250401)
    p_sample.add_argument("--show", type=int, default=0, help="print the first N points")
    p_sample.set_defaults(fn=_cmd_sample)

    def add_exec_arguments(p):
        p.add_argument("input", help="FPCore file, '-' for stdin, or a benchmark name")
        p.add_argument("--target", choices=TARGET_NAMES, default="c99")
        p.add_argument(
            "--backend",
            choices=("auto", "c", "python"),
            default="auto",
            help="execution backend: auto picks the C build when the target "
            "emits C and a compiler exists, else the sandboxed Python "
            "backend (the graceful-degradation path)",
        )
        p.add_argument(
            "--program",
            help="float program to execute (defaults to the most accurate "
            "compiled frontier output)",
        )
        p.add_argument("--iterations", type=int, default=2)
        p.add_argument("--points", type=int, default=48)
        p.add_argument("--seed", type=int, default=20250401)
        p.add_argument(
            "--cache-dir",
            default=None,
            help="persistent compile cache; built shared libraries land in "
            "<cache-dir>/builds",
        )
        p.add_argument(
            "--json",
            action="store_true",
            help="emit one machine-readable JSON object per benchmark",
        )

    p_run = sub.add_parser(
        "run", help="execute emitted code at the sampled points"
    )
    add_exec_arguments(p_run)
    p_run.add_argument(
        "--show", type=int, default=5, help="print the first N outputs"
    )
    p_run.set_defaults(fn=_cmd_run)

    p_validate = sub.add_parser(
        "validate",
        help="run emitted code and cross-check it against oracle + machine",
    )
    add_exec_arguments(p_validate)
    p_validate.set_defaults(fn=_cmd_validate)

    p_health = sub.add_parser(
        "health",
        help="show session/engine/oracle stats (from a server or locally)",
    )
    p_health.add_argument(
        "--url",
        default=None,
        help="base URL of a running `repro serve` (e.g. http://127.0.0.1:8080); "
        "omit to report on a fresh in-process session",
    )
    p_health.add_argument(
        "--timeout", type=float, default=5.0, help="HTTP timeout in seconds"
    )
    p_health.add_argument(
        "--metrics",
        action="store_true",
        help="also print the Prometheus metrics exposition",
    )
    p_health.add_argument(
        "--json", action="store_true", help="emit the raw /health JSON"
    )
    p_health.set_defaults(fn=_cmd_health)

    p_score = sub.add_parser("score", help="score a program against the oracle")
    p_score.add_argument("input")
    p_score.add_argument("--target", choices=TARGET_NAMES, default="c99")
    p_score.add_argument("--program", help="float program (defaults to the transcribed input)")
    p_score.add_argument("--points", type=int, default=64)
    p_score.set_defaults(fn=_cmd_score)

    p_prov = sub.add_parser(
        "provenance",
        help="query the provenance ledger (by job fingerprint or prefix)",
    )
    p_prov.add_argument(
        "fingerprint", nargs="?", default=None,
        help="job fingerprint (64-char digest or an 8+-char prefix); "
        "omit to show ledger info",
    )
    p_prov.add_argument(
        "--cache-dir", default=".repro-cache",
        help="cache directory whose provenance.jsonl to query",
    )
    p_prov.add_argument("--ledger", help="explicit ledger path (overrides --cache-dir)")
    p_prov.add_argument(
        "--url", default=None,
        help="query a running `repro serve`'s GET /provenance instead",
    )
    p_prov.add_argument(
        "--timeout", type=float, default=5.0, help="HTTP timeout in seconds"
    )
    p_prov.add_argument("--json", action="store_true", help="emit raw record JSON")
    p_prov.set_defaults(fn=_cmd_provenance)

    p_report = sub.add_parser(
        "report",
        help="regenerate the paper figures (fig6-fig10) with provenance manifests",
    )
    p_report.add_argument(
        "--out", default="results/report",
        help="output directory for the JSON/Markdown artifacts",
    )
    p_report.add_argument(
        "--cache-dir", default=".repro-cache",
        help="persistent compile cache (and its provenance ledger); a warm "
        "cache regenerates every figure with zero recompiles",
    )
    p_report.add_argument(
        "--figures", default=None,
        help="comma-separated subset of fig6,fig7,fig8,fig9,fig10 (default all)",
    )
    p_report.add_argument("--benchmarks", type=int, default=6,
                          help="benchmark-suite prefix size")
    p_report.add_argument("--points", type=int, default=24,
                          help="sample points per split")
    p_report.add_argument("--iterations", type=int, default=1,
                          help="improvement-loop iterations")
    p_report.add_argument("--seed", type=int, default=20250401)
    p_report.add_argument("--jobs", type=int, default=1, help="worker-pool width")
    p_report.add_argument("--timeout", type=float, default=None,
                          help="per-compilation timeout in seconds")
    p_report.add_argument(
        "--smoke", action="store_true",
        help="CI scale: 3 benchmarks, 8 points, 1 iteration",
    )
    p_report.add_argument(
        "--check", action="store_true",
        help="regenerate without writing; exit non-zero if tables drift "
        "from the artifacts in --out or any input job is missing from "
        "the ledger",
    )
    p_report.set_defaults(fn=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    raise SystemExit(main())
