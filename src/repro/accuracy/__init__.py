"""Accuracy machinery: ULP metrics, sampling, scoring, local error."""

from .localerror import local_errors
from .sampler import SampleConfig, SampleSet, SamplingError, sample_core
from .scoring import oracle_exact_values, pointwise_errors, score_program
from .ulp import (
    accuracy_bits,
    bits_of_error,
    float32_to_ordinal,
    float64_to_ordinal,
    ordinal_to_float32,
    ordinal_to_float64,
    ulps_between,
)

__all__ = [
    "ulps_between",
    "bits_of_error",
    "accuracy_bits",
    "float64_to_ordinal",
    "ordinal_to_float64",
    "float32_to_ordinal",
    "ordinal_to_float32",
    "SampleConfig",
    "SampleSet",
    "SamplingError",
    "sample_core",
    "score_program",
    "oracle_exact_values",
    "pointwise_errors",
    "local_errors",
]
