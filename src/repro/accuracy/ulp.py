"""ULP distance and bits-of-error metrics.

Herbie and Chassis measure accuracy as ``log2`` of the ULP distance between
the computed result and the correctly-rounded true result (paper section
6.2: accuracy is ``p - log2(ULPs)`` where ``p`` is the output precision).
The ordinal encoding maps floats onto consecutive integers so that the ULP
distance is an integer subtraction.
"""

from __future__ import annotations

import math
import struct

import numpy as np

from ..ir.types import F32, F64, TYPE_BITS


def float64_to_ordinal(x: float) -> int:
    """Map a binary64 value to an integer preserving numeric order."""
    (bits,) = struct.unpack("<q", struct.pack("<d", x))
    return bits if bits >= 0 else -(bits & 0x7FFFFFFFFFFFFFFF)


def ordinal_to_float64(n: int) -> float:
    """Inverse of :func:`float64_to_ordinal`."""
    bits = n if n >= 0 else (-n) | (1 << 63)
    (value,) = struct.unpack("<d", struct.pack("<Q", bits & 0xFFFFFFFFFFFFFFFF))
    return value


def float32_to_ordinal(x: float) -> int:
    """Map a binary32 value (as an f32-representable float) to an ordinal."""
    (bits,) = struct.unpack("<i", struct.pack("<f", np.float32(x)))
    return bits if bits >= 0 else -(bits & 0x7FFFFFFF)


def ordinal_to_float32(n: int) -> float:
    """Inverse of :func:`float32_to_ordinal`."""
    bits = n if n >= 0 else (-n) | (1 << 31)
    (value,) = struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))
    return float(value)


def ulps_between(a: float, b: float, ty: str = F64) -> int:
    """Number of representable values between ``a`` and ``b`` in format ``ty``.

    NaN compared with anything (including NaN-vs-non-NaN mismatch) yields
    the worst case.  NaN vs NaN is a perfect match (both "error"), per the
    operators-return-NaN-on-error semantics.
    """
    a_nan, b_nan = math.isnan(a), math.isnan(b)
    if a_nan and b_nan:
        return 0
    if a_nan or b_nan:
        return 1 << TYPE_BITS[ty]
    if ty == F32:
        return abs(float32_to_ordinal(a) - float32_to_ordinal(b))
    return abs(float64_to_ordinal(a) - float64_to_ordinal(b))


def bits_of_error(approx: float, exact: float, ty: str = F64) -> float:
    """``log2`` of the ULP distance: 0 = correctly rounded, 64 = garbage."""
    ulps = ulps_between(approx, exact, ty)
    return min(float(TYPE_BITS[ty]), math.log2(ulps + 1))


def accuracy_bits(approx: float, exact: float, ty: str = F64) -> float:
    """Bits of accuracy: ``p - log2(ULPs)`` as reported in the paper."""
    return TYPE_BITS[ty] - bits_of_error(approx, exact, ty)
