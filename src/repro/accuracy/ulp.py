"""ULP distance and bits-of-error metrics.

Herbie and Chassis measure accuracy as ``log2`` of the ULP distance between
the computed result and the correctly-rounded true result (paper section
6.2: accuracy is ``p - log2(ULPs)`` where ``p`` is the output precision).
The ordinal encoding maps floats onto consecutive integers so that the ULP
distance is an integer subtraction.

The codec itself lives on :class:`~repro.formats.FloatFormat` — one
implementation per registered format, shared with the sampler's
ordinal-uniform draws so the two can never drift.  The ``ty`` arguments
below accept a format name or a :class:`FloatFormat`.
"""

from __future__ import annotations

import math

from ..formats import get_format
from ..ir.types import F64

_F64 = get_format("binary64")
_F32 = get_format("binary32")


def float64_to_ordinal(x: float) -> int:
    """Map a binary64 value to an integer preserving numeric order."""
    return _F64.to_ordinal(x)


def ordinal_to_float64(n: int) -> float:
    """Inverse of :func:`float64_to_ordinal`."""
    return _F64.from_ordinal(n)


def float32_to_ordinal(x: float) -> int:
    """Map a binary32 value (as an f32-representable float) to an ordinal."""
    return _F32.to_ordinal(x)


def ordinal_to_float32(n: int) -> float:
    """Inverse of :func:`float32_to_ordinal`."""
    return _F32.from_ordinal(n)


def ulps_between(a: float, b: float, ty=F64) -> int:
    """Number of representable values between ``a`` and ``b`` in format ``ty``.

    NaN compared with anything (including NaN-vs-non-NaN mismatch) yields
    the worst case.  NaN vs NaN is a perfect match (both "error"), per the
    operators-return-NaN-on-error semantics.
    """
    fmt = get_format(ty)
    a_nan, b_nan = math.isnan(a), math.isnan(b)
    if a_nan and b_nan:
        return 0
    if a_nan or b_nan:
        return 1 << fmt.bits
    return abs(fmt.to_ordinal(a) - fmt.to_ordinal(b))


def bits_of_error(approx: float, exact: float, ty=F64) -> float:
    """``log2`` of the ULP distance: 0 = correctly rounded, ``bits`` = garbage."""
    fmt = get_format(ty)
    ulps = ulps_between(approx, exact, fmt)
    return min(float(fmt.bits), math.log2(ulps + 1))


def accuracy_bits(approx: float, exact: float, ty=F64) -> float:
    """Bits of accuracy: ``p - log2(ULPs)`` as reported in the paper."""
    return get_format(ty).bits - bits_of_error(approx, exact, ty)
