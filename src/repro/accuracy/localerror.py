"""The local error heuristic (paper section 5.2, introduced by Herbie).

Local error isolates the error *an operator itself introduces* from error
inherited through its arguments: evaluate the operator's arguments exactly
(correctly rounded into their formats), apply the floating-point operator
once, and compare against the correctly-rounded true value of the node.  An
operator with high local error is a rewrite candidate; an operator that
merely passes along its children's error is not blamed.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..ir.expr import App, Expr
from ..ir.types import F64
from ..rival.eval import DomainError, PrecisionExhausted, RivalEvaluator
from ..targets.target import Target
from .ulp import bits_of_error

Path = tuple[int, ...]
Point = Mapping[str, float]


def local_errors(
    program: Expr,
    target: Target,
    points: Sequence[Point],
    ty: str = F64,
    evaluator: RivalEvaluator | None = None,
) -> dict[Path, float]:
    """Mean local error (bits) of every target-operator node in ``program``.

    Conditionals contribute through their branches; predicate and leaf
    nodes have no local error.
    """
    evaluator = evaluator or RivalEvaluator()
    impls = target.impl_registry()
    results: dict[Path, float] = {}

    for path, node in program.subexprs():
        if not isinstance(node, App):
            continue
        spec = impls.get(node.op)
        if spec is None:
            continue  # conditionals, predicates, unknown ops
        op = target.operator(node.op)
        total, counted = 0.0, 0
        for point in points:
            err = _local_error_at(node, op, spec, target, point, evaluator)
            if err is None:
                continue
            total += err
            counted += 1
        if counted:
            results[path] = total / counted
    return results


def _local_error_at(
    node: App, op, spec, target: Target, point: Point, evaluator: RivalEvaluator
) -> float | None:
    """Local error of one node at one point, or None when undefined there."""
    exact_args = []
    for arg, arg_ty in zip(node.args, spec.arg_types):
        real_arg = target.desugar_expr(arg)
        try:
            exact_args.append(evaluator.eval(real_arg, point, arg_ty))
        except (DomainError, PrecisionExhausted, KeyError):
            return None
    real_node = target.desugar_expr(node)
    try:
        exact_out = evaluator.eval(real_node, point, op.ret_type)
    except (DomainError, PrecisionExhausted, KeyError):
        return None
    try:
        approx_out = spec.impl(*exact_args)
    except (OverflowError, ValueError, ZeroDivisionError):
        approx_out = math.nan
    return bits_of_error(approx_out, exact_out, op.ret_type)
