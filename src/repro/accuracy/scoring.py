"""Whole-program accuracy scoring against the correctly-rounded oracle."""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from ..formats import get_format
from ..fpeval.machine import compile_expr
from ..ir.expr import Expr
from ..ir.types import F64
from ..targets.target import Target
from .ulp import bits_of_error

Point = Mapping[str, float]


def oracle_exact_values(
    oracle,
    expr: Expr,
    points: Sequence[Point],
    ty: str = F64,
) -> list[float]:
    """Correctly rounded values of ``expr`` over a whole point set, in one
    batched backend call (the scoring-side twin of the sampler's per-block
    oracling).  Points where the oracle reports a failure — domain error,
    precision exhaustion, unknown operator — come back as NaN, which
    :func:`bits_of_error` treats as worst case.
    """
    return [
        result.value if result.ok else math.nan
        for result in oracle.eval_batch(expr, list(points), ty)
    ]


def score_program(
    program: Expr,
    target: Target,
    points: Sequence[Point],
    exact_values: Sequence[float],
    ty: str = F64,
) -> float:
    """Mean bits of error of a float program over sampled points.

    ``exact_values`` are the correctly-rounded values of the *benchmark's*
    real expression at the same points (computed once per benchmark).  A
    program that crashes on evaluation scores worst-case error.
    """
    if len(points) != len(exact_values):
        raise ValueError("points and exact values must align")
    try:
        evaluator = compile_expr(program, target.impl_registry(), ty)
    except KeyError:
        return float(get_format(ty).bits)
    total = 0.0
    for point, exact in zip(points, exact_values):
        try:
            approx = evaluator(point)
        except (OverflowError, ValueError, ZeroDivisionError):
            approx = float("nan")
        total += bits_of_error(approx, exact, ty)
    return total / max(1, len(points))


def pointwise_errors(
    program: Expr,
    target: Target,
    points: Sequence[Point],
    exact_values: Sequence[float],
    ty: str = F64,
) -> list[float]:
    """Bits of error at each point (used by regime inference)."""
    evaluator = compile_expr(program, target.impl_registry(), ty)
    errors: list[float] = []
    for point, exact in zip(points, exact_values):
        try:
            approx = evaluator(point)
        except (OverflowError, ValueError, ZeroDivisionError):
            approx = float("nan")
        errors.append(bits_of_error(approx, exact, ty))
    return errors
