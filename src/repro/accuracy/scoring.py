"""Whole-program accuracy scoring against the correctly-rounded oracle."""

from __future__ import annotations

from typing import Mapping, Sequence

from ..fpeval.machine import compile_expr
from ..ir.expr import Expr
from ..ir.types import F64
from ..targets.target import Target
from .ulp import bits_of_error

Point = Mapping[str, float]


def score_program(
    program: Expr,
    target: Target,
    points: Sequence[Point],
    exact_values: Sequence[float],
    ty: str = F64,
) -> float:
    """Mean bits of error of a float program over sampled points.

    ``exact_values`` are the correctly-rounded values of the *benchmark's*
    real expression at the same points (computed once per benchmark).  A
    program that crashes on evaluation scores worst-case error.
    """
    if len(points) != len(exact_values):
        raise ValueError("points and exact values must align")
    try:
        evaluator = compile_expr(program, target.impl_registry(), ty)
    except KeyError:
        return float(64 if ty == F64 else 32)
    total = 0.0
    for point, exact in zip(points, exact_values):
        try:
            approx = evaluator(point)
        except (OverflowError, ValueError, ZeroDivisionError):
            approx = float("nan")
        total += bits_of_error(approx, exact, ty)
    return total / max(1, len(points))


def pointwise_errors(
    program: Expr,
    target: Target,
    points: Sequence[Point],
    exact_values: Sequence[float],
    ty: str = F64,
) -> list[float]:
    """Bits of error at each point (used by regime inference)."""
    evaluator = compile_expr(program, target.impl_registry(), ty)
    errors: list[float] = []
    for point, exact in zip(points, exact_values):
        try:
            approx = evaluator(point)
        except (OverflowError, ValueError, ZeroDivisionError):
            approx = float("nan")
        errors.append(bits_of_error(approx, exact, ty))
    return errors
