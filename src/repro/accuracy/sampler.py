"""Input sampling for accuracy measurement (paper section 2: "samples
training and test inputs").

Following Herbie, points are drawn uniformly over the *bit patterns* of the
input format (so every binade is equally likely), then filtered to points
where the expression is actually defined: the precondition holds and the
correctly-rounded result exists and is finite.  Sampling is deterministic
given a seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..deadline import check_deadline
from ..formats import FloatFormat, get_format
from ..ir.fpcore import FPCore
from ..rival.eval import RivalEvaluator

Point = dict[str, float]


@dataclass
class SampleConfig:
    """Sampling parameters."""

    n_train: int = 128
    n_test: int = 128
    seed: int = 20250401
    max_batches: int = 64
    #: Require at least this many valid points or raise.
    min_points: int = 8


@dataclass
class SampleSet:
    """Sampled training and test points plus their exact values."""

    train: list[Point]
    test: list[Point]
    #: Fraction of raw draws that were valid (diagnostic).
    acceptance: float = 1.0
    train_exact: list[float] = field(default_factory=list)
    test_exact: list[float] = field(default_factory=list)


class SamplingError(RuntimeError):
    """Too few valid points could be found for a benchmark."""


def _random_float(rng: random.Random, ty) -> float:
    fmt = get_format(ty)
    return fmt.from_ordinal(rng.randint(-fmt.max_ordinal, fmt.max_ordinal))


@dataclass
class _VarRange:
    """Per-variable sampling region derived from the precondition.

    ``lo``/``hi`` bound the variable itself; ``mag_lo`` bounds |var| away
    from zero (from ``(< c (fabs x))``-shaped clauses).
    """

    lo: float = -math.inf
    hi: float = math.inf
    mag_lo: float = 0.0
    mag_hi: float = math.inf


def _collect_ranges(pre, arguments: tuple[str, ...]) -> dict[str, _VarRange]:
    """Extract conservative per-variable bounds from a conjunction of
    comparisons (bounds are a sampling heuristic only — the full
    precondition is still checked on every candidate point)."""
    from ..ir.expr import App, Num, Var

    ranges = {name: _VarRange() for name in arguments}

    def visit(node) -> None:
        if not isinstance(node, App):
            return
        if node.op == "and":
            for arg in node.args:
                visit(arg)
            return
        if node.op not in ("<", "<=", ">", ">="):
            return
        left, right = node.args
        if node.op in (">", ">="):
            left, right = right, left  # normalize to "left < right"
        # left < right with combinations of Var / Num / (fabs Var)
        if isinstance(left, Num) and isinstance(right, Var):
            r = ranges.get(right.name)
            if r is not None:
                r.lo = max(r.lo, float(left.value))
        elif isinstance(left, Var) and isinstance(right, Num):
            r = ranges.get(left.name)
            if r is not None:
                r.hi = min(r.hi, float(right.value))
        elif (
            isinstance(left, Num)
            and isinstance(right, App)
            and right.op == "fabs"
            and isinstance(right.args[0], Var)
        ):
            r = ranges.get(right.args[0].name)
            if r is not None:
                r.mag_lo = max(r.mag_lo, float(left.value))
        elif (
            isinstance(left, App)
            and left.op == "fabs"
            and isinstance(left.args[0], Var)
            and isinstance(right, Num)
        ):
            r = ranges.get(left.args[0].name)
            if r is not None:
                r.mag_hi = min(r.mag_hi, float(right.value))

    if pre is not None:
        visit(pre)
    return ranges


def _ordinal_bounds(
    value_lo: float, value_hi: float, fmt: FloatFormat
) -> tuple[int, int]:
    lo = -fmt.max_ordinal if math.isinf(value_lo) else fmt.to_ordinal(value_lo)
    hi = fmt.max_ordinal if math.isinf(value_hi) else fmt.to_ordinal(value_hi)
    return min(lo, hi), max(lo, hi)


def _random_in_range(
    rng: random.Random, rang: _VarRange, fmt: FloatFormat
) -> float:
    """Ordinal-uniform draw inside a variable's derived region."""
    if rang.mag_lo > 0.0 or rang.mag_hi < math.inf:
        # Sample a magnitude, then a sign compatible with [lo, hi].
        mag_hi = min(rang.mag_hi, max(abs(rang.lo), abs(rang.hi)))
        lo_o, hi_o = _ordinal_bounds(max(rang.mag_lo, 0.0), mag_hi, fmt)
        lo_o = max(lo_o, 0)
        magnitude = fmt.from_ordinal(rng.randint(lo_o, max(lo_o, hi_o)))
        signs = []
        if rang.hi > 0:
            signs.append(1.0)
        if rang.lo < 0:
            signs.append(-1.0)
        return magnitude * rng.choice(signs or [1.0])
    lo_o, hi_o = _ordinal_bounds(rang.lo, rang.hi, fmt)
    return fmt.from_ordinal(rng.randint(lo_o, hi_o))


def sample_core(
    core: FPCore,
    config: SampleConfig | None = None,
    evaluator: RivalEvaluator | None = None,
    oracle: "OracleBackend | None" = None,
) -> SampleSet:
    """Sample valid train/test points for an FPCore, with exact values.

    A point is valid when the precondition holds and the correctly-rounded
    value of the body exists and is finite.  The exact values are kept so
    scoring never re-runs the oracle on the same points.

    Candidates are drawn in blocks and oracled per block through an
    :class:`~repro.rival.backends.OracleBackend` (``oracle``, defaulting
    to one built from ``evaluator`` and the ``REPRO_ORACLE_BACKEND``
    knob), so vectorized/pooled backends see whole point sets at once.
    Every backend is an acceptance filter over the same ladder semantics,
    so the sampled points, exact values, and acceptance ratio are
    bit-identical to the historical draw-at-a-time loop for any backend
    choice.
    """
    from ..rival.backends import make_backend

    config = config or SampleConfig()
    if oracle is None:
        oracle = make_backend(evaluator=evaluator)
    rng = random.Random(config.seed)
    wanted = config.n_train + config.n_test
    ranges = _collect_ranges(core.pre, core.arguments)
    fmt = get_format(core.precision)

    points: list[Point] = []
    exacts: list[float] = []
    attempts = 0
    batch_size = max(wanted, 32)
    for _batch in range(config.max_batches):
        check_deadline()  # the backends poll too, per batch or per point
        candidates = [
            {
                name: _random_in_range(rng, ranges[name], fmt)
                for name in core.arguments
            }
            for _ in range(batch_size)
        ]
        # One backend call per sampler iteration: precondition filter
        # plus body evaluation.  Sharding backends run the whole
        # iteration worker-side (the pool's ``sample_batch`` override);
        # in-process backends compose eval_bool_batch + eval_batch, so
        # results are bit-identical either way.
        outcomes = oracle.sample_batch(
            core.pre, core.body, candidates, core.precision
        )
        exact_at = {
            index: outcome.value
            for index, outcome in enumerate(outcomes)
            if outcome is not None
            and outcome.ok
            and math.isfinite(outcome.value)
        }
        # Walk the block in draw order so ``attempts`` counts exactly the
        # draws the historical loop would have made: it stopped on the
        # wanted-th valid point, mid-block.
        for index in range(batch_size):
            attempts += 1
            exact = exact_at.get(index)
            if exact is None:
                continue
            points.append(candidates[index])
            exacts.append(exact)
            if len(points) >= wanted:
                break
        if len(points) >= wanted:
            break

    if len(points) < max(config.min_points, 2):
        raise SamplingError(
            f"benchmark {core.name or '<anonymous>'}: "
            f"only {len(points)} valid points in {attempts} draws"
        )

    n_train = min(config.n_train, len(points) * config.n_train // wanted or 1)
    return SampleSet(
        train=points[:n_train],
        test=points[n_train:],
        acceptance=len(points) / max(1, attempts),
        train_exact=exacts[:n_train],
        test_exact=exacts[n_train:],
    )
