"""Registry of *real-number* operators.

These are the mathematical operators that appear in desugarings: pure
functions over the reals with no rounding.  Target operators (``add.f64``,
``rcp.f32``, …) are declared separately in target descriptions and *denote*
expressions built from the operators in this registry (paper section 4.1).

Each operator records its arity, the name of the corresponding mpmath
function (used by the interval oracle), and a coarse domain so that input
sampling can reject obviously-invalid points early.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RealOp:
    """Metadata for one real-number operator."""

    name: str
    arity: int
    #: Name of the mpmath function implementing the operator exactly
    #: (``None`` for operators the oracle handles specially).
    mp_name: str | None = None
    #: Human-readable domain restriction, for documentation.
    domain: str = "all reals"
    #: True when the operator is a comparison/boolean producing a BOOL.
    is_predicate: bool = False
    #: True for operators that are expensive library calls (used by naive
    #: cost models such as Herbie's arith-1/call-100 model).
    is_call: bool = field(default=False)


_REGISTRY: dict[str, RealOp] = {}


def _op(name, arity, mp_name=None, domain="all reals", pred=False, call=False):
    _REGISTRY[name] = RealOp(name, arity, mp_name, domain, pred, call)


# Arithmetic -----------------------------------------------------------------
_op("+", 2, "fadd")
_op("-", 2, "fsub")
_op("*", 2, "fmul")
_op("/", 2, "fdiv", domain="y != 0")
_op("neg", 1, "fneg")
_op("fabs", 1, "fabs")
_op("fmin", 2, None)
_op("fmax", 2, None)
_op("fmod", 2, None, domain="y != 0", call=True)
_op("copysign", 2, None)

# Roots and powers -----------------------------------------------------------
_op("sqrt", 1, "sqrt", domain="x >= 0", call=True)
_op("cbrt", 1, "cbrt", call=True)
_op("pow", 2, "power", domain="x > 0, or integer exponents", call=True)
_op("hypot", 2, "hypot", call=True)

# Exponentials and logarithms --------------------------------------------------
_op("exp", 1, "exp", call=True)
_op("exp2", 1, None, call=True)
_op("expm1", 1, "expm1", call=True)
_op("log", 1, "log", domain="x > 0", call=True)
_op("log2", 1, None, domain="x > 0", call=True)
_op("log10", 1, "log10", domain="x > 0", call=True)
_op("log1p", 1, "log1p", domain="x > -1", call=True)

# Trigonometry ----------------------------------------------------------------
_op("sin", 1, "sin", call=True)
_op("cos", 1, "cos", call=True)
_op("tan", 1, "tan", domain="x != pi/2 + k*pi", call=True)
_op("asin", 1, "asin", domain="-1 <= x <= 1", call=True)
_op("acos", 1, "acos", domain="-1 <= x <= 1", call=True)
_op("atan", 1, "atan", call=True)
_op("atan2", 2, "atan2", call=True)

# Hyperbolics -----------------------------------------------------------------
_op("sinh", 1, "sinh", call=True)
_op("cosh", 1, "cosh", call=True)
_op("tanh", 1, "tanh", call=True)
_op("asinh", 1, "asinh", call=True)
_op("acosh", 1, "acosh", domain="x >= 1", call=True)
_op("atanh", 1, "atanh", domain="-1 < x < 1", call=True)

# Rounding --------------------------------------------------------------------
_op("floor", 1, "floor", call=True)
_op("ceil", 1, "ceiling", call=True)
_op("round", 1, "nint", call=True)
_op("trunc", 1, None, call=True)

# Control flow and predicates ---------------------------------------------------
_op("if", 3, None)
_op("<", 2, None, pred=True)
_op("<=", 2, None, pred=True)
_op(">", 2, None, pred=True)
_op(">=", 2, None, pred=True)
_op("==", 2, None, pred=True)
_op("!=", 2, None, pred=True)
_op("and", 2, None, pred=True)
_op("or", 2, None, pred=True)
_op("not", 1, None, pred=True)


def real_op(name: str) -> RealOp:
    """Look up a real operator, raising ``KeyError`` for unknown names."""
    return _REGISTRY[name]


def is_real_op(name: str) -> bool:
    """True when ``name`` is a registered real-number operator."""
    return name in _REGISTRY


def all_real_ops() -> dict[str, RealOp]:
    """A copy of the full operator registry."""
    return dict(_REGISTRY)


#: Operators counted as plain arithmetic by naive (Herbie-style) cost models.
ARITHMETIC_OPS = frozenset(
    ["+", "-", "*", "/", "neg", "fabs", "fmin", "fmax", "copysign"]
)

#: Value-producing operators, excluding control flow and predicates.
VALUE_OPS = frozenset(
    name for name, op in _REGISTRY.items() if not op.is_predicate and name != "if"
)

#: Comparison operators usable in regime branch conditions.
COMPARISON_OPS = frozenset(["<", "<=", ">", ">=", "==", "!="])
