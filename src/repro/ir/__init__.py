"""Expression IR: mixed real/float terms, FPCore parsing and printing."""

from .expr import App, Const, Expr, Num, Var, add, div, if_expr, mul, neg, sub
from .fpcore import FPCore, parse_fpcore, parse_fpcores
from .ops import ARITHMETIC_OPS, RealOp, all_real_ops, is_real_op, real_op
from .parser import ParseError, parse_expr, parse_number, parse_sexpr, parse_sexprs
from .printer import expr_to_infix, expr_to_sexpr
from .types import BOOL, F32, F64, FLOAT_TYPES, REAL, TYPE_BITS, TYPE_PRECISION, is_float_type

__all__ = [
    "App", "Const", "Expr", "Num", "Var",
    "add", "sub", "mul", "div", "neg", "if_expr",
    "FPCore", "parse_fpcore", "parse_fpcores",
    "RealOp", "real_op", "is_real_op", "all_real_ops", "ARITHMETIC_OPS",
    "ParseError", "parse_expr", "parse_number", "parse_sexpr", "parse_sexprs",
    "expr_to_sexpr", "expr_to_infix",
    "REAL", "F32", "F64", "BOOL", "FLOAT_TYPES", "TYPE_BITS", "TYPE_PRECISION",
    "is_float_type",
]
