"""S-expression and FPCore parsing.

FPCore [Damouche et al. 2017] is the standard interchange format for
floating-point benchmarks and is Chassis' input format (paper section 2).
This module parses a practical subset: named cores, argument lists,
``:precision``/``:name``/``:pre`` and other properties, and the operator set
from :mod:`repro.ir.ops`.
"""

from __future__ import annotations

from decimal import Decimal
from fractions import Fraction

from .expr import App, Const, Expr, Num, Var
from .ops import is_real_op

# --- tokenizer ----------------------------------------------------------------


def tokenize(text: str) -> list[str]:
    """Split S-expression source into parenthesis, string and atom tokens."""
    tokens: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c in " \t\r\n":
            i += 1
        elif c == ";":
            while i < n and text[i] != "\n":
                i += 1
        elif c in "()[]":
            tokens.append("(" if c in "([" else ")")
            i += 1
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 1
            if j >= n:
                raise ParseError("unterminated string literal")
            tokens.append(text[i : j + 1])
            i = j + 1
        else:
            j = i
            while j < n and text[j] not in ' \t\r\n()[];"':
                j += 1
            tokens.append(text[i:j])
            i = j
    return tokens


class ParseError(ValueError):
    """Raised for malformed S-expression or FPCore input."""


SExpr = "str | list"


def parse_sexprs(text: str) -> list:
    """Parse source text into a list of nested-list S-expressions."""
    tokens = tokenize(text)
    out: list = []
    pos = 0
    while pos < len(tokens):
        node, pos = _read(tokens, pos)
        out.append(node)
    return out


def parse_sexpr(text: str):
    """Parse exactly one S-expression from ``text``."""
    forms = parse_sexprs(text)
    if len(forms) != 1:
        raise ParseError(f"expected one S-expression, found {len(forms)}")
    return forms[0]


def _read(tokens: list[str], pos: int):
    if pos >= len(tokens):
        raise ParseError("unexpected end of input")
    tok = tokens[pos]
    if tok == "(":
        items = []
        pos += 1
        while pos < len(tokens) and tokens[pos] != ")":
            item, pos = _read(tokens, pos)
            items.append(item)
        if pos >= len(tokens):
            raise ParseError("missing closing parenthesis")
        return items, pos + 1
    if tok == ")":
        raise ParseError("unexpected closing parenthesis")
    return tok, pos + 1


# --- numbers -------------------------------------------------------------------


def parse_number(token: str) -> Fraction | None:
    """Parse a decimal or rational numeric token into an exact Fraction.

    Returns ``None`` when the token is not numeric.
    """
    if "/" in token:
        num, _, den = token.partition("/")
        try:
            return Fraction(int(num), int(den))
        except ValueError:
            return None
    try:
        return Fraction(Decimal(token))
    except (ValueError, ArithmeticError):
        return None


# --- expression parsing ----------------------------------------------------------

_CONST_NAMES = {
    "PI": "PI",
    "E": "E",
    "INFINITY": "INFINITY",
    "NAN": "NAN",
    "TRUE": "TRUE",
    "FALSE": "FALSE",
    "LN2": None,  # expanded below
}


def expr_from_sexpr(sx, known_ops=None) -> Expr:
    """Convert a nested-list S-expression to an :class:`Expr`.

    ``known_ops`` optionally extends the recognized operator set (target
    operator names like ``rcp.f32``); any head symbol that is a registered
    real op or a member of ``known_ops`` parses as an :class:`App`.
    """
    if isinstance(sx, str):
        value = parse_number(sx)
        if value is not None:
            return Num(value)
        if sx in ("PI", "E", "INFINITY", "NAN", "TRUE", "FALSE"):
            return Const(sx)
        if sx == "LN2":
            return App("log", (Num(2),))
        return Var(sx)
    if not sx:
        raise ParseError("empty application")
    head = sx[0]
    if not isinstance(head, str):
        raise ParseError(f"operator position must be a symbol: {head!r}")
    if head in ("let", "let*"):
        return _expand_let(sx, known_ops)
    args = tuple(expr_from_sexpr(a, known_ops) for a in sx[1:])
    if head == "-" and len(args) == 1:
        return App("neg", args)
    if head == "+" and len(args) == 1:
        return args[0]
    if head in ("+", "-", "*") and len(args) > 2:
        # FPCore allows variadic arithmetic; left-associate.
        acc = args[0]
        for a in args[1:]:
            acc = App(head, (acc, a))
        return acc
    if head in ("<", "<=", ">", ">=", "==") and len(args) > 2:
        # FPCore chained comparison: (< a b c) means a < b and b < c.
        clauses = [App(head, (args[i], args[i + 1])) for i in range(len(args) - 1)]
        acc = clauses[0]
        for clause in clauses[1:]:
            acc = App("and", (acc, clause))
        return acc
    if head == "and" and len(args) > 2:
        acc = args[0]
        for a in args[1:]:
            acc = App("and", (acc, a))
        return acc
    if head == "or" and len(args) > 2:
        acc = args[0]
        for a in args[1:]:
            acc = App("or", (acc, a))
        return acc
    if is_real_op(head) or (known_ops and head in known_ops):
        return App(head, args)
    raise ParseError(f"unknown operator {head!r}")


def _expand_let(sx, known_ops) -> Expr:
    """Expand ``let``/``let*`` by substitution (the IR has no binders)."""
    if len(sx) != 3:
        raise ParseError("let requires bindings and a body")
    _, bindings, body_sx = sx
    env: dict[str, Expr] = {}
    for binding in bindings:
        if not (isinstance(binding, list) and len(binding) == 2):
            raise ParseError(f"bad let binding: {binding!r}")
        name, value_sx = binding
        value = expr_from_sexpr(value_sx, known_ops)
        if sx[0] == "let*":
            value = value.substitute(env)
        env[name] = value
    body = expr_from_sexpr(body_sx, known_ops)
    if sx[0] == "let":
        return body.substitute(env)
    return body.substitute(env)


def parse_expr(text: str, known_ops=None) -> Expr:
    """Parse a single expression from S-expression source text."""
    return expr_from_sexpr(parse_sexpr(text), known_ops)
