"""Printers from the expression IR back to S-expression text.

The inverse of :mod:`repro.ir.parser`: ``parse_expr(expr_to_sexpr(e)) == e``
for every expression over known operators (tested by round-trip property
tests).
"""

from __future__ import annotations

from fractions import Fraction

from .expr import App, Const, Expr, Num, Var


def format_fraction(value: Fraction) -> str:
    """Render a Fraction as FPCore source: integer, decimal, or ``p/q``."""
    if value.denominator == 1:
        return str(value.numerator)
    # Exact decimal representation when the denominator is a power of (2*5).
    den = value.denominator
    twos = fives = 0
    while den % 2 == 0:
        den //= 2
        twos += 1
    while den % 5 == 0:
        den //= 5
        fives += 1
    if den == 1:
        shift = max(twos, fives)
        scaled = value.numerator * 10**shift // value.denominator
        text = str(abs(scaled)).rjust(shift + 1, "0")
        sign = "-" if scaled < 0 else ""
        return f"{sign}{text[:-shift]}.{text[-shift:]}" if shift else str(scaled)
    return f"{value.numerator}/{value.denominator}"


def expr_to_sexpr(expr: Expr) -> str:
    """Render an expression as S-expression source text."""
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        return expr.name
    if isinstance(expr, Num):
        return format_fraction(expr.value)
    if isinstance(expr, App):
        if expr.op == "neg":
            return f"(- {expr_to_sexpr(expr.args[0])})"
        inner = " ".join(expr_to_sexpr(a) for a in expr.args)
        return f"({expr.op} {inner})" if inner else f"({expr.op})"
    raise TypeError(f"not an Expr: {expr!r}")


def expr_to_infix(expr: Expr) -> str:
    """Render an expression in human-friendly infix notation (for reports)."""
    return _infix(expr, 0)


_BINARY = {"+": (1, "+"), "-": (1, "-"), "*": (2, "*"), "/": (2, "/")}
_CMP = {"<", "<=", ">", ">=", "==", "!="}


def _infix(expr: Expr, parent_prec: int) -> str:
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Const):
        return expr.name
    if isinstance(expr, Num):
        return format_fraction(expr.value)
    assert isinstance(expr, App)
    if expr.op in _BINARY and len(expr.args) == 2:
        prec, sym = _BINARY[expr.op]
        left = _infix(expr.args[0], prec)
        right = _infix(expr.args[1], prec + 1)
        text = f"{left} {sym} {right}"
        return f"({text})" if prec < parent_prec else text
    if expr.op == "neg":
        return f"-{_infix(expr.args[0], 3)}"
    if expr.op in _CMP and len(expr.args) == 2:
        return f"{_infix(expr.args[0], 1)} {expr.op} {_infix(expr.args[1], 1)}"
    if expr.op == "if":
        c, t, e = (_infix(a, 0) for a in expr.args)
        return f"(if {c} then {t} else {e})"
    inner = ", ".join(_infix(a, 0) for a in expr.args)
    return f"{expr.op}({inner})"
