"""FPCore benchmark objects: a named real expression with typed arguments.

An :class:`FPCore` bundles the information Chassis needs about one input
program: the argument names and their floating-point format, an optional
precondition constraining valid inputs, and the real-number body expression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..formats import get_format
from ..ir.types import F64
from .expr import Expr
from .parser import ParseError, expr_from_sexpr, parse_sexpr, parse_sexprs
from .printer import expr_to_sexpr


@dataclass(frozen=True)
class FPCore:
    """One FPCore benchmark: ``(FPCore name? (args ...) :props ... body)``."""

    arguments: tuple[str, ...]
    body: Expr
    name: str = ""
    precision: str = F64
    pre: Expr | None = None
    properties: dict = field(default_factory=dict, compare=False)

    def __post_init__(self):
        # Canonicalize the precision through the format registry so alias
        # spellings (f64, float16, ...) compare and fingerprint uniformly;
        # unknown names raise UnknownFormatError listing what exists.
        fmt = get_format(self.precision)
        if fmt.name != self.precision:
            object.__setattr__(self, "precision", fmt.name)
        unknown = self.body.free_vars() - set(self.arguments)
        if unknown:
            raise ValueError(f"unbound variables in body: {sorted(unknown)}")

    @property
    def arg_types(self) -> dict[str, str]:
        """Mapping of argument name to its floating-point format."""
        return {a: self.precision for a in self.arguments}

    def to_sexpr(self) -> str:
        """Render back to FPCore source text."""
        parts = ["FPCore"]
        if self.name:
            parts.append(_mangle(self.name))
        parts.append("(" + " ".join(self.arguments) + ")")
        parts.append(f":precision {self.precision}")
        if "name" in self.properties:
            parts.append(f':name "{self.properties["name"]}"')
        if self.pre is not None:
            parts.append(f":pre {expr_to_sexpr(self.pre)}")
        parts.append(expr_to_sexpr(self.body))
        return "(" + " ".join(parts) + ")"

    def __str__(self) -> str:
        return self.to_sexpr()


def _mangle(name: str) -> str:
    return name if " " not in name else name.replace(" ", "-")


def parse_fpcore(text: str, known_ops=None) -> FPCore:
    """Parse one FPCore form from source text."""
    return fpcore_from_sexpr(parse_sexpr(text), known_ops)


def parse_fpcores(text: str, known_ops=None) -> list[FPCore]:
    """Parse every FPCore form in a source file."""
    return [fpcore_from_sexpr(sx, known_ops) for sx in parse_sexprs(text)]


def fpcore_from_sexpr(sx, known_ops=None) -> FPCore:
    """Build an :class:`FPCore` from a parsed S-expression list."""
    if not (isinstance(sx, list) and sx and sx[0] == "FPCore"):
        raise ParseError("not an FPCore form")
    rest = sx[1:]
    name = ""
    if rest and isinstance(rest[0], str):
        name = rest[0]
        rest = rest[1:]
    if not rest or not isinstance(rest[0], list):
        raise ParseError("FPCore requires an argument list")
    arg_list = rest[0]
    rest = rest[1:]
    arguments = []
    for arg in arg_list:
        if isinstance(arg, str):
            arguments.append(arg)
        elif isinstance(arg, list) and arg and arg[0] == "!":
            # annotated argument (! :precision binary32 x); keep the name
            arguments.append(arg[-1])
        else:
            raise ParseError(f"bad FPCore argument: {arg!r}")

    properties: dict = {}
    body_sx = None
    i = 0
    while i < len(rest):
        item = rest[i]
        if isinstance(item, str) and item.startswith(":"):
            if i + 1 >= len(rest):
                raise ParseError(f"property {item} missing a value")
            properties[item[1:]] = rest[i + 1]
            i += 2
        else:
            if body_sx is not None:
                raise ParseError("multiple FPCore bodies")
            body_sx = item
            i += 1
    if body_sx is None:
        raise ParseError("FPCore has no body")

    precision = properties.pop("precision", F64)
    pre_sx = properties.pop("pre", None)
    pre = expr_from_sexpr(pre_sx, known_ops) if pre_sx is not None else None
    if "name" in properties and isinstance(properties["name"], str):
        properties["name"] = properties["name"].strip('"')
        if not name:
            name = properties["name"]
    body = expr_from_sexpr(body_sx, known_ops)
    return FPCore(
        arguments=tuple(arguments),
        body=body,
        name=name,
        precision=precision,
        pre=pre,
        properties=properties,
    )
