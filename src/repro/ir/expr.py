"""Immutable expression IR for mixed real/floating-point terms.

The IR is a small S-expression-shaped tree with four node kinds:

* :class:`Var` — a free variable (an FPCore argument),
* :class:`Num` — an exact rational literal (stored as :class:`fractions.Fraction`),
* :class:`Const` — a named mathematical constant (``PI``, ``E``, infinities),
* :class:`App` — an operator applied to argument expressions.

Operator names are plain strings.  *Real* operators use mathematical names
(``+``, ``sqrt``, ``log1p``, …, see :mod:`repro.ir.ops`); *float* operators
use target-operator names such as ``add.f64`` or ``rcp.f32`` and are declared
by target descriptions (:mod:`repro.targets`).  Both kinds coexist in one
tree, which is exactly the "mixed real-float expression" representation the
paper's instruction selection works over.

All nodes are immutable and hashable with precomputed hashes, so they can be
used as dictionary keys in the e-graph hashcons and in memo tables.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Iterator, Sequence, Union

Path = tuple[int, ...]


class Expr:
    """Base class for all IR nodes.  Do not instantiate directly."""

    __slots__ = ("_hash",)

    def children(self) -> tuple["Expr", ...]:
        return ()

    def __hash__(self) -> int:
        return self._hash

    # --- generic tree utilities -------------------------------------------

    def size(self) -> int:
        """Number of nodes in the tree."""
        return 1 + sum(c.size() for c in self.children())

    def depth(self) -> int:
        """Height of the tree (a leaf has depth 1)."""
        kids = self.children()
        return 1 + (max(k.depth() for k in kids) if kids else 0)

    def free_vars(self) -> frozenset[str]:
        """The set of variable names appearing in the expression."""
        out: set[str] = set()
        stack: list[Expr] = [self]
        while stack:
            e = stack.pop()
            if isinstance(e, Var):
                out.add(e.name)
            else:
                stack.extend(e.children())
        return frozenset(out)

    def subexprs(self) -> Iterator[tuple[Path, "Expr"]]:
        """Yield ``(path, node)`` for every node, in pre-order.

        A path is a tuple of child indices from the root; the root's path is
        the empty tuple.
        """
        stack: list[tuple[Path, Expr]] = [((), self)]
        while stack:
            path, e = stack.pop()
            yield path, e
            for i, c in enumerate(e.children()):
                stack.append((path + (i,), c))

    def at(self, path: Path) -> "Expr":
        """Return the subexpression at ``path``."""
        e: Expr = self
        for i in path:
            e = e.children()[i]
        return e

    def replace_at(self, path: Path, replacement: "Expr") -> "Expr":
        """Return a copy of the tree with the node at ``path`` replaced."""
        if not path:
            return replacement
        if not isinstance(self, App):
            raise IndexError(f"path {path} into a leaf expression")
        i, rest = path[0], path[1:]
        kids = list(self.args)
        kids[i] = kids[i].replace_at(rest, replacement)
        return App(self.op, tuple(kids))

    def substitute(self, bindings: dict[str, "Expr"]) -> "Expr":
        """Replace free variables by the expressions in ``bindings``."""
        if isinstance(self, Var):
            return bindings.get(self.name, self)
        if isinstance(self, App):
            new_args = tuple(a.substitute(bindings) for a in self.args)
            if all(n is o for n, o in zip(new_args, self.args)):
                return self
            return App(self.op, new_args)
        return self

    def map_ops(self, fn: Callable[[str], str]) -> "Expr":
        """Rename every operator through ``fn`` (used for lowering passes)."""
        if isinstance(self, App):
            return App(fn(self.op), tuple(a.map_ops(fn) for a in self.args))
        return self

    def operators(self) -> set[str]:
        """The set of operator names used anywhere in the tree."""
        out: set[str] = set()
        stack: list[Expr] = [self]
        while stack:
            e = stack.pop()
            if isinstance(e, App):
                out.add(e.op)
                stack.extend(e.args)
        return out


class Var(Expr):
    """A free variable, referring to an FPCore argument by name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("Var", name)))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Expr nodes are immutable")

    def __eq__(self, other) -> bool:
        return type(other) is Var and other.name == self.name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    __hash__ = Expr.__hash__


class Num(Expr):
    """An exact rational literal.

    Literals are stored exactly so that rewrites and the interval oracle
    never lose information; rounding into a concrete float format happens
    only at evaluation/codegen time.
    """

    __slots__ = ("value",)

    def __init__(self, value: Union[int, Fraction, str]):
        frac = Fraction(value)
        object.__setattr__(self, "value", frac)
        object.__setattr__(self, "_hash", hash(("Num", frac)))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Expr nodes are immutable")

    def __eq__(self, other) -> bool:
        return type(other) is Num and other.value == self.value

    def __repr__(self) -> str:
        return f"Num({self.value})"

    __hash__ = Expr.__hash__


#: Names of supported mathematical constants.
CONSTANTS = ("PI", "E", "INFINITY", "NAN", "TRUE", "FALSE")


class Const(Expr):
    """A named constant: PI, E, INFINITY, NAN, TRUE or FALSE."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        if name not in CONSTANTS:
            raise ValueError(f"unknown constant {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "_hash", hash(("Const", name)))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Expr nodes are immutable")

    def __eq__(self, other) -> bool:
        return type(other) is Const and other.name == self.name

    def __repr__(self) -> str:
        return f"Const({self.name!r})"

    __hash__ = Expr.__hash__


class App(Expr):
    """An operator application ``op(arg0, arg1, ...)``."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, args: Sequence[Expr] = ()):
        args = tuple(args)
        object.__setattr__(self, "op", op)
        object.__setattr__(self, "args", args)
        object.__setattr__(self, "_hash", hash(("App", op, args)))

    def __setattr__(self, *a):  # pragma: no cover - immutability guard
        raise AttributeError("Expr nodes are immutable")

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def __eq__(self, other) -> bool:
        return (
            type(other) is App
            and other._hash == self._hash
            and other.op == self.op
            and other.args == self.args
        )

    def __repr__(self) -> str:
        return f"App({self.op!r}, {list(self.args)!r})"

    __hash__ = Expr.__hash__


# --- convenience constructors ------------------------------------------------

ZERO = Num(0)
ONE = Num(1)
TWO = Num(2)


def add(a: Expr, b: Expr) -> Expr:
    return App("+", (a, b))


def sub(a: Expr, b: Expr) -> Expr:
    return App("-", (a, b))


def mul(a: Expr, b: Expr) -> Expr:
    return App("*", (a, b))


def div(a: Expr, b: Expr) -> Expr:
    return App("/", (a, b))


def neg(a: Expr) -> Expr:
    return App("neg", (a,))


def if_expr(cond: Expr, then: Expr, els: Expr) -> Expr:
    return App("if", (cond, then, els))
