"""Floating-point and real types used throughout the compiler IR.

Chassis works over *mixed* real/float expressions (paper section 5.1).  Every
operator in the IR has a type drawn from this module: the mathematical
``REAL`` type for pure real-number operators, and concrete float formats
for target operators.  Float types are *names into the format registry*
(:mod:`repro.formats`): ``binary32``/``binary64`` are the IEEE built-ins,
and any registered format (``fp16``, ``bf16``, ``REPRO_FORMATS`` customs)
is equally a valid operator type.  The legacy ``TYPE_*`` dicts are kept
for back-compat but cover only the two IEEE formats — new code should
resolve ``get_format(ty)`` and read the descriptor.
"""

from __future__ import annotations

from ..formats import get_format, is_known_format
from ..formats.registry import UnknownFormatError

REAL = "real"
F32 = "binary32"
F64 = "binary64"
BOOL = "bool"

#: The two IEEE formats every built-in target supports (legacy constant;
#: the full set lives in the format registry).
FLOAT_TYPES = (F32, F64)

#: Number of bits in the encoding of each float format.  Used as the maximum
#: number of "bits of error" assignable to a result in that format (a result
#: can never be more than 2^bits ULPs away from the truth).
TYPE_BITS = {F32: 32, F64: 64}

#: Significand precision (including the hidden bit) of each format.
TYPE_PRECISION = {F32: 24, F64: 53}

#: Exponent range (emin, emax) for normalized values of each format.
TYPE_EXPONENT_RANGE = {F32: (-126, 127), F64: (-1022, 1023)}


def is_float_type(ty: str) -> bool:
    """Return True when ``ty`` names a registered float format."""
    return ty not in (REAL, BOOL) and is_known_format(ty)


def check_float_type(ty: str) -> str:
    """Validate that ``ty`` is a float format, returning it unchanged."""
    if not is_float_type(ty):
        raise UnknownFormatError(
            ty, tuple(fmt.name for fmt in _registered())
        )
    return ty


def _registered():
    from ..formats import registered_formats

    return registered_formats()


def float_format(ty: str):
    """Resolve a type name to its :class:`~repro.formats.FloatFormat`."""
    return get_format(ty)
