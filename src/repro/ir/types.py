"""Floating-point and real types used throughout the compiler IR.

Chassis works over *mixed* real/float expressions (paper section 5.1).  Every
operator in the IR has a type drawn from this module: the mathematical
``REAL`` type for pure real-number operators, and concrete IEEE-754 formats
(``binary32``/``binary64``) for target operators.
"""

from __future__ import annotations

REAL = "real"
F32 = "binary32"
F64 = "binary64"
BOOL = "bool"

#: All floating-point formats supported by built-in targets.
FLOAT_TYPES = (F32, F64)

#: Number of bits in the encoding of each float format.  Used as the maximum
#: number of "bits of error" assignable to a result in that format (a result
#: can never be more than 2^bits ULPs away from the truth).
TYPE_BITS = {F32: 32, F64: 64}

#: Significand precision (including the hidden bit) of each format.
TYPE_PRECISION = {F32: 24, F64: 53}

#: Exponent range (emin, emax) for normalized values of each format.
TYPE_EXPONENT_RANGE = {F32: (-126, 127), F64: (-1022, 1023)}


def is_float_type(ty: str) -> bool:
    """Return True when ``ty`` names a concrete IEEE-754 format."""
    return ty in TYPE_BITS


def check_float_type(ty: str) -> str:
    """Validate that ``ty`` is a float format, returning it unchanged."""
    if not is_float_type(ty):
        raise ValueError(f"not a floating-point type: {ty!r}")
    return ty
