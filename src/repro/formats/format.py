"""First-class float-format descriptors.

A :class:`FloatFormat` carries everything the pipeline needs to know about
one number format: the encoding geometry (total bits, significand
precision, exponent range), the ordinal codec that maps floats onto
consecutive integers (so ULP distance is an integer subtraction and
ordinal-uniform sampling is an integer draw), the round-to-format
operation, and the optional per-backend metadata (numpy storage dtype, C
type and literal suffix) that decides which exec backends can carry the
format.

Values of every format are represented throughout the system as Python
floats that are exactly representable in the format (the same convention
binary32 has always used).  That bounds the formats this module can
describe to ``precision <= 53`` and an exponent range inside binary64's —
which covers every IEEE interchange format up to binary64, bfloat16, and
the TensorFloat-style truncated formats, but not binary128 or posits
(those need a software value representation; see ROADMAP).

Rounding is the **compound** rounding the whole oracle stack agrees on:
first round the significand to ``precision`` bits half-even at unbounded
exponent (the mpmath ladder's ``mp.workprec`` re-round, the numpy
backend's ``_round_sig``), then apply the storage cast that carries
overflow and subnormal semantics.  Defining every layer against the same
compound guarantees the fast path stays bit-identical with the ladder
for every registered format.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

__all__ = ["FloatFormat"]

_U64 = 0xFFFFFFFFFFFFFFFF
_ABS64 = 0x7FFFFFFFFFFFFFFF
_ABS32 = 0x7FFFFFFF


def _round_sig_scalar(x: float, bits: int) -> float:
    """Round to a ``bits``-bit significand, half-even, unbounded exponent.

    The scalar twin of the numpy backend's ``_round_sig``: ``frexp`` →
    scale → round-half-even → ``ldexp``, all exact in binary64 for
    ``bits <= 53``.
    """
    if x == 0.0 or not math.isfinite(x):
        return x
    mantissa, exponent = math.frexp(x)
    return math.ldexp(float(round(math.ldexp(mantissa, bits))), exponent - bits)


def _bf16_clamp(x: float) -> float:
    """bfloat16 overflow/subnormal semantics via the float32 encoding.

    bfloat16 is the top 16 bits of the binary32 encoding, so rounding a
    binary32 value half-even on bit 16 *is* the bfloat16 storage cast —
    including subnormals, signed zeros, and overflow-to-infinity (a
    mantissa carry into the exponent field is exactly the IEEE overflow
    rule).  NaN short-circuits so the carry cannot turn it into inf.
    """
    if math.isnan(x):
        return math.nan
    with np.errstate(over="ignore"):
        single = np.float32(x)
    (bits,) = struct.unpack("<I", struct.pack("<f", single))
    bits = (bits + 0x7FFF + ((bits >> 16) & 1)) & 0xFFFF0000
    (value,) = struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))
    return float(value)


@dataclass(frozen=True)
class FloatFormat:
    """Immutable descriptor of one floating-point number format."""

    #: Canonical name, the string stored in ``FPCore.precision`` and used
    #: as the operator-table key (``binary64``, ``fp16``, ...).
    name: str
    #: Total encoding width in bits; also the worst-case bits-of-error
    #: (a result is never more than ``2**bits`` ULPs from the truth).
    bits: int
    #: Significand precision including the hidden bit.
    precision: int
    #: Exponent range (of the value, not the biased field) for normals.
    emin: int
    emax: int
    #: Operator-name suffix: operators compute in this format as
    #: ``{base}.{suffix}`` (``add.f64``, ``mul.bf16``).
    suffix: str
    #: Alternate spellings accepted by the registry (``f64``, ``double``).
    aliases: tuple[str, ...] = ()
    #: Ordinal/rounding strategy: one of ``binary64``, ``binary32``,
    #: ``binary16``, ``bfloat16``, or ``generic`` (pure-arithmetic codec
    #: for registry-defined custom formats).
    codec: str = "generic"
    #: C scalar type, or None when no portable C type exists (the C exec
    #: backend then stands down and the Python backend carries the format).
    c_type: str | None = None
    #: Suffix appended to C numeric literals ("f" for float).
    c_literal_suffix: str = ""
    #: numpy *storage* dtype name when one exists ("float16"); bfloat16
    #: has none — its vectorized cast goes through the float32 encoding.
    numpy_dtype: str | None = None
    #: Free-form notes surfaced in ``repro targets --json``.
    description: str = field(default="", compare=False)

    def __post_init__(self):
        if not (2 <= self.precision <= 53):
            raise ValueError(
                f"format {self.name!r}: precision {self.precision} outside "
                "the representable range [2, 53] (values are carried as "
                "exactly-representable binary64 floats)"
            )
        if self.bits - self.precision < 2:
            raise ValueError(
                f"format {self.name!r}: needs >= 2 exponent bits "
                f"(bits={self.bits}, precision={self.precision})"
            )
        if self.emin >= 0 or self.emax <= 0 or self.emin < -1022 or self.emax > 1023:
            raise ValueError(
                f"format {self.name!r}: exponent range ({self.emin}, "
                f"{self.emax}) must straddle 0 inside binary64's"
            )
        # IEEE interchange geometry ties the exponent *range* to the field
        # width: normals use field values 1..2^ebits-2, so emax - emin must
        # equal 2^ebits - 3 or the ordinal codec and the range disagree.
        if self.emax - self.emin != (1 << self.ebits) - 3:
            raise ValueError(
                f"format {self.name!r}: exponent range ({self.emin}, "
                f"{self.emax}) inconsistent with {self.ebits} exponent bits "
                f"(needs emax - emin == {(1 << self.ebits) - 3})"
            )

    # --- geometry ---------------------------------------------------------------

    @property
    def ebits(self) -> int:
        """Exponent field width."""
        return self.bits - self.precision

    @cached_property
    def max_ordinal(self) -> int:
        """Ordinal of the largest finite value (infinity is one past it)."""
        return (((1 << self.ebits) - 2) << (self.precision - 1)) | (
            (1 << (self.precision - 1)) - 1
        )

    @cached_property
    def max_value(self) -> float:
        """Largest finite value."""
        return math.ldexp(2.0 - math.ldexp(1.0, 1 - self.precision), self.emax)

    @cached_property
    def min_subnormal(self) -> float:
        """Smallest positive (subnormal) value."""
        return math.ldexp(1.0, self.emin - self.precision + 1)

    # --- rounding ---------------------------------------------------------------

    def storage_clamp(self, x: float) -> float:
        """Overflow/subnormal semantics for an already-``precision``-bit value.

        The second half of the compound rounding: the input is assumed to
        carry at most ``precision`` significand bits (the ladder's
        ``workprec`` re-round or ``_round_sig`` guarantees it), so this
        step only decides overflow-to-infinity and subnormal re-rounding.
        """
        codec = self.codec
        if codec == "binary64":
            return float(x)
        if codec == "binary32":
            with np.errstate(over="ignore"):
                return float(np.float32(x))
        if codec == "binary16":
            with np.errstate(over="ignore"):
                return float(np.float16(x))
        if codec == "bfloat16":
            return _bf16_clamp(x)
        return self._generic_clamp(float(x))

    def round_float(self, x: float) -> float:
        """Round an arbitrary binary64 value into this format (compound)."""
        x = float(x)
        if self.codec == "binary64":
            return x
        if not math.isfinite(x):
            return x
        return self.storage_clamp(_round_sig_scalar(x, self.precision))

    def _generic_clamp(self, x: float) -> float:
        if x == 0.0 or not math.isfinite(x):
            return x
        exp = math.frexp(x)[1] - 1
        if exp > self.emax:
            return math.copysign(math.inf, x)
        if exp < self.emin:
            scale = self.emin - self.precision + 1
            quantum = round(math.ldexp(x, -scale))
            return math.copysign(
                math.ldexp(float(abs(quantum)), scale), x
            )
        return x

    # --- ordinal codec ----------------------------------------------------------

    def to_ordinal(self, x: float) -> int:
        """Map a value to an integer preserving numeric order.

        Non-format inputs are first rounded into the format (as the
        historical binary32 codec did via its ``np.float32`` cast).
        """
        codec = self.codec
        if codec == "binary64":
            (bits,) = struct.unpack("<q", struct.pack("<d", x))
            return bits if bits >= 0 else -(bits & _ABS64)
        if codec == "binary32":
            (bits,) = struct.unpack("<i", struct.pack("<f", np.float32(x)))
            return bits if bits >= 0 else -(bits & _ABS32)
        if codec == "binary16":
            bits = int(np.float16(self.round_float(x)).view(np.uint16))
            magnitude = bits & 0x7FFF
            return -magnitude if bits & 0x8000 else magnitude
        if codec == "bfloat16":
            (word,) = struct.unpack(
                "<I", struct.pack("<f", np.float32(self.round_float(x)))
            )
            bits = word >> 16
            magnitude = bits & 0x7FFF
            return -magnitude if bits & 0x8000 else magnitude
        return self._generic_to_ordinal(x)

    def from_ordinal(self, n: int) -> float:
        """Inverse of :meth:`to_ordinal`."""
        codec = self.codec
        if codec == "binary64":
            bits = n if n >= 0 else (-n) | (1 << 63)
            (value,) = struct.unpack("<d", struct.pack("<Q", bits & _U64))
            return value
        if codec == "binary32":
            bits = n if n >= 0 else (-n) | (1 << 31)
            (value,) = struct.unpack("<f", struct.pack("<I", bits & 0xFFFFFFFF))
            return float(value)
        if codec == "binary16":
            bits = (n if n >= 0 else (-n) | 0x8000) & 0xFFFF
            return float(np.uint16(bits).view(np.float16))
        if codec == "bfloat16":
            bits = (n if n >= 0 else (-n) | 0x8000) & 0xFFFF
            (value,) = struct.unpack("<f", struct.pack("<I", bits << 16))
            return float(value)
        return self._generic_from_ordinal(n)

    def _generic_to_ordinal(self, x: float) -> int:
        x = self.round_float(x)
        if math.isnan(x):
            # Some NaN encoding: one past infinity, stable and symmetric.
            return self.max_ordinal + 2
        sign = -1 if math.copysign(1.0, x) < 0 else 1
        magnitude = abs(x)
        if magnitude == 0.0:
            return 0
        if math.isinf(magnitude):
            return sign * (self.max_ordinal + 1)
        exp = math.frexp(magnitude)[1] - 1
        if exp < self.emin:
            scale = self.emin - self.precision + 1
            return sign * round(math.ldexp(magnitude, -scale))
        mantissa = math.frexp(magnitude)[0]
        frac = int(math.ldexp(mantissa, self.precision)) - (
            1 << (self.precision - 1)
        )
        return sign * (
            ((exp - self.emin + 1) << (self.precision - 1)) + frac
        )

    def _generic_from_ordinal(self, n: int) -> float:
        sign = -1.0 if n < 0 else 1.0
        magnitude = abs(n)
        p1 = self.precision - 1
        expfield = magnitude >> p1
        frac = magnitude & ((1 << p1) - 1)
        if expfield == 0:
            value = math.ldexp(float(frac), self.emin - p1)
        elif expfield >= (1 << self.ebits) - 1:
            value = math.inf
        else:
            value = math.ldexp(float((1 << p1) + frac), expfield - 1 + self.emin - p1)
        return math.copysign(value, sign)

    # --- numpy vectorized storage cast ------------------------------------------

    def numpy_storage_cast(self, values: "np.ndarray") -> "np.ndarray | None":
        """Vectorized :meth:`storage_clamp` for the oracle fast path.

        Returns None when the format has no vectorized cast (generic
        custom formats) — the numpy backend then stands down and every
        point takes the mpmath ladder.
        """
        codec = self.codec
        # Out-of-range values legitimately cast to inf here (that IS the
        # storage overflow semantics); numpy's warning would be noise.
        with np.errstate(over="ignore"):
            if codec == "binary64":
                return values.astype(np.float64)
            if codec == "binary32":
                return values.astype(np.float32)
            if codec == "binary16":
                return values.astype(np.float16)
            if codec == "bfloat16":
                singles = values.astype(np.float32)
                bits = singles.view(np.uint32)
                rounded = (bits + np.uint32(0x7FFF) + ((bits >> np.uint32(16)) & np.uint32(1))) & np.uint32(0xFFFF0000)
                clamped = rounded.view(np.float32)
                return np.where(np.isnan(singles), singles, clamped)
        return None
