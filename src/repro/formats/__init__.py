"""First-class number formats: descriptors, registry, ordinal codecs.

The :class:`FloatFormat` descriptor replaces the historical
binary32/binary64 string dichotomy: every layer that needs format
geometry (sampling, ULP metrics, oracle rounding, emission, execution)
resolves ``FPCore.precision`` through :func:`get_format` and reads the
descriptor instead of branching on magic strings.  See
``formats/format.py`` for the value-representation contract and
``formats/registry.py`` for registration (including the ``REPRO_FORMATS``
environment knob).
"""

from .format import FloatFormat
from .registry import (
    UnknownFormatError,
    format_names,
    get_format,
    is_known_format,
    register_format,
    registered_formats,
)

__all__ = [
    "FloatFormat",
    "UnknownFormatError",
    "format_names",
    "get_format",
    "is_known_format",
    "register_format",
    "registered_formats",
]
