"""The process-wide float-format registry.

Formats are looked up by canonical name or alias via :func:`get_format`;
new formats arrive either programmatically (:func:`register_format`) or
declaratively through the ``REPRO_FORMATS`` environment variable, a
comma-separated list of ``name=bits:precision[:emin:emax]`` specs::

    REPRO_FORMATS="e5m2=8:3,tf32=19:11:-126:127"

Env-registered formats get the pure-arithmetic generic codec; the
exponent range defaults to the IEEE-style split for the format's
exponent-field width.  The four built-ins (binary64, binary32, fp16,
bf16) are always present.
"""

from __future__ import annotations

import os
import threading

from .format import FloatFormat

__all__ = [
    "UnknownFormatError",
    "get_format",
    "register_format",
    "registered_formats",
    "format_names",
    "is_known_format",
]


class UnknownFormatError(ValueError):
    """A format name that no registered format answers to."""

    def __init__(self, name: str, known: tuple[str, ...]):
        self.format_name = name
        self.known = known
        super().__init__(
            f"unknown number format {name!r}; registered formats: "
            + ", ".join(known)
        )


_LOCK = threading.Lock()
_FORMATS: dict[str, FloatFormat] = {}
_NAMES: dict[str, str] = {}  # every accepted spelling -> canonical name


def _install(fmt: FloatFormat, *, replace: bool = False) -> FloatFormat:
    with _LOCK:
        for spelling in (fmt.name, *fmt.aliases):
            canonical = _NAMES.get(spelling)
            if canonical is not None and canonical != fmt.name and not replace:
                raise ValueError(
                    f"format name {spelling!r} already registered "
                    f"(for {canonical!r})"
                )
        if fmt.name in _FORMATS and not replace:
            raise ValueError(f"format {fmt.name!r} already registered")
        _FORMATS[fmt.name] = fmt
        for spelling in (fmt.name, *fmt.aliases):
            _NAMES[spelling] = fmt.name
    return fmt


BINARY64 = _install(FloatFormat(
    name="binary64",
    bits=64,
    precision=53,
    emin=-1022,
    emax=1023,
    suffix="f64",
    aliases=("f64", "float64", "double"),
    codec="binary64",
    c_type="double",
    c_literal_suffix="",
    numpy_dtype="float64",
    description="IEEE 754 double precision",
))

BINARY32 = _install(FloatFormat(
    name="binary32",
    bits=32,
    precision=24,
    emin=-126,
    emax=127,
    suffix="f32",
    aliases=("f32", "float32", "single"),
    codec="binary32",
    c_type="float",
    c_literal_suffix="f",
    numpy_dtype="float32",
    description="IEEE 754 single precision",
))

FP16 = _install(FloatFormat(
    name="fp16",
    bits=16,
    precision=11,
    emin=-14,
    emax=15,
    suffix="fp16",
    aliases=("binary16", "f16", "float16", "half"),
    codec="binary16",
    c_type=None,
    numpy_dtype="float16",
    description="IEEE 754 half precision (numpy-backed; Python exec backend)",
))

BF16 = _install(FloatFormat(
    name="bf16",
    bits=16,
    precision=8,
    emin=-126,
    emax=127,
    suffix="bf16",
    aliases=("bfloat16",),
    codec="bfloat16",
    c_type=None,
    numpy_dtype=None,
    description="bfloat16: truncated binary32 (numpy-encoded; Python exec backend)",
))


def register_format(fmt: FloatFormat, *, replace: bool = False) -> FloatFormat:
    """Register a custom format; returns it for chaining."""
    return _install(fmt, replace=replace)


def get_format(name) -> FloatFormat:
    """Resolve a format name (or pass a FloatFormat through).

    Raises :class:`UnknownFormatError` — a ``ValueError`` whose message
    lists the registered formats — for unknown names.
    """
    if isinstance(name, FloatFormat):
        return name
    with _LOCK:
        canonical = _NAMES.get(name)
        if canonical is not None:
            return _FORMATS[canonical]
        known = tuple(sorted(_FORMATS))
    raise UnknownFormatError(str(name), known)


def is_known_format(name) -> bool:
    """True when ``name`` resolves to a registered format."""
    if isinstance(name, FloatFormat):
        return True
    with _LOCK:
        return name in _NAMES


def registered_formats() -> tuple[FloatFormat, ...]:
    """All registered formats, sorted by canonical name."""
    with _LOCK:
        return tuple(fmt for _, fmt in sorted(_FORMATS.items()))


def format_names() -> tuple[str, ...]:
    """Canonical names of all registered formats, sorted."""
    with _LOCK:
        return tuple(sorted(_FORMATS))


def _ieee_exponent_range(ebits: int) -> tuple[int, int]:
    bias = (1 << (ebits - 1)) - 1
    return 1 - bias, bias


def _register_env_formats(spec: str) -> None:
    """Parse a ``REPRO_FORMATS`` spec; malformed entries raise ValueError."""
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        name, _, geometry = entry.partition("=")
        parts = geometry.split(":")
        if not name or len(parts) not in (2, 4):
            raise ValueError(
                f"bad REPRO_FORMATS entry {entry!r}: expected "
                "name=bits:precision[:emin:emax]"
            )
        bits, precision = int(parts[0]), int(parts[1])
        if len(parts) == 4:
            emin, emax = int(parts[2]), int(parts[3])
        else:
            emin, emax = _ieee_exponent_range(bits - precision)
        register_format(FloatFormat(
            name=name,
            bits=bits,
            precision=precision,
            emin=emin,
            emax=emax,
            suffix=name,
            codec="generic",
            description=f"custom format from REPRO_FORMATS ({entry})",
        ), replace=True)


_env_spec = os.environ.get("REPRO_FORMATS", "")
if _env_spec:
    _register_env_formats(_env_spec)
