"""repro — a reproduction of Chassis, the target-aware numerical compiler.

Chassis (ASPLOS 2025) compiles real-number expressions into Pareto frontiers
of floating-point programs specialized to a *target description*: a list of
operators, each relating a floating-point instruction to the real expression
it approximates, with cost and accuracy information.

Quickstart (the curated surface lives in :mod:`repro.api`)::

    from repro.api import ChassisSession

    with ChassisSession() as session:
        result = session.compile(
            "(FPCore (x) :pre (< 0.001 x 0.999) "
            "(* 1/2 (log (/ (+ 1 x) (- 1 x)))))",
            "fdlibm",
        )
    for candidate in result.frontier:
        print(candidate.cost, candidate.error, candidate.program)

The historical one-shot ``compile_fpcore`` remains importable as a
deprecated shim.  See DESIGN.md for the system inventory and
EXPERIMENTS.md for the paper-vs-measured record of every reproduced table
and figure.
"""

from .accuracy import SampleConfig, bits_of_error, sample_core, score_program
from .core import (
    Candidate,
    CompileConfig,
    CompilePipeline,
    CompileResult,
    ParetoFrontier,
    compile_core,
    compile_fpcore,
    instruction_select,
    render,
    transcribe,
)
from .ir import FPCore, parse_expr, parse_fpcore, parse_fpcores
from .perf import PerfSimulator
from .session import ChassisSession, JobHandle
from .targets import Target, all_targets, get_target, opdef

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "FPCore",
    "parse_fpcore",
    "parse_fpcores",
    "parse_expr",
    "Target",
    "get_target",
    "all_targets",
    "opdef",
    "ChassisSession",
    "JobHandle",
    "compile_core",
    "compile_fpcore",
    "CompileConfig",
    "CompilePipeline",
    "CompileResult",
    "Candidate",
    "ParetoFrontier",
    "instruction_select",
    "transcribe",
    "render",
    "sample_core",
    "SampleConfig",
    "score_program",
    "bits_of_error",
    "PerfSimulator",
]
