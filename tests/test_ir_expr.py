"""Unit tests for the expression IR."""

from fractions import Fraction

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir import App, Const, Num, Var, add, div, mul, neg, parse_expr, sub


class TestConstruction:
    def test_var(self):
        v = Var("x")
        assert v.name == "x"
        assert v == Var("x")
        assert v != Var("y")

    def test_num_exact(self):
        n = Num("0.1")
        assert n.value == Fraction(1, 10)  # exact, not the double 0.1

    def test_num_from_int(self):
        assert Num(3).value == Fraction(3)

    def test_const_validates(self):
        assert Const("PI").name == "PI"
        with pytest.raises(ValueError):
            Const("TAU")

    def test_app(self):
        e = App("+", (Var("x"), Num(1)))
        assert e.op == "+"
        assert e.args == (Var("x"), Num(1))

    def test_immutability(self):
        v = Var("x")
        with pytest.raises(AttributeError):
            v.name = "y"
        e = App("+", (v, v))
        with pytest.raises(AttributeError):
            e.op = "-"

    def test_equality_and_hash(self):
        a = add(Var("x"), Num(1))
        b = add(Var("x"), Num(1))
        assert a == b
        assert hash(a) == hash(b)
        assert a != sub(Var("x"), Num(1))


class TestTreeUtilities:
    def setup_method(self):
        self.expr = parse_expr("(- (sqrt (+ x 1)) (sqrt x))")

    def test_size(self):
        assert self.expr.size() == 7

    def test_depth(self):
        assert self.expr.depth() == 4

    def test_free_vars(self):
        assert self.expr.free_vars() == {"x"}
        assert parse_expr("(+ a (* b c))").free_vars() == {"a", "b", "c"}

    def test_subexprs_covers_all_nodes(self):
        nodes = dict(self.expr.subexprs())
        assert nodes[()] == self.expr
        assert len(nodes) == 7

    def test_at(self):
        assert self.expr.at((0,)) == parse_expr("(sqrt (+ x 1))")
        assert self.expr.at((0, 0, 1)) == Num(1)

    def test_at_root(self):
        assert self.expr.at(()) is self.expr

    def test_replace_at(self):
        replaced = self.expr.replace_at((1,), Var("y"))
        assert replaced == parse_expr("(- (sqrt (+ x 1)) y)")
        # original untouched
        assert self.expr.at((1,)) == parse_expr("(sqrt x)")

    def test_replace_at_root(self):
        assert self.expr.replace_at((), Num(0)) == Num(0)

    def test_replace_at_leaf_path_raises(self):
        with pytest.raises(IndexError):
            Var("x").replace_at((0,), Num(1))

    def test_substitute(self):
        e = parse_expr("(+ x (* x y))")
        out = e.substitute({"x": Num(2)})
        assert out == parse_expr("(+ 2 (* 2 y))")

    def test_substitute_identity_shares(self):
        e = parse_expr("(+ x y)")
        assert e.substitute({}) is e

    def test_operators(self):
        assert self.expr.operators() == {"-", "sqrt", "+"}

    def test_map_ops(self):
        renamed = parse_expr("(+ x y)").map_ops(lambda op: op + ".f64")
        assert renamed == App("+.f64", (Var("x"), Var("y")))


class TestHelpers:
    def test_constructors(self):
        x, y = Var("x"), Var("y")
        assert add(x, y).op == "+"
        assert sub(x, y).op == "-"
        assert mul(x, y).op == "*"
        assert div(x, y).op == "/"
        assert neg(x).op == "neg"


@given(st.integers(min_value=-10**12, max_value=10**12), st.integers(min_value=1, max_value=10**6))
def test_num_fraction_roundtrip(numerator, denominator):
    n = Num(Fraction(numerator, denominator))
    assert n == Num(Fraction(numerator, denominator))
    assert n.value == Fraction(numerator, denominator)


@given(st.recursive(
    st.sampled_from([Var("x"), Var("y"), Num(1), Num(Fraction(1, 3))]),
    lambda children: st.builds(lambda a, b: App("+", (a, b)), children, children),
    max_leaves=12,
))
def test_size_matches_subexpr_count(expr):
    assert expr.size() == sum(1 for _ in expr.subexprs())
