"""Tests for the batch compilation service: cache, scheduler, serialization."""

import json

import pytest

from repro.accuracy import SampleConfig
from repro.benchsuite import core_named
from repro.cli import main
from repro.core import CompileConfig
from repro.core.chassis import compile_fpcore
from repro.service import (
    CompileCache,
    compile_many,
    core_fingerprint,
    job_fingerprint,
    result_from_dict,
    result_to_dict,
    target_fingerprint,
)
from repro.targets import get_target

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=12)
SAMPLES = SampleConfig(n_train=12, n_test=12)


@pytest.fixture(scope="module")
def sqrt_sub():
    return core_named("sqrt-sub")


@pytest.fixture(scope="module")
def compiled(sqrt_sub, c99):
    return compile_fpcore(sqrt_sub, c99, FAST, SAMPLES)


class TestSerialization:
    def test_round_trip_scores_identical(self, compiled, c99):
        data = result_to_dict(compiled)
        rebuilt = result_from_dict(json.loads(json.dumps(data)), c99)
        original = [(c.cost, c.error, c.program) for c in compiled.frontier]
        restored = [(c.cost, c.error, c.program) for c in rebuilt.frontier]
        assert original == restored

    def test_round_trip_input_and_samples(self, compiled, c99):
        rebuilt = result_from_dict(result_to_dict(compiled), c99)
        assert rebuilt.input_candidate.program == compiled.input_candidate.program
        assert rebuilt.input_candidate.error == compiled.input_candidate.error
        assert rebuilt.samples.test == compiled.samples.test
        assert rebuilt.samples.test_exact == compiled.samples.test_exact

    def test_round_trip_core(self, compiled, c99):
        rebuilt = result_from_dict(result_to_dict(compiled), c99)
        assert rebuilt.core.body == compiled.core.body
        assert rebuilt.core.pre == compiled.core.pre
        assert rebuilt.core.arguments == compiled.core.arguments

    def test_wrong_target_rejected(self, compiled, arith):
        with pytest.raises(ValueError):
            result_from_dict(result_to_dict(compiled), arith)

    def test_awkward_names_survive_transport(self):
        """Names with spaces/parens (common in Herbie corpora) round-trip."""
        from repro.ir import parse_fpcore
        from repro.service.results import core_from_source, core_to_source

        for name in ("sin(x) / x", "a b"):
            core = parse_fpcore(
                f'(FPCore (x) :name "{name}" :pre (< 0.1 x 1) (+ x 1))'
            )
            assert core.name == name
            rebuilt = core_from_source(core_to_source(core))
            assert rebuilt.body == core.body
            assert rebuilt.name == name
            assert core_fingerprint(rebuilt) == core_fingerprint(core)


class TestFingerprints:
    def test_stable_for_same_inputs(self, sqrt_sub, c99):
        a = job_fingerprint(sqrt_sub, c99, FAST, SAMPLES)
        b = job_fingerprint(sqrt_sub, c99, FAST, SAMPLES)
        assert a == b

    def test_changes_with_config(self, sqrt_sub, c99):
        other = CompileConfig(iterations=3, localize_points=6, max_variants=12)
        assert job_fingerprint(sqrt_sub, c99, FAST, SAMPLES) != job_fingerprint(
            sqrt_sub, c99, other, SAMPLES
        )

    def test_changes_with_sample_seed(self, sqrt_sub, c99):
        other = SampleConfig(n_train=12, n_test=12, seed=99)
        assert job_fingerprint(sqrt_sub, c99, FAST, SAMPLES) != job_fingerprint(
            sqrt_sub, c99, FAST, other
        )

    def test_changes_with_target(self, sqrt_sub, c99, arith):
        assert job_fingerprint(sqrt_sub, c99, FAST, SAMPLES) != job_fingerprint(
            sqrt_sub, arith, FAST, SAMPLES
        )

    def test_target_cost_change_invalidates(self, c99):
        retuned = c99.extend(c99.name, override_costs={"add.f64": 999.0})
        assert target_fingerprint(c99) != target_fingerprint(retuned)

    def test_anonymous_cores_do_not_collide(self):
        from repro.ir import parse_fpcore

        a = parse_fpcore("(FPCore (x) (+ x 1))")
        b = parse_fpcore("(FPCore (x) (+ x 2))")
        assert a.name == b.name == ""
        assert core_fingerprint(a) != core_fingerprint(b)


class TestCompileCache:
    def test_store_load_round_trip(self, tmp_path, compiled):
        cache = CompileCache(tmp_path)
        key = cache.store_result(compiled, FAST, SAMPLES)
        loaded = cache.load_result(compiled.core, compiled.target, FAST, SAMPLES)
        assert loaded is not None
        assert [(c.cost, c.error) for c in loaded.frontier] == [
            (c.cost, c.error) for c in compiled.frontier
        ]
        assert cache.stats.hits == 1 and cache.stats.stores == 1
        assert len(key) == 64

    def test_miss_on_different_config(self, tmp_path, compiled):
        cache = CompileCache(tmp_path)
        cache.store_result(compiled, FAST, SAMPLES)
        other = CompileConfig(iterations=5)
        assert cache.load_result(compiled.core, compiled.target, other, SAMPLES) is None
        assert cache.stats.misses == 1

    def test_miss_on_different_target(self, tmp_path, compiled, arith):
        cache = CompileCache(tmp_path)
        cache.store_result(compiled, FAST, SAMPLES)
        assert cache.load_result(compiled.core, arith, FAST, SAMPLES) is None

    def test_corrupt_entry_invalidated(self, tmp_path, compiled):
        cache = CompileCache(tmp_path)
        key = cache.store_result(compiled, FAST, SAMPLES)
        path = cache._path(key)
        path.write_text("{not json")
        assert cache.get(key) is None
        assert cache.stats.invalidations == 1
        assert not path.exists()

    def test_stale_schema_invalidated(self, tmp_path, compiled):
        cache = CompileCache(tmp_path)
        key = cache.store_result(compiled, FAST, SAMPLES)
        payload = json.loads(cache._path(key).read_text())
        payload["schema"] = -1
        cache._path(key).write_text(json.dumps(payload))
        assert cache.get(key) is None
        assert cache.stats.invalidations == 1

    def test_clear(self, tmp_path, compiled):
        cache = CompileCache(tmp_path)
        cache.store_result(compiled, FAST, SAMPLES)
        assert len(cache) == 1
        assert cache.clear() == 1
        assert len(cache) == 0


def _payload_no_elapsed(outcome):
    data = dict(outcome.payload)
    data.pop("elapsed", None)
    return json.dumps(data, sort_keys=True)


class TestCompileMany:
    SPECS_TARGETS = ("c99", "arith")

    def _specs(self):
        cores = [core_named("sqrt-sub"), core_named("logistic")]
        return [(c, t) for t in self.SPECS_TARGETS for c in cores]

    def test_serial_parallel_identical(self):
        """--jobs 1 and --jobs 4 must produce identical results."""
        serial = compile_many(self._specs(), config=FAST, sample_config=SAMPLES, jobs=1)
        parallel = compile_many(
            self._specs(), config=FAST, sample_config=SAMPLES, jobs=4
        )
        assert [o.status for o in serial] == [o.status for o in parallel]
        for a, b in zip(serial, parallel):
            assert _payload_no_elapsed(a) == _payload_no_elapsed(b)

    def test_warm_cache_all_hits(self, tmp_path):
        cache = CompileCache(tmp_path)
        cold = compile_many(
            self._specs(), config=FAST, sample_config=SAMPLES, jobs=2, cache=cache
        )
        assert all(o.ok and not o.cached for o in cold)
        assert cache.stats.stores == len(cold)
        warm = compile_many(
            self._specs(), config=FAST, sample_config=SAMPLES, jobs=2, cache=cache
        )
        assert all(o.ok and o.cached for o in warm)
        assert cache.stats.hits == len(warm)
        for a, b in zip(cold, warm):
            assert _payload_no_elapsed(a) == _payload_no_elapsed(b)

    def test_failure_captured_not_swallowed(self, tmp_path):
        from repro.ir import parse_fpcore

        # An unsatisfiable precondition -> SamplingError, recorded per job.
        bad = parse_fpcore("(FPCore nopoints (x) :pre (and (< 2 x) (< x 1)) x)")
        outcomes = compile_many(
            [(bad, "arith"), (core_named("sqrt-sub"), "arith")],
            config=FAST,
            sample_config=SAMPLES,
            cache=CompileCache(tmp_path),
        )
        assert outcomes[0].status == "failed"
        assert outcomes[0].error_type == "SamplingError"
        assert outcomes[1].ok
        # failures are never cached
        assert CompileCache(tmp_path).get(outcomes[0].fingerprint) is None

    def test_timeout_enforced(self):
        import signal

        if not hasattr(signal, "SIGALRM"):
            pytest.skip("no SIGALRM on this platform")
        outcomes = compile_many(
            [(core_named("sqrt-sub"), "c99")],
            config=FAST,
            sample_config=SAMPLES,
            timeout=0.01,
        )
        assert outcomes[0].status == "timeout"
        assert outcomes[0].error_type == "JobTimeout"
        assert outcomes[0].payload is None

    def test_deterministic_ordering(self):
        outcomes = compile_many(self._specs(), config=FAST, sample_config=SAMPLES, jobs=3)
        assert [o.index for o in outcomes] == list(range(len(self._specs())))

    def test_custom_target_runs_inline(self, c99):
        custom = c99.extend("c99-retuned", override_costs={"add.f64": 7.0})
        outcomes = compile_many(
            [(core_named("sqrt-sub"), custom)],
            config=FAST,
            sample_config=SAMPLES,
            jobs=4,
        )
        assert outcomes[0].ok
        assert outcomes[0].target == "c99-retuned"

    def test_result_rescoreable(self):
        """Deserialized frontiers are real exprs that can be re-scored."""
        from repro.accuracy.scoring import score_program

        (outcome,) = compile_many(
            [(core_named("sqrt-sub"), "c99")], config=FAST, sample_config=SAMPLES
        )
        result = outcome.result
        best = result.frontier.best_error()
        rescored = score_program(
            best.program,
            result.target,
            result.samples.test,
            result.samples.test_exact,
            result.core.precision,
        )
        assert rescored == pytest.approx(best.error)


class TestBatchCLI:
    def test_reports_identical_and_warm_cache(self, tmp_path, capsys):
        args = [
            "batch", "sqrt-sub", "logistic", "--targets", "c99,arith",
            "--iterations", "1", "--points", "12", "--quiet",
            "--cache-dir", str(tmp_path / "cache"),
        ]
        r1 = tmp_path / "r1.jsonl"
        r2 = tmp_path / "r2.jsonl"
        assert main(args + ["--jobs", "2", "--report", str(r1)]) == 0
        cold_out = capsys.readouterr().out
        assert "compiled=4 cached=0" in cold_out
        assert main(args + ["--jobs", "1", "--report", str(r2)]) == 0
        warm_out = capsys.readouterr().out
        # second run: zero recompilations, all hits, stats reported
        assert "compiled=0 cached=4" in warm_out
        assert "4 hits, 0 misses" in warm_out
        assert r1.read_text() == r2.read_text()
        rows = [json.loads(line) for line in r1.read_text().splitlines()]
        assert len(rows) == 4
        assert all(r["status"] == "ok" for r in rows)
        assert all("frontier" in r and "fingerprint" in r for r in rows)

    def test_unknown_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["batch", "sqrt-sub", "--targets", "nonesuch"])

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(SystemExit):
            main(["batch", "sqrt-sub", "--targets", "c99", "--timeout", "0"])

    def test_exit_1_when_nothing_succeeds(self, tmp_path, capsys):
        bad = tmp_path / "bad.fpcore"
        bad.write_text("(FPCore nopoints (x) :pre (and (< 2 x) (< x 1)) x)")
        code = main([
            "batch", str(bad), "--targets", "c99",
            "--iterations", "1", "--points", "8", "--quiet",
        ])
        assert code == 1
        assert "ok=0 failed=1" in capsys.readouterr().out

    def test_awkward_benchmark_name_through_pool(self, tmp_path, capsys):
        src = tmp_path / "odd.fpcore"
        src.write_text(
            '(FPCore (x) :name "sin(x) / x" :pre (< 0.1 x 1) (+ (* x x) 1))\n'
            '(FPCore (x) :name "a b" :pre (< 0.1 x 1) (- (* x x) 1))\n'
        )
        report = tmp_path / "r.jsonl"
        assert main([
            "batch", str(src), "--targets", "c99", "--jobs", "2",
            "--iterations", "1", "--points", "8", "--quiet",
            "--report", str(report),
        ]) == 0
        rows = [json.loads(l) for l in report.read_text().splitlines()]
        assert [r["status"] for r in rows] == ["ok", "ok"]
        assert [r["benchmark"] for r in rows] == ["sin(x) / x", "a b"]

    def test_compile_json_flag(self, capsys):
        assert main([
            "compile", "sqrt-sub", "--target", "c99",
            "--iterations", "1", "--points", "8", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"] == "ok"
        assert payload["target"] == "c99"
        assert payload["frontier"] and "program" in payload["frontier"][0]


class TestExperimentConfigService:
    def test_runners_share_cache(self, tmp_path, c99):
        """A second runner invocation is served entirely from the cache."""
        from repro.experiments import ExperimentConfig, run_cost_model_study

        cache = CompileCache(tmp_path)
        config = ExperimentConfig(FAST, SAMPLES, jobs=1, cache=cache)
        cores = [core_named("sqrt-sub")]
        first = run_cost_model_study(cores, [c99], config)
        assert cache.stats.stores == 1
        second = run_cost_model_study(cores, [c99], config)
        assert cache.stats.hits == 1
        assert [(p.estimated_cost, p.run_time) for p in first] == [
            (p.estimated_cost, p.run_time) for p in second
        ]
