"""Tests for operator definitions, targets, synthesis, auto-tuning, DSL."""

import math

import pytest

from repro.fpeval import approx
from repro.ir import F32, F64, App, Var, parse_expr
from repro.targets import (
    TARGET_NAMES,
    Target,
    TargetDSLError,
    all_targets,
    autotune_costs,
    get_target,
    opdef,
    parse_target_description,
    synthesize_impl,
)


class TestOperatorDef:
    def test_basic(self):
        op = opdef("add.f64", (F64, F64), F64, "(+ x y)", 4.0)
        assert op.arity == 2
        assert op.params == ("x", "y")
        assert op.is_direct
        assert op.direct_real_op == "+"

    def test_non_direct(self):
        op = opdef("rcp.f32", (F32,), F32, "(/ 1 x)", 4.0)
        assert not op.is_direct
        assert op.direct_real_op is None

    def test_desugar_rules(self):
        op = opdef("rcp.f32", (F32,), F32, "(/ 1 x)", 4.0)
        desugar, lower = op.desugar_rules()
        assert desugar.lhs == App("rcp.f32", (Var("x"),))
        assert desugar.rhs == parse_expr("(/ 1 x)")
        assert lower.lhs == parse_expr("(/ 1 x)")

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            opdef("bad.f64", (F64,), F64, "(+ x q)", 1.0)

    def test_bad_type_rejected(self):
        # binary16 became a registered format (fp16); an op type must still
        # be *registered* — truly unknown names are rejected.
        with pytest.raises(ValueError):
            opdef("bad.f64", ("binary128",), F64, "x", 1.0)

    def test_with_cost(self):
        op = opdef("add.f64", (F64, F64), F64, "(+ x y)", 4.0)
        assert op.with_cost(9.0).cost == 9.0
        assert op.cost == 4.0  # original unchanged


class TestBuiltinTargets:
    def test_all_builtin_targets_exist(self):
        # The paper's nine, plus the two narrow-format ML targets.
        assert len(TARGET_NAMES) == 11
        assert len(all_targets()) == 11
        assert {"fp16", "bf16"} < set(TARGET_NAMES)

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            get_target("riscv")

    def test_avx_characteristics(self, avx):
        # The paper's AVX facts: no neg, rcp/rsqrt in f32 only, vector ifs,
        # Fog costs, both formats, the four fma variants.
        assert "neg.f64" not in avx.operators
        assert "rcp.f32" in avx.operators
        assert "rcp.f64" not in avx.operators
        assert avx.if_style == "vector"
        assert avx.cost_source == "Fog [20]"
        assert set(avx.float_types()) == {F32, F64}
        for fma in ("fma.f64", "fms.f64", "fnma.f64", "fnms.f64"):
            assert fma in avx.operators
        # no transcendentals on AVX
        assert "sin.f64" not in avx.operators

    def test_python_characteristics(self, python_target):
        # No fma (paper!), f64 only, flat overhead-dominated costs.
        assert "fma.f64" not in python_target.operators
        assert python_target.float_types() == (F64,)
        costs = [op.cost for op in python_target.operators.values()]
        assert max(costs) / min(costs) < 5  # clustered (flat) cost model

    def test_c99_has_stark_divisions(self, c99):
        assert c99.operator("pow.f64").cost > 10 * c99.operator("add.f64").cost

    def test_julia_helpers(self, julia):
        for helper in ("sind.f64", "cosd.f64", "deg2rad.f64", "abs2.f64", "sinpi.f64"):
            assert helper in julia.operators
        assert julia.operator("sind.f64").approx == parse_expr(
            "(sin (* (/ PI 180) x))"
        )

    def test_vdt_fast_variants(self, vdt):
        assert vdt.operator("fast_exp.f64").cost < vdt.operator("exp.f64").cost
        assert "fast_isqrt.f64" in vdt.operators
        assert "appr_isqrt.f64" in vdt.operators

    def test_fdlibm_log1pmd(self, fdlibm):
        op = fdlibm.operator("log1pmd.f64")
        assert op.approx == parse_expr("(- (log (+ 1 x)) (log (- 1 x)))")
        # cheaper than two separate logs
        assert op.cost < 2 * fdlibm.operator("log.f64").cost

    def test_numpy_vector_style(self, numpy_target):
        assert numpy_target.if_style == "vector"
        assert "logaddexp.f64" in numpy_target.operators
        assert "fma.f64" not in numpy_target.operators


class TestTargetMethods:
    def test_desugar_expr(self, avx):
        prog = parse_expr("(fma.f64 a b c)", known_ops=set(avx.operators))
        assert avx.desugar_expr(prog) == parse_expr("(+ (* a b) c)")

    def test_desugar_nested(self, fdlibm):
        prog = parse_expr(
            "(mul.f64 (log1pmd.f64 x) 0.5)", known_ops=set(fdlibm.operators)
        )
        real = fdlibm.desugar_expr(prog)
        assert real == parse_expr("(* (- (log (+ 1 x)) (log (- 1 x))) 0.5)")

    def test_direct_index_prefers_accurate(self, vdt):
        index = vdt.direct_index()
        assert index[("exp", F64)].name == "exp.f64"  # not fast_exp

    def test_extend_adds_and_overrides(self, arith):
        extra = opdef("exp.f64", (F64,), F64, "(exp x)", 40.0)
        derived = arith.extend(
            "arith-exp", add_operators=[extra], override_costs={"add.f64": 2.0}
        )
        assert derived.supports("exp.f64")
        assert derived.operator("add.f64").cost == 2.0
        assert arith.operator("add.f64").cost != 2.0  # original frozen

    def test_extend_removes(self, arith):
        derived = arith.extend("no-div", remove_operators=["div.f64"])
        assert not derived.supports("div.f64")

    def test_impl_registry_covers_all_ops(self, julia):
        registry = julia.impl_registry()
        assert set(registry) == set(julia.operators)


class TestSynthesis:
    def test_synthesized_is_correctly_rounded(self):
        impl = synthesize_impl(parse_expr("(log (+ 1 x))"), ("x",), F64)
        assert impl(1e-300) == 1e-300  # log1p accuracy where naive log fails
        assert impl(1.5) == math.log(2.5)

    def test_synthesized_domain_error_is_nan(self):
        impl = synthesize_impl(parse_expr("(log x)"), ("x",), F64)
        assert math.isnan(impl(-1.0))

    def test_synthesized_f32(self):
        from repro.fpeval import to_f32

        impl = synthesize_impl(parse_expr("(/ 1 x)"), ("x",), F32)
        assert impl(3.0) == to_f32(1.0 / 3.0)

    def test_higher_internal_precision(self, julia):
        # sind(30) must be exactly 0.5: the helper multiplies by pi/180 in
        # extended precision (the paper's Julia discussion).
        sind = julia.impl_registry()["sind.f64"].impl
        assert sind(30.0) == 0.5
        naive = math.sin(math.radians(30.0))
        assert naive != 0.5  # the naive composition is off


class TestAutotune:
    def test_costs_track_latency(self, c99):
        costs = autotune_costs(c99)
        assert costs["pow.f64"] > costs["add.f64"]
        assert costs["sqrt.f64"] > costs["add.f64"]

    def test_costs_noisy_but_close(self, c99):
        costs = autotune_costs(c99)
        for name, cost in costs.items():
            truth = c99.operator(name).true_latency + c99.perf_overhead
            assert 0.5 * truth <= cost <= 2.0 * truth + 1.0, name

    def test_deterministic(self, c99):
        assert autotune_costs(c99) == autotune_costs(c99)


class TestTargetDSL:
    SRC = """
    (define-operator (rcp.f32 [v binary32]) binary32
      #:approx (/ 1 v)
      #:link rcp32
      #:cost 4.0)
    (define-operator (mul.f32 [a binary32] [b binary32]) binary32
      #:approx (* a b)
      #:cost 4.0)
    (define-target mini
      #:if-cost (max 5)
      #:if-style vector
      #:literals ([binary32 1])
      #:operators (rcp.f32 mul.f32))
    """

    def test_parses(self):
        target = parse_target_description(self.SRC, {"rcp32": approx.rcp32})
        assert target.name == "mini"
        assert target.if_cost == 5.0
        assert target.if_style == "vector"
        assert target.operator("rcp.f32").linked

    def test_param_renaming(self):
        target = parse_target_description(self.SRC, {"rcp32": approx.rcp32})
        assert target.operator("rcp.f32").approx == parse_expr("(/ 1 x)")

    def test_import(self, arith):
        src = """
        (define-target bigger
          #:import arith
          #:literals ([binary64 1])
          #:operators ())
        """
        target = parse_target_description(src, import_registry={"arith": arith})
        assert target.supports("add.f64")

    def test_missing_link_rejected(self):
        with pytest.raises(TargetDSLError):
            parse_target_description(self.SRC, {})

    def test_unknown_operator_rejected(self):
        with pytest.raises(TargetDSLError):
            parse_target_description(
                "(define-target t #:operators (nope.f64))"
            )

    def test_no_target_rejected(self):
        with pytest.raises(TargetDSLError):
            parse_target_description("(define-operator (i.f64 [x binary64]) binary64 #:approx x)")
