"""Shared fixtures: targets are expensive to build, so build them once."""

from __future__ import annotations

import pytest

from repro.accuracy import SampleConfig, sample_core
from repro.ir import parse_fpcore
from repro.targets import get_target


@pytest.fixture(scope="session")
def avx():
    return get_target("avx")


@pytest.fixture(scope="session")
def c99():
    return get_target("c99")


@pytest.fixture(scope="session")
def python_target():
    return get_target("python")


@pytest.fixture(scope="session")
def julia():
    return get_target("julia")


@pytest.fixture(scope="session")
def vdt():
    return get_target("vdt")


@pytest.fixture(scope="session")
def fdlibm():
    return get_target("fdlibm")


@pytest.fixture(scope="session")
def arith():
    return get_target("arith")


@pytest.fixture(scope="session")
def numpy_target():
    return get_target("numpy")


@pytest.fixture(scope="session")
def sqrt_sub_core():
    return parse_fpcore(
        '(FPCore sqrt-sub (x) :name "sqrt-sub" :pre (and (<= 1e8 x) (<= x 1e18))'
        " (- (sqrt (+ x 1)) (sqrt x)))"
    )


@pytest.fixture(scope="session")
def acoth_core():
    return parse_fpcore(
        "(FPCore acoth (x) :pre (and (< 0.001 (fabs x)) (< (fabs x) 0.999))"
        " (* 1/2 (log (/ (+ 1 x) (- 1 x)))))"
    )


@pytest.fixture(scope="session")
def small_samples(sqrt_sub_core):
    return sample_core(sqrt_sub_core, SampleConfig(n_train=16, n_test=16, seed=7))
