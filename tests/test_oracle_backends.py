"""Backend-equivalence tests for the pluggable oracle subsystem.

Every oracle backend is an *acceptance filter* over the same escalation-
ladder semantics — never an approximation — so points, exact values and
statuses must be bit-identical across ``numpy``, ``mpmath`` and ``pool``,
and across ``jobs=1`` vs pooled execution.  These tests pin that contract
on curated benchmarks, adversarial special points (signed zeros,
infinities, NaN, overflow-scale magnitudes) and randomized generated
expressions.
"""

import math
import struct

import pytest

from repro.accuracy.sampler import SampleConfig, sample_core
from repro.api import ChassisSession, CompileConfig
from repro.benchsuite.generator import generate_core
from repro.benchsuite.suite import core_named
from repro.ir.parser import parse_expr
from repro.ir.types import F32, F64
from repro.obs.metrics import METRICS
from repro.rival.backends import (
    BACKEND_NAMES,
    MpmathBackend,
    NumpyBackend,
    OracleCounters,
    make_backend,
    resolve_backend_name,
)
from repro.rival.eval import RivalEvaluator

FAST = CompileConfig(iterations=1, localize_points=6, max_variants=12)
SAMPLES = SampleConfig(n_train=8, n_test=8)

SQRT_SUB = "(FPCore f (x) :pre (< 0.1 x 10) (- (sqrt (+ x 1)) (sqrt x)))"

#: Curated benchmarks covering cancellation, transcendentals, domain
#: errors (sqrt/log of negatives during sampling) and fabs preconditions.
EQUIVALENCE_CORES = (
    "sqrt-sub", "quad-minus", "cos-frac", "acoth", "expm1-naive",
)

#: Adversarial inputs: every sign/zero/inf/NaN corner plus magnitudes
#: that overflow intermediates or underflow outward rounding.
SPECIALS = (
    0.0, -0.0, 1.0, -1.0, 0.5, 2.0, 1e300, -1e300, 1e-300, 5e-324,
    -5e-324, 710.0, -745.0, math.inf, -math.inf, math.nan,
    1.7976931348623157e308, 2.2250738585072014e-308,
)

REAL_EXPRS = (
    "(- (sqrt (+ x 1)) (sqrt x))",
    "(/ (sin x) x)",
    "(log (+ 1 x))",
    "(* x y)",
    "(/ (+ x y) (- x y))",
    "(hypot x y)",
    "(pow x y)",
    "(atan2 x y)",
    "(fmod x y)",
    "(if (< x y) (- y x) (- x y))",
)

BOOL_EXPRS = (
    "(< 0.1 x 10)",
    "(and (< 1e-12 (fabs x)) (< (fabs x) 100))",
    "(or (< x 0) (> y 1))",
    "(== x y)",
    "(<= (sqrt x) y)",
)


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


def _key(result) -> tuple:
    """Comparable identity of one PointResult (bit-exact for ok values)."""
    return (result.status, _bits(result.value) if result.ok else None)


def _fresh(name: str):
    return make_backend(name, evaluator=RivalEvaluator())


def _sample_key(samples) -> tuple:
    points = tuple(
        tuple(sorted((k, _bits(v)) for k, v in point.items()))
        for point in samples.train + samples.test
    )
    exacts = tuple(_bits(v) for v in samples.train_exact + samples.test_exact)
    return (points, exacts, samples.acceptance, len(samples.train))


class TestBatchEquivalence:
    """NumpyBackend vs the reference ladder, point by point."""

    def _points(self, names):
        points = [
            {name: special for name in names} for special in SPECIALS
        ]
        points += [
            dict(zip(names, combo))
            for combo in zip(SPECIALS, reversed(SPECIALS))
        ]
        import random

        rng = random.Random(7)
        points += [
            {name: rng.uniform(-50, 50) for name in names} for _ in range(40)
        ]
        return points

    @pytest.mark.parametrize("source", REAL_EXPRS)
    def test_real_exprs_bit_identical(self, source):
        expr = parse_expr(source)
        names = sorted(expr.free_vars())
        points = self._points(names)
        fast = _fresh("numpy")
        reference = _fresh("mpmath")
        got = fast.eval_batch(expr, points, F64)
        want = reference.eval_batch(expr, points, F64)
        assert [_key(r) for r in got] == [_key(r) for r in want]

    @pytest.mark.parametrize("source", BOOL_EXPRS)
    def test_bool_exprs_identical(self, source):
        expr = parse_expr(source)
        names = sorted(expr.free_vars())
        points = self._points(names)
        fast = _fresh("numpy")
        reference = _fresh("mpmath")
        got = fast.eval_bool_batch(expr, points)
        want = reference.eval_bool_batch(expr, points)
        assert [_key(r) for r in got] == [_key(r) for r in want]

    def test_f32_rounding_matches(self):
        expr = parse_expr("(- (sqrt (+ x 1)) (sqrt x))")
        points = [{"x": 0.1 * i + 0.05} for i in range(64)]
        got = _fresh("numpy").eval_batch(expr, points, F32)
        want = _fresh("mpmath").eval_batch(expr, points, F32)
        assert [_key(r) for r in got] == [_key(r) for r in want]

    def test_unsupported_operator_agrees_with_ladder(self):
        # `erf` has no vectorized implementation; the numpy backend must
        # delegate the whole batch to the ladder, not reject it itself,
        # so its results (and counters) track the reference exactly.
        expr = parse_expr("(erf x)", known_ops={"erf"})
        points = [{"x": 0.25 * i} for i in range(8)]
        fast = _fresh("numpy")
        got = fast.eval_batch(expr, points, F64)
        want = _fresh("mpmath").eval_batch(expr, points, F64)
        assert [_key(r) for r in got] == [_key(r) for r in want]
        assert fast.counters().batch_points >= len(points)

    def test_missing_variable_is_invalid_everywhere(self):
        expr = parse_expr("(+ x y)")
        points = [{"x": 1.0}] * 3
        for name in ("numpy", "mpmath"):
            results = _fresh(name).eval_batch(expr, points, F64)
            assert [r.status for r in results] == ["invalid"] * 3


class TestSamplerEquivalence:
    """sample_core must be bit-identical for any backend choice."""

    @pytest.mark.parametrize("name", EQUIVALENCE_CORES)
    def test_curated_cores(self, name):
        core = core_named(name)
        config = SampleConfig(n_train=16, n_test=16)
        reference = sample_core(core, config, oracle=_fresh("mpmath"))
        fast = sample_core(core, config, oracle=_fresh("numpy"))
        assert _sample_key(fast) == _sample_key(reference)

    @pytest.mark.parametrize("seed", range(6))
    def test_generated_cores_property(self, seed):
        core = generate_core(seed, n_vars=2, depth=4)
        config = SampleConfig(n_train=12, n_test=12)
        reference = sample_core(core, config, oracle=_fresh("mpmath"))
        fast = sample_core(core, config, oracle=_fresh("numpy"))
        assert _sample_key(fast) == _sample_key(reference)

    def test_fastpath_actually_used(self):
        core = core_named("sqrt-sub")
        oracle = _fresh("numpy")
        sample_core(core, SampleConfig(n_train=32, n_test=32), oracle=oracle)
        counters = oracle.counters()
        assert counters.batch_points > 0
        assert counters.fastpath_hits > 0
        assert (
            counters.fastpath_hits + counters.escalated_points
            == counters.batch_points
        )


class TestBackendSelection:
    def test_auto_resolves_to_numpy(self):
        assert resolve_backend_name("auto") == "numpy"
        assert resolve_backend_name("NumPy") == "numpy"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle backend"):
            resolve_backend_name("cuda")

    def test_environment_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE_BACKEND", "mpmath")
        assert resolve_backend_name() == "mpmath"
        session = ChassisSession(config=FAST, sample_config=SAMPLES)
        assert session.oracle_backend == "mpmath"
        assert isinstance(session.oracle, MpmathBackend)

    def test_argument_beats_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_ORACLE_BACKEND", "mpmath")
        session = ChassisSession(
            config=FAST, sample_config=SAMPLES, oracle_backend="numpy"
        )
        assert session.oracle_backend == "numpy"
        assert isinstance(session.oracle, NumpyBackend)

    def test_session_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ChassisSession(oracle_backend="quantum")

    def test_all_names_constructible(self):
        for name in BACKEND_NAMES:
            backend = make_backend(name, evaluator=RivalEvaluator())
            assert backend.name == name


class TestSessionIntegration:
    @pytest.mark.parametrize("backend", ("mpmath", "numpy"))
    def test_compile_payload_identical_across_backends(self, backend):
        reference = ChassisSession(
            config=FAST, sample_config=SAMPLES, oracle_backend="mpmath"
        )
        other = ChassisSession(
            config=FAST, sample_config=SAMPLES, oracle_backend=backend
        )
        want, _ = reference.compile_payload(SQRT_SUB, "c99")
        got, _ = other.compile_payload(SQRT_SUB, "c99")
        # Everything but wall-clock time must match byte for byte.
        want.pop("elapsed"), got.pop("elapsed")
        assert got == want

    def test_health_reports_backend_and_counters(self):
        session = ChassisSession(config=FAST, sample_config=SAMPLES)
        session.compile(SQRT_SUB, "c99")
        oracle = session.health()["oracle"]
        assert oracle["backend"] == session.oracle_backend
        assert oracle["evals"] > 0
        assert oracle["batch_points"] > 0
        assert oracle["fastpath_hits"] + oracle["escalated_points"] == (
            oracle["batch_points"]
        )

    def test_batch_metrics_exposed(self):
        session = ChassisSession(config=FAST, sample_config=SAMPLES)
        session.samples_for(session.parse(SQRT_SUB))
        text = METRICS.exposition()
        assert "repro_oracle_batch_points" in text
        assert "repro_oracle_fastpath_hits" in text
        assert "repro_oracle_batch_size" in text


class TestCounterFolding:
    def test_outcome_counters_fold_into_stats(self):
        session = ChassisSession(config=FAST, sample_config=SAMPLES)
        specs = [(session.parse(SQRT_SUB), "c99")]
        [outcome] = session.compile_many(specs)
        assert outcome.ok
        assert outcome.oracle is not None
        assert outcome.oracle["evals"] > 0
        assert session.stats.rival.evals == outcome.oracle["evals"]
        # The per-job evaluator is separate from the session's; health
        # must include the folded counts.
        assert session.health()["oracle"]["evals"] >= outcome.oracle["evals"]

    def test_merge_ignores_unknown_keys(self):
        counters = OracleCounters()
        counters.merge({"evals": 3, "from_the_future": 9})
        assert counters.evals == 3 and counters.any()

    def test_pooled_jobs_identical_to_serial(self):
        serial = ChassisSession(
            config=FAST, sample_config=SAMPLES, jobs=1
        )
        specs = [
            (serial.parse(SQRT_SUB), "c99"),
            (core_named("cos-frac"), "c99"),
        ]
        def scrub(payload):
            return {k: v for k, v in payload.items() if k != "elapsed"}

        want = [scrub(o.payload) for o in serial.compile_many(specs)]
        with ChassisSession(
            config=FAST, sample_config=SAMPLES, jobs=2
        ) as pooled:
            outcomes = pooled.compile_many(specs)
            got = [scrub(o.payload) for o in outcomes]
            assert got == want
            assert any(o.oracle for o in outcomes)
            assert pooled.stats.rival.evals > 0


class TestPoolBackend:
    def test_sharded_batch_bit_identical(self):
        expr = parse_expr("(- (sqrt (+ x 1)) (sqrt x))")
        import random

        rng = random.Random(11)
        points = [{"x": rng.uniform(0.0, 1e6)} for _ in range(300)]
        want = [_key(r) for r in _fresh("mpmath").eval_batch(expr, points, F64)]
        with ChassisSession(
            config=FAST, sample_config=SAMPLES, jobs=2, oracle_backend="pool"
        ) as session:
            got = [
                _key(r)
                for r in session.oracle.eval_batch(expr, points, F64)
            ]
            assert got == want
            counters = session.oracle.counters()
            assert counters.pool_chunks >= 2
            assert counters.batch_points == len(points)

    def test_without_pool_degrades_to_fastpath(self):
        # jobs=1 sessions have no worker pool; the pool backend must run
        # everything in-process and still match the ladder.
        session = ChassisSession(
            config=FAST, sample_config=SAMPLES, jobs=1, oracle_backend="pool"
        )
        expr = parse_expr("(log (+ 1 x))")
        points = [{"x": 0.5 * i} for i in range(80)]
        got = [_key(r) for r in session.oracle.eval_batch(expr, points, F64)]
        want = [
            _key(r) for r in _fresh("mpmath").eval_batch(expr, points, F64)
        ]
        assert got == want

    def test_small_batches_stay_in_process(self):
        with ChassisSession(
            config=FAST, sample_config=SAMPLES, jobs=2, oracle_backend="pool"
        ) as session:
            expr = parse_expr("(* x x)")
            session.oracle.eval_batch(expr, [{"x": 2.0}] * 8, F64)
            assert session.oracle.counters().pool_chunks == 0
