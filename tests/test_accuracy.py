"""Tests for ULP metrics, sampling, scoring, and local error."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accuracy import (
    SampleConfig,
    SamplingError,
    bits_of_error,
    float32_to_ordinal,
    float64_to_ordinal,
    local_errors,
    ordinal_to_float32,
    ordinal_to_float64,
    sample_core,
    score_program,
    ulps_between,
)
from repro.ir import F32, F64, parse_expr, parse_fpcore


class TestOrdinals:
    def test_order_preserving(self):
        values = [-1e300, -1.0, -1e-300, 0.0, 1e-300, 1.0, 1e300]
        ordinals = [float64_to_ordinal(v) for v in values]
        assert ordinals == sorted(ordinals)

    def test_adjacent_floats_adjacent_ordinals(self):
        x = 1.0
        succ = math.nextafter(x, math.inf)
        assert float64_to_ordinal(succ) - float64_to_ordinal(x) == 1

    def test_zero(self):
        assert float64_to_ordinal(0.0) == 0

    @given(st.floats(allow_nan=False, allow_infinity=False))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_f64(self, x):
        assert ordinal_to_float64(float64_to_ordinal(x)) == x or (
            x == 0.0  # -0.0 normalizes to +0.0
        )

    @given(st.floats(allow_nan=False, allow_infinity=False, width=32))
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_f32(self, x):
        assert ordinal_to_float32(float32_to_ordinal(x)) == x or x == 0.0


class TestUlpsAndBits:
    def test_identical_is_zero(self):
        assert ulps_between(1.5, 1.5) == 0
        assert bits_of_error(1.5, 1.5) == 0.0

    def test_one_ulp(self):
        x = 1.0
        assert ulps_between(x, math.nextafter(x, 2.0)) == 1
        assert bits_of_error(x, math.nextafter(x, 2.0)) == 1.0

    def test_nan_vs_value_is_worst(self):
        assert bits_of_error(math.nan, 1.0) == 64.0

    def test_nan_vs_nan_is_perfect(self):
        assert bits_of_error(math.nan, math.nan) == 0.0

    def test_sign_straddling(self):
        assert ulps_between(-1e-300, 1e-300) > 0

    def test_f32_scale(self):
        assert bits_of_error(math.nan, 1.0, F32) == 32.0

    @given(
        st.floats(allow_nan=False, allow_infinity=False),
        st.floats(allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_symmetry(self, a, b):
        assert ulps_between(a, b) == ulps_between(b, a)

    def test_monotone_in_distance(self):
        exact = 1.0
        worse = [1.0, 1.0 + 2**-50, 1.0 + 2**-40, 1.0 + 2**-20, 2.0]
        errors = [bits_of_error(w, exact) for w in worse]
        assert errors == sorted(errors)


class TestSampler:
    def test_respects_precondition(self, acoth_core):
        samples = sample_core(acoth_core, SampleConfig(n_train=16, n_test=16))
        for point in samples.train + samples.test:
            assert 0.001 < abs(point["x"]) < 0.999

    def test_exact_values_align(self, sqrt_sub_core):
        samples = sample_core(sqrt_sub_core, SampleConfig(n_train=8, n_test=8))
        assert len(samples.train) == len(samples.train_exact)
        assert all(math.isfinite(v) for v in samples.train_exact)

    def test_deterministic(self, sqrt_sub_core):
        a = sample_core(sqrt_sub_core, SampleConfig(n_train=8, n_test=8, seed=3))
        b = sample_core(sqrt_sub_core, SampleConfig(n_train=8, n_test=8, seed=3))
        assert a.train == b.train

    def test_different_seeds_differ(self, sqrt_sub_core):
        a = sample_core(sqrt_sub_core, SampleConfig(n_train=8, n_test=8, seed=3))
        b = sample_core(sqrt_sub_core, SampleConfig(n_train=8, n_test=8, seed=4))
        assert a.train != b.train

    def test_impossible_precondition_raises(self):
        core = parse_fpcore("(FPCore (x) :pre (and (< 1 x) (< x 0)) (sqrt x))")
        with pytest.raises(SamplingError):
            sample_core(core, SampleConfig(n_train=8, n_test=8, max_batches=3))

    def test_domain_filtering(self):
        # sqrt of negatives must never be sampled even without precondition
        core = parse_fpcore("(FPCore (x) (sqrt x))")
        samples = sample_core(core, SampleConfig(n_train=16, n_test=16))
        assert all(p["x"] >= 0 for p in samples.train + samples.test)


class TestScoring:
    def test_exact_program_scores_near_zero(self, c99, sqrt_sub_core, small_samples):
        from repro.core import transcribe

        program = transcribe(sqrt_sub_core.body, c99, F64)
        # naive form: accurate on most points but catastrophic on large x
        score = score_program(
            program, c99, small_samples.test, small_samples.test_exact
        )
        assert 0 <= score <= 64

    def test_rewritten_beats_naive(self, c99, sqrt_sub_core, small_samples):
        from repro.core import transcribe
        from repro.ir import parse_expr as pe

        naive = transcribe(sqrt_sub_core.body, c99, F64)
        repaired = transcribe(
            pe("(/ 1 (+ (sqrt (+ x 1)) (sqrt x)))"), c99, F64
        )
        naive_score = score_program(
            naive, c99, small_samples.test, small_samples.test_exact
        )
        repaired_score = score_program(
            repaired, c99, small_samples.test, small_samples.test_exact
        )
        assert repaired_score <= naive_score

    def test_unsupported_program_scores_worst(self, arith, small_samples):
        program = parse_expr("(exp.f64 x)", known_ops={"exp.f64"})
        score = score_program(
            program, arith, small_samples.test, small_samples.test_exact
        )
        assert score == 64.0


class TestLocalError:
    def test_blames_the_cancelling_subtraction(self, c99, sqrt_sub_core):
        """Herbie's flagship example: the subtraction introduces the error,
        not the square roots."""
        from repro.core import transcribe

        program = transcribe(sqrt_sub_core.body, c99, F64)
        # Large x: cancellation is severe there.
        points = [{"x": 1e18}, {"x": 4e17}, {"x": 7e16}]
        errors = local_errors(program, c99, points)
        root_error = errors[()]
        sqrt_errors = [v for path, v in errors.items() if path != ()]
        assert root_error > 20
        assert all(v < 2 for v in sqrt_errors)

    def test_accurate_program_has_low_local_error(self, c99):
        program = parse_expr(
            "(div.f64 1 (add.f64 (sqrt.f64 (add.f64 x 1)) (sqrt.f64 x)))",
            known_ops=set(c99.operators),
        )
        errors = local_errors(program, c99, [{"x": 1e18}, {"x": 2.0}])
        assert all(v < 2 for v in errors.values())

    def test_approximate_operator_shows_its_error(self, vdt):
        program = parse_expr("(fast_exp.f64 x)", known_ops=set(vdt.operators))
        errors = local_errors(program, vdt, [{"x": 1.1}, {"x": 2.3}])
        assert errors[()] > 0.5  # ~8 ulp of deliberate error
