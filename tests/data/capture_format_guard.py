"""Capture the f32/f64 byte-identity baseline for the format refactor.

Run from the repo root (``PYTHONPATH=src python
tests/data/capture_format_guard.py``) to (re)generate
``format_guard_baseline.json``: for a small sample of benchmarks x targets
it records the job fingerprint and a SHA-256 of the canonical serialized
``CompileResult`` payload.  ``tests/test_format_guard.py`` recomputes both
and compares — identical cores must produce byte-identical results across
the number-format refactor, and fingerprints may not change for f32/f64
(warm caches must survive).

The binary32 twin of ``sqrt-sub`` is captured too, so the guard pins both
halves of the old string dichotomy.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.accuracy.sampler import SampleConfig
from repro.benchsuite import core_named
from repro.core.loop import CompileConfig
from repro.ir.fpcore import parse_fpcore
from repro.service.cache import job_fingerprint
from repro.service.results import result_to_dict
from repro.session import ChassisSession
from repro.targets import get_target

SAMPLE = (
    ("sqrt-sub", "c99"),
    ("logistic", "c99"),
    ("sqrt-sub", "python"),
    ("quad-minus", "fdlibm"),
)

F32_CORE = (
    "(FPCore sqrt-sub-f32 (x) :precision binary32 :pre (< 0.001 x 1000) "
    "(- (sqrt (+ x 1)) (sqrt x)))"
)

CONFIG = CompileConfig(iterations=1, localize_points=8)
SAMPLES = SampleConfig(n_train=16, n_test=16)


def canonical_digest(payload: dict) -> str:
    # ``elapsed`` is wall-clock time — the only nondeterministic field in a
    # serialized result.  Everything else must be byte-stable run to run.
    payload = {k: v for k, v in payload.items() if k != "elapsed"}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def capture() -> dict:
    rows = []
    with ChassisSession(config=CONFIG, sample_config=SAMPLES) as session:
        jobs = [(core_named(name), target) for name, target in SAMPLE]
        jobs.append((parse_fpcore(F32_CORE), "c99"))
        for core, target_name in jobs:
            target = get_target(target_name)
            result = session.compile(core, target)
            rows.append({
                "benchmark": core.name,
                "precision": core.precision,
                "target": target_name,
                "fingerprint": job_fingerprint(core, target, CONFIG, SAMPLES),
                "payload_sha256": canonical_digest(result_to_dict(result)),
            })
    return {"description": __doc__.splitlines()[0], "jobs": rows}


if __name__ == "__main__":
    out = Path(__file__).with_name("format_guard_baseline.json")
    baseline = capture()
    out.write_text(json.dumps(baseline, indent=2) + "\n")
    print(f"wrote {len(baseline['jobs'])} baseline rows to {out}")
